#!/usr/bin/env sh
# Tier-1 verification: hermetic release build + full test suite.
#
# The workspace has zero external dependencies (see "Hermetic builds" in
# README.md), so this must succeed on a machine with no network access
# and no ~/.cargo/registry cache. --offline turns any accidental
# reintroduction of a registry dependency into an immediate, explicit
# failure instead of a hang.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test (offline)"
cargo test -q --workspace --offline

# Second pass with the parallel executor engaged: BOOTERS_THREADS=4 makes
# every booters-par fan-out (country fits, packet synthesis, flow
# grouping, window scans) run on real worker threads, so CI exercises the
# determinism contract on the parallel code path, not just the
# threads=1 sequential fallback.
echo "==> cargo test (offline, BOOTERS_THREADS=4)"
BOOTERS_THREADS=4 cargo test -q --workspace --offline

# Third pass with a deliberately tiny storage budget: 64 KiB holds only a
# few thousand packets, so every booters-store consumer that reads
# SpillConfig::default() (engine-trace classification goldens, scenario
# spill sinks) is forced through the spill-to-disk external sort and
# k-way merge instead of the in-RAM fast path. Outputs must not change.
echo "==> cargo test (offline, BOOTERS_STORE_BUDGET=65536)"
BOOTERS_STORE_BUDGET=65536 cargo test -q --workspace --offline

# Fourth pass: BOOTERS_PAR_MIN_ITEMS=1 disables the small-work sequential
# cutoff, so even tiny fan-outs (eight Table-2 countries, short window
# scans) go through the worker pool. Combined with BOOTERS_THREADS=4 this
# runs the seeded golden suite on the pool branch that the cutoff would
# normally skip — the goldens must stay byte-identical either way.
echo "==> seeded goldens (offline, BOOTERS_PAR_MIN_ITEMS=1, BOOTERS_THREADS=4)"
BOOTERS_PAR_MIN_ITEMS=1 BOOTERS_THREADS=4 \
    cargo test -q --offline --test smoke_seeded --test par_invariance

# Fifth pass with every byte-level fast kernel (SWAR varint decode,
# slice-by-8 CRC-32, radix grouping sort, coarse fan-outs) forced back to
# its scalar reference implementation. DESIGN.md §5f: kernel selection is
# an implementation detail — the goldens must stay byte-identical with
# the oracles in charge, at one thread and at four.
echo "==> seeded goldens (offline, BOOTERS_SCALAR_KERNELS=1)"
BOOTERS_SCALAR_KERNELS=1 \
    cargo test -q --offline --test smoke_seeded --test store_equivalence --test par_invariance
BOOTERS_SCALAR_KERNELS=1 BOOTERS_THREADS=4 \
    cargo test -q --offline --test smoke_seeded --test store_equivalence --test par_invariance

# Artifact-level kernel check: render Table 1 with the fast kernels, then
# again with the scalar oracles, and require the written artifacts to be
# byte-for-byte identical.
echo "==> table1 artifact diff (fast kernels vs scalar oracles)"
cargo run --release --offline -p booters-bench --bin repro_table1 >/dev/null
cp out/table1.txt out/table1.fast.txt
BOOTERS_SCALAR_KERNELS=1 \
    cargo run --release --offline -p booters-bench --bin repro_table1 >/dev/null
cmp out/table1.fast.txt out/table1.txt || {
    echo "verify: table1 artifact differs between fast kernels and scalar oracles" >&2
    exit 1
}
rm -f out/table1.fast.txt

# Sixth pass with metrics recording on: the observability contract
# (DESIGN.md §5e) says BOOTERS_OBS=1 may never change an output byte, so
# the full suite — every golden included — must pass with the registry
# recording spans and counters on all hot paths.
echo "==> cargo test (offline, BOOTERS_OBS=1)"
BOOTERS_OBS=1 cargo test -q --workspace --offline

# API docs must build warning-free (missing docs and broken intra-doc
# links are denied), and every doc example must run.
echo "==> cargo doc (offline, warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace --quiet

echo "==> cargo test --doc (offline)"
cargo test -q --doc --workspace --offline

# Smoke the run-report renderer: a small-scale instrumented run must
# produce non-empty self-contained HTML and Markdown reports.
echo "==> repro_report smoke (offline, scale 0.02)"
cargo run --release --offline -p booters-core --bin repro_report -- 0.02 >/dev/null
test -s out/report.html || { echo "verify: out/report.html missing or empty" >&2; exit 1; }
test -s out/report.md   || { echo "verify: out/report.md missing or empty" >&2; exit 1; }

# Seventh pass: the streaming-equivalence contract (DESIGN.md §5g) at the
# artifact level. repro_serve runs the full-packet chain through the batch
# pipeline and the booters-serve streaming node, writes both renderings,
# and asserts them equal in-process; cmp re-checks the written bytes here
# so a broken artifact writer can't mask a divergence. BOOTERS_THREADS=4
# puts the shard fan-out on real worker threads.
echo "==> repro_serve smoke: streaming vs batch artifact diff (offline, scale 0.05, BOOTERS_THREADS=4)"
BOOTERS_THREADS=4 \
    cargo run --release --offline -p booters-bench --bin repro_serve -- 0.05 >/dev/null
cmp out/table1.batch.txt out/table1.serve.txt || {
    echo "verify: streaming Table 1 differs from the batch pipeline" >&2
    exit 1
}
cmp out/table2.batch.txt out/table2.serve.txt || {
    echo "verify: streaming Table 2 differs from the batch pipeline" >&2
    exit 1
}
test -s out/serve.txt || { echo "verify: out/serve.txt missing or empty" >&2; exit 1; }

# Eighth pass: the pushdown-equivalence contract (DESIGN.md §5h) at the
# artifact level. repro_query runs the full-packet chain through the
# batch pipeline and the booters-query scratch-store path (zone-map
# pruning, late materialization), writes both renderings, and asserts
# them equal in-process; cmp re-checks the written bytes here so a
# broken artifact writer can't mask a divergence. BOOTERS_THREADS=4 puts
# the per-chunk decode fan-out on real worker threads.
echo "==> repro_query smoke: pushdown vs batch artifact diff (offline, scale 0.05, BOOTERS_THREADS=4)"
BOOTERS_THREADS=4 \
    cargo run --release --offline -p booters-bench --bin repro_query -- 0.05 >/dev/null
cmp out/table1.qbatch.txt out/table1.query.txt || {
    echo "verify: query-backed Table 1 differs from the batch pipeline" >&2
    exit 1
}
cmp out/table2.qbatch.txt out/table2.query.txt || {
    echo "verify: query-backed Table 2 differs from the batch pipeline" >&2
    exit 1
}
test -s out/query.txt || { echo "verify: out/query.txt missing or empty" >&2; exit 1; }
test -s out/query_panel.csv || { echo "verify: out/query_panel.csv missing or empty" >&2; exit 1; }

# Ninth pass: the cache-coherence contract (DESIGN.md §5i). With an
# 8 MiB decoded-chunk cache budget, every store read may be served from
# the cache — and nothing is allowed to change. The golden suites must
# pass unchanged, and the repro_query artifacts must be byte-identical
# to the cache-off run pass eight just wrote.
echo "==> seeded goldens (offline, BOOTERS_CACHE_BYTES=8388608, BOOTERS_THREADS=4)"
BOOTERS_CACHE_BYTES=8388608 BOOTERS_THREADS=4 \
    cargo test -q --offline --test smoke_seeded --test store_equivalence \
    --test query_equivalence --test obs_golden
echo "==> repro_query smoke: cached vs uncached artifact diff (offline, scale 0.05, BOOTERS_CACHE_BYTES=8388608)"
cp out/table1.query.txt out/table1.nocache.txt
cp out/table2.query.txt out/table2.nocache.txt
BOOTERS_CACHE_BYTES=8388608 BOOTERS_THREADS=4 \
    cargo run --release --offline -p booters-bench --bin repro_query -- 0.05 >/dev/null
cmp out/table1.nocache.txt out/table1.query.txt || {
    echo "verify: query-backed Table 1 differs with the decoded-chunk cache on" >&2
    exit 1
}
cmp out/table2.nocache.txt out/table2.query.txt || {
    echo "verify: query-backed Table 2 differs with the decoded-chunk cache on" >&2
    exit 1
}
cmp out/table1.qbatch.txt out/table1.query.txt || {
    echo "verify: cached query-backed Table 1 differs from the batch pipeline" >&2
    exit 1
}
rm -f out/table1.nocache.txt out/table2.nocache.txt

# Tenth pass: the scenario-composition contract (DESIGN.md §5j) at the
# artifact level. repro_scenarios runs all eight built-in intervention
# scenarios (scenarios/*.scn) plus the shockless baseline end-to-end —
# simulate, observe, refit — and writes the cross-scenario comparison
# artifacts. Those must be byte-identical across thread counts and with
# the scalar kernel oracles in charge; the scenario_suite golden test
# pins the same contract in-process, and the scn parser tests pin the
# DSL round-trip and diagnostics.
echo "==> scenario goldens (offline, scn parser + suite byte-identity)"
cargo test -q --offline --test scenario_suite
cargo test -q --offline -p booters-market --test scn
echo "==> repro_scenarios artifact diff (threads 1/4 x fast/scalar, offline, scale 0.02)"
cargo run --release --offline -p booters-core --bin repro_scenarios -- 0.02 >/dev/null
test -s out/scenarios.txt || { echo "verify: out/scenarios.txt missing or empty" >&2; exit 1; }
cp out/scenario_summary.csv out/scenario_summary.ref.csv
cp out/scenario_coefficients.csv out/scenario_coefficients.ref.csv
for combo in "BOOTERS_THREADS=4" "BOOTERS_SCALAR_KERNELS=1" "BOOTERS_THREADS=4 BOOTERS_SCALAR_KERNELS=1"; do
    env $combo cargo run --release --offline -p booters-core --bin repro_scenarios -- 0.02 >/dev/null
    cmp out/scenario_summary.ref.csv out/scenario_summary.csv || {
        echo "verify: scenario summary differs under $combo" >&2
        exit 1
    }
    cmp out/scenario_coefficients.ref.csv out/scenario_coefficients.csv || {
        echo "verify: scenario coefficients differ under $combo" >&2
        exit 1
    }
done
rm -f out/scenario_summary.ref.csv out/scenario_coefficients.ref.csv

echo "==> verify: OK"
