#!/usr/bin/env sh
# Tier-1 verification: hermetic release build + full test suite.
#
# The workspace has zero external dependencies (see "Hermetic builds" in
# README.md), so this must succeed on a machine with no network access
# and no ~/.cargo/registry cache. --offline turns any accidental
# reintroduction of a registry dependency into an immediate, explicit
# failure instead of a hang.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release (offline)"
cargo build --release --workspace --offline

echo "==> cargo test (offline)"
cargo test -q --workspace --offline

echo "==> verify: OK"
