//! Intervention analysis across countries — the paper's Table 2 workflow.
//!
//! Fits one negative binomial model per country and compares intervention
//! effect sizes, surfacing the heterogeneity the paper highlights: France
//! and Russia insulated from Xmas2018, the Dutch reprisal spike after the
//! Webstresser takedown, and China standing apart entirely.
//!
//! Run with `cargo run --release --example intervention_analysis`.

use booting_the_booters::core::pipeline::{fit_country, fit_global, PipelineConfig};
use booting_the_booters::core::report::{fig4_table, table2};
use booting_the_booters::core::scenario::{Fidelity, Scenario, ScenarioConfig};
use booting_the_booters::market::calibration::Calibration;
use booting_the_booters::market::market::MarketConfig;
use booting_the_booters::netsim::Country;
use booting_the_booters::timeseries::Date;

fn main() {
    let scenario = Scenario::run(ScenarioConfig {
        market: MarketConfig {
            scale: 0.2,
            seed: 7,
            ..MarketConfig::default()
        },
        fidelity: Fidelity::Aggregate,
        ..ScenarioConfig::default()
    });
    let cal = Calibration::default();
    let cfg = PipelineConfig::default();

    println!("{}", table2(&scenario.honeypot, &cal, &cfg).expect("table 2"));

    // Spot-check the two headline country stories.
    let nl = fit_country(&scenario.honeypot, &cal, Country::Nl, &cfg).expect("NL model");
    let wb = nl
        .model
        .intervention_effects()
        .into_iter()
        .find(|e| e.name == "Webstresser takedown")
        .expect("webstresser effect");
    println!(
        "NL reprisal after Webstresser: {:+.0}% (paper: +146%), p={:.4}",
        wb.mean_pct, wb.p_value
    );

    let fr = fit_country(&scenario.honeypot, &cal, Country::Fr, &cfg).expect("FR model");
    let xmas = fr
        .model
        .intervention_effects()
        .into_iter()
        .find(|e| e.name == "Xmas 2018 event")
        .expect("xmas effect");
    println!(
        "FR during Xmas2018: {:+.0}% (paper: -1%, not significant), p={:.4}",
        xmas.mean_pct, xmas.p_value
    );

    let global = fit_global(&scenario.honeypot, &cal, &cfg).expect("global model");
    let (lr, p) = global.fit.overdispersion_lr();
    println!(
        "\noverdispersion: alpha={:.4}, LR vs Poisson = {lr:.0} (p={p:.2e}) — the paper's\n\
         reason for negative binomial over Poisson regression",
        global.fit.alpha
    );

    // Figure 4: cross-country correlation, China stands apart.
    let corr = fig4_table(
        &scenario.honeypot,
        Date::new(2016, 6, 6),
        Date::new(2019, 4, 1),
    );
    println!("\ncountry correlation matrix (Figure 4):\n{}", corr.render());
    println!(
        "mean |corr|: UK={:.2}  CN={:.2}  (China 'stands apart', §4.1)",
        corr.mean_abs_correlation("UK").unwrap(),
        corr.mean_abs_correlation("CN").unwrap()
    );
}
