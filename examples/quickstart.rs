//! Quickstart: simulate the booter market, observe it through the
//! honeypot layer, fit the paper's negative binomial model and print the
//! Table 1 regression summary.
//!
//! Run with `cargo run --release --example quickstart`.

use booting_the_booters::core::pipeline::{fit_global, PipelineConfig};
use booting_the_booters::core::report::table1;
use booting_the_booters::core::scenario::{Fidelity, Scenario, ScenarioConfig};
use booting_the_booters::market::calibration::Calibration;
use booting_the_booters::market::market::MarketConfig;

fn main() {
    // Scale 0.2 keeps the demo fast while preserving every coefficient
    // except the constant (scaling only shifts the intercept).
    let config = ScenarioConfig {
        market: MarketConfig {
            scale: 0.2,
            seed: 1,
            ..MarketConfig::default()
        },
        fidelity: Fidelity::Aggregate,
        ..ScenarioConfig::default()
    };

    println!("simulating July 2014 – April 2019 ...");
    let scenario = Scenario::run(config);
    println!(
        "observed {} weeks, {:.0} attacks total (coverage {:.0}% of ground truth)\n",
        scenario.honeypot.global.len(),
        scenario.honeypot.global.total(),
        100.0 * scenario.honeypot.global.total() / scenario.ground_truth.global.total()
    );

    let cal = Calibration::default();
    let cfg = PipelineConfig::default();
    let fit = fit_global(&scenario.honeypot, &cal, &cfg).expect("model converges");
    println!("{}", table1(&fit));

    println!("intervention effect sizes (cf. paper Table 2 'Overall'):");
    for e in fit.intervention_effects() {
        println!(
            "  {:<36} {:>6.1}%  [{:>6.1}%, {:>6.1}%]  p={:.4}{}",
            e.name,
            e.mean_pct,
            e.lo_pct,
            e.hi_pct,
            e.p_value,
            if e.significant() { " *" } else { "" }
        );
    }
}
