//! Honeypot measurement chain, packet by packet.
//!
//! Demonstrates the full netsim substrate on its own: booter scans
//! discover reflectors (honeypots answer eagerly, white-hats get
//! silence), attacks spray spoofed packets, sensors rate-limit and report
//! victims fleet-wide, and the paper's 15-minute-gap flow grouper
//! classifies the logs into attacks and scans. Ends with the footnote-1
//! style per-protocol coverage report.
//!
//! Run with `cargo run --release --example honeypot_coverage`.

use booting_the_booters::netsim::coverage::CoverageReport;
use booting_the_booters::netsim::flow::{classify_flows, FlowClass};
use booting_the_booters::netsim::{
    AttackCommand, Engine, EngineConfig, UdpProtocol, VictimAddr,
};

fn main() {
    let mut engine = Engine::new(EngineConfig::default());

    // One attack, end to end.
    let cmd = AttackCommand {
        time: 3_600,
        victim: VictimAddr::from_octets(25, 10, 20, 30),
        protocol: UdpProtocol::Ldap,
        duration_secs: 240,
        packets_per_second: 60_000,
        booter: 1,
        avoids_honeypots: false,
    };
    let packets = engine.simulate_attack_packets(&cmd);
    println!(
        "attack on {} via {}: {} packets logged across sensors",
        cmd.victim,
        cmd.protocol,
        packets.len()
    );
    let flows = classify_flows(&packets);
    for (flow, class) in &flows {
        println!(
            "  flow {} {}: {} packets, max {} on one sensor, {:?}",
            flow.victim,
            flow.protocol,
            flow.total_packets,
            flow.max_sensor_packets(),
            class
        );
    }
    assert!(flows.iter().any(|(_, c)| *c == FlowClass::Attack));

    // Scan noise stays classified as scans.
    let noise = engine.scan_noise(10_000, 60_000, 40);
    let noise_flows = classify_flows(&noise);
    let scans = noise_flows.iter().filter(|(_, c)| *c == FlowClass::Scan).count();
    println!(
        "\nbackground scan noise: {} flows, {} classified as scans",
        noise_flows.len(),
        scans
    );

    // Footnote-1 coverage: honest vs honeypot-avoiding booters.
    let mut commands = Vec::new();
    for (i, &p) in UdpProtocol::ALL.iter().enumerate() {
        for k in 0..60u64 {
            commands.push(AttackCommand {
                time: 100_000 + k * 700_000,
                victim: VictimAddr::from_octets(25, 1, (k % 250) as u8, i as u8),
                protocol: p,
                duration_secs: 300,
                packets_per_second: 50_000,
                booter: 100 + i as u32,
                // One avoiding booter per protocol pair, like vDOS' 'SUDP'.
                avoids_honeypots: i % 5 == 4,
            });
        }
    }
    let report = CoverageReport::from_commands(&mut engine, &commands);
    println!("\nper-protocol dataset coverage (cf. paper footnote 1):");
    println!("{}", report.render());
    println!(
        "sensor fleet absorbed {:.0}% of attack packets (ethics appendix: the\n\
         sensors are net-protective because they absorb rather than amplify)",
        100.0 * engine.fleet().absorption_ratio()
    );
}
