//! The NCA search-advert natural experiment (Figure 5, §4.1 and §6.4).
//!
//! The UK National Crime Agency bought Google search adverts warning UK
//! users that DoS attacks are illegal, from late December 2017 to June
//! 2018. The paper shows the UK attack series flattening while the US kept
//! growing. This example reproduces the Figure 5 analysis: both series
//! indexed to 100 at June 2016, OLS slopes before and during the campaign,
//! and the seasonally robust UK/US ratio contrast.
//!
//! Run with `cargo run --release --example nca_adverts`.

use booting_the_booters::core::report::fig5_csv;
use booting_the_booters::core::scenario::{Fidelity, Scenario, ScenarioConfig};
use booting_the_booters::glm::ols::fit_simple;
use booting_the_booters::market::market::MarketConfig;
use booting_the_booters::netsim::Country;
use booting_the_booters::timeseries::index::rebase;
use booting_the_booters::timeseries::Date;

fn main() {
    let scenario = Scenario::run(ScenarioConfig {
        market: MarketConfig {
            scale: 0.3,
            seed: 9,
            ..MarketConfig::default()
        },
        fidelity: Fidelity::Aggregate,
        ..ScenarioConfig::default()
    });

    let (csv, slopes) = fig5_csv(&scenario.honeypot);
    println!("Figure 5 series: {} weeks (CSV head below)", csv.lines().count() - 1);
    for line in csv.lines().take(5) {
        println!("  {line}");
    }

    println!("\nOLS slopes (index units per week):");
    println!("  2017 (Jan-Dec):  US {:+.2} (paper 5.3)   UK {:+.2} (paper 3.2)", slopes.us_2017, slopes.uk_2017);
    println!("  NCA window:      US {:+.2} (paper 6.8)   UK {:+.2} (paper -0.1)", slopes.us_nca, slopes.uk_nca);
    println!(
        "  UK/US ratio: {:.2} -> {:.2} over the campaign ({:.0}% relative UK decline)",
        slopes.uk_us_ratio_start,
        slopes.uk_us_ratio_end,
        100.0 * slopes.uk_relative_decline()
    );

    // A formal slope test on the UK during the campaign window: regress
    // the UK index on the week number and test the slope against zero.
    let uk = rebase(
        scenario.honeypot.country(Country::Uk),
        Date::new(2016, 6, 6),
        100.0,
        4,
    )
    .expect("rebase");
    let from = uk.index_of(Date::new(2018, 1, 8)).expect("start");
    let to = uk.index_of(Date::new(2018, 6, 25)).expect("end");
    let xs: Vec<f64> = (from..to).map(|i| (i - from) as f64).collect();
    let ys: Vec<f64> = (from..to).map(|i| uk.get(i)).collect();
    let fit = fit_simple(&xs, &ys, 0.95).expect("ols");
    let slope = fit.coef("x").expect("slope");
    println!(
        "\nUK slope during campaign: {:+.2}/wk, 95% CI [{:+.2}, {:+.2}], p={:.3}",
        slope.coef, slope.ci_lower, slope.ci_upper, slope.p_value
    );
    if !slope.p_value.is_nan() && slope.p_value > 0.05 {
        println!("-> statistically flat: consistent with the paper's 'nearly-flat slope of -0.1'");
    }
}
