//! Booter market dynamics — the paper's §4.3 self-report analysis.
//!
//! Runs the agent-based market, prints the Figure 8 lifecycle series
//! around the two structural shocks (Webstresser, Xmas2018), shows the
//! market concentration change, and runs the §3 self-report validation
//! suite (White's test, normality, prime-multiplier check).
//!
//! Run with `cargo run --release --example market_simulation`.

use booting_the_booters::core::scenario::{Fidelity, Scenario, ScenarioConfig};
use booting_the_booters::core::verify::{
    cross_dataset_correlation, render_validation, validate_top_booters,
};
use booting_the_booters::market::market::MarketConfig;
use booting_the_booters::timeseries::Date;

fn main() {
    let scenario = Scenario::run(ScenarioConfig {
        market: MarketConfig {
            scale: 0.2,
            seed: 3,
            ..MarketConfig::default()
        },
        fidelity: Fidelity::Aggregate,
        ..ScenarioConfig::default()
    });
    let sr = &scenario.selfreport;

    println!(
        "self-report scrape: {} booters observed from {}",
        sr.counters.len(),
        sr.start
    );

    // Figure 8: deaths/resurrections around the shocks.
    println!("\nlifecycle (deaths / resurrections / births) around the shocks:");
    for (label, date) in [
        ("Webstresser takedown", Date::new(2018, 4, 23)),
        ("Xmas2018 action", Date::new(2018, 12, 17)),
        ("major returns (Mar 2019)", Date::new(2019, 3, 4)),
    ] {
        if let Some(i) = sr.deaths.index_of(date) {
            println!(
                "  {:<26} week of {}: -{} / +{} / +{}",
                label,
                date.week_start(),
                sr.deaths.get(i),
                sr.resurrections.get(i),
                sr.births.get(i)
            );
        }
    }

    // Market concentration: §4.3 — after Xmas2018 one booter holds ~60%.
    let week_of = |d: Date| (d.week_start().days_since(sr.start) / 7) as usize;
    let before = sr
        .top_share(week_of(Date::new(2018, 9, 3)), week_of(Date::new(2018, 12, 10)))
        .unwrap_or(f64::NAN);
    let after = sr
        .top_share(week_of(Date::new(2019, 1, 7)), week_of(Date::new(2019, 3, 25)))
        .unwrap_or(f64::NAN);
    println!(
        "\ntop-booter market share: {:.0}% before Xmas2018 -> {:.0}% after (paper: ~60% after)",
        100.0 * before,
        100.0 * after
    );

    // §3 validation of the counters.
    println!();
    let validations = validate_top_booters(sr, 10);
    let corr = cross_dataset_correlation(&scenario.honeypot, sr);
    println!("{}", render_validation(&validations, corr));
}
