//! Attack attribution à la Krupp et al. (RAID 2017, cited in the paper's
//! related work): buy a few attacks from each booter to learn its
//! transmission fingerprint (honeypot set, TTL, source-port entropy),
//! then attribute wild flows with a k-NN classifier.
//!
//! Run with `cargo run --release --example attack_attribution`.

use booting_the_booters::netsim::attribution::{
    BooterFingerprint, FlowFeatures, KnnAttributor,
};
use booting_the_booters::netsim::{
    AttackCommand, Engine, EngineConfig, UdpProtocol, VictimAddr,
};

fn command(booter: u32, i: u64, protocol: UdpProtocol) -> AttackCommand {
    AttackCommand {
        time: i * 4_000,
        victim: VictimAddr::from_octets(25, (i % 200) as u8 + 1, (i / 200) as u8, 9),
        protocol,
        duration_secs: 300,
        packets_per_second: 60_000,
        booter,
        avoids_honeypots: false,
    }
}

fn main() {
    let mut engine = Engine::new(EngineConfig::default());
    let booters: Vec<u32> = (0..10).collect();

    println!("booter fingerprints (stable per operator):");
    for &b in &booters {
        let fp = BooterFingerprint::for_booter(b);
        println!(
            "  booter {b}: initial TTL {}, {} hops, source ports {}",
            fp.initial_ttl,
            fp.hops,
            match fp.fixed_port {
                Some(p) => format!("fixed ({p})"),
                None => "randomised".to_string(),
            }
        );
    }

    // Training: three "purchased" attacks per booter (we ran them, so the
    // label is ground truth — Krupp et al.'s methodology).
    let mut attributor = KnnAttributor::new();
    let mut i = 0u64;
    for &b in &booters {
        for p in [UdpProtocol::Ldap, UdpProtocol::Ntp, UdpProtocol::Dns] {
            let packets = engine.simulate_attack_packets(&command(b, i, p));
            i += 1;
            if let Some(f) = FlowFeatures::from_packets(&packets) {
                attributor.train(f, b);
            }
        }
    }
    println!("\ntrained on {} purchased attacks", attributor.training_size());

    // Wild traffic: attribute 10 fresh attacks per booter.
    let mut correct = 0;
    let mut attributed = 0;
    let mut total = 0;
    for &b in &booters {
        for _ in 0..10 {
            let packets = engine.simulate_attack_packets(&command(b, i, UdpProtocol::Ldap));
            i += 1;
            total += 1;
            let Some(f) = FlowFeatures::from_packets(&packets) else {
                continue;
            };
            if let Some(a) = attributor.attribute(&f, 3, 0.67) {
                attributed += 1;
                if a.booter == b {
                    correct += 1;
                }
            }
        }
    }
    let precision = 100.0 * correct as f64 / attributed.max(1) as f64;
    let recall = 100.0 * attributed as f64 / total.max(1) as f64;
    println!("\nattributed {attributed}/{total} wild attacks");
    println!("precision {precision:.1}%   recall {recall:.1}%");
    println!("(Krupp et al. report 99% precision / 69% recall on real booters)");
}
