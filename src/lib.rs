#![warn(missing_docs)]
//! # booting-the-booters
//!
//! A from-scratch Rust reproduction of *Booting the Booters: Evaluating
//! the Effects of Police Interventions in the Market for Denial-of-Service
//! Attacks* (Collier, Thomas, Clayton & Hutchings, IMC 2019).
//!
//! The paper measured how takedowns, arrests, sentencing publicity and a
//! targeted advertising campaign affected the DDoS-for-hire ("booter")
//! market, using a proprietary five-year honeypot trace and weekly scrapes
//! of booter self-report counters. This workspace rebuilds the entire
//! measurement and analysis chain:
//!
//! | crate | what it provides |
//! |---|---|
//! | [`linalg`] | dense matrix kernel (Cholesky/LU/QR) |
//! | [`stats`] | special functions, distributions, hypothesis tests |
//! | [`timeseries`] | civil dates, Easter computus, weekly series, ITS designs |
//! | [`glm`] | OLS, Poisson and NB2 regression with full inference |
//! | [`netsim`] | packet-level UDP reflection + hopscotch honeypot simulator |
//! | [`market`] | agent-based booter market with the §2 intervention timeline |
//! | [`core`] | scenario runner, datasets, the §4 pipeline, table/figure renderers |
//! | [`par`] | deterministic scoped thread-pool driving the simulate→group→fit hot paths |
//! | [`store`] | chunked columnar on-disk packet store + out-of-core flow grouping |
//! | [`obs`] | zero-dependency span timers + metric counters, off by default (`BOOTERS_OBS=1`) |
//! | [`serve`] | streaming ingest: sharded intake, watermark-driven flow expiry, rolling warm-started refits |
//! | [`query`] | predicate-pushdown query engine over the store: zone-map pruning, late materialization, columnar aggregation, concurrent readers |
//!
//! Parallelism never changes results: every report is byte-identical at
//! any `BOOTERS_THREADS` setting (see DESIGN.md, "Determinism contract").
//! Observability never changes results either: with `BOOTERS_OBS=1` the
//! same bytes come out, plus per-stage timings and metric totals that the
//! `repro_report` binary renders into `out/report.html` / `out/report.md`
//! (see DESIGN.md §5e, "Observability contract").
//!
//! ## Quickstart
//!
//! ```no_run
//! use booting_the_booters::core::scenario::{Fidelity, Scenario, ScenarioConfig};
//! use booting_the_booters::core::pipeline::{fit_global, PipelineConfig};
//! use booting_the_booters::core::report::table1;
//! use booting_the_booters::market::calibration::Calibration;
//!
//! let scenario = Scenario::run(ScenarioConfig::default());
//! let fit = fit_global(
//!     &scenario.honeypot,
//!     &Calibration::default(),
//!     &PipelineConfig::default(),
//! )
//! .expect("model converges");
//! println!("{}", table1(&fit));
//! ```

pub use booters_core as core;
pub use booters_glm as glm;
pub use booters_linalg as linalg;
pub use booters_market as market;
pub use booters_netsim as netsim;
pub use booters_obs as obs;
pub use booters_par as par;
pub use booters_query as query;
pub use booters_serve as serve;
pub use booters_stats as stats;
pub use booters_store as store;
pub use booters_timeseries as timeseries;
