/root/repo/target/debug/examples/quickstart-d9e56cc18388c445.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d9e56cc18388c445: examples/quickstart.rs

examples/quickstart.rs:
