/root/repo/target/debug/examples/quickstart-4426446f6fc92303.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-4426446f6fc92303: examples/quickstart.rs

examples/quickstart.rs:
