/root/repo/target/debug/examples/market_simulation-875a17eb330890a0.d: examples/market_simulation.rs

/root/repo/target/debug/examples/market_simulation-875a17eb330890a0: examples/market_simulation.rs

examples/market_simulation.rs:
