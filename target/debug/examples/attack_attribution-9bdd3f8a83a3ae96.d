/root/repo/target/debug/examples/attack_attribution-9bdd3f8a83a3ae96.d: examples/attack_attribution.rs

/root/repo/target/debug/examples/attack_attribution-9bdd3f8a83a3ae96: examples/attack_attribution.rs

examples/attack_attribution.rs:
