/root/repo/target/debug/examples/honeypot_coverage-82f42a49f278c5ca.d: examples/honeypot_coverage.rs

/root/repo/target/debug/examples/honeypot_coverage-82f42a49f278c5ca: examples/honeypot_coverage.rs

examples/honeypot_coverage.rs:
