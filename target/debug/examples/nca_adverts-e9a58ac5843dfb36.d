/root/repo/target/debug/examples/nca_adverts-e9a58ac5843dfb36.d: examples/nca_adverts.rs

/root/repo/target/debug/examples/nca_adverts-e9a58ac5843dfb36: examples/nca_adverts.rs

examples/nca_adverts.rs:
