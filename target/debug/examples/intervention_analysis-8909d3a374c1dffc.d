/root/repo/target/debug/examples/intervention_analysis-8909d3a374c1dffc.d: examples/intervention_analysis.rs

/root/repo/target/debug/examples/intervention_analysis-8909d3a374c1dffc: examples/intervention_analysis.rs

examples/intervention_analysis.rs:
