/root/repo/target/debug/examples/attack_attribution-55739428fcd35b8e.d: examples/attack_attribution.rs

/root/repo/target/debug/examples/attack_attribution-55739428fcd35b8e: examples/attack_attribution.rs

examples/attack_attribution.rs:
