/root/repo/target/debug/examples/honeypot_coverage-f1dfa6050cb66ab5.d: examples/honeypot_coverage.rs

/root/repo/target/debug/examples/honeypot_coverage-f1dfa6050cb66ab5: examples/honeypot_coverage.rs

examples/honeypot_coverage.rs:
