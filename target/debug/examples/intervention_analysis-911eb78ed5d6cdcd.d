/root/repo/target/debug/examples/intervention_analysis-911eb78ed5d6cdcd.d: examples/intervention_analysis.rs

/root/repo/target/debug/examples/intervention_analysis-911eb78ed5d6cdcd: examples/intervention_analysis.rs

examples/intervention_analysis.rs:
