/root/repo/target/debug/examples/nca_adverts-667d778b9bc89e33.d: examples/nca_adverts.rs

/root/repo/target/debug/examples/nca_adverts-667d778b9bc89e33: examples/nca_adverts.rs

examples/nca_adverts.rs:
