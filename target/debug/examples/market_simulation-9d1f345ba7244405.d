/root/repo/target/debug/examples/market_simulation-9d1f345ba7244405.d: examples/market_simulation.rs

/root/repo/target/debug/examples/market_simulation-9d1f345ba7244405: examples/market_simulation.rs

examples/market_simulation.rs:
