/root/repo/target/debug/deps/repro_fig6-c5d787c185cce6fc.d: crates/bench/src/bin/repro_fig6.rs

/root/repo/target/debug/deps/repro_fig6-c5d787c185cce6fc: crates/bench/src/bin/repro_fig6.rs

crates/bench/src/bin/repro_fig6.rs:
