/root/repo/target/debug/deps/smoke_seeded-6749aa894ae0c1e1.d: tests/smoke_seeded.rs

/root/repo/target/debug/deps/smoke_seeded-6749aa894ae0c1e1: tests/smoke_seeded.rs

tests/smoke_seeded.rs:
