/root/repo/target/debug/deps/repro_fig5-6a049d86c44caca7.d: crates/bench/src/bin/repro_fig5.rs

/root/repo/target/debug/deps/repro_fig5-6a049d86c44caca7: crates/bench/src/bin/repro_fig5.rs

crates/bench/src/bin/repro_fig5.rs:
