/root/repo/target/debug/deps/repro_table3-f9e0351a68cbaaa4.d: crates/bench/src/bin/repro_table3.rs

/root/repo/target/debug/deps/repro_table3-f9e0351a68cbaaa4: crates/bench/src/bin/repro_table3.rs

crates/bench/src/bin/repro_table3.rs:
