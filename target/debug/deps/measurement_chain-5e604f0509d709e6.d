/root/repo/target/debug/deps/measurement_chain-5e604f0509d709e6.d: tests/measurement_chain.rs

/root/repo/target/debug/deps/measurement_chain-5e604f0509d709e6: tests/measurement_chain.rs

tests/measurement_chain.rs:
