/root/repo/target/debug/deps/repro_fig3-ff7578ac759f1a1b.d: crates/bench/src/bin/repro_fig3.rs

/root/repo/target/debug/deps/repro_fig3-ff7578ac759f1a1b: crates/bench/src/bin/repro_fig3.rs

crates/bench/src/bin/repro_fig3.rs:
