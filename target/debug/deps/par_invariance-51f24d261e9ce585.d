/root/repo/target/debug/deps/par_invariance-51f24d261e9ce585.d: tests/par_invariance.rs

/root/repo/target/debug/deps/par_invariance-51f24d261e9ce585: tests/par_invariance.rs

tests/par_invariance.rs:
