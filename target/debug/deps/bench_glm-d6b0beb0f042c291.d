/root/repo/target/debug/deps/bench_glm-d6b0beb0f042c291.d: crates/bench/benches/bench_glm.rs

/root/repo/target/debug/deps/bench_glm-d6b0beb0f042c291: crates/bench/benches/bench_glm.rs

crates/bench/benches/bench_glm.rs:
