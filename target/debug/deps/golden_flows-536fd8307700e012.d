/root/repo/target/debug/deps/golden_flows-536fd8307700e012.d: crates/netsim/tests/golden_flows.rs

/root/repo/target/debug/deps/golden_flows-536fd8307700e012: crates/netsim/tests/golden_flows.rs

crates/netsim/tests/golden_flows.rs:
