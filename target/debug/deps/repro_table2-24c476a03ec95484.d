/root/repo/target/debug/deps/repro_table2-24c476a03ec95484.d: crates/bench/src/bin/repro_table2.rs

/root/repo/target/debug/deps/repro_table2-24c476a03ec95484: crates/bench/src/bin/repro_table2.rs

crates/bench/src/bin/repro_table2.rs:
