/root/repo/target/debug/deps/repro_table3-b17bc091d2d3f06d.d: crates/bench/src/bin/repro_table3.rs

/root/repo/target/debug/deps/repro_table3-b17bc091d2d3f06d: crates/bench/src/bin/repro_table3.rs

crates/bench/src/bin/repro_table3.rs:
