/root/repo/target/debug/deps/repro_country_models-ec836db2ca5f3b0b.d: crates/bench/src/bin/repro_country_models.rs

/root/repo/target/debug/deps/repro_country_models-ec836db2ca5f3b0b: crates/bench/src/bin/repro_country_models.rs

crates/bench/src/bin/repro_country_models.rs:
