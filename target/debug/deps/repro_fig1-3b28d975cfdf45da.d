/root/repo/target/debug/deps/repro_fig1-3b28d975cfdf45da.d: crates/bench/src/bin/repro_fig1.rs

/root/repo/target/debug/deps/repro_fig1-3b28d975cfdf45da: crates/bench/src/bin/repro_fig1.rs

crates/bench/src/bin/repro_fig1.rs:
