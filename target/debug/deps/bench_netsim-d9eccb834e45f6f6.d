/root/repo/target/debug/deps/bench_netsim-d9eccb834e45f6f6.d: crates/bench/benches/bench_netsim.rs

/root/repo/target/debug/deps/bench_netsim-d9eccb834e45f6f6: crates/bench/benches/bench_netsim.rs

crates/bench/benches/bench_netsim.rs:
