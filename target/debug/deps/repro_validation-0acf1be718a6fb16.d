/root/repo/target/debug/deps/repro_validation-0acf1be718a6fb16.d: crates/bench/src/bin/repro_validation.rs

/root/repo/target/debug/deps/repro_validation-0acf1be718a6fb16: crates/bench/src/bin/repro_validation.rs

crates/bench/src/bin/repro_validation.rs:
