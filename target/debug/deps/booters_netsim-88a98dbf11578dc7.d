/root/repo/target/debug/deps/booters_netsim-88a98dbf11578dc7.d: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/attribution.rs crates/netsim/src/coverage.rs crates/netsim/src/engine.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/protocol.rs crates/netsim/src/reflector.rs crates/netsim/src/scanner.rs crates/netsim/src/volume.rs

/root/repo/target/debug/deps/libbooters_netsim-88a98dbf11578dc7.rlib: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/attribution.rs crates/netsim/src/coverage.rs crates/netsim/src/engine.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/protocol.rs crates/netsim/src/reflector.rs crates/netsim/src/scanner.rs crates/netsim/src/volume.rs

/root/repo/target/debug/deps/libbooters_netsim-88a98dbf11578dc7.rmeta: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/attribution.rs crates/netsim/src/coverage.rs crates/netsim/src/engine.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/protocol.rs crates/netsim/src/reflector.rs crates/netsim/src/scanner.rs crates/netsim/src/volume.rs

crates/netsim/src/lib.rs:
crates/netsim/src/addr.rs:
crates/netsim/src/attribution.rs:
crates/netsim/src/coverage.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/protocol.rs:
crates/netsim/src/reflector.rs:
crates/netsim/src/scanner.rs:
crates/netsim/src/volume.rs:
