/root/repo/target/debug/deps/props-51e224274e0b2faa.d: crates/netsim/tests/props.rs

/root/repo/target/debug/deps/props-51e224274e0b2faa: crates/netsim/tests/props.rs

crates/netsim/tests/props.rs:
