/root/repo/target/debug/deps/bench_tables-8d95c3e17abf6a95.d: crates/bench/benches/bench_tables.rs

/root/repo/target/debug/deps/bench_tables-8d95c3e17abf6a95: crates/bench/benches/bench_tables.rs

crates/bench/benches/bench_tables.rs:
