/root/repo/target/debug/deps/repro_table1-b0a7f44f8d266d42.d: crates/bench/src/bin/repro_table1.rs

/root/repo/target/debug/deps/repro_table1-b0a7f44f8d266d42: crates/bench/src/bin/repro_table1.rs

crates/bench/src/bin/repro_table1.rs:
