/root/repo/target/debug/deps/bench_market-199352c0fe4ab42a.d: crates/bench/benches/bench_market.rs

/root/repo/target/debug/deps/bench_market-199352c0fe4ab42a: crates/bench/benches/bench_market.rs

crates/bench/benches/bench_market.rs:
