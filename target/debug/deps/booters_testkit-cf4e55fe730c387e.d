/root/repo/target/debug/deps/booters_testkit-cf4e55fe730c387e.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/harness.rs crates/testkit/src/macros.rs crates/testkit/src/rng.rs crates/testkit/src/strategy.rs

/root/repo/target/debug/deps/libbooters_testkit-cf4e55fe730c387e.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/harness.rs crates/testkit/src/macros.rs crates/testkit/src/rng.rs crates/testkit/src/strategy.rs

/root/repo/target/debug/deps/libbooters_testkit-cf4e55fe730c387e.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/harness.rs crates/testkit/src/macros.rs crates/testkit/src/rng.rs crates/testkit/src/strategy.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/harness.rs:
crates/testkit/src/macros.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/strategy.rs:
