/root/repo/target/debug/deps/booters_testkit-bda898411163c166.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/harness.rs crates/testkit/src/macros.rs crates/testkit/src/rng.rs crates/testkit/src/strategy.rs

/root/repo/target/debug/deps/booters_testkit-bda898411163c166: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/harness.rs crates/testkit/src/macros.rs crates/testkit/src/rng.rs crates/testkit/src/strategy.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/harness.rs:
crates/testkit/src/macros.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/strategy.rs:
