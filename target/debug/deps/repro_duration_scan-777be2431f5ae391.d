/root/repo/target/debug/deps/repro_duration_scan-777be2431f5ae391.d: crates/bench/src/bin/repro_duration_scan.rs

/root/repo/target/debug/deps/repro_duration_scan-777be2431f5ae391: crates/bench/src/bin/repro_duration_scan.rs

crates/bench/src/bin/repro_duration_scan.rs:
