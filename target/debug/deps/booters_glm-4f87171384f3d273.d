/root/repo/target/debug/deps/booters_glm-4f87171384f3d273.d: crates/glm/src/lib.rs crates/glm/src/family.rs crates/glm/src/inference.rs crates/glm/src/irls.rs crates/glm/src/link.rs crates/glm/src/negbin.rs crates/glm/src/ols.rs crates/glm/src/poisson.rs crates/glm/src/summary.rs

/root/repo/target/debug/deps/libbooters_glm-4f87171384f3d273.rlib: crates/glm/src/lib.rs crates/glm/src/family.rs crates/glm/src/inference.rs crates/glm/src/irls.rs crates/glm/src/link.rs crates/glm/src/negbin.rs crates/glm/src/ols.rs crates/glm/src/poisson.rs crates/glm/src/summary.rs

/root/repo/target/debug/deps/libbooters_glm-4f87171384f3d273.rmeta: crates/glm/src/lib.rs crates/glm/src/family.rs crates/glm/src/inference.rs crates/glm/src/irls.rs crates/glm/src/link.rs crates/glm/src/negbin.rs crates/glm/src/ols.rs crates/glm/src/poisson.rs crates/glm/src/summary.rs

crates/glm/src/lib.rs:
crates/glm/src/family.rs:
crates/glm/src/inference.rs:
crates/glm/src/irls.rs:
crates/glm/src/link.rs:
crates/glm/src/negbin.rs:
crates/glm/src/ols.rs:
crates/glm/src/poisson.rs:
crates/glm/src/summary.rs:
