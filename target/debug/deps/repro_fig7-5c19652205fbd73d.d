/root/repo/target/debug/deps/repro_fig7-5c19652205fbd73d.d: crates/bench/src/bin/repro_fig7.rs

/root/repo/target/debug/deps/repro_fig7-5c19652205fbd73d: crates/bench/src/bin/repro_fig7.rs

crates/bench/src/bin/repro_fig7.rs:
