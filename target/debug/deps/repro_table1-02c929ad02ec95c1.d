/root/repo/target/debug/deps/repro_table1-02c929ad02ec95c1.d: crates/bench/src/bin/repro_table1.rs

/root/repo/target/debug/deps/repro_table1-02c929ad02ec95c1: crates/bench/src/bin/repro_table1.rs

crates/bench/src/bin/repro_table1.rs:
