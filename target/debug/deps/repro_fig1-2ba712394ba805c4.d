/root/repo/target/debug/deps/repro_fig1-2ba712394ba805c4.d: crates/bench/src/bin/repro_fig1.rs

/root/repo/target/debug/deps/repro_fig1-2ba712394ba805c4: crates/bench/src/bin/repro_fig1.rs

crates/bench/src/bin/repro_fig1.rs:
