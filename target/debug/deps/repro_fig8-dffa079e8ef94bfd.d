/root/repo/target/debug/deps/repro_fig8-dffa079e8ef94bfd.d: crates/bench/src/bin/repro_fig8.rs

/root/repo/target/debug/deps/repro_fig8-dffa079e8ef94bfd: crates/bench/src/bin/repro_fig8.rs

crates/bench/src/bin/repro_fig8.rs:
