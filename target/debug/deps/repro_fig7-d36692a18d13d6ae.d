/root/repo/target/debug/deps/repro_fig7-d36692a18d13d6ae.d: crates/bench/src/bin/repro_fig7.rs

/root/repo/target/debug/deps/repro_fig7-d36692a18d13d6ae: crates/bench/src/bin/repro_fig7.rs

crates/bench/src/bin/repro_fig7.rs:
