/root/repo/target/debug/deps/props-0952a12781f32fd5.d: crates/market/tests/props.rs

/root/repo/target/debug/deps/props-0952a12781f32fd5: crates/market/tests/props.rs

crates/market/tests/props.rs:
