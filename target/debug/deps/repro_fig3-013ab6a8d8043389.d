/root/repo/target/debug/deps/repro_fig3-013ab6a8d8043389.d: crates/bench/src/bin/repro_fig3.rs

/root/repo/target/debug/deps/repro_fig3-013ab6a8d8043389: crates/bench/src/bin/repro_fig3.rs

crates/bench/src/bin/repro_fig3.rs:
