/root/repo/target/debug/deps/repro_table3-b500e02a67730a6c.d: crates/bench/src/bin/repro_table3.rs

/root/repo/target/debug/deps/repro_table3-b500e02a67730a6c: crates/bench/src/bin/repro_table3.rs

crates/bench/src/bin/repro_table3.rs:
