/root/repo/target/debug/deps/repro_fig5-5afa948ecb72fa83.d: crates/bench/src/bin/repro_fig5.rs

/root/repo/target/debug/deps/repro_fig5-5afa948ecb72fa83: crates/bench/src/bin/repro_fig5.rs

crates/bench/src/bin/repro_fig5.rs:
