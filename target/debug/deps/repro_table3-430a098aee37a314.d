/root/repo/target/debug/deps/repro_table3-430a098aee37a314.d: crates/bench/src/bin/repro_table3.rs

/root/repo/target/debug/deps/repro_table3-430a098aee37a314: crates/bench/src/bin/repro_table3.rs

crates/bench/src/bin/repro_table3.rs:
