/root/repo/target/debug/deps/repro_country_models-d4fea041487cf9b1.d: crates/bench/src/bin/repro_country_models.rs

/root/repo/target/debug/deps/repro_country_models-d4fea041487cf9b1: crates/bench/src/bin/repro_country_models.rs

crates/bench/src/bin/repro_country_models.rs:
