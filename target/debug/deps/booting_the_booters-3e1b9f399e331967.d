/root/repo/target/debug/deps/booting_the_booters-3e1b9f399e331967.d: src/lib.rs

/root/repo/target/debug/deps/booting_the_booters-3e1b9f399e331967: src/lib.rs

src/lib.rs:
