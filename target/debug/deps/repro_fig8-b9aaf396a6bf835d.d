/root/repo/target/debug/deps/repro_fig8-b9aaf396a6bf835d.d: crates/bench/src/bin/repro_fig8.rs

/root/repo/target/debug/deps/repro_fig8-b9aaf396a6bf835d: crates/bench/src/bin/repro_fig8.rs

crates/bench/src/bin/repro_fig8.rs:
