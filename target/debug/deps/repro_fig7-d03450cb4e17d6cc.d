/root/repo/target/debug/deps/repro_fig7-d03450cb4e17d6cc.d: crates/bench/src/bin/repro_fig7.rs

/root/repo/target/debug/deps/repro_fig7-d03450cb4e17d6cc: crates/bench/src/bin/repro_fig7.rs

crates/bench/src/bin/repro_fig7.rs:
