/root/repo/target/debug/deps/repro_fig8-04684378e972156e.d: crates/bench/src/bin/repro_fig8.rs

/root/repo/target/debug/deps/repro_fig8-04684378e972156e: crates/bench/src/bin/repro_fig8.rs

crates/bench/src/bin/repro_fig8.rs:
