/root/repo/target/debug/deps/repro_fig8-53732b20a237a094.d: crates/bench/src/bin/repro_fig8.rs

/root/repo/target/debug/deps/repro_fig8-53732b20a237a094: crates/bench/src/bin/repro_fig8.rs

crates/bench/src/bin/repro_fig8.rs:
