/root/repo/target/debug/deps/end_to_end-ffeeecdad55ed0a2.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-ffeeecdad55ed0a2: tests/end_to_end.rs

tests/end_to_end.rs:
