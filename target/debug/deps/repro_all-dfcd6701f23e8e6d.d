/root/repo/target/debug/deps/repro_all-dfcd6701f23e8e6d.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-dfcd6701f23e8e6d: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
