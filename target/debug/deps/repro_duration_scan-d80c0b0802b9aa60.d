/root/repo/target/debug/deps/repro_duration_scan-d80c0b0802b9aa60.d: crates/bench/src/bin/repro_duration_scan.rs

/root/repo/target/debug/deps/repro_duration_scan-d80c0b0802b9aa60: crates/bench/src/bin/repro_duration_scan.rs

crates/bench/src/bin/repro_duration_scan.rs:
