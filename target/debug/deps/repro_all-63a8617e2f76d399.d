/root/repo/target/debug/deps/repro_all-63a8617e2f76d399.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-63a8617e2f76d399: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
