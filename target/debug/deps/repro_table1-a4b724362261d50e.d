/root/repo/target/debug/deps/repro_table1-a4b724362261d50e.d: crates/bench/src/bin/repro_table1.rs

/root/repo/target/debug/deps/repro_table1-a4b724362261d50e: crates/bench/src/bin/repro_table1.rs

crates/bench/src/bin/repro_table1.rs:
