/root/repo/target/debug/deps/repro_all-17db845f10bdf52a.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-17db845f10bdf52a: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
