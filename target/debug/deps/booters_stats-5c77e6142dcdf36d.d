/root/repo/target/debug/deps/booters_stats-5c77e6142dcdf36d.d: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/dist.rs crates/stats/src/special.rs crates/stats/src/tests.rs

/root/repo/target/debug/deps/libbooters_stats-5c77e6142dcdf36d.rlib: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/dist.rs crates/stats/src/special.rs crates/stats/src/tests.rs

/root/repo/target/debug/deps/libbooters_stats-5c77e6142dcdf36d.rmeta: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/dist.rs crates/stats/src/special.rs crates/stats/src/tests.rs

crates/stats/src/lib.rs:
crates/stats/src/describe.rs:
crates/stats/src/dist.rs:
crates/stats/src/special.rs:
crates/stats/src/tests.rs:
