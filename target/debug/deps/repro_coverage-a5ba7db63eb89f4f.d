/root/repo/target/debug/deps/repro_coverage-a5ba7db63eb89f4f.d: crates/bench/src/bin/repro_coverage.rs

/root/repo/target/debug/deps/repro_coverage-a5ba7db63eb89f4f: crates/bench/src/bin/repro_coverage.rs

crates/bench/src/bin/repro_coverage.rs:
