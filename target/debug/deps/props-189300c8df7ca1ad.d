/root/repo/target/debug/deps/props-189300c8df7ca1ad.d: crates/linalg/tests/props.rs

/root/repo/target/debug/deps/props-189300c8df7ca1ad: crates/linalg/tests/props.rs

crates/linalg/tests/props.rs:
