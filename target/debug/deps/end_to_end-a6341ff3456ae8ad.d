/root/repo/target/debug/deps/end_to_end-a6341ff3456ae8ad.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-a6341ff3456ae8ad: tests/end_to_end.rs

tests/end_to_end.rs:
