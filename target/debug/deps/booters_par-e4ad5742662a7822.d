/root/repo/target/debug/deps/booters_par-e4ad5742662a7822.d: crates/par/src/lib.rs crates/par/src/pool.rs crates/par/src/seed.rs

/root/repo/target/debug/deps/booters_par-e4ad5742662a7822: crates/par/src/lib.rs crates/par/src/pool.rs crates/par/src/seed.rs

crates/par/src/lib.rs:
crates/par/src/pool.rs:
crates/par/src/seed.rs:
