/root/repo/target/debug/deps/repro_fig4-d9f462cc9d3c83b4.d: crates/bench/src/bin/repro_fig4.rs

/root/repo/target/debug/deps/repro_fig4-d9f462cc9d3c83b4: crates/bench/src/bin/repro_fig4.rs

crates/bench/src/bin/repro_fig4.rs:
