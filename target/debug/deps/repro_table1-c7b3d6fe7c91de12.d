/root/repo/target/debug/deps/repro_table1-c7b3d6fe7c91de12.d: crates/bench/src/bin/repro_table1.rs

/root/repo/target/debug/deps/repro_table1-c7b3d6fe7c91de12: crates/bench/src/bin/repro_table1.rs

crates/bench/src/bin/repro_table1.rs:
