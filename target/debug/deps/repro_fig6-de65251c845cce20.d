/root/repo/target/debug/deps/repro_fig6-de65251c845cce20.d: crates/bench/src/bin/repro_fig6.rs

/root/repo/target/debug/deps/repro_fig6-de65251c845cce20: crates/bench/src/bin/repro_fig6.rs

crates/bench/src/bin/repro_fig6.rs:
