/root/repo/target/debug/deps/booters_par-85dd39d815018061.d: crates/par/src/lib.rs crates/par/src/pool.rs crates/par/src/seed.rs

/root/repo/target/debug/deps/libbooters_par-85dd39d815018061.rlib: crates/par/src/lib.rs crates/par/src/pool.rs crates/par/src/seed.rs

/root/repo/target/debug/deps/libbooters_par-85dd39d815018061.rmeta: crates/par/src/lib.rs crates/par/src/pool.rs crates/par/src/seed.rs

crates/par/src/lib.rs:
crates/par/src/pool.rs:
crates/par/src/seed.rs:
