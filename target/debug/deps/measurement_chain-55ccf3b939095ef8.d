/root/repo/target/debug/deps/measurement_chain-55ccf3b939095ef8.d: tests/measurement_chain.rs

/root/repo/target/debug/deps/measurement_chain-55ccf3b939095ef8: tests/measurement_chain.rs

tests/measurement_chain.rs:
