/root/repo/target/debug/deps/smoke_seeded-e45a3d210ffcd89b.d: tests/smoke_seeded.rs

/root/repo/target/debug/deps/smoke_seeded-e45a3d210ffcd89b: tests/smoke_seeded.rs

tests/smoke_seeded.rs:
