/root/repo/target/debug/deps/repro_fig2-161969f254949a2d.d: crates/bench/src/bin/repro_fig2.rs

/root/repo/target/debug/deps/repro_fig2-161969f254949a2d: crates/bench/src/bin/repro_fig2.rs

crates/bench/src/bin/repro_fig2.rs:
