/root/repo/target/debug/deps/props-6dd0ee9b4f4b8139.d: crates/netsim/tests/props.rs

/root/repo/target/debug/deps/props-6dd0ee9b4f4b8139: crates/netsim/tests/props.rs

crates/netsim/tests/props.rs:
