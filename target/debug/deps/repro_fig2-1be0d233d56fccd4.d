/root/repo/target/debug/deps/repro_fig2-1be0d233d56fccd4.d: crates/bench/src/bin/repro_fig2.rs

/root/repo/target/debug/deps/repro_fig2-1be0d233d56fccd4: crates/bench/src/bin/repro_fig2.rs

crates/bench/src/bin/repro_fig2.rs:
