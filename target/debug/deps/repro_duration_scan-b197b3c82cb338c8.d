/root/repo/target/debug/deps/repro_duration_scan-b197b3c82cb338c8.d: crates/bench/src/bin/repro_duration_scan.rs

/root/repo/target/debug/deps/repro_duration_scan-b197b3c82cb338c8: crates/bench/src/bin/repro_duration_scan.rs

crates/bench/src/bin/repro_duration_scan.rs:
