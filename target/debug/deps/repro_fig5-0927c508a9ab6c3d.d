/root/repo/target/debug/deps/repro_fig5-0927c508a9ab6c3d.d: crates/bench/src/bin/repro_fig5.rs

/root/repo/target/debug/deps/repro_fig5-0927c508a9ab6c3d: crates/bench/src/bin/repro_fig5.rs

crates/bench/src/bin/repro_fig5.rs:
