/root/repo/target/debug/deps/repro_table2-d035c9544eb6e567.d: crates/bench/src/bin/repro_table2.rs

/root/repo/target/debug/deps/repro_table2-d035c9544eb6e567: crates/bench/src/bin/repro_table2.rs

crates/bench/src/bin/repro_table2.rs:
