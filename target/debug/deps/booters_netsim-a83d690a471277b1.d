/root/repo/target/debug/deps/booters_netsim-a83d690a471277b1.d: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/attribution.rs crates/netsim/src/coverage.rs crates/netsim/src/engine.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/protocol.rs crates/netsim/src/reflector.rs crates/netsim/src/scanner.rs crates/netsim/src/volume.rs

/root/repo/target/debug/deps/booters_netsim-a83d690a471277b1: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/attribution.rs crates/netsim/src/coverage.rs crates/netsim/src/engine.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/protocol.rs crates/netsim/src/reflector.rs crates/netsim/src/scanner.rs crates/netsim/src/volume.rs

crates/netsim/src/lib.rs:
crates/netsim/src/addr.rs:
crates/netsim/src/attribution.rs:
crates/netsim/src/coverage.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/protocol.rs:
crates/netsim/src/reflector.rs:
crates/netsim/src/scanner.rs:
crates/netsim/src/volume.rs:
