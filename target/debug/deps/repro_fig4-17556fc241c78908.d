/root/repo/target/debug/deps/repro_fig4-17556fc241c78908.d: crates/bench/src/bin/repro_fig4.rs

/root/repo/target/debug/deps/repro_fig4-17556fc241c78908: crates/bench/src/bin/repro_fig4.rs

crates/bench/src/bin/repro_fig4.rs:
