/root/repo/target/debug/deps/props-834465a004742e84.d: tests/props.rs

/root/repo/target/debug/deps/props-834465a004742e84: tests/props.rs

tests/props.rs:
