/root/repo/target/debug/deps/booters_glm-34800a56f177abb1.d: crates/glm/src/lib.rs crates/glm/src/family.rs crates/glm/src/inference.rs crates/glm/src/irls.rs crates/glm/src/link.rs crates/glm/src/negbin.rs crates/glm/src/ols.rs crates/glm/src/poisson.rs crates/glm/src/summary.rs

/root/repo/target/debug/deps/booters_glm-34800a56f177abb1: crates/glm/src/lib.rs crates/glm/src/family.rs crates/glm/src/inference.rs crates/glm/src/irls.rs crates/glm/src/link.rs crates/glm/src/negbin.rs crates/glm/src/ols.rs crates/glm/src/poisson.rs crates/glm/src/summary.rs

crates/glm/src/lib.rs:
crates/glm/src/family.rs:
crates/glm/src/inference.rs:
crates/glm/src/irls.rs:
crates/glm/src/link.rs:
crates/glm/src/negbin.rs:
crates/glm/src/ols.rs:
crates/glm/src/poisson.rs:
crates/glm/src/summary.rs:
