/root/repo/target/debug/deps/repro_country_models-b97c656277d350f5.d: crates/bench/src/bin/repro_country_models.rs

/root/repo/target/debug/deps/repro_country_models-b97c656277d350f5: crates/bench/src/bin/repro_country_models.rs

crates/bench/src/bin/repro_country_models.rs:
