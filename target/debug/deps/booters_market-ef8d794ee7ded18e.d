/root/repo/target/debug/deps/booters_market-ef8d794ee7ded18e.d: crates/market/src/lib.rs crates/market/src/booter.rs crates/market/src/calibration.rs crates/market/src/commands.rs crates/market/src/concentration.rs crates/market/src/demand.rs crates/market/src/displacement.rs crates/market/src/events.rs crates/market/src/lifecycle.rs crates/market/src/market.rs crates/market/src/protocol_mix.rs

/root/repo/target/debug/deps/libbooters_market-ef8d794ee7ded18e.rlib: crates/market/src/lib.rs crates/market/src/booter.rs crates/market/src/calibration.rs crates/market/src/commands.rs crates/market/src/concentration.rs crates/market/src/demand.rs crates/market/src/displacement.rs crates/market/src/events.rs crates/market/src/lifecycle.rs crates/market/src/market.rs crates/market/src/protocol_mix.rs

/root/repo/target/debug/deps/libbooters_market-ef8d794ee7ded18e.rmeta: crates/market/src/lib.rs crates/market/src/booter.rs crates/market/src/calibration.rs crates/market/src/commands.rs crates/market/src/concentration.rs crates/market/src/demand.rs crates/market/src/displacement.rs crates/market/src/events.rs crates/market/src/lifecycle.rs crates/market/src/market.rs crates/market/src/protocol_mix.rs

crates/market/src/lib.rs:
crates/market/src/booter.rs:
crates/market/src/calibration.rs:
crates/market/src/commands.rs:
crates/market/src/concentration.rs:
crates/market/src/demand.rs:
crates/market/src/displacement.rs:
crates/market/src/events.rs:
crates/market/src/lifecycle.rs:
crates/market/src/market.rs:
crates/market/src/protocol_mix.rs:
