/root/repo/target/debug/deps/repro_fig3-c908f02bff3a3791.d: crates/bench/src/bin/repro_fig3.rs

/root/repo/target/debug/deps/repro_fig3-c908f02bff3a3791: crates/bench/src/bin/repro_fig3.rs

crates/bench/src/bin/repro_fig3.rs:
