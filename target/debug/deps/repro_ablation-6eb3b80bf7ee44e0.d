/root/repo/target/debug/deps/repro_ablation-6eb3b80bf7ee44e0.d: crates/bench/src/bin/repro_ablation.rs

/root/repo/target/debug/deps/repro_ablation-6eb3b80bf7ee44e0: crates/bench/src/bin/repro_ablation.rs

crates/bench/src/bin/repro_ablation.rs:
