/root/repo/target/debug/deps/repro_country_models-19658197f90aa6fa.d: crates/bench/src/bin/repro_country_models.rs

/root/repo/target/debug/deps/repro_country_models-19658197f90aa6fa: crates/bench/src/bin/repro_country_models.rs

crates/bench/src/bin/repro_country_models.rs:
