/root/repo/target/debug/deps/repro_ablation-7e71244503850caa.d: crates/bench/src/bin/repro_ablation.rs

/root/repo/target/debug/deps/repro_ablation-7e71244503850caa: crates/bench/src/bin/repro_ablation.rs

crates/bench/src/bin/repro_ablation.rs:
