/root/repo/target/debug/deps/repro_fig1-21d9f3a7a9722aa5.d: crates/bench/src/bin/repro_fig1.rs

/root/repo/target/debug/deps/repro_fig1-21d9f3a7a9722aa5: crates/bench/src/bin/repro_fig1.rs

crates/bench/src/bin/repro_fig1.rs:
