/root/repo/target/debug/deps/booters_bench-4e25bbc1593f36ad.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/booters_bench-4e25bbc1593f36ad: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
