/root/repo/target/debug/deps/repro_coverage-86a1ea273d8952fe.d: crates/bench/src/bin/repro_coverage.rs

/root/repo/target/debug/deps/repro_coverage-86a1ea273d8952fe: crates/bench/src/bin/repro_coverage.rs

crates/bench/src/bin/repro_coverage.rs:
