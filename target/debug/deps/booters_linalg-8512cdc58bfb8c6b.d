/root/repo/target/debug/deps/booters_linalg-8512cdc58bfb8c6b.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs

/root/repo/target/debug/deps/booters_linalg-8512cdc58bfb8c6b: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
