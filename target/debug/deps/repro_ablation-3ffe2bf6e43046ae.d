/root/repo/target/debug/deps/repro_ablation-3ffe2bf6e43046ae.d: crates/bench/src/bin/repro_ablation.rs

/root/repo/target/debug/deps/repro_ablation-3ffe2bf6e43046ae: crates/bench/src/bin/repro_ablation.rs

crates/bench/src/bin/repro_ablation.rs:
