/root/repo/target/debug/deps/model_recovery-6145edf62c459a57.d: tests/model_recovery.rs

/root/repo/target/debug/deps/model_recovery-6145edf62c459a57: tests/model_recovery.rs

tests/model_recovery.rs:
