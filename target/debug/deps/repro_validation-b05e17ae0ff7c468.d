/root/repo/target/debug/deps/repro_validation-b05e17ae0ff7c468.d: crates/bench/src/bin/repro_validation.rs

/root/repo/target/debug/deps/repro_validation-b05e17ae0ff7c468: crates/bench/src/bin/repro_validation.rs

crates/bench/src/bin/repro_validation.rs:
