/root/repo/target/debug/deps/repro_fig4-435e496c51998f04.d: crates/bench/src/bin/repro_fig4.rs

/root/repo/target/debug/deps/repro_fig4-435e496c51998f04: crates/bench/src/bin/repro_fig4.rs

crates/bench/src/bin/repro_fig4.rs:
