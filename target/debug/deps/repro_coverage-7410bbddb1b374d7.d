/root/repo/target/debug/deps/repro_coverage-7410bbddb1b374d7.d: crates/bench/src/bin/repro_coverage.rs

/root/repo/target/debug/deps/repro_coverage-7410bbddb1b374d7: crates/bench/src/bin/repro_coverage.rs

crates/bench/src/bin/repro_coverage.rs:
