/root/repo/target/debug/deps/booting_the_booters-30ebcea7832235f4.d: src/lib.rs

/root/repo/target/debug/deps/booting_the_booters-30ebcea7832235f4: src/lib.rs

src/lib.rs:
