/root/repo/target/debug/deps/repro_fig2-623d863bd3a114df.d: crates/bench/src/bin/repro_fig2.rs

/root/repo/target/debug/deps/repro_fig2-623d863bd3a114df: crates/bench/src/bin/repro_fig2.rs

crates/bench/src/bin/repro_fig2.rs:
