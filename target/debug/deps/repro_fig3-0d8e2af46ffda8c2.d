/root/repo/target/debug/deps/repro_fig3-0d8e2af46ffda8c2.d: crates/bench/src/bin/repro_fig3.rs

/root/repo/target/debug/deps/repro_fig3-0d8e2af46ffda8c2: crates/bench/src/bin/repro_fig3.rs

crates/bench/src/bin/repro_fig3.rs:
