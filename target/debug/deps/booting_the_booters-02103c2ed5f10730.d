/root/repo/target/debug/deps/booting_the_booters-02103c2ed5f10730.d: src/lib.rs

/root/repo/target/debug/deps/libbooting_the_booters-02103c2ed5f10730.rlib: src/lib.rs

/root/repo/target/debug/deps/libbooting_the_booters-02103c2ed5f10730.rmeta: src/lib.rs

src/lib.rs:
