/root/repo/target/debug/deps/repro_fig5-330e9f3edc0ddbe1.d: crates/bench/src/bin/repro_fig5.rs

/root/repo/target/debug/deps/repro_fig5-330e9f3edc0ddbe1: crates/bench/src/bin/repro_fig5.rs

crates/bench/src/bin/repro_fig5.rs:
