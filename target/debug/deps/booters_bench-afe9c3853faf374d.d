/root/repo/target/debug/deps/booters_bench-afe9c3853faf374d.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/booters_bench-afe9c3853faf374d: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
