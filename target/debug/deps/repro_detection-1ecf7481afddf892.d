/root/repo/target/debug/deps/repro_detection-1ecf7481afddf892.d: crates/bench/src/bin/repro_detection.rs

/root/repo/target/debug/deps/repro_detection-1ecf7481afddf892: crates/bench/src/bin/repro_detection.rs

crates/bench/src/bin/repro_detection.rs:
