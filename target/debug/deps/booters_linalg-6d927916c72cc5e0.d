/root/repo/target/debug/deps/booters_linalg-6d927916c72cc5e0.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs

/root/repo/target/debug/deps/libbooters_linalg-6d927916c72cc5e0.rlib: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs

/root/repo/target/debug/deps/libbooters_linalg-6d927916c72cc5e0.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
