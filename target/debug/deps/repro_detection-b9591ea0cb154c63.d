/root/repo/target/debug/deps/repro_detection-b9591ea0cb154c63.d: crates/bench/src/bin/repro_detection.rs

/root/repo/target/debug/deps/repro_detection-b9591ea0cb154c63: crates/bench/src/bin/repro_detection.rs

crates/bench/src/bin/repro_detection.rs:
