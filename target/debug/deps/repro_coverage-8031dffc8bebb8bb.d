/root/repo/target/debug/deps/repro_coverage-8031dffc8bebb8bb.d: crates/bench/src/bin/repro_coverage.rs

/root/repo/target/debug/deps/repro_coverage-8031dffc8bebb8bb: crates/bench/src/bin/repro_coverage.rs

crates/bench/src/bin/repro_coverage.rs:
