/root/repo/target/debug/deps/repro_fig2-558b3c4d5c68fa55.d: crates/bench/src/bin/repro_fig2.rs

/root/repo/target/debug/deps/repro_fig2-558b3c4d5c68fa55: crates/bench/src/bin/repro_fig2.rs

crates/bench/src/bin/repro_fig2.rs:
