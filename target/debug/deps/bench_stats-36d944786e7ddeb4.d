/root/repo/target/debug/deps/bench_stats-36d944786e7ddeb4.d: crates/bench/benches/bench_stats.rs

/root/repo/target/debug/deps/bench_stats-36d944786e7ddeb4: crates/bench/benches/bench_stats.rs

crates/bench/benches/bench_stats.rs:
