/root/repo/target/debug/deps/repro_fig6-78ae01cef662e201.d: crates/bench/src/bin/repro_fig6.rs

/root/repo/target/debug/deps/repro_fig6-78ae01cef662e201: crates/bench/src/bin/repro_fig6.rs

crates/bench/src/bin/repro_fig6.rs:
