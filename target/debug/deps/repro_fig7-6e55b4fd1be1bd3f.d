/root/repo/target/debug/deps/repro_fig7-6e55b4fd1be1bd3f.d: crates/bench/src/bin/repro_fig7.rs

/root/repo/target/debug/deps/repro_fig7-6e55b4fd1be1bd3f: crates/bench/src/bin/repro_fig7.rs

crates/bench/src/bin/repro_fig7.rs:
