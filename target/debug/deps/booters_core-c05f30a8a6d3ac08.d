/root/repo/target/debug/deps/booters_core-c05f30a8a6d3ac08.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/datasets.rs crates/core/src/detect.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libbooters_core-c05f30a8a6d3ac08.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/datasets.rs crates/core/src/detect.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/verify.rs

/root/repo/target/debug/deps/libbooters_core-c05f30a8a6d3ac08.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/datasets.rs crates/core/src/detect.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/datasets.rs:
crates/core/src/detect.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
crates/core/src/verify.rs:
