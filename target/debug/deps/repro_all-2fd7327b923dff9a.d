/root/repo/target/debug/deps/repro_all-2fd7327b923dff9a.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/debug/deps/repro_all-2fd7327b923dff9a: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
