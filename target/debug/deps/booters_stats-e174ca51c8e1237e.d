/root/repo/target/debug/deps/booters_stats-e174ca51c8e1237e.d: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/dist.rs crates/stats/src/special.rs crates/stats/src/tests.rs

/root/repo/target/debug/deps/booters_stats-e174ca51c8e1237e: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/dist.rs crates/stats/src/special.rs crates/stats/src/tests.rs

crates/stats/src/lib.rs:
crates/stats/src/describe.rs:
crates/stats/src/dist.rs:
crates/stats/src/special.rs:
crates/stats/src/tests.rs:
