/root/repo/target/debug/deps/booters_bench-2fe21e2b84ba54f8.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbooters_bench-2fe21e2b84ba54f8.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbooters_bench-2fe21e2b84ba54f8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
