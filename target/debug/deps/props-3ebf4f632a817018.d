/root/repo/target/debug/deps/props-3ebf4f632a817018.d: crates/timeseries/tests/props.rs

/root/repo/target/debug/deps/props-3ebf4f632a817018: crates/timeseries/tests/props.rs

crates/timeseries/tests/props.rs:
