/root/repo/target/debug/deps/booters_bench-90bf391596181650.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbooters_bench-90bf391596181650.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libbooters_bench-90bf391596181650.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
