/root/repo/target/debug/deps/repro_duration_scan-a364ff28641d45e6.d: crates/bench/src/bin/repro_duration_scan.rs

/root/repo/target/debug/deps/repro_duration_scan-a364ff28641d45e6: crates/bench/src/bin/repro_duration_scan.rs

crates/bench/src/bin/repro_duration_scan.rs:
