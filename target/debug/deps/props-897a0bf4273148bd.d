/root/repo/target/debug/deps/props-897a0bf4273148bd.d: crates/glm/tests/props.rs

/root/repo/target/debug/deps/props-897a0bf4273148bd: crates/glm/tests/props.rs

crates/glm/tests/props.rs:
