/root/repo/target/debug/deps/repro_table2-44ab8a1a5d56bd2d.d: crates/bench/src/bin/repro_table2.rs

/root/repo/target/debug/deps/repro_table2-44ab8a1a5d56bd2d: crates/bench/src/bin/repro_table2.rs

crates/bench/src/bin/repro_table2.rs:
