/root/repo/target/debug/deps/repro_fig6-42d0f46a0f848bc2.d: crates/bench/src/bin/repro_fig6.rs

/root/repo/target/debug/deps/repro_fig6-42d0f46a0f848bc2: crates/bench/src/bin/repro_fig6.rs

crates/bench/src/bin/repro_fig6.rs:
