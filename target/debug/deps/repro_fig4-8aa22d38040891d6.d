/root/repo/target/debug/deps/repro_fig4-8aa22d38040891d6.d: crates/bench/src/bin/repro_fig4.rs

/root/repo/target/debug/deps/repro_fig4-8aa22d38040891d6: crates/bench/src/bin/repro_fig4.rs

crates/bench/src/bin/repro_fig4.rs:
