/root/repo/target/debug/deps/repro_validation-556dc1d0c0cfe318.d: crates/bench/src/bin/repro_validation.rs

/root/repo/target/debug/deps/repro_validation-556dc1d0c0cfe318: crates/bench/src/bin/repro_validation.rs

crates/bench/src/bin/repro_validation.rs:
