/root/repo/target/debug/deps/booters_timeseries-8ff0d79c0d5f3255.d: crates/timeseries/src/lib.rs crates/timeseries/src/correlate.rs crates/timeseries/src/date.rs crates/timeseries/src/design.rs crates/timeseries/src/easter.rs crates/timeseries/src/index.rs crates/timeseries/src/intervention.rs crates/timeseries/src/seasonal.rs crates/timeseries/src/series.rs crates/timeseries/src/smooth.rs

/root/repo/target/debug/deps/booters_timeseries-8ff0d79c0d5f3255: crates/timeseries/src/lib.rs crates/timeseries/src/correlate.rs crates/timeseries/src/date.rs crates/timeseries/src/design.rs crates/timeseries/src/easter.rs crates/timeseries/src/index.rs crates/timeseries/src/intervention.rs crates/timeseries/src/seasonal.rs crates/timeseries/src/series.rs crates/timeseries/src/smooth.rs

crates/timeseries/src/lib.rs:
crates/timeseries/src/correlate.rs:
crates/timeseries/src/date.rs:
crates/timeseries/src/design.rs:
crates/timeseries/src/easter.rs:
crates/timeseries/src/index.rs:
crates/timeseries/src/intervention.rs:
crates/timeseries/src/seasonal.rs:
crates/timeseries/src/series.rs:
crates/timeseries/src/smooth.rs:
