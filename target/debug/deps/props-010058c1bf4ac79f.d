/root/repo/target/debug/deps/props-010058c1bf4ac79f.d: crates/market/tests/props.rs

/root/repo/target/debug/deps/props-010058c1bf4ac79f: crates/market/tests/props.rs

crates/market/tests/props.rs:
