/root/repo/target/debug/deps/model_recovery-097e6fec19e29fee.d: tests/model_recovery.rs

/root/repo/target/debug/deps/model_recovery-097e6fec19e29fee: tests/model_recovery.rs

tests/model_recovery.rs:
