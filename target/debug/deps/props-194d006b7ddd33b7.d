/root/repo/target/debug/deps/props-194d006b7ddd33b7.d: crates/stats/tests/props.rs

/root/repo/target/debug/deps/props-194d006b7ddd33b7: crates/stats/tests/props.rs

crates/stats/tests/props.rs:
