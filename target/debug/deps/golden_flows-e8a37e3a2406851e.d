/root/repo/target/debug/deps/golden_flows-e8a37e3a2406851e.d: crates/netsim/tests/golden_flows.rs

/root/repo/target/debug/deps/golden_flows-e8a37e3a2406851e: crates/netsim/tests/golden_flows.rs

crates/netsim/tests/golden_flows.rs:
