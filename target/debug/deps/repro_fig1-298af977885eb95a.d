/root/repo/target/debug/deps/repro_fig1-298af977885eb95a.d: crates/bench/src/bin/repro_fig1.rs

/root/repo/target/debug/deps/repro_fig1-298af977885eb95a: crates/bench/src/bin/repro_fig1.rs

crates/bench/src/bin/repro_fig1.rs:
