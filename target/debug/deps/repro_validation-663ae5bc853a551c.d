/root/repo/target/debug/deps/repro_validation-663ae5bc853a551c.d: crates/bench/src/bin/repro_validation.rs

/root/repo/target/debug/deps/repro_validation-663ae5bc853a551c: crates/bench/src/bin/repro_validation.rs

crates/bench/src/bin/repro_validation.rs:
