/root/repo/target/debug/deps/repro_table2-39702bf08702321a.d: crates/bench/src/bin/repro_table2.rs

/root/repo/target/debug/deps/repro_table2-39702bf08702321a: crates/bench/src/bin/repro_table2.rs

crates/bench/src/bin/repro_table2.rs:
