/root/repo/target/debug/deps/props-a4cf004853285377.d: tests/props.rs

/root/repo/target/debug/deps/props-a4cf004853285377: tests/props.rs

tests/props.rs:
