/root/repo/target/debug/deps/bench_figures-9a275b1c71830f08.d: crates/bench/benches/bench_figures.rs

/root/repo/target/debug/deps/bench_figures-9a275b1c71830f08: crates/bench/benches/bench_figures.rs

crates/bench/benches/bench_figures.rs:
