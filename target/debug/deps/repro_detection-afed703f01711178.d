/root/repo/target/debug/deps/repro_detection-afed703f01711178.d: crates/bench/src/bin/repro_detection.rs

/root/repo/target/debug/deps/repro_detection-afed703f01711178: crates/bench/src/bin/repro_detection.rs

crates/bench/src/bin/repro_detection.rs:
