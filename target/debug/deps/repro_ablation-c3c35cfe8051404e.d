/root/repo/target/debug/deps/repro_ablation-c3c35cfe8051404e.d: crates/bench/src/bin/repro_ablation.rs

/root/repo/target/debug/deps/repro_ablation-c3c35cfe8051404e: crates/bench/src/bin/repro_ablation.rs

crates/bench/src/bin/repro_ablation.rs:
