/root/repo/target/debug/deps/booting_the_booters-cdddb1e155deff91.d: src/lib.rs

/root/repo/target/debug/deps/libbooting_the_booters-cdddb1e155deff91.rlib: src/lib.rs

/root/repo/target/debug/deps/libbooting_the_booters-cdddb1e155deff91.rmeta: src/lib.rs

src/lib.rs:
