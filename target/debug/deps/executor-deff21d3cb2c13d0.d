/root/repo/target/debug/deps/executor-deff21d3cb2c13d0.d: crates/par/tests/executor.rs

/root/repo/target/debug/deps/executor-deff21d3cb2c13d0: crates/par/tests/executor.rs

crates/par/tests/executor.rs:
