/root/repo/target/debug/deps/repro_detection-6ce95caa65191fa0.d: crates/bench/src/bin/repro_detection.rs

/root/repo/target/debug/deps/repro_detection-6ce95caa65191fa0: crates/bench/src/bin/repro_detection.rs

crates/bench/src/bin/repro_detection.rs:
