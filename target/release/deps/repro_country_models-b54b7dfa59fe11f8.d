/root/repo/target/release/deps/repro_country_models-b54b7dfa59fe11f8.d: crates/bench/src/bin/repro_country_models.rs

/root/repo/target/release/deps/repro_country_models-b54b7dfa59fe11f8: crates/bench/src/bin/repro_country_models.rs

crates/bench/src/bin/repro_country_models.rs:
