/root/repo/target/release/deps/repro_fig2-ee9dc73a431e2b98.d: crates/bench/src/bin/repro_fig2.rs

/root/repo/target/release/deps/repro_fig2-ee9dc73a431e2b98: crates/bench/src/bin/repro_fig2.rs

crates/bench/src/bin/repro_fig2.rs:
