/root/repo/target/release/deps/booters_netsim-79d514baaf2645b0.d: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/attribution.rs crates/netsim/src/coverage.rs crates/netsim/src/engine.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/protocol.rs crates/netsim/src/reflector.rs crates/netsim/src/scanner.rs crates/netsim/src/volume.rs

/root/repo/target/release/deps/libbooters_netsim-79d514baaf2645b0.rlib: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/attribution.rs crates/netsim/src/coverage.rs crates/netsim/src/engine.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/protocol.rs crates/netsim/src/reflector.rs crates/netsim/src/scanner.rs crates/netsim/src/volume.rs

/root/repo/target/release/deps/libbooters_netsim-79d514baaf2645b0.rmeta: crates/netsim/src/lib.rs crates/netsim/src/addr.rs crates/netsim/src/attribution.rs crates/netsim/src/coverage.rs crates/netsim/src/engine.rs crates/netsim/src/flow.rs crates/netsim/src/packet.rs crates/netsim/src/protocol.rs crates/netsim/src/reflector.rs crates/netsim/src/scanner.rs crates/netsim/src/volume.rs

crates/netsim/src/lib.rs:
crates/netsim/src/addr.rs:
crates/netsim/src/attribution.rs:
crates/netsim/src/coverage.rs:
crates/netsim/src/engine.rs:
crates/netsim/src/flow.rs:
crates/netsim/src/packet.rs:
crates/netsim/src/protocol.rs:
crates/netsim/src/reflector.rs:
crates/netsim/src/scanner.rs:
crates/netsim/src/volume.rs:
