/root/repo/target/release/deps/bench_stats-17b3ddb991278afb.d: crates/bench/benches/bench_stats.rs

/root/repo/target/release/deps/bench_stats-17b3ddb991278afb: crates/bench/benches/bench_stats.rs

crates/bench/benches/bench_stats.rs:
