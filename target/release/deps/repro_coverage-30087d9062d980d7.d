/root/repo/target/release/deps/repro_coverage-30087d9062d980d7.d: crates/bench/src/bin/repro_coverage.rs

/root/repo/target/release/deps/repro_coverage-30087d9062d980d7: crates/bench/src/bin/repro_coverage.rs

crates/bench/src/bin/repro_coverage.rs:
