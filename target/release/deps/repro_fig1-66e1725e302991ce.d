/root/repo/target/release/deps/repro_fig1-66e1725e302991ce.d: crates/bench/src/bin/repro_fig1.rs

/root/repo/target/release/deps/repro_fig1-66e1725e302991ce: crates/bench/src/bin/repro_fig1.rs

crates/bench/src/bin/repro_fig1.rs:
