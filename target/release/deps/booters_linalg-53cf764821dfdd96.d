/root/repo/target/release/deps/booters_linalg-53cf764821dfdd96.d: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs

/root/repo/target/release/deps/libbooters_linalg-53cf764821dfdd96.rlib: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs

/root/repo/target/release/deps/libbooters_linalg-53cf764821dfdd96.rmeta: crates/linalg/src/lib.rs crates/linalg/src/cholesky.rs crates/linalg/src/error.rs crates/linalg/src/lu.rs crates/linalg/src/matrix.rs crates/linalg/src/qr.rs

crates/linalg/src/lib.rs:
crates/linalg/src/cholesky.rs:
crates/linalg/src/error.rs:
crates/linalg/src/lu.rs:
crates/linalg/src/matrix.rs:
crates/linalg/src/qr.rs:
