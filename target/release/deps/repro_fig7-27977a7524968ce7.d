/root/repo/target/release/deps/repro_fig7-27977a7524968ce7.d: crates/bench/src/bin/repro_fig7.rs

/root/repo/target/release/deps/repro_fig7-27977a7524968ce7: crates/bench/src/bin/repro_fig7.rs

crates/bench/src/bin/repro_fig7.rs:
