/root/repo/target/release/deps/repro_table2-a7d261d83a5f3716.d: crates/bench/src/bin/repro_table2.rs

/root/repo/target/release/deps/repro_table2-a7d261d83a5f3716: crates/bench/src/bin/repro_table2.rs

crates/bench/src/bin/repro_table2.rs:
