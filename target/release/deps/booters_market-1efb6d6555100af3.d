/root/repo/target/release/deps/booters_market-1efb6d6555100af3.d: crates/market/src/lib.rs crates/market/src/booter.rs crates/market/src/calibration.rs crates/market/src/commands.rs crates/market/src/concentration.rs crates/market/src/demand.rs crates/market/src/displacement.rs crates/market/src/events.rs crates/market/src/lifecycle.rs crates/market/src/market.rs crates/market/src/protocol_mix.rs

/root/repo/target/release/deps/libbooters_market-1efb6d6555100af3.rlib: crates/market/src/lib.rs crates/market/src/booter.rs crates/market/src/calibration.rs crates/market/src/commands.rs crates/market/src/concentration.rs crates/market/src/demand.rs crates/market/src/displacement.rs crates/market/src/events.rs crates/market/src/lifecycle.rs crates/market/src/market.rs crates/market/src/protocol_mix.rs

/root/repo/target/release/deps/libbooters_market-1efb6d6555100af3.rmeta: crates/market/src/lib.rs crates/market/src/booter.rs crates/market/src/calibration.rs crates/market/src/commands.rs crates/market/src/concentration.rs crates/market/src/demand.rs crates/market/src/displacement.rs crates/market/src/events.rs crates/market/src/lifecycle.rs crates/market/src/market.rs crates/market/src/protocol_mix.rs

crates/market/src/lib.rs:
crates/market/src/booter.rs:
crates/market/src/calibration.rs:
crates/market/src/commands.rs:
crates/market/src/concentration.rs:
crates/market/src/demand.rs:
crates/market/src/displacement.rs:
crates/market/src/events.rs:
crates/market/src/lifecycle.rs:
crates/market/src/market.rs:
crates/market/src/protocol_mix.rs:
