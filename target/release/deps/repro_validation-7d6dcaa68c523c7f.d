/root/repo/target/release/deps/repro_validation-7d6dcaa68c523c7f.d: crates/bench/src/bin/repro_validation.rs

/root/repo/target/release/deps/repro_validation-7d6dcaa68c523c7f: crates/bench/src/bin/repro_validation.rs

crates/bench/src/bin/repro_validation.rs:
