/root/repo/target/release/deps/repro_table3-c2a0e9f3bd953a6e.d: crates/bench/src/bin/repro_table3.rs

/root/repo/target/release/deps/repro_table3-c2a0e9f3bd953a6e: crates/bench/src/bin/repro_table3.rs

crates/bench/src/bin/repro_table3.rs:
