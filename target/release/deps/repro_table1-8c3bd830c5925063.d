/root/repo/target/release/deps/repro_table1-8c3bd830c5925063.d: crates/bench/src/bin/repro_table1.rs

/root/repo/target/release/deps/repro_table1-8c3bd830c5925063: crates/bench/src/bin/repro_table1.rs

crates/bench/src/bin/repro_table1.rs:
