/root/repo/target/release/deps/repro_ablation-300c935341058120.d: crates/bench/src/bin/repro_ablation.rs

/root/repo/target/release/deps/repro_ablation-300c935341058120: crates/bench/src/bin/repro_ablation.rs

crates/bench/src/bin/repro_ablation.rs:
