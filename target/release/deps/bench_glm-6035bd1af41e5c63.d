/root/repo/target/release/deps/bench_glm-6035bd1af41e5c63.d: crates/bench/benches/bench_glm.rs

/root/repo/target/release/deps/bench_glm-6035bd1af41e5c63: crates/bench/benches/bench_glm.rs

crates/bench/benches/bench_glm.rs:
