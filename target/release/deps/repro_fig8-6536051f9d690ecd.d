/root/repo/target/release/deps/repro_fig8-6536051f9d690ecd.d: crates/bench/src/bin/repro_fig8.rs

/root/repo/target/release/deps/repro_fig8-6536051f9d690ecd: crates/bench/src/bin/repro_fig8.rs

crates/bench/src/bin/repro_fig8.rs:
