/root/repo/target/release/deps/repro_fig1-e757dff0afaeedae.d: crates/bench/src/bin/repro_fig1.rs

/root/repo/target/release/deps/repro_fig1-e757dff0afaeedae: crates/bench/src/bin/repro_fig1.rs

crates/bench/src/bin/repro_fig1.rs:
