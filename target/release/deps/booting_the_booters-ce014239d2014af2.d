/root/repo/target/release/deps/booting_the_booters-ce014239d2014af2.d: src/lib.rs

/root/repo/target/release/deps/libbooting_the_booters-ce014239d2014af2.rlib: src/lib.rs

/root/repo/target/release/deps/libbooting_the_booters-ce014239d2014af2.rmeta: src/lib.rs

src/lib.rs:
