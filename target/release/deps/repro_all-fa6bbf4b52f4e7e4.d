/root/repo/target/release/deps/repro_all-fa6bbf4b52f4e7e4.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-fa6bbf4b52f4e7e4: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
