/root/repo/target/release/deps/repro_fig4-ff2f2868aa13cd1d.d: crates/bench/src/bin/repro_fig4.rs

/root/repo/target/release/deps/repro_fig4-ff2f2868aa13cd1d: crates/bench/src/bin/repro_fig4.rs

crates/bench/src/bin/repro_fig4.rs:
