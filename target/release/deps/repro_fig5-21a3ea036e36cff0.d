/root/repo/target/release/deps/repro_fig5-21a3ea036e36cff0.d: crates/bench/src/bin/repro_fig5.rs

/root/repo/target/release/deps/repro_fig5-21a3ea036e36cff0: crates/bench/src/bin/repro_fig5.rs

crates/bench/src/bin/repro_fig5.rs:
