/root/repo/target/release/deps/repro_fig7-232e6733e3f31347.d: crates/bench/src/bin/repro_fig7.rs

/root/repo/target/release/deps/repro_fig7-232e6733e3f31347: crates/bench/src/bin/repro_fig7.rs

crates/bench/src/bin/repro_fig7.rs:
