/root/repo/target/release/deps/repro_fig5-abb1abe443bfcdd1.d: crates/bench/src/bin/repro_fig5.rs

/root/repo/target/release/deps/repro_fig5-abb1abe443bfcdd1: crates/bench/src/bin/repro_fig5.rs

crates/bench/src/bin/repro_fig5.rs:
