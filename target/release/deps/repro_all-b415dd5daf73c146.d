/root/repo/target/release/deps/repro_all-b415dd5daf73c146.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-b415dd5daf73c146: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
