/root/repo/target/release/deps/repro_duration_scan-1e63ebdb7ab6dbd1.d: crates/bench/src/bin/repro_duration_scan.rs

/root/repo/target/release/deps/repro_duration_scan-1e63ebdb7ab6dbd1: crates/bench/src/bin/repro_duration_scan.rs

crates/bench/src/bin/repro_duration_scan.rs:
