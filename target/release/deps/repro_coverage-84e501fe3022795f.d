/root/repo/target/release/deps/repro_coverage-84e501fe3022795f.d: crates/bench/src/bin/repro_coverage.rs

/root/repo/target/release/deps/repro_coverage-84e501fe3022795f: crates/bench/src/bin/repro_coverage.rs

crates/bench/src/bin/repro_coverage.rs:
