/root/repo/target/release/deps/bench_tables-118c23c837576486.d: crates/bench/benches/bench_tables.rs

/root/repo/target/release/deps/bench_tables-118c23c837576486: crates/bench/benches/bench_tables.rs

crates/bench/benches/bench_tables.rs:
