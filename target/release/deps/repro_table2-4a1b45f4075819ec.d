/root/repo/target/release/deps/repro_table2-4a1b45f4075819ec.d: crates/bench/src/bin/repro_table2.rs

/root/repo/target/release/deps/repro_table2-4a1b45f4075819ec: crates/bench/src/bin/repro_table2.rs

crates/bench/src/bin/repro_table2.rs:
