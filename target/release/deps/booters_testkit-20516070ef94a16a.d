/root/repo/target/release/deps/booters_testkit-20516070ef94a16a.d: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/harness.rs crates/testkit/src/macros.rs crates/testkit/src/rng.rs crates/testkit/src/strategy.rs

/root/repo/target/release/deps/libbooters_testkit-20516070ef94a16a.rlib: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/harness.rs crates/testkit/src/macros.rs crates/testkit/src/rng.rs crates/testkit/src/strategy.rs

/root/repo/target/release/deps/libbooters_testkit-20516070ef94a16a.rmeta: crates/testkit/src/lib.rs crates/testkit/src/bench.rs crates/testkit/src/harness.rs crates/testkit/src/macros.rs crates/testkit/src/rng.rs crates/testkit/src/strategy.rs

crates/testkit/src/lib.rs:
crates/testkit/src/bench.rs:
crates/testkit/src/harness.rs:
crates/testkit/src/macros.rs:
crates/testkit/src/rng.rs:
crates/testkit/src/strategy.rs:
