/root/repo/target/release/deps/booters_bench-d798169c6df58514.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbooters_bench-d798169c6df58514.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbooters_bench-d798169c6df58514.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
