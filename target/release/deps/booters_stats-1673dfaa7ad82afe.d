/root/repo/target/release/deps/booters_stats-1673dfaa7ad82afe.d: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/dist.rs crates/stats/src/special.rs crates/stats/src/tests.rs

/root/repo/target/release/deps/libbooters_stats-1673dfaa7ad82afe.rlib: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/dist.rs crates/stats/src/special.rs crates/stats/src/tests.rs

/root/repo/target/release/deps/libbooters_stats-1673dfaa7ad82afe.rmeta: crates/stats/src/lib.rs crates/stats/src/describe.rs crates/stats/src/dist.rs crates/stats/src/special.rs crates/stats/src/tests.rs

crates/stats/src/lib.rs:
crates/stats/src/describe.rs:
crates/stats/src/dist.rs:
crates/stats/src/special.rs:
crates/stats/src/tests.rs:
