/root/repo/target/release/deps/repro_ablation-f2179ffd2272805d.d: crates/bench/src/bin/repro_ablation.rs

/root/repo/target/release/deps/repro_ablation-f2179ffd2272805d: crates/bench/src/bin/repro_ablation.rs

crates/bench/src/bin/repro_ablation.rs:
