/root/repo/target/release/deps/booters_timeseries-80d8e09b04f91bf8.d: crates/timeseries/src/lib.rs crates/timeseries/src/correlate.rs crates/timeseries/src/date.rs crates/timeseries/src/design.rs crates/timeseries/src/easter.rs crates/timeseries/src/index.rs crates/timeseries/src/intervention.rs crates/timeseries/src/seasonal.rs crates/timeseries/src/series.rs crates/timeseries/src/smooth.rs

/root/repo/target/release/deps/libbooters_timeseries-80d8e09b04f91bf8.rlib: crates/timeseries/src/lib.rs crates/timeseries/src/correlate.rs crates/timeseries/src/date.rs crates/timeseries/src/design.rs crates/timeseries/src/easter.rs crates/timeseries/src/index.rs crates/timeseries/src/intervention.rs crates/timeseries/src/seasonal.rs crates/timeseries/src/series.rs crates/timeseries/src/smooth.rs

/root/repo/target/release/deps/libbooters_timeseries-80d8e09b04f91bf8.rmeta: crates/timeseries/src/lib.rs crates/timeseries/src/correlate.rs crates/timeseries/src/date.rs crates/timeseries/src/design.rs crates/timeseries/src/easter.rs crates/timeseries/src/index.rs crates/timeseries/src/intervention.rs crates/timeseries/src/seasonal.rs crates/timeseries/src/series.rs crates/timeseries/src/smooth.rs

crates/timeseries/src/lib.rs:
crates/timeseries/src/correlate.rs:
crates/timeseries/src/date.rs:
crates/timeseries/src/design.rs:
crates/timeseries/src/easter.rs:
crates/timeseries/src/index.rs:
crates/timeseries/src/intervention.rs:
crates/timeseries/src/seasonal.rs:
crates/timeseries/src/series.rs:
crates/timeseries/src/smooth.rs:
