/root/repo/target/release/deps/repro_country_models-ca5d0cdf8c79b0e4.d: crates/bench/src/bin/repro_country_models.rs

/root/repo/target/release/deps/repro_country_models-ca5d0cdf8c79b0e4: crates/bench/src/bin/repro_country_models.rs

crates/bench/src/bin/repro_country_models.rs:
