/root/repo/target/release/deps/repro_fig6-7b5b8b19bb62896c.d: crates/bench/src/bin/repro_fig6.rs

/root/repo/target/release/deps/repro_fig6-7b5b8b19bb62896c: crates/bench/src/bin/repro_fig6.rs

crates/bench/src/bin/repro_fig6.rs:
