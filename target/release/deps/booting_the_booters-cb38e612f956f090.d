/root/repo/target/release/deps/booting_the_booters-cb38e612f956f090.d: src/lib.rs

/root/repo/target/release/deps/libbooting_the_booters-cb38e612f956f090.rlib: src/lib.rs

/root/repo/target/release/deps/libbooting_the_booters-cb38e612f956f090.rmeta: src/lib.rs

src/lib.rs:
