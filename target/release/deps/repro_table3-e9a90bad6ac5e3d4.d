/root/repo/target/release/deps/repro_table3-e9a90bad6ac5e3d4.d: crates/bench/src/bin/repro_table3.rs

/root/repo/target/release/deps/repro_table3-e9a90bad6ac5e3d4: crates/bench/src/bin/repro_table3.rs

crates/bench/src/bin/repro_table3.rs:
