/root/repo/target/release/deps/repro_fig2-71db3b443bddd450.d: crates/bench/src/bin/repro_fig2.rs

/root/repo/target/release/deps/repro_fig2-71db3b443bddd450: crates/bench/src/bin/repro_fig2.rs

crates/bench/src/bin/repro_fig2.rs:
