/root/repo/target/release/deps/bench_figures-c0316f2c83b3f845.d: crates/bench/benches/bench_figures.rs

/root/repo/target/release/deps/bench_figures-c0316f2c83b3f845: crates/bench/benches/bench_figures.rs

crates/bench/benches/bench_figures.rs:
