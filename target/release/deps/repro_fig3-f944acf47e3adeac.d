/root/repo/target/release/deps/repro_fig3-f944acf47e3adeac.d: crates/bench/src/bin/repro_fig3.rs

/root/repo/target/release/deps/repro_fig3-f944acf47e3adeac: crates/bench/src/bin/repro_fig3.rs

crates/bench/src/bin/repro_fig3.rs:
