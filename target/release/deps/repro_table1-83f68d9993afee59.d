/root/repo/target/release/deps/repro_table1-83f68d9993afee59.d: crates/bench/src/bin/repro_table1.rs

/root/repo/target/release/deps/repro_table1-83f68d9993afee59: crates/bench/src/bin/repro_table1.rs

crates/bench/src/bin/repro_table1.rs:
