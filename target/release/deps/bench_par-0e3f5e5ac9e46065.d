/root/repo/target/release/deps/bench_par-0e3f5e5ac9e46065.d: crates/bench/benches/bench_par.rs

/root/repo/target/release/deps/bench_par-0e3f5e5ac9e46065: crates/bench/benches/bench_par.rs

crates/bench/benches/bench_par.rs:
