/root/repo/target/release/deps/bench_market-ce94f5b9d36d4505.d: crates/bench/benches/bench_market.rs

/root/repo/target/release/deps/bench_market-ce94f5b9d36d4505: crates/bench/benches/bench_market.rs

crates/bench/benches/bench_market.rs:
