/root/repo/target/release/deps/repro_fig8-89ee7e5ceea209f0.d: crates/bench/src/bin/repro_fig8.rs

/root/repo/target/release/deps/repro_fig8-89ee7e5ceea209f0: crates/bench/src/bin/repro_fig8.rs

crates/bench/src/bin/repro_fig8.rs:
