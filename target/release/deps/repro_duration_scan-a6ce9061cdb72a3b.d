/root/repo/target/release/deps/repro_duration_scan-a6ce9061cdb72a3b.d: crates/bench/src/bin/repro_duration_scan.rs

/root/repo/target/release/deps/repro_duration_scan-a6ce9061cdb72a3b: crates/bench/src/bin/repro_duration_scan.rs

crates/bench/src/bin/repro_duration_scan.rs:
