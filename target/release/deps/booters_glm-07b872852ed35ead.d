/root/repo/target/release/deps/booters_glm-07b872852ed35ead.d: crates/glm/src/lib.rs crates/glm/src/family.rs crates/glm/src/inference.rs crates/glm/src/irls.rs crates/glm/src/link.rs crates/glm/src/negbin.rs crates/glm/src/ols.rs crates/glm/src/poisson.rs crates/glm/src/summary.rs

/root/repo/target/release/deps/libbooters_glm-07b872852ed35ead.rlib: crates/glm/src/lib.rs crates/glm/src/family.rs crates/glm/src/inference.rs crates/glm/src/irls.rs crates/glm/src/link.rs crates/glm/src/negbin.rs crates/glm/src/ols.rs crates/glm/src/poisson.rs crates/glm/src/summary.rs

/root/repo/target/release/deps/libbooters_glm-07b872852ed35ead.rmeta: crates/glm/src/lib.rs crates/glm/src/family.rs crates/glm/src/inference.rs crates/glm/src/irls.rs crates/glm/src/link.rs crates/glm/src/negbin.rs crates/glm/src/ols.rs crates/glm/src/poisson.rs crates/glm/src/summary.rs

crates/glm/src/lib.rs:
crates/glm/src/family.rs:
crates/glm/src/inference.rs:
crates/glm/src/irls.rs:
crates/glm/src/link.rs:
crates/glm/src/negbin.rs:
crates/glm/src/ols.rs:
crates/glm/src/poisson.rs:
crates/glm/src/summary.rs:
