/root/repo/target/release/deps/repro_fig4-b2ffa02680ad188d.d: crates/bench/src/bin/repro_fig4.rs

/root/repo/target/release/deps/repro_fig4-b2ffa02680ad188d: crates/bench/src/bin/repro_fig4.rs

crates/bench/src/bin/repro_fig4.rs:
