/root/repo/target/release/deps/repro_fig6-833b011eeaf4fc4e.d: crates/bench/src/bin/repro_fig6.rs

/root/repo/target/release/deps/repro_fig6-833b011eeaf4fc4e: crates/bench/src/bin/repro_fig6.rs

crates/bench/src/bin/repro_fig6.rs:
