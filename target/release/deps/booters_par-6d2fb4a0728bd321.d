/root/repo/target/release/deps/booters_par-6d2fb4a0728bd321.d: crates/par/src/lib.rs crates/par/src/pool.rs crates/par/src/seed.rs

/root/repo/target/release/deps/libbooters_par-6d2fb4a0728bd321.rlib: crates/par/src/lib.rs crates/par/src/pool.rs crates/par/src/seed.rs

/root/repo/target/release/deps/libbooters_par-6d2fb4a0728bd321.rmeta: crates/par/src/lib.rs crates/par/src/pool.rs crates/par/src/seed.rs

crates/par/src/lib.rs:
crates/par/src/pool.rs:
crates/par/src/seed.rs:
