/root/repo/target/release/deps/repro_validation-041b4a2043623c79.d: crates/bench/src/bin/repro_validation.rs

/root/repo/target/release/deps/repro_validation-041b4a2043623c79: crates/bench/src/bin/repro_validation.rs

crates/bench/src/bin/repro_validation.rs:
