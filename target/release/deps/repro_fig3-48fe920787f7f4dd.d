/root/repo/target/release/deps/repro_fig3-48fe920787f7f4dd.d: crates/bench/src/bin/repro_fig3.rs

/root/repo/target/release/deps/repro_fig3-48fe920787f7f4dd: crates/bench/src/bin/repro_fig3.rs

crates/bench/src/bin/repro_fig3.rs:
