/root/repo/target/release/deps/booters_bench-7cd24565a5162add.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbooters_bench-7cd24565a5162add.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libbooters_bench-7cd24565a5162add.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
