/root/repo/target/release/deps/repro_detection-86ff6fd6f8e6e5f0.d: crates/bench/src/bin/repro_detection.rs

/root/repo/target/release/deps/repro_detection-86ff6fd6f8e6e5f0: crates/bench/src/bin/repro_detection.rs

crates/bench/src/bin/repro_detection.rs:
