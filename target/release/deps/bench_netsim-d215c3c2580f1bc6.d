/root/repo/target/release/deps/bench_netsim-d215c3c2580f1bc6.d: crates/bench/benches/bench_netsim.rs

/root/repo/target/release/deps/bench_netsim-d215c3c2580f1bc6: crates/bench/benches/bench_netsim.rs

crates/bench/benches/bench_netsim.rs:
