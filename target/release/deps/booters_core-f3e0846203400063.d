/root/repo/target/release/deps/booters_core-f3e0846203400063.d: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/datasets.rs crates/core/src/detect.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libbooters_core-f3e0846203400063.rlib: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/datasets.rs crates/core/src/detect.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/verify.rs

/root/repo/target/release/deps/libbooters_core-f3e0846203400063.rmeta: crates/core/src/lib.rs crates/core/src/ablation.rs crates/core/src/datasets.rs crates/core/src/detect.rs crates/core/src/pipeline.rs crates/core/src/report.rs crates/core/src/scenario.rs crates/core/src/verify.rs

crates/core/src/lib.rs:
crates/core/src/ablation.rs:
crates/core/src/datasets.rs:
crates/core/src/detect.rs:
crates/core/src/pipeline.rs:
crates/core/src/report.rs:
crates/core/src/scenario.rs:
crates/core/src/verify.rs:
