/root/repo/target/release/deps/repro_detection-7431cef23ebf5bf5.d: crates/bench/src/bin/repro_detection.rs

/root/repo/target/release/deps/repro_detection-7431cef23ebf5bf5: crates/bench/src/bin/repro_detection.rs

crates/bench/src/bin/repro_detection.rs:
