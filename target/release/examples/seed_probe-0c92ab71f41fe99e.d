/root/repo/target/release/examples/seed_probe-0c92ab71f41fe99e.d: examples/seed_probe.rs

/root/repo/target/release/examples/seed_probe-0c92ab71f41fe99e: examples/seed_probe.rs

examples/seed_probe.rs:
