/root/repo/target/release/examples/quickstart-20e5a89c15f71f8e.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-20e5a89c15f71f8e: examples/quickstart.rs

examples/quickstart.rs:
