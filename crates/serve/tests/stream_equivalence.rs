//! Streaming-vs-batch flow equivalence: the tentpole property suite.
//!
//! The watermark contract (DESIGN.md §5g) says a [`ServeNode`] fed *any*
//! packet interleaving that respects the watermark — every packet offered
//! before the watermark passes its timestamp — must close exactly the
//! flows the batch grouper ([`group_flows_par`]) produces on the
//! time-sorted trace, regardless of shard count, ring capacity, arrival
//! jitter, or where the watermark-advance (flush) boundaries land.
//!
//! The generator is adversarial on purpose: tight victim/protocol ranges
//! force key collisions and duplicate whole packets, times cluster around
//! week boundaries so flows straddle them, and per-packet arrival jitter
//! reorders the stream within the watermark bound.

use booters_netsim::{group_flows_par, Flow, FlowClass, SensorPacket, UdpProtocol, VictimAddr, VictimKey};
use booters_serve::{RefitPolicy, ServeConfig, ServeNode, WEEK_SECS};
use booters_testkit::strategy::prop;
use booters_testkit::{forall, prop_assert, prop_assert_eq, Strategy};

const HALF_WEEK: u64 = WEEK_SECS / 2;

/// One adversarial packet: times cluster every half-week with offsets
/// that straddle the cluster point (so some clusters sit exactly on week
/// boundaries), and victim/protocol ranges are tight enough that flows
/// collide, extend, and repeat whole packets.
fn packet() -> impl Strategy<Value = SensorPacket> {
    (
        0u64..6,     // cluster: points at 0, w/2, w, 3w/2, 2w, 5w/2
        0u64..4_000, // offset within the cluster (re-centred below)
        0u32..4,     // sensor
        0u32..6,     // victim
        0usize..3,   // protocol
    )
        .prop_map(|(cluster, off, sensor, victim, proto)| SensorPacket {
            time: (cluster * HALF_WEEK + off).saturating_sub(2_000),
            sensor,
            victim: VictimAddr(victim),
            protocol: UdpProtocol::ALL[proto],
            ttl: 64,
            src_port: 0,
        })
}

/// One stream event: a packet, its arrival jitter (how far past its
/// timestamp it shows up, relative to other packets), and a gate byte
/// deciding whether the watermark advances / the intake drains after it.
fn stream(max: usize) -> impl Strategy<Value = Vec<(SensorPacket, u64, u8)>> {
    prop::collection::vec((packet(), 0u64..1_200, 0u8..8), 0..max)
}

/// The batch oracle: stable time sort (exactly what the engine's
/// `simulate_attacks_batch` does), then the parallel batch grouper.
fn batch_reference(events: &[(SensorPacket, u64, u8)], key: VictimKey) -> Vec<Flow> {
    let mut sorted: Vec<SensorPacket> = events.iter().map(|e| e.0).collect();
    sorted.sort_by_key(|p| p.time);
    group_flows_par(&sorted, key)
}

/// Feed the events through a [`ServeNode`] in jittered arrival order with
/// a gate-driven advance/drain schedule that respects the watermark
/// contract: after event `j`, the watermark may move up to the minimum
/// true timestamp among the not-yet-offered packets.
fn run_stream(
    events: &[(SensorPacket, u64, u8)],
    key: VictimKey,
    shards: usize,
    queue_capacity: usize,
) -> (Vec<Flow>, booters_serve::ServeStats) {
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| events[i].0.time + events[i].1);
    let mut suffix_min = vec![u64::MAX; order.len() + 1];
    for j in (0..order.len()).rev() {
        suffix_min[j] = suffix_min[j + 1].min(events[order[j]].0.time);
    }
    let mut node = ServeNode::new(ServeConfig {
        shards,
        queue_capacity,
        key,
        refit: RefitPolicy {
            enabled: false,
            ..RefitPolicy::default()
        },
        ..ServeConfig::default()
    });
    for (j, &i) in order.iter().enumerate() {
        node.ingest(&events[i].0).expect("lawful packet rejected");
        match events[i].2 {
            0 if suffix_min[j + 1] != u64::MAX => {
                // Advance to the exact lawful bound — the tightest flush.
                node.advance_watermark(suffix_min[j + 1])
                    .expect("lawful advance rejected");
            }
            1 => node.drain_intake(),
            _ => {}
        }
    }
    node.finish().expect("fault-free stream failed")
}

forall! {
    #![cases(96)]

    fn arbitrary_interleavings_and_flush_boundaries_match_batch(
        events in stream(160),
        shards in 1usize..=4,
        queue in 1usize..=32,
    ) {
        let expected = batch_reference(&events, VictimKey::ByIp);
        let (flows, stats) = run_stream(&events, VictimKey::ByIp, shards, queue);
        prop_assert_eq!(&flows, &expected);
        prop_assert_eq!(stats.packets as usize, events.len());
        prop_assert_eq!(stats.grouped, stats.packets);
        prop_assert_eq!(stats.flows_closed, flows.len() as u64);
        prop_assert_eq!(stats.late_packets, 0);
    }

    fn prefix24_keying_streams_like_batch(events in stream(120), shards in 1usize..=3) {
        // Same contract under the carpet-bombing key: canonicalisation
        // happens before sharding, so /24 siblings land on one shard.
        let expected = batch_reference(&events, VictimKey::ByPrefix24);
        let (flows, _) = run_stream(&events, VictimKey::ByPrefix24, shards, 8);
        prop_assert_eq!(flows, expected);
    }

    fn classification_is_interleaving_invariant(events in stream(120), shards in 1usize..=4) {
        // Not just the flows: the downstream attack/scan verdicts — the
        // thing the weekly tables count — must survive any interleaving.
        let expected: Vec<FlowClass> = batch_reference(&events, VictimKey::ByIp)
            .iter()
            .map(Flow::classify)
            .collect();
        let (flows, _) = run_stream(&events, VictimKey::ByIp, shards, 4);
        let got: Vec<FlowClass> = flows.iter().map(Flow::classify).collect();
        prop_assert_eq!(got, expected);
    }

    fn single_key_burst_at_the_classification_edge(
        n in 1usize..=12,
        spread in 0u64..900,
        two_sensors in 0u32..2,
        jitters in prop::collection::vec(0u64..1_200, 12),
        gates in prop::collection::vec(0u8..8, 12),
    ) {
        // Satellite 1's sharpest corner: one victim/protocol key, n
        // packets inside one gap window, right at the >5-packet
        // attack/scan threshold (n == 5 scans, n == 6 attacks when one
        // sensor sees them all; splitting across sensors flips it back).
        let events: Vec<(SensorPacket, u64, u8)> = (0..n)
            .map(|i| {
                (
                    SensorPacket {
                        time: WEEK_SECS - 400 + (i as u64 * spread) / n as u64,
                        sensor: (i as u32) % (1 + two_sensors),
                        victim: VictimAddr(7),
                        protocol: UdpProtocol::ALL[0],
                        ttl: 64,
                        src_port: 0,
                    },
                    jitters[i],
                    gates[i],
                )
            })
            .collect();
        let expected = batch_reference(&events, VictimKey::ByIp);
        let (flows, _) = run_stream(&events, VictimKey::ByIp, 2, 4);
        prop_assert_eq!(&flows, &expected);
        prop_assert!(flows.len() == 1, "one key, one gap window => one flow");
        let expect_attack = flows[0].max_sensor_packets() > 5;
        prop_assert_eq!(
            flows[0].classify() == FlowClass::Attack,
            expect_attack
        );
    }
}

// ---------------------------------------------------------------------------
// Deterministic adversarial cases (satellite 1's named stream shapes)
// ---------------------------------------------------------------------------

fn pkt(time: u64, sensor: u32, victim: u32) -> SensorPacket {
    SensorPacket {
        time,
        sensor,
        victim: VictimAddr(victim),
        protocol: UdpProtocol::ALL[0],
        ttl: 64,
        src_port: 0,
    }
}

fn node_for_test() -> ServeNode {
    ServeNode::new(ServeConfig {
        shards: 2,
        queue_capacity: 4,
        refit: RefitPolicy {
            enabled: false,
            ..RefitPolicy::default()
        },
        ..ServeConfig::default()
    })
}

#[test]
fn a_flow_straddling_a_week_boundary_survives_a_boundary_advance() {
    // Two packets 200 s apart (inside the 900 s gap) on opposite sides of
    // the week boundary, with the watermark advanced to exactly the
    // boundary in between: still one flow.
    let mut node = node_for_test();
    node.ingest(&pkt(WEEK_SECS - 100, 0, 1)).unwrap();
    node.advance_watermark(WEEK_SECS).unwrap();
    node.ingest(&pkt(WEEK_SECS + 100, 1, 1)).unwrap();
    let (flows, stats) = node.finish().unwrap();
    assert_eq!(flows.len(), 1);
    assert_eq!(flows[0].start, WEEK_SECS - 100);
    assert_eq!(flows[0].end, WEEK_SECS + 100);
    assert_eq!(flows[0].total_packets, 2);
    assert_eq!(stats.late_packets, 0);
}

#[test]
fn duplicate_timestamps_group_identically_to_batch() {
    // The degenerate stream: one packet value repeated, chunked by
    // advances at its own timestamp (lawful: late means strictly less).
    let events: Vec<(SensorPacket, u64, u8)> =
        (0..20).map(|i| (pkt(5_000, i % 3, 9), 0, 0)).collect();
    let expected = batch_reference(&events, VictimKey::ByIp);
    let (flows, _) = run_stream(&events, VictimKey::ByIp, 3, 2);
    assert_eq!(flows, expected);
    assert_eq!(flows.len(), 1);
    assert_eq!(flows[0].total_packets, 20);
}

#[test]
fn out_of_order_arrivals_within_the_watermark_match_batch() {
    // Arrival order is the full reverse of timestamp order; the watermark
    // never moves until the stream ends, so every arrival is lawful.
    let mut node = node_for_test();
    for t in (0..10).rev() {
        node.ingest(&pkt(1_000 + t * 50, 0, 3)).unwrap();
    }
    let (flows, _) = node.finish().unwrap();
    let batch: Vec<SensorPacket> = (0..10).map(|t| pkt(1_000 + t * 50, 0, 3)).collect();
    assert_eq!(flows, group_flows_par(&batch, VictimKey::ByIp));
    assert_eq!(flows.len(), 1);
    assert_eq!(flows[0].start, 1_000);
    assert_eq!(flows[0].end, 1_450);
}

#[test]
fn the_five_packet_classification_edge_is_exact() {
    // §3: attack iff *some sensor* saw more than 5 packets. 5 → scan,
    // 6 → attack, 6 split 3/3 across sensors → scan. Streamed and
    // batch-grouped verdicts agree on all three.
    for (n, sensors, expected) in [
        (5u64, 1u32, FlowClass::Scan),
        (6, 1, FlowClass::Attack),
        (6, 2, FlowClass::Scan),
    ] {
        let events: Vec<(SensorPacket, u64, u8)> = (0..n)
            .map(|i| (pkt(100 + i, (i as u32) % sensors, 5), 0, 0))
            .collect();
        let expected_flows = batch_reference(&events, VictimKey::ByIp);
        let (flows, _) = run_stream(&events, VictimKey::ByIp, 2, 4);
        assert_eq!(flows, expected_flows);
        assert_eq!(flows.len(), 1);
        assert_eq!(
            flows[0].classify(),
            expected,
            "n={n} sensors={sensors}"
        );
    }
}

#[test]
fn single_packet_scan_flows_stream_through_intact() {
    // Lone packets separated by more than the gap: each is its own
    // single-packet scan flow, duration zero, never merged by the
    // incremental expiry.
    let events: Vec<(SensorPacket, u64, u8)> = (0..6)
        .map(|i| (pkt(i * 2_000, 0, 2), 0, 0))
        .collect();
    let expected = batch_reference(&events, VictimKey::ByIp);
    let (flows, _) = run_stream(&events, VictimKey::ByIp, 2, 2);
    assert_eq!(flows, expected);
    assert_eq!(flows.len(), 6);
    for f in &flows {
        assert_eq!(f.duration_secs(), 0);
        assert_eq!(f.classify(), FlowClass::Scan);
    }
}
