//! Fault injection for the streaming node: every failure mode must be a
//! *typed* error with a deterministic blast radius — never a silent
//! packet drop, never a partially-corrupt flow set.
//!
//! Covered surfaces:
//! - full intake ring → [`ServeError::Backpressure`], packet not
//!   consumed, nothing lost after a drain-and-retry;
//! - shard worker panic → [`ServeError::ShardPanic`] naming the shard,
//!   node poisoned (every later call is [`ServeError::Poisoned`]);
//! - mid-stream sink error → deferred, later packets deliberately
//!   dropped, [`ServeNode::finish`] returns the error instead of flows.

use booters_netsim::{PacketSink, SensorPacket, UdpProtocol, VictimAddr};
use booters_serve::{RefitPolicy, ServeConfig, ServeError, ServeNode};

fn pkt(time: u64, victim: u32) -> SensorPacket {
    SensorPacket {
        time,
        sensor: 0,
        victim: VictimAddr(victim),
        protocol: UdpProtocol::ALL[0],
        ttl: 64,
        src_port: 0,
    }
}

fn config(shards: usize, queue_capacity: usize) -> ServeConfig {
    ServeConfig {
        shards,
        queue_capacity,
        refit: RefitPolicy {
            enabled: false,
            ..RefitPolicy::default()
        },
        ..ServeConfig::default()
    }
}

#[test]
fn a_full_ring_is_typed_backpressure_and_never_a_silent_drop() {
    let mut node = ServeNode::new(config(1, 2));
    node.offer(&pkt(10, 1)).unwrap();
    node.offer(&pkt(20, 1)).unwrap();
    // Ring full: the offer fails loudly and does NOT consume the packet.
    let err = node.offer(&pkt(30, 1)).unwrap_err();
    assert_eq!(
        err,
        ServeError::Backpressure {
            shard: 0,
            capacity: 2
        }
    );
    assert_eq!(node.stats().packets, 2, "rejected packet was not counted");
    // Relieve the pressure and retry: the same packet goes through.
    node.drain_intake();
    node.offer(&pkt(30, 1)).unwrap();
    let (flows, stats) = node.finish().unwrap();
    assert_eq!(stats.packets, 3);
    let total: u64 = flows.iter().map(|f| f.total_packets).sum();
    assert_eq!(total, 3, "every offered packet reached a flow");
}

#[test]
fn ingest_absorbs_backpressure_deterministically() {
    // A capacity-1 ring through `ingest`: every push after the first
    // hits the full ring, drains it, and retries — the event count is
    // exact, not racy, and no packet is lost.
    let mut node = ServeNode::new(config(1, 1));
    for i in 0..50u64 {
        node.ingest(&pkt(100 + i, 4)).unwrap();
    }
    let stats = node.stats();
    assert_eq!(stats.packets, 50);
    assert_eq!(stats.backpressure_events, 49);
    let (flows, stats) = node.finish().unwrap();
    assert_eq!(flows.len(), 1);
    assert_eq!(flows[0].total_packets, 50);
    assert_eq!(stats.grouped, 50);
}

#[test]
fn a_shard_panic_surfaces_as_a_typed_error_and_poisons_the_node() {
    let mut node = ServeNode::new(ServeConfig {
        fault_panic_shard: Some(1),
        ..config(3, 8)
    });
    for i in 0..12u64 {
        node.ingest(&pkt(i * 10, i as u32)).unwrap();
    }
    // The faulty shard panics mid-advance; the panic is contained and
    // converted, naming the shard.
    let err = node.advance_watermark(200).unwrap_err();
    assert_eq!(err, ServeError::ShardPanic { shard: 1 });
    // The node is poisoned: no API can observe a half-advanced state.
    assert_eq!(node.advance_watermark(300), Err(ServeError::Poisoned));
    assert_eq!(node.offer(&pkt(500, 1)), Err(ServeError::Poisoned));
    assert_eq!(node.close_epoch(), Err(ServeError::Poisoned));
    assert_eq!(node.take_flows(), Err(ServeError::Poisoned));
    assert_eq!(node.finish().unwrap_err(), ServeError::Poisoned);
}

#[test]
fn a_mid_stream_sink_error_is_deferred_and_finish_returns_it() {
    // The PacketSink path is infallible by trait, so a hard failure is
    // recorded and every later packet is deliberately dropped — grouping
    // a suffix of a broken stream could only fabricate flows.
    let mut node = ServeNode::new(config(2, 8));
    node.advance_watermark(1_000).unwrap();
    node.accept(&pkt(500, 2)); // late: violates the watermark contract
    let deferred = node.sink_error().cloned();
    assert_eq!(
        deferred,
        Some(ServeError::LateArrival {
            time: 500,
            watermark: 1_000
        })
    );
    // Lawful packets after the failure are dropped, not grouped.
    node.accept(&pkt(2_000, 2));
    node.accept(&pkt(2_100, 2));
    assert_eq!(node.stats().packets, 0);
    assert_eq!(node.stats().late_packets, 1);
    let err = node.finish().unwrap_err();
    assert_eq!(
        err,
        ServeError::LateArrival {
            time: 500,
            watermark: 1_000
        }
    );
}

#[test]
fn a_direct_late_arrival_is_typed_and_non_destructive() {
    // On the fallible (non-sink) API a late arrival rejects that packet
    // only: the node stays healthy and later lawful packets still join
    // the flows they belong to.
    let mut node = ServeNode::new(config(2, 8));
    node.ingest(&pkt(2_000, 3)).unwrap();
    node.advance_watermark(1_500).unwrap();
    let err = node.ingest(&pkt(1_000, 3)).unwrap_err();
    assert_eq!(
        err,
        ServeError::LateArrival {
            time: 1_000,
            watermark: 1_500
        }
    );
    node.ingest(&pkt(2_300, 3)).unwrap();
    let (flows, stats) = node.finish().unwrap();
    assert_eq!(stats.packets, 2);
    assert_eq!(stats.late_packets, 1);
    assert_eq!(flows.len(), 1, "2000 and 2300 are 300 s apart: one flow");
    assert_eq!(flows[0].total_packets, 2);
}
