//! Bounded single-producer/single-consumer ring queue of packets.
//!
//! One ring sits in front of every intake shard. The bound is the whole
//! point: a full ring surfaces as typed backpressure
//! ([`crate::ServeError::Backpressure`]) at the offer site instead of
//! unbounded buffering or a silent drop. Producer and consumer are
//! never concurrent here — the node offers and drains under the shard's
//! lock — so the ring is plain modular arithmetic over a fixed slab,
//! with no atomics to reason about.

use booters_netsim::{SensorPacket, UdpProtocol, VictimAddr};

/// A packet slot that has never been written. Slots are pre-filled so
/// pushes and pops are pure index arithmetic; the placeholder is never
/// observable (len tracks the live region exactly).
const EMPTY_SLOT: SensorPacket = SensorPacket {
    time: 0,
    sensor: 0,
    victim: VictimAddr(0),
    protocol: UdpProtocol::ALL[0],
    ttl: 0,
    src_port: 0,
};

/// Fixed-capacity FIFO ring of [`SensorPacket`]s.
#[derive(Debug)]
pub struct RingQueue {
    slots: Box<[SensorPacket]>,
    /// Index of the oldest element, in `[0, capacity)`.
    head: usize,
    len: usize,
}

impl RingQueue {
    /// New empty ring holding at most `capacity` packets (min 1).
    pub fn with_capacity(capacity: usize) -> RingQueue {
        let capacity = capacity.max(1);
        RingQueue {
            slots: vec![EMPTY_SLOT; capacity].into_boxed_slice(),
            head: 0,
            len: 0,
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the next push would be refused.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Enqueue one packet, or give it back when the ring is full.
    pub fn try_push(&mut self, p: SensorPacket) -> Result<(), SensorPacket> {
        if self.is_full() {
            return Err(p);
        }
        let tail = (self.head + self.len) % self.slots.len();
        self.slots[tail] = p;
        self.len += 1;
        Ok(())
    }

    /// Dequeue the oldest packet.
    pub fn pop(&mut self) -> Option<SensorPacket> {
        if self.len == 0 {
            return None;
        }
        let p = self.slots[self.head];
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        Some(p)
    }

    /// Move every queued packet into `out`, oldest first.
    pub fn drain_into(&mut self, out: &mut Vec<SensorPacket>) {
        out.reserve(self.len);
        while let Some(p) = self.pop() {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(time: u64) -> SensorPacket {
        SensorPacket {
            time,
            sensor: 7,
            victim: VictimAddr(42),
            protocol: UdpProtocol::ALL[1],
            ttl: 64,
            src_port: 123,
        }
    }

    #[test]
    fn fifo_order_survives_wraparound() {
        let mut q = RingQueue::with_capacity(3);
        for round in 0..5u64 {
            assert!(q.try_push(pkt(round * 10)).is_ok());
            assert!(q.try_push(pkt(round * 10 + 1)).is_ok());
            assert_eq!(q.pop().unwrap().time, round * 10);
            assert_eq!(q.pop().unwrap().time, round * 10 + 1);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn full_ring_refuses_and_returns_the_packet() {
        let mut q = RingQueue::with_capacity(2);
        assert!(q.try_push(pkt(1)).is_ok());
        assert!(q.try_push(pkt(2)).is_ok());
        assert!(q.is_full());
        let rejected = q.try_push(pkt(3)).unwrap_err();
        assert_eq!(rejected.time, 3, "the refused packet comes back intact");
        assert_eq!(q.len(), 2, "refusal does not disturb queued packets");
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out.iter().map(|p| p.time).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut q = RingQueue::with_capacity(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(pkt(9)).is_ok());
        assert!(q.try_push(pkt(10)).is_err());
    }
}
