//! One intake shard: ring queue → pending buffer → incremental grouper.
//!
//! The shard owns every packet whose canonical victim/protocol key
//! hashes to it, so its [`FlowGrouper`] sees a complete, self-contained
//! sub-stream — flows never span shards. Arrivals may be out of order
//! *within the watermark bounds*; the shard restores time order before
//! the grouper sees them:
//!
//! 1. `drain_ring` moves queued packets into the pending buffer in
//!    arrival (FIFO) order.
//! 2. `advance(w)` extracts the ripe prefix (`time < w`), stable-sorts
//!    it by time, pushes it, then expires every flow with
//!    `end ≤ w − FLOW_GAP_SECS`.
//!
//! Because the caller promises no future packet has `time < w`, each
//! advance's batch is entirely ≥ the previous watermark and entirely
//! < the new one: concatenated, the grouper receives a globally
//! time-nondecreasing stream — exactly the batch path's input shape —
//! so the closed flows are identical to batch grouping (DESIGN.md §5g).

use booters_netsim::flow::{Flow, FlowGrouper, VictimKey};
use booters_netsim::SensorPacket;

use crate::ring::RingQueue;

/// What one watermark advance did inside a shard, reported back so the
/// node can aggregate deterministic totals.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardProgress {
    /// Packets fed to the grouper by this advance.
    pub grouped: u64,
    /// Flows expired by this advance.
    pub closed: usize,
    /// Open flows remaining after expiry.
    pub open: usize,
    /// Packets still pending (time ≥ watermark).
    pub pending: usize,
}

#[derive(Debug)]
pub(crate) struct Shard {
    ring: RingQueue,
    /// Arrivals not yet grouped, in arrival order; every time is ≥ the
    /// node's current watermark.
    pending: Vec<SensorPacket>,
    grouper: FlowGrouper,
    /// Closed flows awaiting collection by the node.
    closed: Vec<Flow>,
    /// Deliberate fault injection: when set, the next advance panics
    /// mid-drain (exercises the typed `ShardPanic` surface in tests).
    fault_panic: bool,
}

impl Shard {
    pub fn new(key: VictimKey, queue_capacity: usize, fault_panic: bool) -> Shard {
        Shard {
            ring: RingQueue::with_capacity(queue_capacity),
            pending: Vec::new(),
            grouper: FlowGrouper::with_key(key),
            closed: Vec::new(),
            fault_panic,
        }
    }

    pub fn ring_mut(&mut self) -> &mut RingQueue {
        &mut self.ring
    }

    /// Move every queued packet into the pending buffer (FIFO order).
    pub fn drain_ring(&mut self) {
        self.ring.drain_into(&mut self.pending);
    }

    /// Group everything ripe under watermark `w` and expire flows that
    /// can no longer be extended.
    pub fn advance(&mut self, w: u64) -> ShardProgress {
        if self.fault_panic {
            panic!("injected shard fault");
        }
        self.drain_ring();
        let mut ripe: Vec<SensorPacket> = Vec::new();
        self.pending.retain(|p| {
            if p.time < w {
                ripe.push(*p);
                false
            } else {
                true
            }
        });
        // Stable by time: equal-time packets keep arrival order, and the
        // watermark contract makes the concatenation of all batches
        // globally time-nondecreasing.
        ripe.sort_by_key(|p| p.time);
        for p in &ripe {
            self.grouper.push(p);
        }
        self.grouper.flush_before(w);
        // Count what the grouper actually handed over: pushes close flows
        // too (gap exceeded on the same key), not just the expiry sweep.
        let mut newly_closed = self.grouper.take_closed();
        let closed = newly_closed.len();
        self.closed.append(&mut newly_closed);
        ShardProgress {
            grouped: ripe.len() as u64,
            closed,
            open: self.grouper.open_flows(),
            pending: self.pending.len(),
        }
    }

    /// Close *everything*: group all pending packets regardless of the
    /// watermark and expire every open flow. Used at epoch (week) ends,
    /// where the batch path also groups each week in isolation.
    pub fn close_all(&mut self) -> ShardProgress {
        self.advance(u64::MAX)
    }

    /// Hand the accumulated closed flows to the node.
    pub fn take_closed(&mut self) -> Vec<Flow> {
        std::mem::take(&mut self.closed)
    }
}
