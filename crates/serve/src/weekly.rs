//! Rolling weekly aggregation and warm-started NB2 refits.
//!
//! As the watermark walks forward, closed attack flows accumulate into
//! per-week counts ([`WeeklyRoller`]). Every time a week closes, the
//! service refits the paper's NB2 count model to the counts so far
//! ([`RollingFitter`]) — and because consecutive weeks differ by one
//! observation, the refit continues from the previous coefficients via
//! [`WarmStart::Beta`] at the previous dispersion instead of starting
//! cold. A periodic full profile-α search (every
//! [`RefitPolicy::full_every`] refits) re-estimates the dispersion so
//! the warm path cannot drift.
//!
//! The rolling fit is an *online estimate*: it sees each week's counts
//! as they stood when the watermark closed that week. The byte-identical
//! Tables 1/2 goldens come from the closed-epoch flows fed to the
//! standard offline pipeline — the roller never feeds back into them.

use booters_glm::{
    fit_irls_into, fit_negbin_with, GlmError, IrlsWorkspace, LogLink, NegBin2, NegBinOptions,
    WarmStart,
};
use booters_timeseries::design::{its_design, DesignConfig};
use booters_timeseries::{Date, WeeklySeries};

/// Per-week closed-flow counts, indexed by `flow.start / WEEK_SECS`.
#[derive(Debug, Default, Clone)]
pub struct WeeklyRoller {
    attacks: Vec<u64>,
    scans: Vec<u64>,
}

impl WeeklyRoller {
    /// New empty roller.
    pub fn new() -> WeeklyRoller {
        WeeklyRoller::default()
    }

    /// Record one closed flow in week `week`.
    pub fn record(&mut self, week: usize, is_attack: bool) {
        if self.attacks.len() <= week {
            self.attacks.resize(week + 1, 0);
            self.scans.resize(week + 1, 0);
        }
        if is_attack {
            self.attacks[week] += 1;
        } else {
            self.scans[week] += 1;
        }
    }

    /// Make sure weeks `0..n` exist (zero-filled), so a quiet week still
    /// contributes an observation to the rolling fit.
    pub fn ensure_weeks(&mut self, n: usize) {
        if self.attacks.len() < n {
            self.attacks.resize(n, 0);
            self.scans.resize(n, 0);
        }
    }

    /// Attack-flow counts per week.
    pub fn attacks(&self) -> &[u64] {
        &self.attacks
    }

    /// Scan-flow counts per week.
    pub fn scans(&self) -> &[u64] {
        &self.scans
    }
}

/// When and how the rolling NB2 model is refit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefitPolicy {
    /// Master switch; off means the service only aggregates.
    pub enabled: bool,
    /// Weeks of data required before the first fit (must exceed the
    /// design's column count).
    pub min_weeks: usize,
    /// Run a full profile-α search every this many refits; in between,
    /// a single warm-started IRLS solve at the last α suffices.
    pub full_every: u64,
    /// Include the 11 monthly seasonal dummies. Off by default: a young
    /// stream has not seen every month, and an all-zero dummy column
    /// would make the design singular.
    pub seasonal: bool,
}

impl Default for RefitPolicy {
    fn default() -> Self {
        RefitPolicy {
            enabled: true,
            min_weeks: 8,
            full_every: 8,
            seasonal: false,
        }
    }
}

/// One rolling model state: the most recent converged NB2 fit.
#[derive(Debug, Clone)]
pub struct RollingFit {
    /// Coefficients, one per design column.
    pub beta: Vec<f64>,
    /// NB2 dispersion α in force for this fit.
    pub alpha: f64,
    /// Log-likelihood at convergence.
    pub log_likelihood: f64,
    /// Weeks of data the fit saw.
    pub weeks: usize,
    /// Whether this fit continued from the previous β (warm) or ran the
    /// full profile search (cold/full).
    pub warm: bool,
}

/// Refits the weekly NB2 trend model as weeks close, warm-starting each
/// solve from its predecessor.
#[derive(Debug)]
pub struct RollingFitter {
    policy: RefitPolicy,
    start: Date,
    options: NegBinOptions,
    ws: IrlsWorkspace,
    last: Option<RollingFit>,
    /// Warm-started refits performed.
    pub warm_refits: u64,
    /// Full profile-α refits performed.
    pub full_refits: u64,
    /// Refits that failed to converge (the previous fit is kept).
    pub failures: u64,
}

impl RollingFitter {
    /// New fitter for a stream whose week 0 begins at `start`.
    pub fn new(start: Date, policy: RefitPolicy) -> RollingFitter {
        RollingFitter {
            policy,
            start,
            options: NegBinOptions::default(),
            ws: IrlsWorkspace::new(),
            last: None,
            warm_refits: 0,
            full_refits: 0,
            failures: 0,
        }
    }

    /// The most recent converged fit, if any.
    pub fn last_fit(&self) -> Option<&RollingFit> {
        self.last.as_ref()
    }

    /// Refit on `counts` (one closed week per entry). Returns the new
    /// fit, `Ok(None)` when policy says not yet, and the error when
    /// even the cold path fails (the previous fit is retained).
    pub fn refit(&mut self, counts: &[u64]) -> Result<Option<&RollingFit>, GlmError> {
        if !self.policy.enabled || counts.len() < self.policy.min_weeks.max(3) {
            return Ok(None);
        }
        booters_obs::span!("serve.refit");
        let series =
            WeeklySeries::from_values(self.start, counts.iter().map(|&c| c as f64).collect());
        let design_cfg = DesignConfig {
            seasonal: self.policy.seasonal,
            easter: false,
            ..DesignConfig::default()
        };
        let design = its_design(&series, &[], &design_cfg);
        let y: Vec<f64> = series.values().to_vec();

        let total = self.warm_refits + self.full_refits;
        let full_due = self.policy.full_every > 0 && total % self.policy.full_every == 0;
        if !full_due {
            if let Some(prev) = &self.last {
                if prev.beta.len() == design.x.cols() {
                    let family = NegBin2::new(prev.alpha);
                    let warm = fit_irls_into(
                        &mut self.ws,
                        &design.x,
                        &y,
                        None,
                        &family,
                        &LogLink,
                        &self.options.irls,
                        WarmStart::Beta(&prev.beta),
                    );
                    if warm.is_ok() {
                        self.warm_refits += 1;
                        booters_obs::counter_add("serve.refits_warm", 1);
                        self.last = Some(RollingFit {
                            beta: self.ws.beta().to_vec(),
                            alpha: prev.alpha,
                            log_likelihood: self.ws.log_likelihood(),
                            weeks: counts.len(),
                            warm: true,
                        });
                        return Ok(self.last.as_ref());
                    }
                    // Warm continuation diverged: fall through to the
                    // full search rather than give up.
                }
            }
        }
        match fit_negbin_with(&mut self.ws, &design.x, &y, &design.names, &self.options) {
            Ok(fit) => {
                self.full_refits += 1;
                booters_obs::counter_add("serve.refits_full", 1);
                self.last = Some(RollingFit {
                    beta: fit.fit.beta.clone(),
                    alpha: fit.alpha,
                    log_likelihood: fit.log_likelihood,
                    weeks: counts.len(),
                    warm: false,
                });
                Ok(self.last.as_ref())
            }
            Err(e) => {
                self.failures += 1;
                booters_obs::counter_add("serve.refit_failures", 1);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(n: usize) -> Vec<u64> {
        // A gently trending, overdispersed-looking weekly series.
        (0..n)
            .map(|i| 20 + (i as u64 % 7) * 3 + i as u64 / 2)
            .collect()
    }

    #[test]
    fn roller_accumulates_and_zero_fills() {
        let mut r = WeeklyRoller::new();
        r.record(2, true);
        r.record(2, true);
        r.record(0, false);
        r.ensure_weeks(5);
        assert_eq!(r.attacks(), &[0, 0, 2, 0, 0]);
        assert_eq!(r.scans(), &[1, 0, 0, 0, 0]);
    }

    #[test]
    fn warm_refits_continue_from_the_previous_beta() {
        let mut f = RollingFitter::new(Date::new(2018, 6, 4), RefitPolicy::default());
        assert!(f.refit(&counts(3)).unwrap().is_none(), "below min_weeks");
        let mut last_ll = f64::NEG_INFINITY;
        for n in 8..20 {
            let fit = f.refit(&counts(n)).unwrap().expect("enough weeks").clone();
            assert_eq!(fit.weeks, n);
            assert!(fit.log_likelihood.is_finite());
            last_ll = fit.log_likelihood;
        }
        assert!(last_ll.is_finite());
        assert!(f.full_refits >= 1, "first fit runs the full search");
        assert!(f.warm_refits >= 8, "later weeks warm-start");
        assert_eq!(f.failures, 0);

        // The warm continuation must land on the same optimum a cold
        // solve finds at the same α on the same data.
        let warm_fit = f.last_fit().expect("has fit").clone();
        let series = WeeklySeries::from_values(
            Date::new(2018, 6, 4),
            counts(19).iter().map(|&c| c as f64).collect(),
        );
        let design = its_design(
            &series,
            &[],
            &DesignConfig {
                seasonal: false,
                easter: false,
                ..DesignConfig::default()
            },
        );
        let mut ws = IrlsWorkspace::new();
        fit_irls_into(
            &mut ws,
            &design.x,
            series.values(),
            None,
            &NegBin2::new(warm_fit.alpha),
            &LogLink,
            &NegBinOptions::default().irls,
            WarmStart::Cold,
        )
        .expect("cold solve converges");
        assert_eq!(warm_fit.beta.len(), ws.beta().len());
        for (w, c) in warm_fit.beta.iter().zip(ws.beta()) {
            assert!(
                (w - c).abs() < 1e-6,
                "warm-started β strayed from the cold solve: {w} vs {c}"
            );
        }
    }

    #[test]
    fn disabled_policy_never_fits() {
        let mut f = RollingFitter::new(
            Date::new(2018, 6, 4),
            RefitPolicy {
                enabled: false,
                ..RefitPolicy::default()
            },
        );
        assert!(f.refit(&counts(40)).unwrap().is_none());
        assert!(f.last_fit().is_none());
    }
}
