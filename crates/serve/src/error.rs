//! Typed errors for the streaming intake path.
//!
//! Every way the service can refuse work is a value, not a panic or a
//! silent drop: backpressure when a ring is full, a late packet that
//! violates the watermark contract, and a shard worker that panicked
//! mid-drain. Once a shard has panicked the node is poisoned — its
//! grouping state may be mid-update — so every later call reports
//! [`ServeError::Poisoned`] instead of emitting possibly-corrupt flows.

use std::fmt;

/// An intake-path failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A shard's bounded ring queue is full. The offered packet was
    /// **not** consumed; drain (advance the watermark or call
    /// [`crate::ServeNode::drain_intake`]) and retry.
    Backpressure {
        /// Shard whose queue is full.
        shard: usize,
        /// The queue's fixed capacity.
        capacity: usize,
    },
    /// A packet arrived with `time` below the current watermark,
    /// violating the caller's ordering promise. The packet was rejected
    /// — accepting it could silently corrupt already-expired flows.
    LateArrival {
        /// The offending packet's timestamp.
        time: u64,
        /// The watermark it fell behind.
        watermark: u64,
    },
    /// A shard worker panicked while draining. The panic was contained
    /// and turned into this error; the node is poisoned afterwards.
    ShardPanic {
        /// Shard whose worker panicked.
        shard: usize,
    },
    /// The node was poisoned by an earlier [`ServeError::ShardPanic`]
    /// and refuses to group or emit anything further.
    Poisoned,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Backpressure { shard, capacity } => write!(
                f,
                "shard {shard} intake queue full (capacity {capacity}): backpressure, retry after draining"
            ),
            ServeError::LateArrival { time, watermark } => write!(
                f,
                "packet time {time} is behind the watermark {watermark}: late arrival rejected"
            ),
            ServeError::ShardPanic { shard } => {
                write!(f, "shard {shard} worker panicked while draining")
            }
            ServeError::Poisoned => {
                write!(f, "serve node poisoned by an earlier shard panic")
            }
        }
    }
}

impl std::error::Error for ServeError {}
