#![warn(missing_docs)]
//! Streaming ingest service for the honeypot measurement chain.
//!
//! The paper's pipeline is simulate-then-analyse in one shot; the
//! ROADMAP north star is a long-running service watching the attack
//! stream *as it happens*. This crate is that online path:
//!
//! * **Sharded intake** — packets are routed by a deterministic
//!   splitmix64 hash of their canonical victim/protocol key onto
//!   bounded SPSC [`RingQueue`]s, one per shard. A full queue is a
//!   typed [`ServeError::Backpressure`], never a silent drop.
//! * **Watermark-driven incremental grouping** — each shard buffers
//!   arrivals and, when the caller advances the watermark `W`
//!   (promising that every future packet has `time ≥ W`), sorts the
//!   ripe prefix by time and feeds it to the same 15-minute-gap
//!   [`booters_netsim::flow::FlowGrouper`] the batch path uses, then
//!   expires every flow that can no longer be extended. Open-flow state
//!   stays bounded by the watermark lag, not the stream length.
//! * **Rolling weekly aggregation and warm-started refits** — closed
//!   attack flows accumulate into weekly counts, and every time the
//!   watermark closes a week an NB2 trend model is refit, continuing
//!   from the previous week's coefficients via
//!   [`booters_glm::WarmStart::Beta`] (a periodic full profile-α search
//!   keeps the dispersion honest).
//!
//! The correctness spine is *streaming equivalence*: for any arrival
//! interleaving that respects the watermark bounds and any
//! advance/flush schedule, the closed flows — and therefore Tables 1
//! and 2 rendered from them — are **byte-identical** to the batch
//! `group_flows_par` path on the time-sorted trace (DESIGN.md §5g,
//! pinned by `tests/serve_equivalence.rs` and the property tests in
//! `crates/serve/tests/stream_equivalence.rs`).
//!
//! ```
//! use booters_netsim::{PacketSink, SensorPacket, UdpProtocol, VictimAddr};
//! use booters_serve::{ServeConfig, ServeNode};
//!
//! let mut node = ServeNode::new(ServeConfig::default());
//! for t in [0u64, 10, 2_000] {
//!     node.accept(&SensorPacket {
//!         time: t,
//!         sensor: 1,
//!         victim: VictimAddr::from_octets(25, 0, 0, 9),
//!         protocol: UdpProtocol::Ldap,
//!         ttl: 60,
//!         src_port: 53,
//!     });
//! }
//! let (flows, stats) = node.finish().expect("stream is well-formed");
//! assert_eq!(flows.len(), 2); // 10 → 2000 exceeds the 15-minute gap
//! assert_eq!(stats.packets, 3);
//! ```

pub mod error;
pub mod node;
pub mod ring;
pub(crate) mod shard;
pub mod weekly;

pub use error::ServeError;
pub use node::{ServeConfig, ServeNode, ServeStats, WEEK_SECS};
pub use ring::RingQueue;
pub use weekly::{RefitPolicy, RollingFit, RollingFitter, WeeklyRoller};
