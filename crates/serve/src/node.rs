//! The streaming ingest node: sharded intake, watermark advancement,
//! epoch closes, rolling weekly refits.
//!
//! ## Determinism contract (DESIGN.md §5g)
//!
//! Everything the node emits is a pure function of the packet multiset
//! and the watermark/epoch schedule — never of arrival interleaving
//! (within the watermark bounds), shard count, queue capacity, thread
//! count, or kernel selection:
//!
//! * routing is a deterministic splitmix64 hash of the canonical
//!   victim/protocol key, so a flow's packets always meet in one shard;
//! * each shard re-sorts its ripe packets by time before grouping, so
//!   the grouper sees the batch path's input shape exactly;
//! * shards are drained via `par_map_coarse` and their results merged
//!   in shard-index order, and the final flow stream is canonicalised
//!   by [`sort_flows`] — the same total order the batch path uses.
//!
//! The watermark is the caller's promise: after `advance_watermark(w)`
//! returns, every future packet must have `time ≥ w`. A violation is a
//! typed [`ServeError::LateArrival`], never silent corruption.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use booters_netsim::flow::{sort_flows, Flow, FlowClass, VictimKey};
use booters_netsim::{PacketSink, SensorPacket};
use booters_testkit::rng::SplitMix64;
use booters_timeseries::Date;

use crate::error::ServeError;
use crate::shard::{Shard, ShardProgress};
use crate::weekly::{RefitPolicy, RollingFit, RollingFitter, WeeklyRoller};

/// Seconds per aggregation week.
pub const WEEK_SECS: u64 = 7 * 86_400;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(default)
}

/// Streaming service configuration.
///
/// `Default` reads the env knobs once per call: `BOOTERS_SERVE_SHARDS`
/// (intake shards), `BOOTERS_SERVE_QUEUE` (per-shard ring capacity in
/// packets) and `BOOTERS_SERVE_LAG_SECS` (watermark lag used by
/// [`ServeNode::suggested_watermark`]). None of them can change any
/// emitted flow — only scheduling, buffering and backpressure behaviour.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of intake shards (≥ 1).
    pub shards: usize,
    /// Bounded ring capacity per shard, in packets (≥ 1).
    pub queue_capacity: usize,
    /// Watermark lag: [`ServeNode::suggested_watermark`] trails the
    /// largest ingested time by this many seconds, bounding how long a
    /// straggler may lawfully arrive behind its peers.
    pub watermark_lag_secs: u64,
    /// Victim keying rule for flow grouping.
    pub key: VictimKey,
    /// Calendar date of stream time 0 (week 0's Monday) — anchors the
    /// rolling weekly model's design matrix.
    pub epoch_start: Date,
    /// Rolling refit policy.
    pub refit: RefitPolicy,
    /// Fault injection for the test suite: the given shard panics on
    /// its next drain, which must surface as
    /// [`ServeError::ShardPanic`] — never a crash or silent loss.
    pub fault_panic_shard: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: env_usize("BOOTERS_SERVE_SHARDS", 8),
            queue_capacity: env_usize("BOOTERS_SERVE_QUEUE", 4096),
            watermark_lag_secs: env_u64("BOOTERS_SERVE_LAG_SECS", 1800),
            key: VictimKey::ByIp,
            epoch_start: Date::new(2016, 6, 6),
            refit: RefitPolicy::default(),
            fault_panic_shard: None,
        }
    }
}

/// Counters describing the work a [`ServeNode`] has done. All values
/// are deterministic for a given packet stream and watermark schedule —
/// independent of thread count and kernel selection (backpressure also
/// depends on `queue_capacity`, nothing else).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Packets accepted into the node.
    pub packets: u64,
    /// Packets fed to the flow groupers so far.
    pub grouped: u64,
    /// Flows closed (expired or epoch-flushed) so far.
    pub flows_closed: u64,
    /// Typed backpressure events absorbed by [`ServeNode::ingest`].
    pub backpressure_events: u64,
    /// Late packets rejected with [`ServeError::LateArrival`].
    pub late_packets: u64,
    /// Watermark advances performed.
    pub watermark_advances: u64,
    /// Weeks the watermark has closed (each triggers a rolling refit).
    pub weeks_closed: u64,
    /// Epochs closed via [`ServeNode::close_epoch`].
    pub epochs: u64,
    /// Peak simultaneously-open flows across all shards, sampled at
    /// each advance (the steady-state memory bound).
    pub peak_open_flows: usize,
    /// Peak packets buffered (pending + queued), sampled at each
    /// advance.
    pub peak_pending: usize,
    /// Warm-started rolling refits.
    pub refits_warm: u64,
    /// Full profile-α rolling refits.
    pub refits_full: u64,
    /// Rolling refits that failed to converge (previous fit retained).
    pub refit_failures: u64,
}

/// The streaming ingest service node. See the crate docs for the data
/// path and [`ServeConfig`] for the knobs.
#[derive(Debug)]
pub struct ServeNode {
    cfg: ServeConfig,
    shards: Vec<Mutex<Shard>>,
    watermark: u64,
    max_time: u64,
    /// Closed flows collected from shards, awaiting [`Self::take_flows`]
    /// or the next epoch close. Shard-order concatenation; canonical
    /// order is imposed at hand-off.
    collected: Vec<Flow>,
    roller: WeeklyRoller,
    fitter: RollingFitter,
    stats: ServeStats,
    /// First sink-path error, surfaced at [`Self::finish`] — the
    /// infallible [`PacketSink`] contract.
    deferred: Option<ServeError>,
    poisoned: bool,
}

impl ServeNode {
    /// Build a node from `cfg` (shard and queue counts are clamped to
    /// at least 1).
    pub fn new(cfg: ServeConfig) -> ServeNode {
        let shards = cfg.shards.max(1);
        let queue = cfg.queue_capacity.max(1);
        let shard_vec = (0..shards)
            .map(|i| Mutex::new(Shard::new(cfg.key, queue, cfg.fault_panic_shard == Some(i))))
            .collect();
        ServeNode {
            fitter: RollingFitter::new(cfg.epoch_start, cfg.refit),
            shards: shard_vec,
            watermark: 0,
            max_time: 0,
            collected: Vec::new(),
            roller: WeeklyRoller::new(),
            stats: ServeStats::default(),
            deferred: None,
            poisoned: false,
            cfg,
        }
    }

    fn shard_index(&self, p: &SensorPacket) -> usize {
        // Same mix as the batch path's shard_of: canonical victim and
        // protocol, so every packet of one flow lands in one shard.
        let key = self.cfg.key.canonical(p.victim);
        let mixed =
            SplitMix64::new(((key.0 as u64) << 8) ^ p.protocol.index() as u64).next_u64();
        (mixed % self.shards.len() as u64) as usize
    }

    /// Current watermark.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }

    /// Largest packet time ingested so far.
    pub fn max_time(&self) -> u64 {
        self.max_time
    }

    /// The watermark the configured lag recommends: the largest
    /// ingested time minus [`ServeConfig::watermark_lag_secs`]. Safe
    /// whenever the stream's disorder is bounded by the lag.
    pub fn suggested_watermark(&self) -> u64 {
        self.max_time.saturating_sub(self.cfg.watermark_lag_secs)
    }

    /// Offer one packet without retrying: a full shard queue surfaces
    /// as [`ServeError::Backpressure`] and the packet is not consumed.
    pub fn offer(&mut self, p: &SensorPacket) -> Result<(), ServeError> {
        if self.poisoned {
            return Err(ServeError::Poisoned);
        }
        if p.time < self.watermark {
            self.stats.late_packets += 1;
            booters_obs::counter_add("serve.late_packets", 1);
            return Err(ServeError::LateArrival {
                time: p.time,
                watermark: self.watermark,
            });
        }
        let idx = self.shard_index(p);
        let shard = self.shards[idx].get_mut().expect("shard lock");
        match shard.ring_mut().try_push(*p) {
            Ok(()) => {
                self.stats.packets += 1;
                self.max_time = self.max_time.max(p.time);
                Ok(())
            }
            Err(_) => Err(ServeError::Backpressure {
                shard: idx,
                capacity: self.cfg.queue_capacity.max(1),
            }),
        }
    }

    /// Offer with deterministic backpressure handling: when the target
    /// ring is full, drain it into the shard's pending buffer and
    /// retry. Late arrivals still fail.
    pub fn ingest(&mut self, p: &SensorPacket) -> Result<(), ServeError> {
        match self.offer(p) {
            Err(ServeError::Backpressure { shard, .. }) => {
                self.stats.backpressure_events += 1;
                booters_obs::counter_add("serve.backpressure", 1);
                self.shards[shard].get_mut().expect("shard lock").drain_ring();
                self.offer(p)
            }
            other => other,
        }
    }

    /// Move every shard's queued packets into its pending buffer
    /// without grouping anything. Cheap; useful to relieve backpressure
    /// without advancing the watermark.
    pub fn drain_intake(&mut self) {
        for shard in &mut self.shards {
            shard.get_mut().expect("shard lock").drain_ring();
        }
    }

    /// Run `f` against every shard on the configured thread pool,
    /// containing panics, and merge progress in shard-index order.
    fn fan_out(
        &mut self,
        f: impl Fn(&mut Shard) -> ShardProgress + Sync,
    ) -> Result<ShardProgress, ServeError> {
        let results: Vec<Result<ShardProgress, ()>> =
            booters_par::par_map_coarse(&self.shards, |m| {
                let mut shard = m.lock().expect("shard lock");
                catch_unwind(AssertUnwindSafe(|| f(&mut shard))).map_err(|_| ())
            });
        let mut total = ShardProgress::default();
        let mut failed: Option<usize> = None;
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Ok(p) => {
                    total.grouped += p.grouped;
                    total.closed += p.closed;
                    total.open += p.open;
                    total.pending += p.pending;
                }
                Err(()) => failed = failed.or(Some(i)),
            }
        }
        if let Some(shard) = failed {
            self.poisoned = true;
            return Err(ServeError::ShardPanic { shard });
        }
        // Collect closed flows deterministically: shard-index order.
        for m in &mut self.shards {
            let mut flows = m.get_mut().expect("shard lock").take_closed();
            for flow in &flows {
                let week = (flow.start / WEEK_SECS) as usize;
                self.roller
                    .record(week, flow.classify() == FlowClass::Attack);
            }
            self.collected.append(&mut flows);
        }
        self.stats.grouped += total.grouped;
        self.stats.flows_closed += total.closed as u64;
        self.stats.peak_open_flows = self.stats.peak_open_flows.max(total.open);
        self.stats.peak_pending = self.stats.peak_pending.max(total.pending);
        booters_obs::counter_add("serve.packets_grouped", total.grouped);
        booters_obs::counter_add("serve.flows_closed", total.closed as u64);
        booters_obs::gauge_max("serve.open_flows", total.open as u64);
        booters_obs::gauge_max("serve.pending_packets", total.pending as u64);
        Ok(total)
    }

    /// Week-close bookkeeping for a watermark move to `w`: every newly
    /// completed week triggers one rolling refit on the counts so far.
    fn note_watermark(&mut self, w: u64) {
        let old_weeks = self.watermark / WEEK_SECS;
        let new_weeks = w / WEEK_SECS;
        self.watermark = w;
        if new_weeks > old_weeks {
            let closed = (new_weeks - old_weeks) as u64;
            self.stats.weeks_closed += closed;
            booters_obs::counter_add("serve.weeks_closed", closed);
            self.roller.ensure_weeks(new_weeks as usize);
            // One refit per advance that closed ≥ 1 week: the model sees
            // counts exactly as they stood at this watermark.
            let _ = self.fitter.refit(&self.roller.attacks()[..new_weeks as usize]);
            self.stats.refits_warm = self.fitter.warm_refits;
            self.stats.refits_full = self.fitter.full_refits;
            self.stats.refit_failures = self.fitter.failures;
        }
    }

    /// Advance the watermark to `w` (clamped to be non-decreasing):
    /// group every buffered packet with `time < w`, expire every flow
    /// that can no longer be extended, and close any week the watermark
    /// passed. Returns the number of flows closed by this advance.
    ///
    /// The caller promises that every packet offered **after** this
    /// call has `time ≥ w`; a violation is a later
    /// [`ServeError::LateArrival`].
    pub fn advance_watermark(&mut self, w: u64) -> Result<usize, ServeError> {
        if self.poisoned {
            return Err(ServeError::Poisoned);
        }
        booters_obs::span!("serve.advance");
        let w = w.max(self.watermark);
        let progress = self.fan_out(move |shard| shard.advance(w))?;
        self.stats.watermark_advances += 1;
        self.note_watermark(w);
        Ok(progress.closed)
    }

    /// Close the current epoch: group **everything** buffered
    /// (regardless of watermark), expire every open flow, move the
    /// watermark to `w` (closing any weeks passed), and return all
    /// closed flows in canonical [`sort_flows`] order.
    ///
    /// The batch pipeline groups each full-packet week in isolation;
    /// closing an epoch at each week end makes the streaming path's
    /// per-week flow sets — and every table derived from them —
    /// byte-identical to batch.
    pub fn close_epoch_at(&mut self, w: u64) -> Result<Vec<Flow>, ServeError> {
        if self.poisoned {
            return Err(ServeError::Poisoned);
        }
        booters_obs::span!("serve.close_epoch");
        self.fan_out(|shard| shard.close_all())?;
        self.stats.epochs += 1;
        booters_obs::counter_add("serve.epochs", 1);
        self.note_watermark(w.max(self.watermark));
        let mut flows = std::mem::take(&mut self.collected);
        sort_flows(&mut flows);
        Ok(flows)
    }

    /// [`Self::close_epoch_at`] the current watermark (no week close).
    pub fn close_epoch(&mut self) -> Result<Vec<Flow>, ServeError> {
        let w = self.watermark;
        self.close_epoch_at(w)
    }

    /// Take every flow closed so far, in canonical [`sort_flows`]
    /// order, leaving open flows and pending packets untouched.
    pub fn take_flows(&mut self) -> Result<Vec<Flow>, ServeError> {
        if self.poisoned {
            return Err(ServeError::Poisoned);
        }
        let mut flows = std::mem::take(&mut self.collected);
        sort_flows(&mut flows);
        Ok(flows)
    }

    /// Work counters so far (cheap clone).
    pub fn stats(&self) -> ServeStats {
        self.stats.clone()
    }

    /// The most recent rolling NB2 fit, if any week has closed with
    /// enough data.
    pub fn last_fit(&self) -> Option<&RollingFit> {
        self.fitter.last_fit()
    }

    /// First error deferred by the infallible [`PacketSink`] path, if
    /// any.
    pub fn sink_error(&self) -> Option<&ServeError> {
        self.deferred.as_ref()
    }

    /// Close everything and return (canonical flows, final stats).
    ///
    /// Surfaces the first deferred sink-path error instead of emitting
    /// flows — a stream that broke mid-flight never yields a
    /// partially-corrupt result.
    pub fn finish(mut self) -> Result<(Vec<Flow>, ServeStats), ServeError> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        let w = self.max_time;
        let flows = self.close_epoch_at(w)?;
        Ok((flows, self.stats))
    }
}

impl PacketSink for ServeNode {
    /// Infallible intake: backpressure is absorbed by draining, and the
    /// first hard failure (late arrival, poisoning) is recorded and
    /// surfaced at [`ServeNode::finish`] — the same deferred-error
    /// contract as `booters_store::SpillGrouper`. Packets after the
    /// first failure are dropped deliberately: the stream is already
    /// broken, and grouping a suffix could only fabricate flows.
    fn accept(&mut self, packet: &SensorPacket) {
        if self.deferred.is_some() {
            return;
        }
        if let Err(e) = self.ingest(packet) {
            self.deferred = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_netsim::flow::FLOW_GAP_SECS;
    use booters_netsim::{UdpProtocol, VictimAddr};

    fn pkt(time: u64, victim: u32, sensor: u32) -> SensorPacket {
        SensorPacket {
            time,
            sensor,
            victim: VictimAddr(victim),
            protocol: UdpProtocol::ALL[victim as usize % 10],
            ttl: 64,
            src_port: 123,
        }
    }

    fn cfg() -> ServeConfig {
        ServeConfig {
            shards: 4,
            queue_capacity: 16,
            refit: RefitPolicy {
                enabled: false,
                ..RefitPolicy::default()
            },
            ..ServeConfig::default()
        }
    }

    #[test]
    fn watermark_advance_expires_only_settled_flows() {
        let mut node = ServeNode::new(cfg());
        node.ingest(&pkt(0, 1, 0)).unwrap();
        node.ingest(&pkt(100, 1, 1)).unwrap();
        node.ingest(&pkt(200, 2, 0)).unwrap();
        // Watermark 100 over gap 900: nothing is expirable yet.
        assert_eq!(node.advance_watermark(100).unwrap(), 0);
        // Far future: both flows expire.
        let closed = node.advance_watermark(200 + FLOW_GAP_SECS + 1).unwrap();
        assert_eq!(closed, 2);
        let flows = node.take_flows().unwrap();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].start, 0);
        assert_eq!(flows[0].total_packets, 2);
        assert_eq!(flows[1].start, 200);
    }

    #[test]
    fn out_of_order_arrival_within_the_watermark_is_resorted() {
        let mut node = ServeNode::new(cfg());
        // Arrive late-first: the grouper alone would mis-set `start`.
        node.ingest(&pkt(1_500, 9, 0)).unwrap();
        node.ingest(&pkt(1_000, 9, 1)).unwrap();
        let (flows, stats) = node.finish().unwrap();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].start, 1_000, "start must be the true minimum");
        assert_eq!(flows[0].end, 1_500);
        assert_eq!(stats.packets, 2);
    }

    #[test]
    fn late_arrival_is_a_typed_error() {
        let mut node = ServeNode::new(cfg());
        node.ingest(&pkt(5_000, 3, 0)).unwrap();
        node.advance_watermark(4_000).unwrap();
        let err = node.ingest(&pkt(3_999, 3, 1)).unwrap_err();
        assert_eq!(
            err,
            ServeError::LateArrival {
                time: 3_999,
                watermark: 4_000
            }
        );
        // Equal to the watermark is lawful.
        node.ingest(&pkt(4_000, 3, 1)).unwrap();
    }

    #[test]
    fn suggested_watermark_trails_by_the_lag() {
        let mut node = ServeNode::new(ServeConfig {
            watermark_lag_secs: 600,
            ..cfg()
        });
        assert_eq!(node.suggested_watermark(), 0);
        node.ingest(&pkt(10_000, 1, 0)).unwrap();
        assert_eq!(node.suggested_watermark(), 9_400);
    }

    #[test]
    fn epoch_close_counts_weeks_and_epochs() {
        let mut node = ServeNode::new(cfg());
        node.ingest(&pkt(10, 1, 0)).unwrap();
        let flows = node.close_epoch_at(WEEK_SECS).unwrap();
        assert_eq!(flows.len(), 1);
        node.ingest(&pkt(WEEK_SECS + 5, 2, 0)).unwrap();
        let flows = node.close_epoch_at(2 * WEEK_SECS).unwrap();
        assert_eq!(flows.len(), 1);
        let stats = node.stats();
        assert_eq!(stats.epochs, 2);
        assert_eq!(stats.weeks_closed, 2);
    }
}
