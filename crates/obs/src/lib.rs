#![warn(missing_docs)]
//! # booters-obs
//!
//! Zero-dependency tracing/metrics for the simulate → group → fit →
//! report pipeline: hierarchical span timers, monotonic counters and
//! peak gauges, and a thread-aware registry that merges worker-thread
//! metrics deterministically.
//!
//! ## The one rule: metrics can never alter results
//!
//! Instrumented code calls [`counter_add`], [`gauge_max`] or [`span!`]
//! unconditionally; every entry point checks [`enabled`] first, and when
//! observability is off that check is **one relaxed atomic load** — no
//! locks, no TLS access, no clock reads — so goldens and benches see the
//! uninstrumented hot path. Nothing in this crate is ever read back by
//! pipeline code: metrics flow out of the workers into the registry, and
//! from the registry only into reports. `DESIGN.md` §5e states the
//! contract; `tests/obs_golden.rs` pins it (byte-identical Table 1/2 with
//! observability on).
//!
//! ## Enabling
//!
//! Observability is **off by default**. It turns on when the
//! `BOOTERS_OBS` environment variable is set to anything other than `0`
//! (read once, at first use), or programmatically via [`set_enabled`]
//! (used by `repro_report` and the golden tests).
//!
//! ## Determinism of merged counters
//!
//! Worker threads accumulate into thread-local maps; a thread's map is
//! folded into the process-wide registry when the thread exits (the
//! `booters-par` pool uses scoped threads, so every worker has flushed by
//! the time a `par_*` call returns) or when that thread calls
//! [`snapshot`]. Counter merging is addition and gauge merging is `max` —
//! both commutative and associative — so the merged totals are
//! independent of thread scheduling and arrival order. Workload counters
//! (packets emitted, IRLS iterations, spill runs …) are therefore
//! identical at every `BOOTERS_THREADS` setting, because the work itself
//! is deterministic. Scheduling counters (`par.pool_dispatches` /
//! `par.seq_fallbacks`) and span *durations* legitimately vary with
//! thread count and wall clock; tests compare only workload counters.
//!
//! ## Spans
//!
//! ```
//! booters_obs::set_enabled(true);
//! {
//!     booters_obs::span!("group_flows");
//!     // ... nested spans record under "group_flows/..." ...
//! }
//! let snap = booters_obs::snapshot();
//! assert_eq!(snap.spans["group_flows"].count, 1);
//! # booters_obs::set_enabled(false);
//! # booters_obs::reset();
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enabled state: the no-op fast path.
// ---------------------------------------------------------------------------

/// Tri-state: 0 = not yet initialised from the environment, 1 = off,
/// 2 = on. After first use, [`enabled`] is a single relaxed load.
static ENABLED: AtomicU8 = AtomicU8::new(STATE_UNSET);

const STATE_UNSET: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

#[cold]
fn init_from_env() -> bool {
    let on = match std::env::var("BOOTERS_OBS") {
        Ok(v) => !matches!(v.trim(), "" | "0"),
        Err(_) => false,
    };
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Whether metrics are being recorded. When off, every recording entry
/// point returns after this one relaxed atomic load — the documented
/// no-op fast path.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

/// Turn recording on or off programmatically, overriding `BOOTERS_OBS`.
/// Used by `repro_report` (always wants timings) and by tests.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// The registry: thread-local accumulation, commutative global merge.
// ---------------------------------------------------------------------------

/// Accumulated timing of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times the span was entered and exited.
    pub count: u64,
    /// Total wall time spent inside, in nanoseconds.
    pub total_ns: u64,
}

/// One thread's pending metrics; folded into [`GLOBAL`] on thread exit or
/// [`snapshot`].
#[derive(Default)]
struct Local {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, u64>,
    spans: BTreeMap<String, SpanStat>,
    /// The active span stack: name per open guard (paths are the
    /// "/"-joined prefixes of this stack).
    stack: Vec<&'static str>,
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    spans: BTreeMap<String, SpanStat>,
}

impl Registry {
    fn absorb(&mut self, local: &mut Local) {
        for (k, v) in std::mem::take(&mut local.counters) {
            *self.counters.entry(k.to_string()).or_insert(0) += v;
        }
        for (k, v) in std::mem::take(&mut local.gauges) {
            let g = self.gauges.entry(k.to_string()).or_insert(0);
            *g = (*g).max(v);
        }
        for (k, v) in std::mem::take(&mut local.spans) {
            let s = self.spans.entry(k).or_default();
            s.count += v.count;
            s.total_ns += v.total_ns;
        }
    }
}

static GLOBAL: Mutex<Registry> = Mutex::new(Registry {
    counters: BTreeMap::new(),
    gauges: BTreeMap::new(),
    spans: BTreeMap::new(),
});

/// Flushes the thread's metrics into [`GLOBAL`] when the thread exits.
struct FlushOnDrop(std::cell::RefCell<Local>);

impl Drop for FlushOnDrop {
    fn drop(&mut self) {
        let local = self.0.get_mut();
        if let Ok(mut global) = GLOBAL.lock() {
            global.absorb(local);
        }
    }
}

thread_local! {
    static LOCAL: FlushOnDrop = FlushOnDrop(std::cell::RefCell::new(Local::default()));
}

/// Run `f` on this thread's local metrics. No-op (returns `None`) during
/// thread teardown, when the TLS slot is already gone — a metric recorded
/// that late is dropped rather than panicking.
fn with_local<T>(f: impl FnOnce(&mut Local) -> T) -> Option<T> {
    LOCAL.try_with(|l| f(&mut l.0.borrow_mut())).ok()
}

/// Add `v` to the monotonic counter `name`. No-op unless [`enabled`].
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| *l.counters.entry(name).or_insert(0) += v);
}

/// Raise the peak gauge `name` to at least `v`. No-op unless [`enabled`].
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    with_local(|l| {
        let g = l.gauges.entry(name).or_insert(0);
        *g = (*g).max(v);
    });
}

// ---------------------------------------------------------------------------
// Spans.
// ---------------------------------------------------------------------------

/// RAII timer for one span. Created by [`span()`] / [`span!`]; records the
/// elapsed wall time under the hierarchical "/"-joined path of all spans
/// open on this thread when it drops. Inert (records nothing) when
/// observability was off at creation.
#[must_use = "a span guard times the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    /// Full hierarchical path, e.g. `"simulate/group"`. `None` when
    /// recording was disabled at creation (the inert guard).
    path: Option<String>,
    /// Stack depth after our push — drop truncates back to `depth - 1`,
    /// which also repairs the stack if inner guards leaked.
    depth: usize,
    start: Instant,
}

/// Open a span named `name`, timed until the returned guard drops. The
/// recorded path is the "/"-join of every span open on this thread, so
/// nested spans produce `outer/inner` entries. Inert unless [`enabled`].
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            path: None,
            depth: 0,
            start: Instant::now(),
        };
    }
    let (path, depth) = with_local(|l| {
        l.stack.push(name);
        (l.stack.join("/"), l.stack.len())
    })
    .unwrap_or_else(|| (name.to_string(), 0));
    SpanGuard {
        path: Some(path),
        depth,
        start: Instant::now(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        let elapsed = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let depth = self.depth;
        with_local(|l| {
            let s = l.spans.entry(path).or_default();
            s.count += 1;
            s.total_ns += elapsed;
            if depth > 0 && l.stack.len() >= depth {
                l.stack.truncate(depth - 1);
            }
        });
    }
}

/// Time the rest of the enclosing scope as a span:
/// `booters_obs::span!("fit")` expands to a guard bound for the scope.
/// Use [`span()`] directly when the guard needs an explicit lifetime.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _booters_obs_span_guard = $crate::span($name);
    };
}

// ---------------------------------------------------------------------------
// Snapshot / reset.
// ---------------------------------------------------------------------------

/// A merged, point-in-time copy of every recorded metric: the calling
/// thread's pending metrics plus everything already flushed to the
/// process-wide registry (all exited worker threads, all prior
/// snapshotting threads).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// Peak gauges, by name.
    pub gauges: BTreeMap<String, u64>,
    /// Span timings, by "/"-joined hierarchical path.
    pub spans: BTreeMap<String, SpanStat>,
}

impl Snapshot {
    /// A counter's value, 0 when never recorded.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The workload counters: every counter except the `par.` scheduling
    /// family, which legitimately varies with thread count. Everything
    /// here is a pure function of the work performed, so it must be
    /// identical at every `BOOTERS_THREADS` setting.
    pub fn workload_counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(k, _)| !k.starts_with("par."))
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// Flush the calling thread's pending metrics and return a merged copy of
/// the registry. Live threads other than the caller contribute only what
/// they have already flushed (scoped pool workers flush on exit, so after
/// a `par_*` call returns their metrics are all present).
pub fn snapshot() -> Snapshot {
    let mut global = GLOBAL.lock().expect("obs registry poisoned");
    with_local(|l| {
        let stack = std::mem::take(&mut l.stack);
        global.absorb(l);
        // absorb() drains the maps; the open-span stack must survive the
        // flush so guards created before the snapshot still close cleanly.
        l.stack = stack;
    });
    Snapshot {
        counters: global.counters.clone(),
        gauges: global.gauges.clone(),
        spans: global.spans.clone(),
    }
}

/// Clear the registry and the calling thread's pending metrics. Metrics
/// other live threads have not yet flushed survive in their TLS; tests
/// that need exact totals serialise around `reset` + workload +
/// [`snapshot`].
pub fn reset() {
    let mut global = GLOBAL.lock().expect("obs registry poisoned");
    *global = Registry::default();
    with_local(|l| {
        let stack = std::mem::take(&mut l.stack);
        *l = Local::default();
        l.stack = stack;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as TestMutex;

    /// Recording state and the registry are process-global; tests that
    /// toggle them serialise here.
    static TEST_LOCK: TestMutex<()> = TestMutex::new(());

    fn locked_enabled() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(true);
        reset();
        guard
    }

    #[test]
    fn disabled_is_a_no_op() {
        let _g = locked_enabled();
        set_enabled(false);
        counter_add("off.counter", 5);
        gauge_max("off.gauge", 7);
        {
            span!("off_span");
        }
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.counter("off.counter"), 0);
        assert!(!snap.gauges.contains_key("off.gauge"));
        assert!(!snap.spans.contains_key("off_span"));
        set_enabled(false);
    }

    #[test]
    fn counters_accumulate_and_gauges_peak() {
        let _g = locked_enabled();
        counter_add("t.count", 2);
        counter_add("t.count", 3);
        gauge_max("t.peak", 10);
        gauge_max("t.peak", 4);
        let snap = snapshot();
        assert_eq!(snap.counter("t.count"), 5);
        assert_eq!(snap.gauges["t.peak"], 10);
        set_enabled(false);
    }

    #[test]
    fn span_nesting_builds_hierarchical_paths() {
        let _g = locked_enabled();
        {
            span!("outer");
            {
                span!("inner");
            }
            {
                span!("inner");
            }
        }
        let snap = snapshot();
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer/inner"].count, 2);
        assert!(!snap.spans.contains_key("inner"));
        set_enabled(false);
    }

    #[test]
    fn guard_drop_order_unwinds_the_stack() {
        let _g = locked_enabled();
        // Explicit guards dropped in reverse creation order (normal RAII).
        let a = span("a");
        let b = span("b");
        drop(b);
        // After the inner guard closed, a new span nests under "a" only.
        {
            span!("c");
        }
        drop(a);
        // The stack is empty again: a fresh span is a root.
        {
            span!("d");
        }
        let snap = snapshot();
        assert_eq!(snap.spans["a"].count, 1);
        assert_eq!(snap.spans["a/b"].count, 1);
        assert_eq!(snap.spans["a/c"].count, 1);
        assert_eq!(snap.spans["d"].count, 1);
        set_enabled(false);
    }

    #[test]
    fn out_of_order_drop_repairs_the_stack() {
        let _g = locked_enabled();
        let a = span("a");
        let b = span("b");
        // Dropping the outer guard first truncates the stack through the
        // inner entry; the inner guard then finds the stack shorter than
        // its depth and leaves it alone.
        drop(a);
        drop(b);
        {
            span!("after");
        }
        let snap = snapshot();
        assert_eq!(snap.spans["a"].count, 1);
        assert_eq!(snap.spans["a/b"].count, 1);
        assert_eq!(snap.spans["after"].count, 1, "stack must be empty again");
        set_enabled(false);
    }

    #[test]
    fn spans_record_elapsed_time() {
        let _g = locked_enabled();
        {
            span!("sleepy");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = snapshot();
        assert!(snap.spans["sleepy"].total_ns >= 1_000_000);
        set_enabled(false);
    }

    #[test]
    fn worker_threads_flush_on_exit_and_merge_commutes() {
        let _g = locked_enabled();
        std::thread::scope(|s| {
            for i in 0..4u64 {
                s.spawn(move || {
                    counter_add("w.items", i + 1);
                    gauge_max("w.peak", i);
                });
            }
        });
        let snap = snapshot();
        assert_eq!(snap.counter("w.items"), 1 + 2 + 3 + 4);
        assert_eq!(snap.gauges["w.peak"], 3);
        set_enabled(false);
    }

    #[test]
    fn snapshot_preserves_open_spans() {
        let _g = locked_enabled();
        let outer = span("open_outer");
        let _snap = snapshot(); // must not clobber the open-span stack
        {
            span!("child");
        }
        drop(outer);
        let snap = snapshot();
        assert_eq!(snap.spans["open_outer/child"].count, 1);
        assert_eq!(snap.spans["open_outer"].count, 1);
        set_enabled(false);
    }

    #[test]
    fn workload_counters_exclude_scheduling() {
        let _g = locked_enabled();
        counter_add("par.pool_dispatches", 2);
        counter_add("glm.irls_iterations", 9);
        let snap = snapshot();
        let w = snap.workload_counters();
        assert!(!w.contains_key("par.pool_dispatches"));
        assert_eq!(w["glm.irls_iterations"], 9);
        set_enabled(false);
    }

    #[test]
    fn reset_clears_everything() {
        let _g = locked_enabled();
        counter_add("r.count", 1);
        {
            span!("r_span");
        }
        reset();
        let snap = snapshot();
        assert_eq!(snap.counter("r.count"), 0);
        assert!(snap.spans.is_empty());
        set_enabled(false);
    }
}
