//! Pruning-soundness property suite: for *arbitrary* packet sets, chunk
//! layouts, and predicates, a zone-map-pruned scan must return exactly
//! what a brute-force full decode + row filter returns — including the
//! degenerate shapes (empty results, single-chunk hits, every chunk
//! pruned) — and the no-materialization kernels must agree with the
//! materializing oracle.
//!
//! The generator is adversarial on purpose: victim/time ranges are tight
//! so zone envelopes overlap, chunk capacities are tiny so stores have
//! many chunks, and predicates are drawn independently of the data so
//! they regularly hit nothing, one chunk, or everything.

use booters_netsim::{SensorPacket, UdpProtocol, VictimAddr};
use booters_query::{Column, Predicate, QueryEngine, WeeklyPanel, WEEK_SECS};
use booters_store::ChunkWriter;
use booters_testkit::strategy::prop;
use booters_testkit::{forall, prop_assert, prop_assert_eq, Strategy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn test_path(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "booters_query_prop_{name}_{}_{seq}.bstore",
        std::process::id()
    ))
}

/// One packet in a deliberately tight domain: times inside two weeks,
/// victims in a 40-key band that crosses a /24 boundary (base 0x190700C0
/// = 25.7.0.192, so +40 spills into 25.7.1.*), protocols across the
/// full table.
fn packet() -> impl Strategy<Value = SensorPacket> {
    (
        0u64..(2 * WEEK_SECS),
        0u32..40,
        0usize..UdpProtocol::ALL.len(),
        0u32..4,
    )
        .prop_map(|(time, v, proto, sensor)| SensorPacket {
            time,
            sensor,
            victim: VictimAddr(0x1907_00C0 + v),
            protocol: UdpProtocol::ALL[proto],
            ttl: 64,
            src_port: 123,
        })
}

/// A predicate drawn independently of the data: each clause is present
/// or absent, and the victim clause exercises every filter shape.
fn predicate() -> impl Strategy<Value = Predicate> {
    (
        (
            0u8..4,                // time clause selector
            0u64..(2 * WEEK_SECS), // time window start
            0u64..WEEK_SECS,       // time window length
        ),
        (
            0u8..6,   // victim clause selector
            0u32..48, // victim operand a
            0u32..48, // victim operand b
        ),
        (
            0u8..4, // protocol clause selector
            0usize..UdpProtocol::ALL.len(),
        ),
    )
        .prop_map(|((tsel, from, len), (vsel, va, vb), (psel, proto))| {
            let mut p = Predicate::all();
            match tsel {
                0 => {}                                     // no time clause
                1 => p = p.with_time(from, from + len + 1), // plausible window
                2 => p = p.with_time(from, from),           // empty window
                _ => p = p.with_time(3 * WEEK_SECS, 4 * WEEK_SECS), // off the data
            }
            let addr = |k: u32| VictimAddr(0x1907_00C0 + k);
            match vsel {
                0 => {}
                1 => p = p.with_victim(addr(va)),
                2 => p = p.with_victim_set(&[addr(va), addr(vb), addr(va / 2)]),
                3 => p = p.with_victim_set(&[]),
                4 => p = p.with_prefix24(addr(va)),
                _ => {
                    let (lo, hi) = (va.min(vb), va.max(vb));
                    p = p.with_victim_range(addr(lo), addr(hi));
                }
            }
            match psel {
                0 => {}
                1 => p = p.with_protocols(&[UdpProtocol::ALL[proto]]),
                2 => p = p.with_protocols(&UdpProtocol::ALL),
                _ => p = p.with_protocols(&[]),
            }
            p
        })
}

fn write_store(name: &str, packets: &[SensorPacket], cap: usize) -> PathBuf {
    let path = test_path(name);
    let mut w = ChunkWriter::with_capacity(&path, cap).unwrap();
    w.push_all(packets).unwrap();
    w.finish().unwrap();
    path
}

forall! {
    #![cases(96)]
    fn pruned_scan_equals_brute_force_oracle(
        packets in prop::collection::vec(packet(), 1..160),
        cap in 1usize..24,
        pred in predicate()
    ) {
        let path = write_store("scan", &packets, cap);
        let eng = QueryEngine::open(&path).unwrap();
        let res = eng.scan(&pred).unwrap();
        std::fs::remove_file(&path).unwrap();

        // The brute-force oracle: every row, filtered in store order.
        let oracle: Vec<SensorPacket> =
            packets.iter().filter(|p| pred.matches(p)).cloned().collect();
        prop_assert_eq!(&res.rows, &oracle);

        // Accounting is conservation-law consistent.
        let chunks = packets.len().div_ceil(cap) as u64;
        prop_assert_eq!(res.stats.chunks_total, chunks);
        prop_assert_eq!(
            res.stats.chunks_pruned + res.stats.chunks_decoded + res.stats.chunks_cached,
            chunks
        );
        prop_assert_eq!(res.stats.rows_returned, oracle.len() as u64);
        prop_assert!(res.stats.rows_scanned <= packets.len() as u64);

        // Soundness: every row the oracle found came from an unpruned
        // chunk, so pruning everything implies an empty result.
        if res.stats.chunks_pruned == chunks {
            prop_assert!(oracle.is_empty());
        }
    }
}

forall! {
    #![cases(96)]
    fn kernels_agree_with_materializing_oracle(
        packets in prop::collection::vec(packet(), 1..160),
        cap in 1usize..24,
        pred in predicate()
    ) {
        let path = write_store("kernels", &packets, cap);
        let eng = QueryEngine::open(&path).unwrap();
        let (n, _) = eng.count(&pred).unwrap();
        let (sum, _) = eng.sum(&pred, Column::Time).unwrap();
        let (mm, _) = eng.min_max(&pred, Column::Victim).unwrap();
        let (panel, _) = eng.group_by_week(&pred).unwrap();
        std::fs::remove_file(&path).unwrap();

        let oracle: Vec<&SensorPacket> = packets.iter().filter(|p| pred.matches(p)).collect();
        prop_assert_eq!(n, oracle.len() as u64);
        prop_assert_eq!(sum, oracle.iter().map(|p| p.time as u128).sum::<u128>());
        let mm_oracle = oracle.iter().fold(None, |acc: Option<(u64, u64)>, p| {
            let v = p.victim.0 as u64;
            Some(match acc {
                None => (v, v),
                Some((lo, hi)) => (lo.min(v), hi.max(v)),
            })
        });
        prop_assert_eq!(mm, mm_oracle);

        let mut panel_oracle = WeeklyPanel::default();
        for p in &oracle {
            let key = (
                p.time / WEEK_SECS,
                p.victim.country().index() as u8,
                p.protocol.index() as u8,
            );
            *panel_oracle.cells.entry(key).or_insert(0) += 1;
        }
        prop_assert_eq!(&panel, &panel_oracle);
    }
}

forall! {
    #![cases(48)]
    fn pruning_and_results_are_plan_shape_invariant(
        packets in prop::collection::vec(packet(), 1..120),
        cap_a in 1usize..12,
        cap_b in 12usize..40,
        pred in predicate()
    ) {
        // The same rows stored under two different chunk layouts answer
        // every query identically — pruning is an optimisation, never a
        // semantics change.
        let path_a = write_store("layout_a", &packets, cap_a);
        let path_b = write_store("layout_b", &packets, cap_b);
        let ea = QueryEngine::open(&path_a).unwrap();
        let eb = QueryEngine::open(&path_b).unwrap();
        let ra = ea.scan(&pred).unwrap();
        let rb = eb.scan(&pred).unwrap();
        let ca = ea.count(&pred).unwrap().0;
        let cb = eb.count(&pred).unwrap().0;
        std::fs::remove_file(&path_a).unwrap();
        std::fs::remove_file(&path_b).unwrap();
        prop_assert_eq!(&ra.rows, &rb.rows);
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(ra.stats.rows_returned, ca);
    }
}

/// Serialise cache-budget-mutating tests (the budget is process-global)
/// and restore the previous budget even if an assertion panics.
struct BudgetGuard(usize, #[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        booters_store::set_cache_bytes(self.0);
    }
}

fn with_cache_budget(bytes: usize) -> BudgetGuard {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    BudgetGuard(booters_store::set_cache_bytes(bytes), g)
}

forall! {
    #![cases(48)]
    fn cached_repeat_queries_equal_fresh_decodes(
        packets in prop::collection::vec(packet(), 1..160),
        cap in 1usize..24,
        pred in predicate()
    ) {
        // The §5i coherence contract, end to end: with the cache on, a
        // repeat of the same scan must be answered from cached columns
        // (zero decodes) yet return byte-identical rows and row
        // accounting — and both must equal the brute-force oracle.
        let _budget = with_cache_budget(8 << 20);
        let path = write_store("cached", &packets, cap);
        let eng = QueryEngine::open(&path).unwrap();
        let cold = eng.scan(&pred).unwrap();
        let warm = eng.scan(&pred).unwrap();
        let (warm_count, count_stats) = eng.count(&pred).unwrap();
        std::fs::remove_file(&path).unwrap();

        let oracle: Vec<SensorPacket> =
            packets.iter().filter(|p| pred.matches(p)).cloned().collect();
        prop_assert_eq!(&cold.rows, &oracle);
        prop_assert_eq!(&warm.rows, &oracle);
        prop_assert_eq!(warm_count, oracle.len() as u64);

        // A fresh engine has a fresh store identity: the cold scan can
        // never hit, and the warm repeat must never decode.
        prop_assert_eq!(cold.stats.chunks_cached, 0);
        prop_assert_eq!(warm.stats.chunks_decoded, 0);
        prop_assert_eq!(warm.stats.chunks_cached, cold.stats.chunks_decoded);
        prop_assert_eq!(warm.stats.rows_scanned, cold.stats.rows_scanned);
        prop_assert_eq!(warm.stats.rows_returned, cold.stats.rows_returned);
        // count() shares the cache: nothing it planned needed a decode
        // (chunks its predicate covers are answered from the footer and
        // never touch the cache at all).
        prop_assert_eq!(count_stats.chunks_decoded, 0);
    }
}

#[test]
fn single_chunk_hit_decodes_exactly_one_chunk() {
    // Ten well-separated time bands, one chunk each; a predicate inside
    // band 6 must decode exactly chunk 6.
    let packets: Vec<SensorPacket> = (0..10u64)
        .flat_map(|band| {
            (0..16u64).map(move |i| SensorPacket {
                time: band * 10_000 + i,
                sensor: 0,
                victim: VictimAddr(100 + band as u32),
                protocol: UdpProtocol::ALL[(band % 10) as usize],
                ttl: 64,
                src_port: 123,
            })
        })
        .collect();
    let path = write_store("single_hit", &packets, 16);
    let eng = QueryEngine::open(&path).unwrap();
    assert_eq!(eng.chunk_count(), 10);
    let pred = Predicate::all().with_time(60_000, 60_008);
    let res = eng.scan(&pred).unwrap();
    // A fresh engine always misses the cache, so the one surviving chunk
    // is decoded (or cache-served on an env-cached re-run — either way,
    // exactly one chunk was touched).
    assert_eq!(res.stats.chunks_decoded + res.stats.chunks_cached, 1);
    assert_eq!(res.stats.chunks_pruned, 9);
    assert_eq!(res.rows.len(), 8);
    assert!(res.rows.iter().all(|p| p.victim == VictimAddr(106)));

    // And a predicate off every band prunes all ten chunks: zero I/O,
    // empty result.
    let res = eng.scan(&Predicate::all().with_time(95_000, 99_000)).unwrap();
    assert_eq!(res.stats.chunks_pruned, 10);
    assert_eq!(res.stats.chunks_decoded, 0);
    assert!(res.rows.is_empty());
    std::fs::remove_file(&path).unwrap();
}
