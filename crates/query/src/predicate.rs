//! Typed scan predicates and their zone-map pushdown rules.
//!
//! A [`Predicate`] is the conjunction of up to three clauses — a
//! half-open time range, a victim filter, and a protocol set. Each
//! clause knows three things:
//!
//! * how to test one row (via the decoded columns — the row itself is
//!   never needed);
//! * when a chunk's [`ZoneMap`] proves the chunk **cannot** contain a
//!   matching row ([`Predicate::may_match_zone`] returning `false` —
//!   the pruning rule);
//! * when a chunk's zone map proves **every** row in the chunk matches
//!   ([`Predicate::covers_zone`] — the count-without-decode rule).
//!
//! Both zone rules are conservative in the safe direction: pruning may
//! keep a chunk with no matches (the column filter then drops every
//! row), and coverage may decode a chunk that was fully covered — but
//! never the reverse. That asymmetry is the §5h soundness contract.

use booters_netsim::{SensorPacket, UdpProtocol, VictimAddr};
use booters_store::{ChunkColumns, ZoneMap};

/// A set of UDP protocols as a bitmask over [`UdpProtocol::ALL`] indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolSet(u16);

impl ProtocolSet {
    /// The empty set (matches no packet).
    pub fn empty() -> ProtocolSet {
        ProtocolSet(0)
    }

    /// The full set (matches every packet).
    pub fn all() -> ProtocolSet {
        ProtocolSet((1u16 << UdpProtocol::ALL.len()) - 1)
    }

    /// The set holding exactly `protocols`.
    pub fn of(protocols: &[UdpProtocol]) -> ProtocolSet {
        let mut s = ProtocolSet::empty();
        for p in protocols {
            s.insert(*p);
        }
        s
    }

    /// Add one protocol.
    pub fn insert(&mut self, p: UdpProtocol) {
        self.0 |= 1 << p.index();
    }

    /// Membership by protocol.
    pub fn contains(&self, p: UdpProtocol) -> bool {
        self.contains_index(p.index() as u8)
    }

    /// Membership by index into [`UdpProtocol::ALL`] — the form the
    /// decoded protocol column stores.
    pub fn contains_index(&self, i: u8) -> bool {
        self.0 & (1u16 << i) != 0
    }

    /// Whether no protocol is in the set.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Whether every protocol is in the set.
    pub fn is_full(&self) -> bool {
        self.0 == ProtocolSet::all().0
    }

    /// Number of protocols in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }
}

/// The victim clause of a [`Predicate`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum VictimFilter {
    /// Any victim (no constraint).
    #[default]
    Any,
    /// Exactly this victim address.
    Exact(VictimAddr),
    /// Any member of this set (kept sorted and deduplicated so both the
    /// row test and the zone test are a binary search).
    Set(Vec<u32>),
    /// Any address in this /24 — the value is the 24-bit prefix
    /// (`addr >> 8`), matching [`VictimAddr::prefix24`].
    Prefix24(u32),
    /// Any address in this inclusive `u32` key range.
    Range(u32, u32),
}

impl VictimFilter {
    /// Row-level test against a raw victim key.
    pub fn matches(&self, v: u32) -> bool {
        match self {
            VictimFilter::Any => true,
            VictimFilter::Exact(a) => a.0 == v,
            VictimFilter::Set(vs) => vs.binary_search(&v).is_ok(),
            VictimFilter::Prefix24(p) => v >> 8 == *p,
            VictimFilter::Range(lo, hi) => (*lo..=*hi).contains(&v),
        }
    }

    /// Could *some* victim accepted by this filter fall inside the zone
    /// map's `[min_victim, max_victim]` envelope?
    fn may_overlap(&self, zone: &ZoneMap) -> bool {
        let (lo, hi) = (zone.min_victim, zone.max_victim);
        match self {
            VictimFilter::Any => true,
            VictimFilter::Exact(a) => zone.may_contain_victim(*a),
            // First set member ≥ lo; the set is sorted, so it is the only
            // candidate that could also be ≤ hi.
            VictimFilter::Set(vs) => match vs.binary_search(&lo) {
                Ok(_) => true,
                Err(i) => vs.get(i).is_some_and(|&v| v <= hi),
            },
            VictimFilter::Prefix24(p) => {
                let base = p << 8;
                base <= hi && (base | 0xFF) >= lo
            }
            VictimFilter::Range(a, b) => *a <= hi && *b >= lo,
        }
    }

    /// Does this filter provably accept *every* victim in the zone map's
    /// envelope? Conservative: `false` is always allowed.
    fn covers(&self, zone: &ZoneMap) -> bool {
        let (lo, hi) = (zone.min_victim, zone.max_victim);
        match self {
            VictimFilter::Any => true,
            VictimFilter::Exact(a) => lo == hi && a.0 == lo,
            VictimFilter::Set(vs) => lo == hi && vs.binary_search(&lo).is_ok(),
            VictimFilter::Prefix24(p) => lo >> 8 == *p && hi >> 8 == *p,
            VictimFilter::Range(a, b) => *a <= lo && hi <= *b,
        }
    }
}

/// A typed scan predicate: the conjunction of a half-open time range, a
/// victim filter, and a protocol set. [`Predicate::all`] matches every
/// packet; the `with_*` builders narrow it.
///
/// ```
/// use booters_netsim::{UdpProtocol, VictimAddr};
/// use booters_query::Predicate;
///
/// let pred = Predicate::all()
///     .with_time(3_600, 7_200)
///     .with_prefix24(VictimAddr::from_octets(25, 1, 2, 99))
///     .with_protocols(&[UdpProtocol::Ntp, UdpProtocol::Dns]);
/// assert!(pred.time.is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Predicate {
    /// Half-open packet-time window `[from, to)`; `None` = all times.
    pub time: Option<(u64, u64)>,
    /// Victim clause.
    pub victim: VictimFilter,
    /// Protocol clause; `None` = all protocols.
    pub protocols: Option<ProtocolSet>,
}

impl Predicate {
    /// The trivial predicate that matches every packet.
    pub fn all() -> Predicate {
        Predicate::default()
    }

    /// Restrict to packet times in `[from, to)`.
    pub fn with_time(mut self, from: u64, to: u64) -> Predicate {
        self.time = Some((from, to));
        self
    }

    /// Restrict to exactly one victim address.
    pub fn with_victim(mut self, v: VictimAddr) -> Predicate {
        self.victim = VictimFilter::Exact(v);
        self
    }

    /// Restrict to a set of victim addresses (sorted and deduplicated
    /// internally; the empty set matches nothing and prunes every chunk).
    pub fn with_victim_set(mut self, vs: &[VictimAddr]) -> Predicate {
        let mut keys: Vec<u32> = vs.iter().map(|v| v.0).collect();
        keys.sort_unstable();
        keys.dedup();
        self.victim = VictimFilter::Set(keys);
        self
    }

    /// Restrict to the /24 containing `v`.
    pub fn with_prefix24(mut self, v: VictimAddr) -> Predicate {
        self.victim = VictimFilter::Prefix24(v.prefix24());
        self
    }

    /// Restrict to the inclusive victim-key range `[lo, hi]`.
    pub fn with_victim_range(mut self, lo: VictimAddr, hi: VictimAddr) -> Predicate {
        self.victim = VictimFilter::Range(lo.0, hi.0);
        self
    }

    /// Restrict to a set of protocols (the empty slice matches nothing).
    pub fn with_protocols(mut self, ps: &[UdpProtocol]) -> Predicate {
        self.protocols = Some(ProtocolSet::of(ps));
        self
    }

    /// Row-level test on the decoded columns at position `i` — the late
    /// materialization filter: no [`SensorPacket`] is built to decide.
    ///
    /// # Panics
    /// If `i >= cols.len()`.
    pub fn matches_at(&self, cols: &ChunkColumns, i: usize) -> bool {
        if let Some((from, to)) = self.time {
            let t = cols.times[i];
            if t < from || t >= to {
                return false;
            }
        }
        if !self.victim.matches(cols.victims[i]) {
            return false;
        }
        if let Some(ps) = &self.protocols {
            if !ps.contains_index(cols.protocols[i]) {
                return false;
            }
        }
        true
    }

    /// Row-level test on a materialized packet — the brute-force oracle
    /// the property suite compares pruned scans against.
    pub fn matches(&self, p: &SensorPacket) -> bool {
        if let Some((from, to)) = self.time {
            if p.time < from || p.time >= to {
                return false;
            }
        }
        if !self.victim.matches(p.victim.0) {
            return false;
        }
        if let Some(ps) = &self.protocols {
            if !ps.contains(p.protocol) {
                return false;
            }
        }
        true
    }

    /// The pushdown rule: could this chunk hold a matching row, judging
    /// by its zone map alone? `false` prunes the chunk — soundness
    /// (§5h) demands that a `false` here implies **no** row in the chunk
    /// matches, which holds because each clause only returns `false`
    /// when its accepted set is disjoint from the zone envelope (and the
    /// zone map is validated against the decoded data on every decode).
    pub fn may_match_zone(&self, zone: &ZoneMap) -> bool {
        if let Some((from, to)) = self.time {
            if !zone.overlaps_time(from, to) {
                return false;
            }
        }
        if !self.victim.may_overlap(zone) {
            return false;
        }
        if let Some(ps) = &self.protocols {
            if ps.is_empty() {
                return false;
            }
        }
        true
    }

    /// The count-without-decode rule: does the zone map prove **every**
    /// row in the chunk matches? Zone maps carry no protocol
    /// information, so any protocol clause short of the full set blocks
    /// coverage. Conservative: `false` never affects correctness, only
    /// cost.
    pub fn covers_zone(&self, zone: &ZoneMap) -> bool {
        if let Some((from, to)) = self.time {
            if !(from <= zone.min_time && zone.max_time < to) {
                return false;
            }
        }
        if !self.victim.covers(zone) {
            return false;
        }
        match &self.protocols {
            None => true,
            Some(ps) => ps.is_full(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone(t: (u64, u64), v: (u32, u32)) -> ZoneMap {
        ZoneMap {
            min_time: t.0,
            max_time: t.1,
            min_victim: v.0,
            max_victim: v.1,
        }
    }

    #[test]
    fn protocol_set_membership_and_cardinality() {
        let mut s = ProtocolSet::empty();
        assert!(s.is_empty());
        s.insert(UdpProtocol::Ntp);
        s.insert(UdpProtocol::Dns);
        s.insert(UdpProtocol::Ntp); // idempotent
        assert_eq!(s.len(), 2);
        assert!(s.contains(UdpProtocol::Ntp));
        assert!(!s.contains(UdpProtocol::Ldap));
        assert!(ProtocolSet::all().is_full());
        assert_eq!(ProtocolSet::all().len(), UdpProtocol::ALL.len());
    }

    #[test]
    fn time_clause_prunes_and_covers() {
        let z = zone((100, 200), (0, 10));
        let hit = Predicate::all().with_time(150, 160);
        let miss = Predicate::all().with_time(201, 500);
        let cover = Predicate::all().with_time(100, 201);
        let edge = Predicate::all().with_time(100, 200); // max_time==200 excluded
        assert!(hit.may_match_zone(&z) && !hit.covers_zone(&z));
        assert!(!miss.may_match_zone(&z));
        assert!(cover.may_match_zone(&z) && cover.covers_zone(&z));
        assert!(edge.may_match_zone(&z) && !edge.covers_zone(&z));
    }

    #[test]
    fn victim_set_pruning_uses_the_sorted_envelope() {
        let z = zone((0, 10), (100, 200));
        let inside = Predicate::all().with_victim_set(&[VictimAddr(5), VictimAddr(150)]);
        let below = Predicate::all().with_victim_set(&[VictimAddr(5), VictimAddr(99)]);
        let above = Predicate::all().with_victim_set(&[VictimAddr(201), VictimAddr(300)]);
        let empty = Predicate::all().with_victim_set(&[]);
        assert!(inside.may_match_zone(&z));
        assert!(!below.may_match_zone(&z));
        assert!(!above.may_match_zone(&z));
        assert!(!empty.may_match_zone(&z), "the empty set prunes everything");
    }

    #[test]
    fn prefix_filter_matches_rows_and_zones_consistently(){
        let v = VictimAddr::from_octets(25, 1, 2, 99);
        let pred = Predicate::all().with_prefix24(v);
        assert!(pred.victim.matches(VictimAddr::from_octets(25, 1, 2, 0).0));
        assert!(pred.victim.matches(VictimAddr::from_octets(25, 1, 2, 255).0));
        assert!(!pred.victim.matches(VictimAddr::from_octets(25, 1, 3, 0).0));
        // Straddles the /24 boundary on both sides: overlap, no coverage.
        let straddle = zone((0, 1), (v.0 - 200, v.0 + 200));
        let out_zone = zone((0, 1), (v.0 + 512, v.0 + 1024));
        assert!(pred.may_match_zone(&straddle));
        assert!(!pred.may_match_zone(&out_zone));
        // A zone entirely inside the /24 is covered.
        let tight = zone((0, 1), ((v.0 >> 8) << 8, ((v.0 >> 8) << 8) | 0xFF));
        assert!(pred.covers_zone(&tight));
        assert!(!pred.covers_zone(&straddle));
    }

    #[test]
    fn empty_protocol_set_prunes_every_zone() {
        let z = zone((0, u64::MAX - 1), (0, u32::MAX));
        let pred = Predicate::all().with_protocols(&[]);
        assert!(!pred.may_match_zone(&z));
        let full = Predicate::all().with_protocols(&UdpProtocol::ALL);
        assert!(full.may_match_zone(&z));
        assert!(full.covers_zone(&zone((0, 10), (0, 5))));
        let some = Predicate::all().with_protocols(&[UdpProtocol::Ntp]);
        assert!(some.may_match_zone(&z), "zone maps cannot prune protocols");
        assert!(!some.covers_zone(&zone((0, 10), (0, 5))));
    }

    #[test]
    fn range_filter_is_inclusive_on_both_ends() {
        let pred = Predicate::all().with_victim_range(VictimAddr(10), VictimAddr(20));
        assert!(pred.victim.matches(10) && pred.victim.matches(20));
        assert!(!pred.victim.matches(9) && !pred.victim.matches(21));
        assert!(pred.may_match_zone(&zone((0, 1), (20, 30))));
        assert!(!pred.may_match_zone(&zone((0, 1), (21, 30))));
        assert!(pred.covers_zone(&zone((0, 1), (10, 20))));
        assert!(!pred.covers_zone(&zone((0, 1), (10, 21))));
    }
}
