//! The query engine: shared footer state, pushdown planning, late
//! materialization, and the columnar aggregation kernels.

use crate::agg::{Column, WeeklyPanel, WEEK_SECS};
use crate::predicate::Predicate;
use booters_netsim::flow::VictimKey;
use booters_netsim::{group_flows_par, FlowClass, SensorPacket};
use booters_store::cache::{self, StoreId};
use booters_store::reader::ChunkReader;
use booters_store::{decode_chunk_columns, ChunkColumns, ChunkInfo, StoreError};
use std::collections::BTreeMap;
use std::fs::File;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The footer state every reader shares: parsed once at
/// [`QueryEngine::open`], then only ever read.
#[derive(Debug)]
struct EngineInner {
    /// Backing file path — the per-read `open` fallback on non-unix
    /// targets (and `Debug` context everywhere).
    #[cfg_attr(unix, allow(dead_code))]
    path: PathBuf,
    /// Shared read handle: chunk reads are positioned (`pread`-style),
    /// so concurrent queries on clones share this one descriptor with
    /// zero cursor state and no per-query `open`.
    file: File,
    index: Vec<ChunkInfo>,
    /// Byte extent `(offset, len)` of each chunk, precomputed so scan
    /// cursors need no further footer arithmetic.
    extents: Vec<(u64, u64)>,
    total_packets: u64,
    /// Decoded-chunk cache identity — minted at open, evicted when the
    /// last clone drops.
    store_id: StoreId,
}

impl Drop for EngineInner {
    fn drop(&mut self) {
        // Scratch stores are routinely deleted right after their engine
        // goes away; dropping our entries now keeps the cache free of
        // dead weight (and ids are never reused, so this is only
        // hygiene, not correctness).
        cache::evict_store(self.store_id);
    }
}

/// Configuration for query-backed pipeline weeks: where the scratch
/// store files live and how they are chunked. (The engine itself needs
/// no configuration — this parameterises the *write* side of the
/// write-then-query path `booters-core` runs per full-packet week.)
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Packets per chunk for scratch stores
    /// ([`booters_store::DEFAULT_CHUNK_CAPACITY`] by default — smaller
    /// values mean more chunks and finer-grained pruning).
    pub chunk_capacity: usize,
    /// Directory for scratch store files; `None` means the system temp
    /// directory.
    pub dir: Option<PathBuf>,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            chunk_capacity: booters_store::DEFAULT_CHUNK_CAPACITY,
            dir: None,
        }
    }
}

impl QueryConfig {
    /// A fresh, process-unique scratch-store path under the configured
    /// directory. The caller owns the file's lifecycle.
    pub fn scratch_path(&self) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = self.dir.clone().unwrap_or_else(std::env::temp_dir);
        dir.join(format!(
            "booters_query_scratch_{}_{seq}.bstore",
            std::process::id()
        ))
    }
}

/// A planned scan: the chunks that survived zone-map pruning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryPlan {
    /// Surviving chunk indices, ascending (store order).
    pub chunks: Vec<usize>,
    /// Chunks eliminated by zone maps alone — no I/O, no decode.
    pub pruned: usize,
    /// Total chunks in the store (`chunks.len() + pruned`).
    pub total: usize,
}

/// Work accounting for one query (or, via [`QueryStats::absorb`], a
/// whole run of them). All fields are exact and thread-count invariant:
/// pruning decisions depend only on the footer, and per-chunk work is
/// summed in submission order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Queries executed.
    pub scans: u64,
    /// Chunks considered by planners (the store's chunk count, summed
    /// over scans).
    pub chunks_total: u64,
    /// Chunks pruned by zone maps before any I/O.
    pub chunks_pruned: u64,
    /// Chunks answered from footer metadata alone (`count` on a chunk
    /// whose zone map the predicate covers) — read but never decoded.
    pub chunks_covered: u64,
    /// Chunks actually read and column-decoded.
    pub chunks_decoded: u64,
    /// Chunks answered from the decoded-chunk cache — planned for
    /// decode, but served without I/O or varint work (always 0 with
    /// `BOOTERS_CACHE_BYTES=0`). Conservation: `chunks_pruned +
    /// chunks_covered + chunks_decoded + chunks_cached = chunks_total`.
    pub chunks_cached: u64,
    /// Rows examined by column filters (decoded chunks × their rows).
    pub rows_scanned: u64,
    /// Rows matching the predicate (returned, counted, or aggregated).
    pub rows_returned: u64,
}

impl QueryStats {
    /// Fold another accounting in (field-wise addition).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.scans += other.scans;
        self.chunks_total += other.chunks_total;
        self.chunks_pruned += other.chunks_pruned;
        self.chunks_covered += other.chunks_covered;
        self.chunks_decoded += other.chunks_decoded;
        self.chunks_cached += other.chunks_cached;
        self.rows_scanned += other.rows_scanned;
        self.rows_returned += other.rows_returned;
    }

    /// Publish this accounting to the `query.*` observability counters
    /// (one call per query, outside the parallel region, so counter
    /// totals are thread-count invariant by construction).
    fn publish(&self) {
        booters_obs::counter_add("query.scans", self.scans);
        booters_obs::counter_add("query.chunks_pruned", self.chunks_pruned);
        booters_obs::counter_add("query.chunks_covered", self.chunks_covered);
        booters_obs::counter_add("query.chunks_decoded", self.chunks_decoded);
        booters_obs::counter_add("query.chunks_cached", self.chunks_cached);
        booters_obs::counter_add("query.rows_scanned", self.rows_scanned);
        booters_obs::counter_add("query.rows_returned", self.rows_returned);
    }
}

/// Rows matching a [`Predicate`], in store order, with the work
/// accounting that produced them.
#[derive(Debug, Clone)]
pub struct ScanResult {
    /// Matching rows, materialized late: only positions that passed the
    /// column filters were ever built into packets.
    pub rows: Vec<SensorPacket>,
    /// Work accounting for this scan.
    pub stats: QueryStats,
}

/// A predicate-pushdown query engine over one store file.
///
/// Opening validates the file exactly as
/// [`ChunkReader::open`] does (magics, footer
/// CRC, offset monotonicity) and keeps the footer index — plus one
/// shared read handle — behind an [`Arc`]. Cloning is an `Arc` bump;
/// chunk reads are positioned (`pread`-style, no cursor), so clones (or
/// one engine shared by reference) support fully concurrent scans — N
/// readers, zero shared state, zero per-query `open`s — while per-query
/// chunk decodes fan out over the `booters-par` executor. With
/// `BOOTERS_CACHE_BYTES` set, decoded chunks are served from the
/// process-wide [`cache`] on repeat access (hits are indistinguishable
/// from misses in content, order, and errors — DESIGN.md §5i; the
/// [`QueryStats::chunks_cached`] field accounts for them). Results are
/// identical at every thread count, kernel setting, and cache budget.
#[derive(Debug, Clone)]
pub struct QueryEngine {
    inner: Arc<EngineInner>,
}

impl QueryEngine {
    /// Open and validate a store file, parsing the footer once.
    pub fn open(path: impl AsRef<Path>) -> Result<QueryEngine, StoreError> {
        let reader = ChunkReader::open(path.as_ref())?;
        let extents = (0..reader.chunk_count())
            .map(|i| reader.chunk_extent(i))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(QueryEngine {
            inner: Arc::new(EngineInner {
                path: path.as_ref().to_path_buf(),
                file: File::open(path.as_ref())?,
                index: reader.index().to_vec(),
                extents,
                total_packets: reader.total_packets(),
                store_id: StoreId::mint(),
            }),
        })
    }

    /// Chunks in the store.
    pub fn chunk_count(&self) -> usize {
        self.inner.index.len()
    }

    /// Total packets across all chunks (footer metadata).
    pub fn total_packets(&self) -> u64 {
        self.inner.total_packets
    }

    /// Plan a scan: evaluate `pred` against every chunk's zone map and
    /// keep only the chunks that may hold a matching row. Footer
    /// metadata only — no I/O.
    pub fn plan(&self, pred: &Predicate) -> QueryPlan {
        let mut chunks = Vec::new();
        let mut pruned = 0usize;
        for (i, info) in self.inner.index.iter().enumerate() {
            if pred.may_match_zone(&info.zone) {
                chunks.push(i);
            } else {
                pruned += 1;
            }
        }
        QueryPlan {
            chunks,
            pruned,
            total: self.inner.index.len(),
        }
    }

    /// Read chunk `i`'s raw bytes with a positioned read on the shared
    /// handle — no per-query `open`, no cursor, safe from any thread.
    fn read_raw(&self, i: usize) -> Result<Vec<u8>, StoreError> {
        let (offset, len) = self.inner.extents[i];
        let mut bytes = vec![0u8; len as usize];
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.inner.file.read_exact_at(&mut bytes, offset)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut file = File::open(&self.inner.path)?;
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut bytes)?;
        }
        Ok(bytes)
    }

    /// Decode the planned chunks as columns and fold each through `f`
    /// (decode + fold fused into one `par_map_coarse` work item per
    /// chunk; submission-order reduction keeps results deterministic).
    ///
    /// Chunks resident in the decoded-chunk cache skip both the read and
    /// the decode — `f` runs on the cached columns, which are identical
    /// to a fresh decode by construction (DESIGN.md §5i). Element `j` of
    /// the result is `(f's value, was chunk j a cache hit)`. Lookups
    /// happen before the parallel region and misses publish after it, in
    /// plan order, so cache state — and with it every `cache.*` counter —
    /// is a pure function of the query sequence, never of the schedule.
    fn fold_chunks<R: Send>(
        &self,
        chunks: &[usize],
        f: impl Fn(&ChunkColumns) -> R + Sync,
    ) -> Result<Vec<(R, bool)>, StoreError> {
        enum Slot {
            Hit(Arc<ChunkColumns>),
            Raw(Vec<u8>),
        }
        let id = self.inner.store_id;
        let slots: Vec<Slot> = chunks
            .iter()
            .map(|&i| match cache::lookup(id, i) {
                Some(cols) => Ok(Slot::Hit(cols)),
                None => self.read_raw(i).map(Slot::Raw),
            })
            .collect::<Result<_, _>>()?;
        let folded = booters_par::par_map_coarse(
            &slots,
            |slot| -> Result<(R, Option<Arc<ChunkColumns>>), StoreError> {
                match slot {
                    Slot::Hit(cols) => Ok((f(cols), None)),
                    Slot::Raw(bytes) => {
                        let cols = Arc::new(decode_chunk_columns(bytes)?);
                        let out = f(&cols);
                        Ok((out, Some(cols)))
                    }
                }
            },
        );
        let mut out = Vec::with_capacity(chunks.len());
        for (j, item) in folded.into_iter().enumerate() {
            let (value, fresh): (R, Option<Arc<ChunkColumns>>) = item?;
            let cached = fresh.is_none();
            if let Some(cols) = fresh {
                cache::publish(id, chunks[j], &cols);
            }
            out.push((value, cached));
        }
        Ok(out)
    }

    /// Positions in `cols` matching `pred` — the selection vector the
    /// kernels share.
    fn select(pred: &Predicate, cols: &ChunkColumns) -> Vec<u32> {
        (0..cols.len() as u32)
            .filter(|&i| pred.matches_at(cols, i as usize))
            .collect()
    }

    fn base_stats(&self, plan: &QueryPlan) -> QueryStats {
        QueryStats {
            scans: 1,
            chunks_total: plan.total as u64,
            chunks_pruned: plan.pruned as u64,
            ..QueryStats::default()
        }
    }

    /// Scan: all rows matching `pred`, in store order, materialized
    /// late — the predicate runs on decoded columns and only surviving
    /// positions become [`SensorPacket`]s.
    pub fn scan(&self, pred: &Predicate) -> Result<ScanResult, StoreError> {
        booters_obs::span!("query.scan");
        let plan = self.plan(pred);
        let per_chunk = self.fold_chunks(&plan.chunks, |cols| {
            let sel = Self::select(pred, cols);
            let rows: Vec<SensorPacket> =
                sel.iter().map(|&i| cols.materialize(i as usize)).collect();
            (rows, cols.len() as u64)
        })?;
        let mut stats = self.base_stats(&plan);
        let mut rows = Vec::new();
        for ((chunk_rows, scanned), cached) in per_chunk {
            if cached {
                stats.chunks_cached += 1;
            } else {
                stats.chunks_decoded += 1;
            }
            stats.rows_scanned += scanned;
            stats.rows_returned += chunk_rows.len() as u64;
            rows.extend(chunk_rows);
        }
        stats.publish();
        Ok(ScanResult { rows, stats })
    }

    /// Count rows matching `pred` without materializing any row. Chunks
    /// whose zone map the predicate *covers* are answered from the
    /// footer packet count alone (no I/O at all); the rest decode as
    /// columns and count the selection.
    pub fn count(&self, pred: &Predicate) -> Result<(u64, QueryStats), StoreError> {
        booters_obs::span!("query.count");
        let plan = self.plan(pred);
        let mut stats = self.base_stats(&plan);
        let mut covered_rows = 0u64;
        let mut decode: Vec<usize> = Vec::new();
        for &i in &plan.chunks {
            let info = &self.inner.index[i];
            if pred.covers_zone(&info.zone) {
                stats.chunks_covered += 1;
                covered_rows += info.packets;
            } else {
                decode.push(i);
            }
        }
        let per_chunk = self.fold_chunks(&decode, |cols| {
            (Self::select(pred, cols).len() as u64, cols.len() as u64)
        })?;
        let mut matched = covered_rows;
        for ((hits, scanned), cached) in per_chunk {
            if cached {
                stats.chunks_cached += 1;
            } else {
                stats.chunks_decoded += 1;
            }
            stats.rows_scanned += scanned;
            matched += hits;
        }
        stats.rows_returned = matched;
        stats.publish();
        Ok((matched, stats))
    }

    /// Sum a numeric column over rows matching `pred`, widened to
    /// `u128` so no store can overflow it. Never materializes rows.
    pub fn sum(&self, pred: &Predicate, col: Column) -> Result<(u128, QueryStats), StoreError> {
        booters_obs::span!("query.sum");
        let plan = self.plan(pred);
        let per_chunk = self.fold_chunks(&plan.chunks, |cols| {
            let sel = Self::select(pred, cols);
            let sum: u128 = sel.iter().map(|&i| col.value_at(cols, i as usize) as u128).sum();
            (sum, sel.len() as u64, cols.len() as u64)
        })?;
        let mut stats = self.base_stats(&plan);
        let mut total = 0u128;
        for ((sum, hits, scanned), cached) in per_chunk {
            if cached {
                stats.chunks_cached += 1;
            } else {
                stats.chunks_decoded += 1;
            }
            stats.rows_scanned += scanned;
            stats.rows_returned += hits;
            total += sum;
        }
        stats.publish();
        Ok((total, stats))
    }

    /// Min and max of a numeric column over rows matching `pred`
    /// (`None` when nothing matches). Never materializes rows.
    pub fn min_max(
        &self,
        pred: &Predicate,
        col: Column,
    ) -> Result<(Option<(u64, u64)>, QueryStats), StoreError> {
        booters_obs::span!("query.min_max");
        let plan = self.plan(pred);
        let per_chunk = self.fold_chunks(&plan.chunks, |cols| {
            let sel = Self::select(pred, cols);
            let bounds = sel.iter().fold(None, |acc: Option<(u64, u64)>, &i| {
                let v = col.value_at(cols, i as usize);
                Some(match acc {
                    None => (v, v),
                    Some((lo, hi)) => (lo.min(v), hi.max(v)),
                })
            });
            (bounds, sel.len() as u64, cols.len() as u64)
        })?;
        let mut stats = self.base_stats(&plan);
        let mut bounds: Option<(u64, u64)> = None;
        for ((b, hits, scanned), cached) in per_chunk {
            if cached {
                stats.chunks_cached += 1;
            } else {
                stats.chunks_decoded += 1;
            }
            stats.rows_scanned += scanned;
            stats.rows_returned += hits;
            if let Some((lo, hi)) = b {
                bounds = Some(match bounds {
                    None => (lo, hi),
                    Some((l, h)) => (l.min(lo), h.max(hi)),
                });
            }
        }
        stats.publish();
        Ok((bounds, stats))
    }

    /// The weekly panel: packet counts per `(week, country, protocol)`
    /// over rows matching `pred` — the group-by the GLM stage's weekly
    /// datasets are built from. Per-chunk partial panels merge by
    /// cell-wise addition; no row is ever materialized.
    pub fn group_by_week(
        &self,
        pred: &Predicate,
    ) -> Result<(WeeklyPanel, QueryStats), StoreError> {
        booters_obs::span!("query.group_by_week");
        let plan = self.plan(pred);
        let per_chunk = self.fold_chunks(&plan.chunks, |cols| {
            let sel = Self::select(pred, cols);
            let panel = WeeklyPanel::of_selection(cols, &sel);
            (panel, sel.len() as u64, cols.len() as u64)
        })?;
        let mut stats = self.base_stats(&plan);
        let mut panel = WeeklyPanel::default();
        for ((p, hits, scanned), cached) in per_chunk {
            if cached {
                stats.chunks_cached += 1;
            } else {
                stats.chunks_decoded += 1;
            }
            stats.rows_scanned += scanned;
            stats.rows_returned += hits;
            panel.absorb(&p);
        }
        stats.publish();
        Ok((panel, stats))
    }

    /// Flow-grouped weekly **attack** counts over rows matching `pred`:
    /// the scanned rows run through the paper's 15-minute-gap flow
    /// grouping and >5-packets-per-sensor classifier, and each attack
    /// flow lands in the week of its first packet. This is the
    /// query-backed twin of the batch pipeline's rate computation
    /// (flows need per-sensor packet counts, so matching rows *are*
    /// materialized here — still only the matching ones).
    ///
    /// Requires an ingest-ordered store (rows non-decreasing in time,
    /// which every store written from a batch-simulated packet stream
    /// is); store order then equals time order for the scanned rows.
    pub fn weekly_attacks(
        &self,
        pred: &Predicate,
        key: VictimKey,
    ) -> Result<(BTreeMap<u64, u64>, QueryStats), StoreError> {
        booters_obs::span!("query.weekly_attacks");
        let scan = self.scan(pred)?;
        let flows = group_flows_par(&scan.rows, key);
        let mut weeks: BTreeMap<u64, u64> = BTreeMap::new();
        for f in &flows {
            if f.classify() == FlowClass::Attack {
                *weeks.entry(f.start / WEEK_SECS).or_insert(0) += 1;
            }
        }
        Ok((weeks, scan.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_netsim::{UdpProtocol, VictimAddr};
    use booters_store::ChunkWriter;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_path(name: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "booters_query_{name}_{}_{seq}.bstore",
            std::process::id()
        ))
    }

    fn pkt(time: u64, victim: u32, proto: usize, sensor: u32) -> SensorPacket {
        SensorPacket {
            time,
            sensor,
            victim: VictimAddr(victim),
            protocol: UdpProtocol::ALL[proto],
            ttl: 54,
            src_port: 443,
        }
    }

    /// Two well-separated chunks: times 0..100 / victims 0..10, then
    /// times 10_000..10_100 / victims 500..510.
    fn two_band_store(name: &str) -> (PathBuf, Vec<SensorPacket>) {
        let mut packets: Vec<SensorPacket> =
            (0..100u64).map(|i| pkt(i, (i % 10) as u32, (i % 3) as usize, 1)).collect();
        packets.extend((0..100u64).map(|i| pkt(10_000 + i, 500 + (i % 10) as u32, 4, 2)));
        let path = test_path(name);
        let mut w = ChunkWriter::with_capacity(&path, 100).unwrap();
        w.push_all(&packets).unwrap();
        w.finish().unwrap();
        (path, packets)
    }

    #[test]
    fn plan_prunes_via_zone_maps_and_scan_matches_oracle() {
        let (path, packets) = two_band_store("plan");
        let eng = QueryEngine::open(&path).unwrap();
        assert_eq!(eng.chunk_count(), 2);
        assert_eq!(eng.total_packets(), 200);

        let pred = Predicate::all().with_time(0, 200);
        let plan = eng.plan(&pred);
        assert_eq!(plan.chunks, vec![0]);
        assert_eq!((plan.pruned, plan.total), (1, 2));

        let res = eng.scan(&pred).unwrap();
        let oracle: Vec<SensorPacket> =
            packets.iter().filter(|p| pred.matches(p)).cloned().collect();
        assert_eq!(res.rows, oracle);
        assert_eq!(res.stats.chunks_pruned, 1);
        assert_eq!(res.stats.chunks_decoded, 1);
        assert_eq!(res.stats.rows_scanned, 100);
        assert_eq!(res.stats.rows_returned, 100);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn count_answers_covered_chunks_without_decoding() {
        let (path, _) = two_band_store("count_cover");
        let eng = QueryEngine::open(&path).unwrap();
        // Covers chunk 0 entirely, prunes chunk 1.
        let (n, stats) = eng.count(&Predicate::all().with_time(0, 100)).unwrap();
        assert_eq!(n, 100);
        assert_eq!(stats.chunks_covered, 1);
        assert_eq!(stats.chunks_decoded, 0);
        assert_eq!(stats.rows_scanned, 0);
        // The trivial predicate covers both chunks: a pure-footer count.
        let (n, stats) = eng.count(&Predicate::all()).unwrap();
        assert_eq!(n, 200);
        assert_eq!(stats.chunks_covered, 2);
        assert_eq!(stats.chunks_decoded, 0);
        // A protocol clause blocks coverage, forcing a decode.
        let (n, stats) = eng
            .count(&Predicate::all().with_protocols(&[UdpProtocol::ALL[4]]))
            .unwrap();
        assert_eq!(n, 100);
        assert_eq!(stats.chunks_covered, 0);
        assert_eq!(stats.chunks_decoded, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn aggregation_kernels_agree_with_materializing_oracle() {
        let (path, packets) = two_band_store("agg");
        let eng = QueryEngine::open(&path).unwrap();
        let pred = Predicate::all().with_victim_range(VictimAddr(5), VictimAddr(505));
        let oracle: Vec<&SensorPacket> = packets.iter().filter(|p| pred.matches(p)).collect();

        let (n, _) = eng.count(&pred).unwrap();
        assert_eq!(n, oracle.len() as u64);

        let (s, _) = eng.sum(&pred, Column::Time).unwrap();
        assert_eq!(s, oracle.iter().map(|p| p.time as u128).sum::<u128>());

        let (mm, _) = eng.min_max(&pred, Column::Victim).unwrap();
        let lo = oracle.iter().map(|p| p.victim.0 as u64).min().unwrap();
        let hi = oracle.iter().map(|p| p.victim.0 as u64).max().unwrap();
        assert_eq!(mm, Some((lo, hi)));

        // Nothing matches: min_max is None, count is 0.
        let nothing = Predicate::all().with_time(500, 600);
        assert_eq!(eng.min_max(&nothing, Column::Time).unwrap().0, None);
        assert_eq!(eng.count(&nothing).unwrap().0, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_by_week_buckets_by_week_country_protocol() {
        let day = 86_400;
        // Week 0 and week 2, two countries (via /8 blocks), two protocols.
        let packets = vec![
            pkt(0, VictimAddr::from_octets(25, 0, 0, 1).0, 0, 1),
            pkt(day, VictimAddr::from_octets(25, 0, 0, 2).0, 0, 1),
            pkt(14 * day + 5, VictimAddr::from_octets(80, 1, 0, 1).0, 4, 1),
        ];
        let path = test_path("gbw");
        let mut w = ChunkWriter::with_capacity(&path, 2).unwrap();
        w.push_all(&packets).unwrap();
        w.finish().unwrap();
        let eng = QueryEngine::open(&path).unwrap();
        let (panel, stats) = eng.group_by_week(&Predicate::all()).unwrap();
        assert_eq!(panel.total(), 3);
        assert_eq!(panel.weeks(), vec![0, 2]);
        assert_eq!(panel.week_total(0), 2);
        assert_eq!(stats.rows_returned, 3);
        let c25 = VictimAddr::from_octets(25, 0, 0, 1).country().index() as u8;
        assert_eq!(panel.cells[&(0, c25, 0)], 2);
        let csv = panel.to_csv();
        assert!(csv.starts_with("week,country,protocol,packets\n0,"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_clones_scan_one_store_consistently() {
        let (path, packets) = two_band_store("concurrent");
        let eng = QueryEngine::open(&path).unwrap();
        let preds = [
            Predicate::all(),
            Predicate::all().with_time(0, 50),
            Predicate::all().with_victim(VictimAddr(503)),
            Predicate::all().with_protocols(&[UdpProtocol::ALL[0]]),
        ];
        let mut handles = Vec::new();
        for pred in preds.iter().cloned() {
            let eng = eng.clone();
            handles.push(std::thread::spawn(move || eng.scan(&pred).unwrap().rows));
        }
        for (h, pred) in handles.into_iter().zip(preds.iter()) {
            let oracle: Vec<SensorPacket> =
                packets.iter().filter(|p| pred.matches(p)).cloned().collect();
            assert_eq!(h.join().unwrap(), oracle);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn weekly_attacks_counts_classified_flows_per_week() {
        // One dense burst (attack: >5 packets on one sensor) in week 0,
        // one single-packet scan in week 1.
        let mut packets: Vec<SensorPacket> =
            (0..10u64).map(|i| pkt(100 + i, 7, 2, 3)).collect();
        packets.push(pkt(8 * 86_400, 9, 2, 3));
        let path = test_path("weekly_attacks");
        let mut w = ChunkWriter::with_capacity(&path, 4).unwrap();
        w.push_all(&packets).unwrap();
        w.finish().unwrap();
        let eng = QueryEngine::open(&path).unwrap();
        let (weeks, stats) = eng
            .weekly_attacks(&Predicate::all(), VictimKey::ByIp)
            .unwrap();
        assert_eq!(weeks.get(&0), Some(&1));
        assert_eq!(weeks.get(&1), None, "a lone packet is a scan, not an attack");
        assert_eq!(stats.rows_returned, 11);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_results_are_thread_count_invariant() {
        let (path, _) = two_band_store("threads");
        let pred = Predicate::all().with_victim_range(VictimAddr(3), VictimAddr(507));
        let eng = QueryEngine::open(&path).unwrap();
        let baseline = booters_par::with_threads(1, || eng.scan(&pred).unwrap());
        for t in [2usize, 4] {
            let got = booters_par::with_threads(t, || eng.scan(&pred).unwrap());
            assert_eq!(got.rows, baseline.rows, "threads={t}");
            assert_eq!(got.stats, baseline.stats, "threads={t}");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
