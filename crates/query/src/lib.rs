//! Predicate-pushdown query engine over the `booters-store` columnar
//! packet store — the read path the reproduction's analyses actually
//! run: "attacks on these victims, over this protocol, in this time
//! window, bucketed by week".
//!
//! The engine ([`QueryEngine`]) opens a store file once, validates and
//! keeps the footer index (offsets + per-chunk zone maps) behind an
//! [`std::sync::Arc`], and answers queries in three stages:
//!
//! 1. **Plan** — a typed [`Predicate`] (time range, victim set/prefix,
//!    protocol set) is evaluated against the footer zone maps alone;
//!    chunks that provably cannot hold a matching row are pruned before
//!    any chunk I/O or decode ([`QueryEngine::plan`]). The soundness
//!    contract (DESIGN.md §5h): a pruned chunk contains **no** matching
//!    row, so pruning can never change a result — only skip work.
//! 2. **Scan** — surviving chunks are read and decoded *as columns*
//!    ([`booters_store::ChunkColumns`]), the predicate runs against the
//!    column vectors, and full [`booters_netsim::SensorPacket`] rows are
//!    materialized only for the positions that match (late
//!    materialization, [`QueryEngine::scan`]).
//! 3. **Aggregate** — the columnar kernels ([`QueryEngine::count`],
//!    [`QueryEngine::sum`], [`QueryEngine::min_max`],
//!    [`QueryEngine::group_by_week`]) never materialize rows at all;
//!    `count` additionally answers chunks whose zone map the predicate
//!    *covers* straight from the footer packet counts, with no I/O.
//!
//! Cloning a [`QueryEngine`] is cheap (an `Arc` bump) and every scan
//! opens its own file handle, so N threads can run N concurrent scans
//! against one store file with no shared cursor state; per-scan chunk
//! decodes additionally fan out over the `booters-par` executor.
//! Results and [`QueryStats`] totals are identical at every
//! `BOOTERS_THREADS` / kernel setting, and every operation is
//! instrumented with `query.*` spans and counters (chunks pruned vs
//! decoded, rows scanned vs returned) behind `BOOTERS_OBS`.

#![warn(missing_docs)]

pub mod agg;
pub mod engine;
pub mod predicate;

pub use agg::{Column, WeeklyPanel, WEEK_SECS};
pub use engine::{QueryConfig, QueryEngine, QueryPlan, QueryStats, ScanResult};
pub use predicate::{Predicate, ProtocolSet, VictimFilter};
