//! Columnar aggregation surfaces: the result types the engine's
//! no-materialization kernels produce.
//!
//! The kernels themselves live on [`QueryEngine`](crate::QueryEngine)
//! (they need the store file); this module holds the numeric column
//! selector and the week × (country, protocol) panel — the shape the
//! GLM stage's weekly datasets are built from.

use booters_netsim::{Country, UdpProtocol, VictimAddr};
use booters_store::ChunkColumns;
use std::collections::BTreeMap;

/// Seconds per analysis week — scenario time 0 is week 0's Monday, so a
/// packet's week is simply `time / WEEK_SECS` (the same bucketing the
/// streaming roller in `booters-serve` uses).
pub const WEEK_SECS: u64 = 7 * 86_400;

/// A numeric packet column the [`sum`](crate::QueryEngine::sum) and
/// [`min_max`](crate::QueryEngine::min_max) kernels can fold, widened
/// to `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Column {
    /// Packet time (seconds).
    Time,
    /// Victim address key.
    Victim,
    /// Sensor id.
    Sensor,
    /// Received TTL.
    Ttl,
    /// Spoofed source port.
    SrcPort,
}

impl Column {
    /// The value of this column at position `i`.
    pub(crate) fn value_at(&self, cols: &ChunkColumns, i: usize) -> u64 {
        match self {
            Column::Time => cols.times[i],
            Column::Victim => cols.victims[i] as u64,
            Column::Sensor => cols.sensors[i] as u64,
            Column::Ttl => cols.ttls[i] as u64,
            Column::SrcPort => cols.ports[i] as u64,
        }
    }
}

/// The weekly measurement panel: packet counts per
/// `(week, country, protocol)` cell, produced by
/// [`group_by_week`](crate::QueryEngine::group_by_week) without ever
/// materializing a row. Countries come from the victim address's /8
/// block ([`VictimAddr::country`]); cells are a `BTreeMap`, so
/// iteration (and the CSV rendering) is deterministic, and per-chunk
/// partial panels merge by commutative addition — thread-count
/// invariant by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WeeklyPanel {
    /// `(week, country index, protocol index) → packets`. Indices are
    /// into [`Country::ALL`] / [`UdpProtocol::ALL`].
    pub cells: BTreeMap<(u64, u8, u8), u64>,
}

impl WeeklyPanel {
    /// Partial panel of the rows of `cols` selected by `sel`.
    pub(crate) fn of_selection(cols: &ChunkColumns, sel: &[u32]) -> WeeklyPanel {
        let mut panel = WeeklyPanel::default();
        for &i in sel {
            let i = i as usize;
            let week = cols.times[i] / WEEK_SECS;
            let country = VictimAddr(cols.victims[i]).country().index() as u8;
            *panel
                .cells
                .entry((week, country, cols.protocols[i]))
                .or_insert(0) += 1;
        }
        panel
    }

    /// Fold another partial panel in (cell-wise addition).
    pub fn absorb(&mut self, other: &WeeklyPanel) {
        for (k, v) in &other.cells {
            *self.cells.entry(*k).or_insert(0) += v;
        }
    }

    /// Total packets across all cells.
    pub fn total(&self) -> u64 {
        self.cells.values().sum()
    }

    /// The distinct week numbers present, ascending.
    pub fn weeks(&self) -> Vec<u64> {
        let mut w: Vec<u64> = self.cells.keys().map(|k| k.0).collect();
        w.dedup();
        w
    }

    /// Packets in one week across all countries and protocols.
    pub fn week_total(&self, week: u64) -> u64 {
        self.cells
            .range((week, 0, 0)..=(week, u8::MAX, u8::MAX))
            .map(|(_, v)| v)
            .sum()
    }

    /// Render as CSV (`week,country,protocol,packets`), one row per
    /// non-empty cell in key order — a stable artifact for goldens and
    /// the paged report tables.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("week,country,protocol,packets\n");
        for ((week, ci, pi), n) in &self.cells {
            out.push_str(&format!(
                "{week},{},{},{n}\n",
                Country::ALL[*ci as usize].label(),
                UdpProtocol::ALL[*pi as usize].label()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn panel(cells: &[((u64, u8, u8), u64)]) -> WeeklyPanel {
        WeeklyPanel {
            cells: cells.iter().copied().collect(),
        }
    }

    #[test]
    fn absorb_adds_cell_wise_and_commutes() {
        let a = panel(&[((0, 1, 2), 5), ((1, 0, 0), 7)]);
        let b = panel(&[((0, 1, 2), 3), ((2, 3, 4), 1)]);
        let mut ab = a.clone();
        ab.absorb(&b);
        let mut ba = b.clone();
        ba.absorb(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.cells[&(0, 1, 2)], 8);
        assert_eq!(ab.total(), 16);
        assert_eq!(ab.weeks(), vec![0, 1, 2]);
        assert_eq!(ab.week_total(0), 8);
        assert_eq!(ab.week_total(5), 0);
    }

    #[test]
    fn csv_rendering_is_deterministic_and_labelled() {
        let p = panel(&[((1, 0, 0), 2), ((0, 2, 3), 9)]);
        let csv = p.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "week,country,protocol,packets");
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("0,"), "key order: week 0 first");
        assert!(lines[1].ends_with(",9"));
        assert_eq!(p.to_csv(), csv);
    }
}
