//! Executor unit suite: the edge cases the determinism contract hinges
//! on — empty/small inputs, submission-order reduction under adversarial
//! scheduling, clean panic propagation (no hang, no orphan threads), and
//! the nested-call sequential fallback.

use booters_par::{
    par_for_each, par_map, par_map_collect, par_map_indexed, stream_seed, threads, with_min_items,
    with_threads,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

#[test]
fn empty_input_yields_empty_output() {
    let empty: Vec<u32> = Vec::new();
    for t in [1usize, 2, 8] {
        with_threads(t, || {
            assert!(par_map(&empty, |x| x + 1).is_empty());
            assert_eq!(
                par_map_collect(&empty, |x| Ok::<u32, String>(x + 1)),
                Ok(Vec::new())
            );
            par_for_each(&empty, |_| panic!("must never run"));
        });
    }
}

#[test]
fn input_smaller_than_chunk_size_is_complete_and_ordered() {
    // 2 and 3 items across 8 threads: fewer items than workers, and far
    // fewer than a "natural" chunk; every item must appear exactly once,
    // in order.
    for len in [1usize, 2, 3, 5] {
        let items: Vec<usize> = (0..len).collect();
        let got = with_threads(8, || par_map(&items, |&x| x * 10));
        assert_eq!(got, items.iter().map(|x| x * 10).collect::<Vec<_>>());
    }
}

#[test]
fn reduction_is_submission_order_not_completion_order() {
    // Early items sleep longest, so completion order is roughly the
    // reverse of submission order; the output must still be ascending.
    let items: Vec<u64> = (0..16).collect();
    let got = with_threads(4, || {
        par_map(&items, |&x| {
            std::thread::sleep(Duration::from_millis((15 - x) * 2));
            x
        })
    });
    assert_eq!(got, items);
}

#[test]
fn panic_in_one_task_joins_cleanly_and_propagates() {
    let items: Vec<u32> = (0..64).collect();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        with_threads(4, || {
            par_map(&items, |&x| {
                if x == 9 {
                    panic!("task 9 exploded");
                }
                x
            })
        })
    }));
    let payload = outcome.expect_err("panic must propagate to the caller");
    let message = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(message.contains("task 9 exploded"), "payload: {message:?}");

    // The pool is stateless between calls: after a panicked run the next
    // call works normally (no poisoned global, no leaked workers).
    let ok = with_threads(4, || par_map(&items, |&x| x + 1));
    assert_eq!(ok.len(), items.len());
}

#[test]
fn panic_does_not_hang_remaining_workers() {
    // Workers must stop at the next chunk boundary once a task panics;
    // bound the whole call with a watchdog to catch a hang as a test
    // failure instead of a timeout.
    let items: Vec<u32> = (0..1024).collect();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            with_threads(8, || {
                par_for_each(&items, |&x| {
                    if x == 0 {
                        panic!("first chunk dies");
                    }
                })
            })
        }));
        tx.send(outcome.is_err()).ok();
    });
    let propagated = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("executor hung after a task panic");
    assert!(propagated);
}

#[test]
fn nested_par_map_falls_back_to_sequential() {
    // with_min_items(1) defeats the small-work cutoff so the 8-item outer
    // map really lands on pool workers (where the fallback applies).
    let outer: Vec<u32> = (0..8).collect();
    let inner_threads = with_threads(4, || {
        with_min_items(1, || {
            par_map(&outer, |_| {
            // Inside a worker the executor must report a single thread and
            // run nested maps inline — this completing at all proves no
            // deadlock, and the reported count proves the fallback.
                let inner: Vec<u32> = (0..8).collect();
                let nested = par_map(&inner, |&y| y * 2);
                assert_eq!(nested, inner.iter().map(|y| y * 2).collect::<Vec<_>>());
                threads()
            })
        })
    });
    assert!(
        inner_threads.iter().all(|&t| t == 1),
        "nested threads(): {inner_threads:?}"
    );
}

#[test]
fn par_map_collect_returns_earliest_error_in_submission_order() {
    // Items 3 and 11 both fail; 11 (larger index) finishes first because 3
    // sleeps. The caller must still see item 3's error at any thread count.
    let items: Vec<u32> = (0..16).collect();
    for t in [1usize, 2, 4, 8] {
        let r: Result<Vec<u32>, String> = with_threads(t, || {
            par_map_collect(&items, |&x| {
                if x == 3 {
                    std::thread::sleep(Duration::from_millis(30));
                    Err("error at 3".to_string())
                } else if x == 11 {
                    Err("error at 11".to_string())
                } else {
                    Ok(x)
                }
            })
        });
        assert_eq!(r, Err("error at 3".to_string()), "threads={t}");
    }
}

#[test]
fn par_for_each_visits_every_item_exactly_once() {
    let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
    let items: Vec<usize> = (0..100).collect();
    with_threads(4, || {
        par_for_each(&items, |&i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        })
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn indexed_map_supplies_submission_indices() {
    let items = vec!["a", "b", "c", "d", "e"];
    let got = with_threads(3, || par_map_indexed(&items, |i, s| format!("{i}:{s}")));
    assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
}

#[test]
fn split_streams_make_parallel_rng_thread_count_invariant() {
    use booters_testkit::rngs::StdRng;
    use booters_testkit::{Rng, SeedableRng};
    let items: Vec<usize> = (0..40).collect();
    let draw = |t: usize| {
        with_threads(t, || {
            par_map_indexed(&items, |i, _| {
                let mut rng = StdRng::seed_from_u64(stream_seed(0x5EED, i as u64));
                (0..8).map(|_| rng.gen::<u64>()).collect::<Vec<u64>>()
            })
        })
    };
    let baseline = draw(1);
    for t in [2usize, 4, 8] {
        assert_eq!(draw(t), baseline, "threads={t}");
    }
}
