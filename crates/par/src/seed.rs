//! Per-task RNG stream splitting.
//!
//! Parallel tasks must never pull from one sequentially consumed
//! generator: the draw order would then depend on the schedule and the
//! output on the thread count. Instead each task derives its own seed
//! from a base seed and its submission index, and seeds a private
//! generator with it.

use booters_testkit::rng::SplitMix64;

/// Weyl-sequence increment of splitmix64 (the golden-ratio gamma).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The seed of stream `stream` derived from `base`.
///
/// This is the splitmix64 "split" construction: advance the Weyl sequence
/// `base + stream·γ` and push it through the splitmix64 output mix. Every
/// (base, stream) pair maps to one fixed seed — independent of thread
/// count, schedule, or platform — and distinct streams are decorrelated
/// by the mix (and again by `seed_from_u64`'s own expansion downstream).
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    SplitMix64::new(base.wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA))).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_testkit::rngs::StdRng;
    use booters_testkit::SeedableRng;

    #[test]
    fn stream_seed_is_deterministic() {
        assert_eq!(stream_seed(42, 7), stream_seed(42, 7));
        // stream 0 is the first splitmix64 output of the base itself.
        let mut sm = SplitMix64::new(0);
        let first = sm.next_u64();
        assert_eq!(stream_seed(0u64.wrapping_sub(GOLDEN_GAMMA), 1), first);
    }

    #[test]
    fn nearby_streams_and_bases_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for base in [0u64, 1, 42, u64::MAX] {
            for stream in 0..64u64 {
                assert!(seen.insert(stream_seed(base, stream)), "collision at {base}/{stream}");
            }
        }
    }

    #[test]
    fn derived_streams_are_decorrelated() {
        // Coarse independence check: first outputs of adjacent derived
        // streams shouldn't share obvious structure (no equal words).
        let outs: Vec<u64> = (0..32)
            .map(|i| StdRng::seed_from_u64(stream_seed(0xB007, i)).next_u64())
            .collect();
        let distinct: std::collections::HashSet<_> = outs.iter().collect();
        assert_eq!(distinct.len(), outs.len());
    }
}
