#![warn(missing_docs)]
//! # booters-par
//!
//! Deterministic data parallelism for the simulate→group→fit pipeline:
//! a zero-dependency scoped thread-pool with chunked [`par_map`] /
//! [`par_for_each`] / [`par_map_collect`] and a hard determinism
//! contract. The executor exists so the per-country Table 2 fan-out,
//! netsim packet generation, flow grouping and the intervention-window
//! scan can use every core **without perturbing a single byte** of the
//! seeded artifacts.
//!
//! ## The determinism contract
//!
//! 1. **Submission-order reduction.** Results are merged in the order
//!    items were submitted, never in completion order. Workers tag every
//!    result with its input index; the pool sorts by that index before
//!    returning, so scheduling jitter cannot reorder outputs.
//! 2. **Split RNG streams.** Tasks must never share a sequentially
//!    consumed generator. [`stream_seed`] derives an independent seed per
//!    task index with the testkit's splitmix64, so a seeded simulation
//!    produces byte-identical output at any thread count.
//! 3. **Sequential fallback.** With one thread (or one item) every entry
//!    point degenerates to the plain `iter().map(...)` loop the
//!    pre-executor code ran — no pool, no channels, no reordering.
//!
//! ## Thread-count resolution
//!
//! [`threads`] resolves, in priority order: a scoped [`with_threads`]
//! override on the current thread → the `BOOTERS_THREADS` environment
//! variable (read once per process) → `std::thread::available_parallelism`.
//! Inside a pool worker it always reports 1, so nested calls fall back to
//! the sequential path instead of deadlocking or oversubscribing.
//!
//! ## Small-work cutoff and size-aware scheduling
//!
//! Spawning the pool costs tens of microseconds; a Table 2 fan-out has
//! eight items. Every `par_*` entry point therefore runs sequentially
//! when the batch has fewer than [`min_items`] items (default 16),
//! resolved as: a scoped [`with_min_items`] override → the
//! `BOOTERS_PAR_MIN_ITEMS` environment variable (read once per process)
//! → 16. Above the cutoff, worker count is *size-aware*: at most one
//! worker per [`min_items`] items is spawned, so a batch barely past the
//! cutoff gets two threads, not eight two-item ones — and the implied
//! chunk size never drops below `min_items / CHUNKS_PER_WORKER`.
//! Because the sequential path is already part of the determinism
//! contract (point 3), neither the cutoff nor the worker cap can ever
//! change a result — only when and how many threads are spawned. Set
//! `BOOTERS_PAR_MIN_ITEMS=1` to disable both.
//!
//! Batches of *few but individually heavy* items (decoding store chunks,
//! grouping per-shard packet buckets) are the one shape the item-count
//! cutoff misjudges; [`par_map_coarse`] is the entry point for them — no
//! item-count cutoff, one item per scheduling unit.
//!
//! ## Kernel selection
//!
//! The crate also hosts the workspace's runtime switch between optimized
//! byte-level kernels and their scalar reference oracles
//! ([`scalar_kernels`] / [`with_scalar_kernels`] /
//! `BOOTERS_SCALAR_KERNELS`) — see the [`mod@kernels`] module docs.

pub mod kernels;
mod pool;
mod seed;

pub use kernels::{scalar_kernels, with_scalar_kernels};
pub use pool::{par_for_each, par_map, par_map_coarse, par_map_collect, par_map_indexed};
pub use seed::stream_seed;

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Scoped per-thread override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Scoped per-thread override installed by [`with_min_items`].
    static MIN_ITEMS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set on pool worker threads so nested parallelism degrades to the
    /// sequential path.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Default sequential cutoff: batches smaller than this never spawn the
/// pool. Chosen so the pipeline's eight-country and six-candidate
/// fan-outs (whose per-item work is dwarfed by pool spawn cost at small
/// n) stay sequential while real data-parallel sweeps are unaffected.
const DEFAULT_MIN_ITEMS: usize = 16;

/// Parse a `BOOTERS_THREADS` value; non-numeric input is ignored and 0 is
/// clamped to 1 (the sequential path).
fn parse_threads(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// Process-wide configured thread count: `BOOTERS_THREADS` if set (read
/// once), otherwise the hardware parallelism.
fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("BOOTERS_THREADS")
            .ok()
            .and_then(|v| parse_threads(&v))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The machine's hardware parallelism (cached `available_parallelism`;
/// 1 when it cannot be determined). Unlike [`threads`], this ignores
/// `BOOTERS_THREADS` and overrides — it answers "can worker threads
/// actually run concurrently here?", so size-aware callers (e.g.
/// `group_flows_par`) can skip sharding overhead that can never pay on
/// the current host. Results are identical either way by the
/// determinism contract; only the schedule changes.
pub fn hardware_parallelism() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The thread count the next `par_*` call on this thread will use.
///
/// Always 1 inside a pool worker (nested parallelism is sequential).
pub fn threads() -> usize {
    if in_pool() {
        return 1;
    }
    THREAD_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(configured_threads)
}

/// True on a pool worker thread (where [`threads`] reports 1).
pub fn in_pool() -> bool {
    IN_POOL.with(|c| c.get())
}

pub(crate) fn enter_pool() {
    IN_POOL.with(|c| c.set(true));
}

/// Parse a `BOOTERS_PAR_MIN_ITEMS` value; non-numeric input is ignored
/// and 0 is clamped to 1 (cutoff disabled — every batch may go parallel).
fn parse_min_items(v: &str) -> Option<usize> {
    v.trim().parse::<usize>().ok().map(|n| n.max(1))
}

/// Process-wide configured cutoff: `BOOTERS_PAR_MIN_ITEMS` if set (read
/// once), otherwise [`DEFAULT_MIN_ITEMS`].
fn configured_min_items() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("BOOTERS_PAR_MIN_ITEMS")
            .ok()
            .and_then(|v| parse_min_items(&v))
            .unwrap_or(DEFAULT_MIN_ITEMS)
    })
}

/// Batches with fewer items than this run sequentially on the calling
/// thread (same results by the determinism contract, no pool spawn).
pub fn min_items() -> usize {
    MIN_ITEMS_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(configured_min_items)
}

/// Run `f` with the small-work cutoff pinned to `n` items on this thread
/// (clamped to ≥ 1; 1 disables the cutoff), restoring the previous
/// setting afterwards — also on panic. Tests and benches use this to
/// force the pool on for small batches without touching the process
/// environment.
pub fn with_min_items<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            MIN_ITEMS_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = MIN_ITEMS_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Run `f` with the executor pinned to `n` threads on this thread
/// (clamped to ≥ 1), restoring the previous setting afterwards — also on
/// panic. This is how the invariance tests and benches sweep thread
/// counts without touching the process environment.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_threads_clamps_and_rejects() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 8 "), Some(8));
        assert_eq!(parse_threads("0"), Some(1));
        assert_eq!(parse_threads("many"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = threads();
        let inner = with_threads(3, threads);
        assert_eq!(inner, 3);
        assert_eq!(threads(), outer);
        // Clamped to at least one.
        assert_eq!(with_threads(0, threads), 1);
        // Nested overrides restore the enclosing override, not the default.
        with_threads(5, || {
            assert_eq!(with_threads(2, threads), 2);
            assert_eq!(threads(), 5);
        });
    }

    #[test]
    fn parse_min_items_clamps_and_rejects() {
        assert_eq!(parse_min_items("16"), Some(16));
        assert_eq!(parse_min_items(" 1 "), Some(1));
        assert_eq!(parse_min_items("0"), Some(1));
        assert_eq!(parse_min_items("lots"), None);
        assert_eq!(parse_min_items(""), None);
    }

    #[test]
    fn with_min_items_overrides_and_restores() {
        let outer = min_items();
        assert_eq!(with_min_items(3, min_items), 3);
        assert_eq!(min_items(), outer);
        // Clamped to at least one (1 = cutoff disabled).
        assert_eq!(with_min_items(0, min_items), 1);
        with_min_items(32, || {
            assert_eq!(with_min_items(2, min_items), 2);
            assert_eq!(min_items(), 32);
        });
    }

    #[test]
    fn with_min_items_restores_on_panic() {
        let before = min_items();
        let caught = std::panic::catch_unwind(|| {
            with_min_items(9, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(min_items(), before);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = threads();
        let caught = std::panic::catch_unwind(|| {
            with_threads(7, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(threads(), before);
    }
}
