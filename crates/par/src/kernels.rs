//! Runtime selection between optimized byte-level kernels and their
//! scalar reference implementations.
//!
//! Every optimized kernel in the workspace (SWAR varint decode and
//! slice-by-8 CRC-32 in `booters-store`, the radix grouping sort in
//! `booters-netsim`) keeps its original scalar implementation as a
//! *differential-testing oracle*. [`scalar_kernels`] is the single
//! switch those dispatch points consult: `false` (the default) runs the
//! fast kernels, `true` forces the scalar oracles. Because every fast
//! kernel is bit-identical to its oracle — pinned by differential
//! property tests and a dedicated `scripts/verify.sh` pass — flipping
//! the switch can never change an output byte, only the wall clock.
//!
//! Resolution mirrors the thread-count knob: a scoped
//! [`with_scalar_kernels`] override on the current thread → the
//! `BOOTERS_SCALAR_KERNELS` environment variable (read once per
//! process) → fast kernels. Pool workers inherit the *submitting*
//! thread's effective value, so a `with_scalar_kernels(true, …)` scope
//! covers work fanned out through `par_map` too.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Scoped per-thread override installed by [`with_scalar_kernels`]
    /// (and by the pool on worker threads, inheriting the caller's
    /// effective value).
    static KERNEL_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Parse a `BOOTERS_SCALAR_KERNELS` value: `1`/`true`/`yes`/`on` force
/// the scalar oracles, anything else keeps the fast kernels.
fn parse_scalar(v: &str) -> bool {
    matches!(
        v.trim().to_ascii_lowercase().as_str(),
        "1" | "true" | "yes" | "on"
    )
}

/// Process-wide configured kernel selection: `BOOTERS_SCALAR_KERNELS`
/// if set (read once), otherwise the fast kernels.
fn configured_scalar() -> bool {
    static CONFIGURED: OnceLock<bool> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        std::env::var("BOOTERS_SCALAR_KERNELS")
            .map(|v| parse_scalar(&v))
            .unwrap_or(false)
    })
}

/// True when byte-level hot paths must run their scalar reference
/// implementations instead of the optimized kernels.
pub fn scalar_kernels() -> bool {
    KERNEL_OVERRIDE
        .with(|c| c.get())
        .unwrap_or_else(configured_scalar)
}

/// Install the submitting thread's effective selection on a pool worker
/// (workers are fresh scoped threads, so nothing needs restoring).
pub(crate) fn inherit_kernels(scalar: bool) {
    KERNEL_OVERRIDE.with(|c| c.set(Some(scalar)));
}

/// Run `f` with the kernel selection pinned on this thread (`true` =
/// scalar oracles), restoring the previous setting afterwards — also on
/// panic. The differential tests use this to run the same pipeline both
/// ways inside one process and `assert_eq!` the artifacts.
pub fn with_scalar_kernels<T>(scalar: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            KERNEL_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = KERNEL_OVERRIDE.with(|c| c.replace(Some(scalar)));
    let _restore = Restore(prev);
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalar_accepts_truthy_spellings_only() {
        assert!(parse_scalar("1"));
        assert!(parse_scalar(" true "));
        assert!(parse_scalar("YES"));
        assert!(parse_scalar("on"));
        assert!(!parse_scalar("0"));
        assert!(!parse_scalar(""));
        assert!(!parse_scalar("fast"));
    }

    #[test]
    fn with_scalar_kernels_overrides_and_restores() {
        let outer = scalar_kernels();
        assert!(with_scalar_kernels(true, scalar_kernels));
        assert!(!with_scalar_kernels(false, scalar_kernels));
        assert_eq!(scalar_kernels(), outer);
        with_scalar_kernels(true, || {
            assert!(!with_scalar_kernels(false, scalar_kernels));
            assert!(scalar_kernels());
        });
    }

    #[test]
    fn with_scalar_kernels_restores_on_panic() {
        let before = scalar_kernels();
        let caught = std::panic::catch_unwind(|| {
            with_scalar_kernels(true, || panic!("boom"));
        });
        assert!(caught.is_err());
        assert_eq!(scalar_kernels(), before);
    }

    #[test]
    fn pool_workers_inherit_the_callers_selection() {
        let items: Vec<u32> = (0..64).collect();
        for scalar in [true, false] {
            let seen = crate::with_threads(4, || {
                with_scalar_kernels(scalar, || {
                    crate::with_min_items(1, || crate::par_map(&items, |_| scalar_kernels()))
                })
            });
            assert!(seen.iter().all(|&s| s == scalar), "scalar={scalar}");
        }
    }
}
