//! The chunked scoped executor behind `par_map` and friends.
//!
//! Work distribution is dynamic (workers pull chunks off a shared atomic
//! cursor, so an expensive item does not stall the rest), but reduction is
//! static: every result carries its submission index and the pool sorts by
//! that index before returning. The output is therefore a pure function of
//! the input — never of the schedule.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Chunks handed out per worker (over-decomposition for load balance; the
/// value only affects scheduling granularity, never results).
const CHUNKS_PER_WORKER: usize = 4;

fn chunk_len(items: usize, workers: usize) -> usize {
    items.div_ceil(workers * CHUNKS_PER_WORKER).max(1)
}

/// Size-aware worker count for a fine-grained batch of `len` items:
/// 1 (the sequential path) below the [`crate::min_items`] cutoff, and at
/// most one worker per `min_items` items above it, capped by the
/// configured thread count. Spawning a thread costs tens of
/// microseconds, so a worker that would receive less than one cutoff's
/// worth of items costs more than it contributes; capping workers this
/// way also floors the chunk size at `min_items / CHUNKS_PER_WORKER`.
/// Results never depend on the answer (determinism contract points 1
/// and 3) — only the spawn count does.
fn plan_workers(len: usize) -> usize {
    let threads = crate::threads().min(len);
    let min = crate::min_items();
    if threads <= 1 || len < min {
        return 1;
    }
    threads.min(len / min).max(1)
}

/// Map `f` over `items` on the configured thread count, returning results
/// in submission order. With one thread (or ≤ 1 item, or inside a pool
/// worker) this is exactly `items.iter().map(f).collect()`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_indexed(items, |_, x| f(x))
}

/// [`par_map`] whose closure also receives the item's submission index —
/// the hook for per-task RNG stream splitting via
/// [`stream_seed`](crate::stream_seed).
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = plan_workers(items.len());
    if workers <= 1 {
        // Sequential fallback: the exact code path the pre-executor
        // callers ran. Small batches take it too (see the small-work
        // cutoff in the crate docs) — same results, no pool spawn.
        booters_obs::counter_add("par.seq_fallbacks", 1);
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    booters_obs::counter_add("par.pool_dispatches", 1);
    run_on_pool(items, workers, chunk_len(items.len(), workers), &f)
}

/// [`par_map`] for batches of **few but individually heavy** items —
/// store chunks to decode, per-shard packet buckets to group. The
/// item-count cutoff does not apply (eight multi-megabyte buckets are
/// not "small work") and each item is its own scheduling unit, so an
/// expensive straggler never pins cheap siblings to the same worker.
/// Determinism is unchanged: submission-order reduction, sequential
/// fallback at one thread or one item.
pub fn par_map_coarse<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = crate::threads().min(items.len());
    if workers <= 1 {
        booters_obs::counter_add("par.seq_fallbacks", 1);
        return items.iter().map(&f).collect();
    }
    booters_obs::counter_add("par.pool_dispatches", 1);
    run_on_pool(items, workers, 1, &|_, x| f(x))
}

/// Run `f` for each item on the configured thread count. Side effects must
/// be independent per item; completion order is unspecified, but the call
/// returns only after every item ran (or propagates the first panic by
/// submission order among those observed).
pub fn par_for_each<T, F>(items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    par_map_indexed(items, |_, x| f(x));
}

/// Fallible ordered map: apply `f` to every item and collect into
/// `Result<Vec<U>, E>`, returning the error of the **earliest failing
/// item** (submission order), never of whichever task failed first on the
/// clock. On the parallel path all items are evaluated even when one
/// errors, so the returned error is schedule-independent; the sequential
/// path short-circuits like plain `collect()`.
pub fn par_map_collect<T, U, E, F>(items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    let workers = plan_workers(items.len());
    if workers <= 1 {
        booters_obs::counter_add("par.seq_fallbacks", 1);
        return items.iter().map(f).collect();
    }
    booters_obs::counter_add("par.pool_dispatches", 1);
    run_on_pool(items, workers, chunk_len(items.len(), workers), &|_, x| f(x))
        .into_iter()
        .collect()
}

/// The scoped pool: spawn `workers` threads, hand out chunks off an atomic
/// cursor, join everything, then merge results by submission index.
///
/// A panicking task sets the abort flag (other workers stop at their next
/// chunk boundary — no hang, no orphan threads: `thread::scope` joins them
/// all) and the lowest-index captured panic is resumed on the caller.
fn run_on_pool<T, U, F>(items: &[T], workers: usize, chunk: usize, f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let n_chunks = items.len().div_ceil(chunk);
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
    // Workers must see the same fast-vs-scalar kernel selection as the
    // submitting thread (the override is thread-local, and kernels run
    // inside fanned-out closures — chunk decode, flow grouping).
    let scalar_kernels = crate::scalar_kernels();

    let mut tagged: Vec<(usize, U)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    crate::enter_pool();
                    crate::kernels::inherit_kernels(scalar_kernels);
                    let mut local: Vec<(usize, U)> = Vec::new();
                    while !abort.load(Ordering::Relaxed) {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let start = c * chunk;
                        let end = (start + chunk).min(items.len());
                        for i in start..end {
                            match catch_unwind(AssertUnwindSafe(|| f(i, &items[i]))) {
                                Ok(v) => local.push((i, v)),
                                Err(payload) => {
                                    abort.store(true, Ordering::Relaxed);
                                    panics.lock().expect("panic log poisoned").push((i, payload));
                                    return local;
                                }
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // Worker bodies catch task panics, so join itself cannot fail.
            tagged.extend(h.join().expect("pool worker crashed outside a task"));
        }
    });

    let mut panics = panics.into_inner().expect("panic log poisoned");
    if !panics.is_empty() {
        panics.sort_by_key(|(i, _)| *i);
        resume_unwind(panics.remove(0).1);
    }

    // Submission-order reduction: indices are unique, so this sort yields
    // one canonical order regardless of which worker produced what.
    tagged.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), items.len(), "executor lost results");
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_len_covers_all_items() {
        for items in [0usize, 1, 2, 3, 7, 100, 1001] {
            for workers in [1usize, 2, 4, 8] {
                let c = chunk_len(items, workers);
                assert!(c >= 1);
                assert!(c * items.div_ceil(c.max(1)) >= items);
            }
        }
    }

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
        for t in [1usize, 2, 3, 4, 8] {
            let got = crate::with_threads(t, || par_map(&items, |x| x * x + 1));
            assert_eq!(got, expected, "threads={t}");
        }
    }

    #[test]
    fn small_batches_stay_on_the_calling_thread() {
        // Below the cutoff no pool is spawned even with threads available:
        // the closure observes the calling thread, not a pool worker.
        let items: Vec<u32> = (0..8).collect();
        let on_pool = crate::with_threads(4, || {
            crate::with_min_items(16, || par_map(&items, |_| crate::in_pool()))
        });
        assert!(on_pool.iter().all(|&p| !p));
        // min_items = 1 disables the cutoff and forces the pool on.
        let on_pool = crate::with_threads(4, || {
            crate::with_min_items(1, || par_map(&items, |_| crate::in_pool()))
        });
        assert!(on_pool.iter().all(|&p| p));
    }

    #[test]
    fn cutoff_does_not_change_results() {
        let items: Vec<u64> = (0..15).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for min in [1usize, 4, 16, 64] {
            let got = crate::with_threads(4, || {
                crate::with_min_items(min, || par_map(&items, |x| x * 3 + 1))
            });
            assert_eq!(got, expected, "min_items={min}");
        }
    }

    #[test]
    fn plan_workers_is_size_aware() {
        crate::with_threads(8, || {
            crate::with_min_items(16, || {
                assert_eq!(plan_workers(8), 1); // below the cutoff
                assert_eq!(plan_workers(16), 1); // one cutoff's worth: not enough for 2
                assert_eq!(plan_workers(32), 2);
                assert_eq!(plan_workers(64), 4);
                assert_eq!(plan_workers(10_000), 8); // capped by threads
            });
            // min_items = 1 restores the plain threads.min(len) plan.
            crate::with_min_items(1, || {
                assert_eq!(plan_workers(3), 3);
                assert_eq!(plan_workers(100), 8);
            });
        });
        crate::with_threads(1, || assert_eq!(plan_workers(1_000_000), 1));
    }

    #[test]
    fn size_aware_workers_do_not_change_results() {
        // Sweep batch sizes across the worker-cap breakpoints: output must
        // equal the sequential map everywhere.
        for len in [15usize, 16, 17, 31, 32, 33, 64, 257] {
            let items: Vec<u64> = (0..len as u64).collect();
            let expected: Vec<u64> = items.iter().map(|x| x * 7 + 3).collect();
            let got = crate::with_threads(8, || par_map(&items, |x| x * 7 + 3));
            assert_eq!(got, expected, "len={len}");
        }
    }

    #[test]
    fn par_map_coarse_matches_sequential_and_skips_the_cutoff() {
        let items: Vec<u64> = (0..7).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for t in [1usize, 2, 4, 8] {
            let got = crate::with_threads(t, || par_map_coarse(&items, |x| x * x));
            assert_eq!(got, expected, "threads={t}");
        }
        // Seven items is below the default cutoff, yet the coarse entry
        // point still runs them on pool workers.
        let on_pool = crate::with_threads(4, || par_map_coarse(&items, |_| crate::in_pool()));
        assert!(on_pool.iter().all(|&p| p));
        let on_pool = crate::with_threads(1, || par_map_coarse(&items, |_| crate::in_pool()));
        assert!(on_pool.iter().all(|&p| !p));
    }

    #[test]
    fn par_map_collect_short_circuits_sequentially() {
        // threads=1 must behave like plain collect(): stop at the first
        // error without touching later items.
        let touched = std::sync::atomic::AtomicUsize::new(0);
        let items: Vec<u32> = (0..10).collect();
        let r: Result<Vec<u32>, String> = crate::with_threads(1, || {
            par_map_collect(&items, |&x| {
                touched.fetch_add(1, Ordering::Relaxed);
                if x == 3 {
                    Err(format!("bad {x}"))
                } else {
                    Ok(x)
                }
            })
        });
        assert_eq!(r, Err("bad 3".to_string()));
        assert_eq!(touched.load(Ordering::Relaxed), 4);
    }
}
