//! Wald inference for fitted GLMs: standard errors, z statistics,
//! p-values, confidence intervals and incidence-rate ratios.
//!
//! Two covariance estimators are provided:
//!
//! * **Model-based** — the inverse expected information `(XᵀWX)⁻¹`, valid
//!   when the variance function is correctly specified.
//! * **HC1 sandwich** — `(XᵀWX)⁻¹ (Σ uᵢuᵢᵀ) (XᵀWX)⁻¹ · n/(n−p)` with score
//!   contributions uᵢ; robust to variance misspecification. This matches
//!   the "log-pseudolikelihood" language in the paper (Stata's `vce(robust)`).

use crate::irls::{GlmError, GlmFit};
use booters_linalg::{cholesky_with_ridge, Matrix};
use booters_stats::dist::{standard_normal_quantile, Normal};

/// Which covariance estimator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CovarianceKind {
    /// Inverse expected information (classic ML standard errors).
    ModelBased,
    /// Heteroskedasticity-robust HC1 sandwich (Stata `vce(robust)`).
    RobustHc1,
}

/// Inference for a single coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct CoefEstimate {
    /// Column name.
    pub name: String,
    /// Point estimate.
    pub coef: f64,
    /// Standard error.
    pub std_error: f64,
    /// Wald z statistic.
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Lower bound of the confidence interval.
    pub ci_lower: f64,
    /// Upper bound of the confidence interval.
    pub ci_upper: f64,
}

impl CoefEstimate {
    /// Incidence-rate ratio `exp(coef)` — the multiplicative effect on the
    /// expected count for log-link models.
    pub fn irr(&self) -> f64 {
        self.coef.exp()
    }

    /// Percentage change in the expected count, `100·(exp(coef)−1)` —
    /// the "Mean −32%" numbers of Table 2.
    pub fn percent_change(&self) -> f64 {
        100.0 * (self.coef.exp() - 1.0)
    }

    /// Percentage-change confidence interval endpoints (lower, upper).
    pub fn percent_change_ci(&self) -> (f64, f64) {
        (
            100.0 * (self.ci_lower.exp() - 1.0),
            100.0 * (self.ci_upper.exp() - 1.0),
        )
    }

    /// Significance marker in the paper's notation: `**` for p < 0.01,
    /// `*` for p < 0.05, empty otherwise.
    pub fn stars(&self) -> &'static str {
        if self.p_value < 0.01 {
            "**"
        } else if self.p_value < 0.05 {
            "*"
        } else {
            ""
        }
    }
}

/// Full Wald inference for a fitted model.
#[derive(Debug, Clone)]
pub struct FitInference {
    /// Per-coefficient estimates, in design-column order.
    pub coefficients: Vec<CoefEstimate>,
    /// The covariance matrix used.
    pub covariance: Matrix,
    /// Which estimator produced it.
    pub kind: CovarianceKind,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl FitInference {
    /// Look up a coefficient by name.
    pub fn coef(&self, name: &str) -> Option<&CoefEstimate> {
        self.coefficients.iter().find(|c| c.name == name)
    }
}

/// Joint Wald test that a block of coefficients is simultaneously zero:
/// W = βᵀ V⁻¹ β ~ χ²(k) with V the corresponding covariance block.
///
/// Used to test the five-intervention block of the paper's model as a
/// whole rather than coefficient by coefficient.
pub fn joint_wald_test(
    inference: &FitInference,
    names: &[&str],
) -> Option<booters_stats::tests::TestResult> {
    let idx: Vec<usize> = names
        .iter()
        .map(|n| inference.coefficients.iter().position(|c| &c.name == n))
        .collect::<Option<Vec<_>>>()?;
    let k = idx.len();
    if k == 0 {
        return None;
    }
    let mut v = Matrix::zeros(k, k);
    let mut beta = vec![0.0; k];
    for (a, &i) in idx.iter().enumerate() {
        beta[a] = inference.coefficients[i].coef;
        for (b, &j) in idx.iter().enumerate() {
            v[(a, b)] = inference.covariance[(i, j)];
        }
    }
    let (chol, _) = cholesky_with_ridge(&v, 14).ok()?;
    let solved = chol.solve(&beta).ok()?;
    let stat: f64 = beta.iter().zip(&solved).map(|(b, s)| b * s).sum();
    Some(booters_stats::tests::TestResult {
        statistic: stat,
        df: k as f64,
        p_value: booters_stats::dist::ChiSquared::new(k as f64).sf(stat),
    })
}

/// Compute Wald inference for an IRLS fit.
///
/// `x` must be the same design the fit used; `y` is needed for the robust
/// sandwich scores. `names` labels the columns.
pub fn wald_inference(
    x: &Matrix,
    y: &[f64],
    fit: &GlmFit,
    names: &[String],
    kind: CovarianceKind,
    level: f64,
) -> Result<FitInference, GlmError> {
    assert_eq!(names.len(), fit.p, "wald_inference: {} names for {} columns", names.len(), fit.p);
    assert!((0.5..1.0).contains(&level), "confidence level {level} out of range");

    // Bread: inverse expected information.
    let xtwx = x.xtwx(&fit.weights)?;
    let (chol, _ridge) = cholesky_with_ridge(&xtwx, 14)?;
    let bread = chol.inverse()?;

    let cov = match kind {
        CovarianceKind::ModelBased => bread,
        CovarianceKind::RobustHc1 => {
            // Scores for a GLM with canonical-style working weights:
            // uᵢ = xᵢ wᵢ (zᵢ − ηᵢ) where wᵢ(zᵢ−ηᵢ) = wᵢ(yᵢ−μᵢ)/(dμ/dη).
            // For log-link count models this reduces to xᵢ (yᵢ−μᵢ)/(1+αμᵢ).
            // We compute it generically as wᵢ·(yᵢ−μᵢ)/dᵢ with dᵢ = wᵢ·vᵢ/dᵢ
            // folded in via the stored weights: score scale sᵢ = wᵢ (yᵢ−μᵢ) / dᵢ
            // where dᵢ = dμ/dη. Using w = d²/v gives s = d(y−μ)/v.
            // We recover d from w·v = d², v from μ via the family — but the
            // fit does not carry the family, so we use the equivalent form
            // s = w · (y − μ) / d with d = sqrt(w · v). To stay family-free
            // we exploit that z − η = (y − μ)/d, so s = w (y − μ)/d = w·(z−η),
            // and (z−η) = (y−μ)/d. d is recoverable as w·v/d ... instead we
            // simply recompute d from η via the link-free identity below.
            //
            // In practice every model in this workspace uses the log link,
            // where d = μ, v = μ(1+αμ), w = μ/(1+αμ) and the score scale is
            // s = (y−μ)/(1+αμ) = w·(y−μ)/μ. The general identity
            // s = w·(y−μ)·(d/ (d²)) = w (y−μ)/d holds with d = μ for log
            // links; we use d = μ here and document the restriction.
            let n = fit.n as f64;
            let p = fit.p as f64;
            let mut meat = Matrix::zeros(fit.p, fit.p);
            for i in 0..fit.n {
                let d = fit.mu[i].max(1e-10); // dμ/dη for the log link
                let s = fit.weights[i] * (y[i] - fit.mu[i]) / d;
                let row = x.row(i);
                for a in 0..fit.p {
                    for b in a..fit.p {
                        meat[(a, b)] += row[a] * row[b] * s * s;
                    }
                }
            }
            for a in 0..fit.p {
                for b in 0..a {
                    meat[(a, b)] = meat[(b, a)];
                }
            }
            let sandwich = bread.matmul(&meat)?.matmul(&bread)?;
            &sandwich * (n / (n - p).max(1.0))
        }
    };

    let zcrit = standard_normal_quantile(0.5 + level / 2.0);
    let mut coefficients = Vec::with_capacity(fit.p);
    for j in 0..fit.p {
        let coef = fit.beta[j];
        let var = cov[(j, j)].max(0.0);
        let se = var.sqrt();
        let z = if se > 0.0 { coef / se } else { f64::INFINITY };
        let p_value = Normal::two_sided_p(z);
        coefficients.push(CoefEstimate {
            name: names[j].clone(),
            coef,
            std_error: se,
            z,
            p_value,
            ci_lower: coef - zcrit * se,
            ci_upper: coef + zcrit * se,
        });
    }

    Ok(FitInference {
        coefficients,
        covariance: cov,
        kind,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::PoissonFamily;
    use crate::irls::{fit_irls, IrlsOptions};
    use crate::link::LogLink;
    use booters_testkit::rngs::StdRng;
    use booters_testkit::SeedableRng;

    fn simulate_poisson(n: usize, b0: f64, b1: f64, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let xi = (i % 50) as f64 / 10.0;
            x[(i, 0)] = 1.0;
            x[(i, 1)] = xi;
            let mu = (b0 + b1 * xi).exp();
            y[i] = booters_stats::dist::Poisson::new(mu).sample(&mut rng) as f64;
        }
        (x, y)
    }

    #[test]
    fn poisson_ci_covers_truth() {
        let (x, y) = simulate_poisson(500, 1.2, 0.3, 7);
        let fit = fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        let names = vec!["_cons".to_string(), "x".to_string()];
        let inf = wald_inference(&x, &y, &fit, &names, CovarianceKind::ModelBased, 0.95).unwrap();
        let c = inf.coef("x").unwrap();
        assert!(c.ci_lower < 0.3 && 0.3 < c.ci_upper, "CI [{}, {}]", c.ci_lower, c.ci_upper);
        assert!(c.p_value < 1e-6);
        assert_eq!(c.stars(), "**");
    }

    #[test]
    fn robust_se_close_to_model_se_when_specified() {
        let (x, y) = simulate_poisson(800, 1.0, 0.2, 11);
        let fit = fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        let names = vec!["_cons".to_string(), "x".to_string()];
        let a = wald_inference(&x, &y, &fit, &names, CovarianceKind::ModelBased, 0.95).unwrap();
        let b = wald_inference(&x, &y, &fit, &names, CovarianceKind::RobustHc1, 0.95).unwrap();
        let ra = a.coef("x").unwrap().std_error;
        let rb = b.coef("x").unwrap().std_error;
        assert!((ra / rb - 1.0).abs() < 0.3, "model={ra} robust={rb}");
    }

    #[test]
    fn robust_se_larger_under_overdispersion() {
        // Generate NB data but fit Poisson: the sandwich should exceed the
        // (too-optimistic) model-based errors.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 600;
        let mut x = Matrix::zeros(n, 2);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let xi = (i % 30) as f64 / 10.0;
            x[(i, 0)] = 1.0;
            x[(i, 1)] = xi;
            let mu = (2.0 + 0.3 * xi).exp();
            y[i] =
                booters_stats::dist::NegativeBinomial::new(mu, 0.8).sample(&mut rng) as f64;
        }
        let fit = fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        let names = vec!["_cons".to_string(), "x".to_string()];
        let a = wald_inference(&x, &y, &fit, &names, CovarianceKind::ModelBased, 0.95).unwrap();
        let b = wald_inference(&x, &y, &fit, &names, CovarianceKind::RobustHc1, 0.95).unwrap();
        assert!(
            b.coef("x").unwrap().std_error > 1.5 * a.coef("x").unwrap().std_error,
            "robust SEs should blow up under overdispersion"
        );
    }

    #[test]
    fn joint_wald_rejects_for_real_effects_only() {
        let (x, y) = simulate_poisson(600, 1.0, 0.3, 19);
        let fit = fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        let names = vec!["_cons".to_string(), "x".to_string()];
        let inf = wald_inference(&x, &y, &fit, &names, CovarianceKind::ModelBased, 0.95).unwrap();
        // The slope block (true coef 0.3) rejects decisively.
        let test = joint_wald_test(&inf, &["x"]).unwrap();
        assert!(test.p_value < 1e-10, "p={}", test.p_value);
        // An unknown name returns None.
        assert!(joint_wald_test(&inf, &["nope"]).is_none());
        // Empty block returns None.
        assert!(joint_wald_test(&inf, &[]).is_none());
        // Single-coefficient Wald matches z² (χ²(1)).
        let z = inf.coef("x").unwrap().z;
        assert!((test.statistic - z * z).abs() / test.statistic < 1e-9);
    }

    #[test]
    fn percent_change_math() {
        let c = CoefEstimate {
            name: "i".into(),
            coef: -0.393, // Table 1 Xmas2018
            std_error: 0.039,
            z: -10.05,
            p_value: 0.0,
            ci_lower: -0.469,
            ci_upper: -0.316,
        };
        // exp(-0.393)-1 = -32.5% — the paper's "reduction of between 37% and
        // 27%" comes from the CI endpoints.
        assert!((c.percent_change() + 32.5).abs() < 0.5);
        let (lo, hi) = c.percent_change_ci();
        assert!((lo + 37.4).abs() < 0.5, "lo={lo}");
        assert!((hi + 27.1).abs() < 0.5, "hi={hi}");
        assert!((c.irr() - 0.675).abs() < 0.001);
    }

    #[test]
    fn stars_thresholds() {
        let mk = |p| CoefEstimate {
            name: "x".into(),
            coef: 1.0,
            std_error: 1.0,
            z: 1.0,
            p_value: p,
            ci_lower: 0.0,
            ci_upper: 2.0,
        };
        assert_eq!(mk(0.005).stars(), "**");
        assert_eq!(mk(0.03).stars(), "*");
        assert_eq!(mk(0.2).stars(), "");
    }
}
