//! Iteratively reweighted least squares — the shared GLM fitting engine.
//!
//! At each iteration, with current means μ and linear predictor η:
//!
//! * working response  z = η + (y − μ) / (dμ/dη)
//! * working weight    w = (dμ/dη)² / Var(μ)
//!
//! and β is updated by solving the weighted normal equations
//! `XᵀWX β = XᵀWz` via Cholesky (with automatic ridge rescue when a dummy
//! column is momentarily degenerate). Convergence is declared on relative
//! deviance change.

use crate::family::Family;
use crate::link::Link;
use crate::workspace::{fit_irls_into, IrlsWorkspace, WarmStart};
use booters_linalg::{LinalgError, Matrix};
use std::fmt;

/// Errors from GLM fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum GlmError {
    /// Design and response dimensions do not match.
    DimensionMismatch {
        /// Rows of the design matrix.
        rows: usize,
        /// Length of the response vector.
        y_len: usize,
    },
    /// Fewer observations than parameters.
    TooFewObservations {
        /// Number of observations.
        n: usize,
        /// Number of parameters.
        p: usize,
    },
    /// The response contains values invalid for the family (e.g. negative
    /// counts for Poisson/NB).
    InvalidResponse {
        /// Index of the offending observation.
        at: usize,
    },
    /// The weighted least squares subproblem was unsolvable.
    Numerical(LinalgError),
    /// IRLS failed to converge within the iteration budget.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
        /// Last relative deviance change observed.
        last_change: f64,
    },
}

impl fmt::Display for GlmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlmError::DimensionMismatch { rows, y_len } => {
                write!(f, "design has {rows} rows but response has {y_len}")
            }
            GlmError::TooFewObservations { n, p } => {
                write!(f, "{n} observations for {p} parameters")
            }
            GlmError::InvalidResponse { at } => {
                write!(f, "invalid response value at index {at}")
            }
            GlmError::Numerical(e) => write!(f, "numerical failure: {e}"),
            GlmError::NotConverged {
                iterations,
                last_change,
            } => write!(
                f,
                "IRLS did not converge after {iterations} iterations (last relative change {last_change:.3e})"
            ),
        }
    }
}

impl std::error::Error for GlmError {}

impl From<LinalgError> for GlmError {
    fn from(e: LinalgError) -> Self {
        GlmError::Numerical(e)
    }
}

/// IRLS tuning options.
#[derive(Debug, Clone, Copy)]
pub struct IrlsOptions {
    /// Maximum number of IRLS iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on relative deviance change.
    pub tolerance: f64,
}

impl Default for IrlsOptions {
    fn default() -> Self {
        IrlsOptions {
            max_iterations: 100,
            tolerance: 1e-10,
        }
    }
}

/// A converged GLM fit for a fixed family (no dispersion estimation here;
/// see [`crate::negbin`] for the profile-ML α loop on top).
#[derive(Debug, Clone)]
pub struct GlmFit {
    /// Estimated coefficients, one per design column.
    pub beta: Vec<f64>,
    /// Fitted means μ̂.
    pub mu: Vec<f64>,
    /// Linear predictor η̂.
    pub eta: Vec<f64>,
    /// Final IRLS working weights (the diagonal of W).
    pub weights: Vec<f64>,
    /// Total log-likelihood at the fit.
    pub log_likelihood: f64,
    /// Total deviance at the fit.
    pub deviance: f64,
    /// Number of IRLS iterations used.
    pub iterations: usize,
    /// Number of observations.
    pub n: usize,
    /// Number of parameters.
    pub p: usize,
}

impl GlmFit {
    /// Response residuals y − μ̂.
    pub fn response_residuals(&self, y: &[f64]) -> Vec<f64> {
        y.iter().zip(&self.mu).map(|(a, b)| a - b).collect()
    }

    /// Pearson residuals (y − μ̂)/√Var(μ̂) for the given family.
    pub fn pearson_residuals(&self, y: &[f64], family: &dyn Family) -> Vec<f64> {
        y.iter()
            .zip(&self.mu)
            .map(|(&yi, &mi)| (yi - mi) / family.variance(mi).sqrt())
            .collect()
    }

    /// Pearson χ² statistic (sum of squared Pearson residuals).
    pub fn pearson_chi2(&self, y: &[f64], family: &dyn Family) -> f64 {
        self.pearson_residuals(y, family).iter().map(|r| r * r).sum()
    }

    /// Deviance residuals sign(y−μ)·√dᵢ — the residuals used for the
    /// Ljung–Box serial-correlation diagnostic on fitted count models.
    pub fn deviance_residuals(&self, y: &[f64], family: &dyn Family) -> Vec<f64> {
        y.iter()
            .zip(&self.mu)
            .map(|(&yi, &mi)| {
                let d = family.unit_deviance(yi, mi).max(0.0).sqrt();
                if yi >= mi {
                    d
                } else {
                    -d
                }
            })
            .collect()
    }

    /// Akaike information criterion, counting `extra_params` parameters
    /// beyond the linear coefficients (1 for NB2's dispersion).
    pub fn aic(&self, extra_params: usize) -> f64 {
        2.0 * (self.p + extra_params) as f64 - 2.0 * self.log_likelihood
    }

    /// Bayesian information criterion.
    pub fn bic(&self, extra_params: usize) -> f64 {
        (self.p + extra_params) as f64 * (self.n as f64).ln() - 2.0 * self.log_likelihood
    }
}

/// Likelihood-ratio test of a nested pair of fits: returns (statistic,
/// p-value) for 2·(ℓ₁ − ℓ₀) on `df` degrees of freedom.
pub fn lr_test(ll_restricted: f64, ll_full: f64, df: usize) -> (f64, f64) {
    let stat = (2.0 * (ll_full - ll_restricted)).max(0.0);
    let p = booters_stats::dist::ChiSquared::new(df.max(1) as f64).sf(stat);
    (stat, p)
}

/// Fit a GLM by IRLS.
///
/// `x` is the n×p design (including any constant column), `y` the response.
/// Count families require non-negative responses.
pub fn fit_irls(
    x: &Matrix,
    y: &[f64],
    family: &dyn Family,
    link: &dyn Link,
    options: &IrlsOptions,
) -> Result<GlmFit, GlmError> {
    fit_irls_offset(x, y, None, family, link, options)
}

/// Fit a GLM by IRLS with an optional offset: η = Xβ + o.
///
/// The classic use is a log-exposure offset in count models — e.g.
/// modelling attack *rates* per active booter by passing
/// `o = ln(active booters)` — so coefficients keep their incidence-rate
/// interpretation while exposure varies.
pub fn fit_irls_offset(
    x: &Matrix,
    y: &[f64],
    offset: Option<&[f64]>,
    family: &dyn Family,
    link: &dyn Link,
    options: &IrlsOptions,
) -> Result<GlmFit, GlmError> {
    let mut ws = IrlsWorkspace::new();
    fit_irls_into(&mut ws, x, y, offset, family, link, options, WarmStart::Cold)?;
    Ok(ws.to_glm_fit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{Gaussian, PoissonFamily};
    use crate::link::{IdentityLink, LogLink};
    use booters_testkit::rngs::StdRng;
    use booters_testkit::SeedableRng;

    fn design_with_intercept(xs: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(xs.len(), 2);
        for (i, &x) in xs.iter().enumerate() {
            m[(i, 0)] = 1.0;
            m[(i, 1)] = x;
        }
        m
    }

    #[test]
    fn gaussian_identity_recovers_ols() {
        // Exact line: IRLS with Gaussian/identity is OLS and converges in
        // one step.
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = xs.iter().map(|&x| 3.0 + 2.0 * x).collect();
        let x = design_with_intercept(&xs);
        let fit = fit_irls(&x, &y, &Gaussian, &IdentityLink, &IrlsOptions::default()).unwrap();
        assert!((fit.beta[0] - 3.0).abs() < 1e-8);
        assert!((fit.beta[1] - 2.0).abs() < 1e-8);
        assert!(fit.deviance < 1e-12);
    }

    #[test]
    fn poisson_log_recovers_known_coefficients() {
        // Simulate y ~ Poisson(exp(1 + 0.05 x)) and recover (1, 0.05).
        let mut rng = StdRng::seed_from_u64(42);
        let xs: Vec<f64> = (0..400).map(|i| (i % 40) as f64).collect();
        let y: Vec<f64> = xs
            .iter()
            .map(|&x| {
                let mu = (1.0 + 0.05 * x).exp();
                booters_stats::dist::Poisson::new(mu).sample(&mut rng) as f64
            })
            .collect();
        let x = design_with_intercept(&xs);
        let fit = fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        assert!((fit.beta[0] - 1.0).abs() < 0.1, "b0={}", fit.beta[0]);
        assert!((fit.beta[1] - 0.05).abs() < 0.005, "b1={}", fit.beta[1]);
    }

    #[test]
    fn poisson_intercept_only_fits_mean() {
        // With only a constant, μ̂ = ȳ exactly (score equation).
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let mut x = Matrix::zeros(4, 1);
        for i in 0..4 {
            x[(i, 0)] = 1.0;
        }
        let fit = fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        assert!((fit.beta[0] - 5.0f64.ln()).abs() < 1e-8);
        assert!((fit.mu[0] - 5.0).abs() < 1e-7);
    }

    #[test]
    fn rejects_negative_counts() {
        let y = vec![1.0, -2.0, 3.0];
        let x = design_with_intercept(&[0.0, 1.0, 2.0]);
        assert!(matches!(
            fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()),
            Err(GlmError::InvalidResponse { at: 1 })
        ));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let y = vec![1.0, 2.0];
        let x = design_with_intercept(&[0.0, 1.0, 2.0]);
        assert!(matches!(
            fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()),
            Err(GlmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_underdetermined() {
        let y = vec![1.0];
        let x = design_with_intercept(&[0.0]);
        assert!(matches!(
            fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()),
            Err(GlmError::TooFewObservations { .. })
        ));
    }

    #[test]
    fn pearson_residuals_standardise() {
        let y = vec![2.0, 4.0, 6.0, 8.0];
        let mut x = Matrix::zeros(4, 1);
        for i in 0..4 {
            x[(i, 0)] = 1.0;
        }
        let fit = fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        let r = fit.pearson_residuals(&y, &PoissonFamily);
        // (y - 5)/sqrt(5)
        assert!((r[0] - (2.0 - 5.0) / 5.0f64.sqrt()).abs() < 1e-6);
        let chi2 = fit.pearson_chi2(&y, &PoissonFamily);
        assert!((chi2 - r.iter().map(|v| v * v).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn offset_recovers_rate_model() {
        // y ~ Poisson(exposure * exp(b0 + b1 x)); fitting with
        // offset = ln(exposure) must recover (b0, b1) regardless of the
        // exposure pattern.
        let mut rng = StdRng::seed_from_u64(61);
        let n = 600;
        let xs: Vec<f64> = (0..n).map(|i| (i % 20) as f64 / 5.0).collect();
        let exposure: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| {
                let mu = exposure[i] * (0.5 + 0.4 * xs[i]).exp();
                booters_stats::dist::Poisson::new(mu).sample(&mut rng) as f64
            })
            .collect();
        let x = design_with_intercept(&xs);
        let offset: Vec<f64> = exposure.iter().map(|e| e.ln()).collect();
        let fit = fit_irls_offset(
            &x,
            &y,
            Some(&offset),
            &PoissonFamily,
            &LogLink,
            &IrlsOptions::default(),
        )
        .unwrap();
        assert!((fit.beta[0] - 0.5).abs() < 0.08, "b0={}", fit.beta[0]);
        assert!((fit.beta[1] - 0.4).abs() < 0.04, "b1={}", fit.beta[1]);
        // Without the offset the intercept absorbs mean exposure and is
        // biased upward.
        let no_offset =
            fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        assert!(no_offset.beta[0] > fit.beta[0] + 0.5);
    }

    #[test]
    fn offset_length_checked() {
        let y = vec![1.0, 2.0, 3.0];
        let x = design_with_intercept(&[0.0, 1.0, 2.0]);
        let bad = vec![0.0; 2];
        assert!(matches!(
            fit_irls_offset(&x, &y, Some(&bad), &PoissonFamily, &LogLink, &IrlsOptions::default()),
            Err(GlmError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn aic_bic_penalise_parameters() {
        let y = vec![2.0, 4.0, 6.0, 8.0, 3.0, 5.0, 7.0, 4.0];
        let mut x = Matrix::zeros(8, 1);
        for i in 0..8 {
            x[(i, 0)] = 1.0;
        }
        let fit = fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        assert!((fit.aic(0) - (2.0 - 2.0 * fit.log_likelihood)).abs() < 1e-12);
        assert!(fit.aic(1) > fit.aic(0));
        // BIC's per-parameter penalty ln(8) ≈ 2.08 exceeds AIC's 2.
        assert!(fit.bic(0) > fit.aic(0));
    }

    #[test]
    fn deviance_residuals_sign_and_magnitude() {
        let y = vec![2.0, 8.0];
        let mut x = Matrix::zeros(2, 1);
        x[(0, 0)] = 1.0;
        x[(1, 0)] = 1.0;
        let fit = fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        let r = fit.deviance_residuals(&y, &PoissonFamily);
        assert!(r[0] < 0.0 && r[1] > 0.0); // below/above the fitted mean 5
        let dev: f64 = r.iter().map(|v| v * v).sum();
        assert!((dev - fit.deviance).abs() < 1e-9);
    }

    #[test]
    fn lr_test_basics() {
        let (stat, p) = lr_test(-100.0, -90.0, 1);
        assert!((stat - 20.0).abs() < 1e-12);
        assert!(p < 1e-4);
        let (stat0, p0) = lr_test(-90.0, -90.0, 1);
        assert_eq!(stat0, 0.0);
        assert!((p0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn error_display_is_readable() {
        let e = GlmError::NotConverged {
            iterations: 100,
            last_change: 0.5,
        };
        assert!(e.to_string().contains("did not converge"));
    }
}
