//! The allocation-free IRLS core: a reusable buffer arena and a
//! `fit_irls_into` entry point that performs **zero heap allocations per
//! iteration** once the workspace is warmed to the problem shape.
//!
//! Why this exists: `fit_negbin` evaluates the profile log-likelihood up
//! to ~200 times per model, and each evaluation is a full IRLS solve. The
//! classic implementation allocates ~6 vectors and 2 matrices *per
//! iteration*; at Table-1 scale (148×19 designs refit per country, per
//! candidate window, per ablation) the allocator traffic rivals the
//! floating-point work. [`IrlsWorkspace`] owns every per-iteration buffer
//! (z, w, η, μ, XᵀWX, XᵀWz, the Cholesky factor and its scratch) and the
//! fused `booters-linalg` `_into` kernels write straight into them.
//!
//! ## Determinism contract
//!
//! A cold-started [`fit_irls_into`] is **bit-identical** to the historic
//! allocating `fit_irls`: the fused kernels preserve per-entry f64
//! summation order, the in-place Cholesky (ridge schedule included)
//! reproduces the cloning version bit for bit, and the iteration
//! structure is unchanged. Warm starts ([`WarmStart::Beta`]) change the
//! IRLS *trajectory*, so they are only **tolerance-equal** (same optimum
//! to ~1e-8); see `DESIGN.md` §5d for where each guarantee is relied on.

use crate::family::Family;
use crate::irls::{GlmError, GlmFit, IrlsOptions};
use crate::link::Link;
use booters_linalg::{cholesky_solve_into, cholesky_with_ridge_into, Matrix};

/// How [`fit_irls_into`] initialises the IRLS state.
#[derive(Debug, Clone, Copy)]
pub enum WarmStart<'a> {
    /// The standard GLM start: μ seeded from the response.
    Cold,
    /// Continuation: seed β (and hence η = Xβ + offset and μ) from a
    /// previously converged fit on the same design — the profile-α loop
    /// passes the neighbouring α's coefficients. A slice of the wrong
    /// length falls back to the cold start.
    Beta(&'a [f64]),
}

/// Reusable buffers for [`fit_irls_into`]. Create once, pass to many
/// fits; buffers are (re)sized on first use per problem shape and reused
/// verbatim afterwards, so steady-state iterations never touch the heap.
#[derive(Debug)]
pub struct IrlsWorkspace {
    n: usize,
    p: usize,
    z: Vec<f64>,
    w: Vec<f64>,
    eta: Vec<f64>,
    mu: Vec<f64>,
    new_eta: Vec<f64>,
    new_mu: Vec<f64>,
    beta: Vec<f64>,
    new_beta: Vec<f64>,
    xtwx: Matrix,
    xtwz: Vec<f64>,
    factor: Matrix,
    diag: Vec<f64>,
    log_likelihood: f64,
    deviance: f64,
    iterations: usize,
}

impl IrlsWorkspace {
    /// An empty workspace; buffers are allocated lazily by the first fit.
    pub fn new() -> IrlsWorkspace {
        IrlsWorkspace {
            n: 0,
            p: 0,
            z: Vec::new(),
            w: Vec::new(),
            eta: Vec::new(),
            mu: Vec::new(),
            new_eta: Vec::new(),
            new_mu: Vec::new(),
            beta: Vec::new(),
            new_beta: Vec::new(),
            xtwx: Matrix::zeros(0, 0),
            xtwz: Vec::new(),
            factor: Matrix::zeros(0, 0),
            diag: Vec::new(),
            log_likelihood: 0.0,
            deviance: 0.0,
            iterations: 0,
        }
    }

    /// Size every buffer for an `n × p` problem. Allocates only when the
    /// shape grows (or `p` changes, for the square buffers).
    fn ensure(&mut self, n: usize, p: usize) {
        if self.n != n {
            self.z.resize(n, 0.0);
            self.w.resize(n, 0.0);
            self.eta.resize(n, 0.0);
            self.mu.resize(n, 0.0);
            self.new_eta.resize(n, 0.0);
            self.new_mu.resize(n, 0.0);
            self.n = n;
        }
        if self.p != p {
            self.beta.resize(p, 0.0);
            self.new_beta.resize(p, 0.0);
            self.xtwz.resize(p, 0.0);
            self.diag.resize(p, 0.0);
            self.xtwx = Matrix::zeros(p, p);
            self.factor = Matrix::zeros(p, p);
            self.p = p;
        }
    }

    /// Converged coefficients of the last successful fit.
    pub fn beta(&self) -> &[f64] {
        &self.beta
    }

    /// Fitted means of the last successful fit.
    pub fn mu(&self) -> &[f64] {
        &self.mu
    }

    /// Linear predictor of the last successful fit.
    pub fn eta(&self) -> &[f64] {
        &self.eta
    }

    /// Final working weights of the last successful fit.
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Log-likelihood at the last converged state.
    pub fn log_likelihood(&self) -> f64 {
        self.log_likelihood
    }

    /// Deviance at the last converged state.
    pub fn deviance(&self) -> f64 {
        self.deviance
    }

    /// IRLS iterations the last fit used.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Materialise the last converged state as an owned [`GlmFit`]
    /// (allocates — call once per fit, outside the iteration loop).
    pub fn to_glm_fit(&self) -> GlmFit {
        GlmFit {
            beta: self.beta.clone(),
            mu: self.mu.clone(),
            eta: self.eta.clone(),
            weights: self.w.clone(),
            log_likelihood: self.log_likelihood,
            deviance: self.deviance,
            iterations: self.iterations,
            n: self.n,
            p: self.p,
        }
    }
}

impl Default for IrlsWorkspace {
    fn default() -> IrlsWorkspace {
        IrlsWorkspace::new()
    }
}

/// The IRLS working terms at one observation: `(dμ/dη, w)` with the
/// clamps the fitter has always applied. One definition shared by the
/// solve loop and the final-weights pass (historically the two sites
/// duplicated this computation).
#[inline]
fn working_terms(link: &dyn Link, family: &dyn Family, eta: f64, mu: f64) -> (f64, f64) {
    let d = link.d_inverse(eta).max(1e-10);
    let v = family.variance(mu).max(1e-10);
    (d, d * d / v)
}

/// Fit a GLM by IRLS into a caller-owned workspace.
///
/// Validation, initialisation (for [`WarmStart::Cold`]), iteration
/// structure and convergence rule are exactly those of
/// [`crate::fit_irls_offset`] — which now delegates here — but every
/// per-iteration buffer lives in `ws`, so steady-state iterations perform
/// zero heap allocations (asserted by the counting-allocator test in
/// `tests/alloc_counter.rs`). On success the converged state is left in
/// `ws` (see [`IrlsWorkspace::to_glm_fit`]); on error the workspace
/// contents are unspecified but safely reusable.
#[allow(clippy::too_many_arguments)]
pub fn fit_irls_into(
    ws: &mut IrlsWorkspace,
    x: &Matrix,
    y: &[f64],
    offset: Option<&[f64]>,
    family: &dyn Family,
    link: &dyn Link,
    options: &IrlsOptions,
    warm: WarmStart<'_>,
) -> Result<(), GlmError> {
    let n = x.rows();
    let p = x.cols();
    if y.len() != n {
        return Err(GlmError::DimensionMismatch { rows: n, y_len: y.len() });
    }
    if n < p {
        return Err(GlmError::TooFewObservations { n, p });
    }
    for (i, &yi) in y.iter().enumerate() {
        if !yi.is_finite() {
            return Err(GlmError::InvalidResponse { at: i });
        }
        // Count families cannot see negative responses.
        if matches!(family.name(), "poisson" | "negbin2") && yi < 0.0 {
            return Err(GlmError::InvalidResponse { at: i });
        }
    }
    if let Some(o) = offset {
        if o.len() != n {
            return Err(GlmError::DimensionMismatch { rows: n, y_len: o.len() });
        }
    }
    ws.ensure(n, p);
    let off = |i: usize| offset.map_or(0.0, |o| o[i]);

    match warm {
        WarmStart::Beta(beta0) if beta0.len() == p => {
            // Continuation: η = Xβ₀ + o, μ = g⁻¹(η).
            ws.beta.copy_from_slice(beta0);
            x.matvec_into(&ws.beta, &mut ws.eta)?;
            if offset.is_some() {
                for (i, e) in ws.eta.iter_mut().enumerate() {
                    *e += off(i);
                }
            }
            for i in 0..n {
                ws.mu[i] = link.inverse(ws.eta[i]);
            }
        }
        _ => {
            // Initialise μ from the response (standard GLM start): nudge
            // counts off zero, then η = g(μ).
            let mean_y = y.iter().sum::<f64>() / n as f64;
            for i in 0..n {
                ws.mu[i] = ((y[i] + mean_y.max(1.0)) / 2.0).max(1e-8);
                ws.eta[i] = link.link(ws.mu[i]);
            }
            ws.beta.fill(0.0);
        }
    }
    ws.deviance = y
        .iter()
        .zip(&ws.mu)
        .map(|(&yi, &mi)| family.unit_deviance(yi, mi))
        .sum();
    let mut last_change = f64::INFINITY;

    for iter in 1..=options.max_iterations {
        // Working response and weights.
        for i in 0..n {
            let (d, wi) = working_terms(link, family, ws.eta[i], ws.mu[i]);
            // Offset enters η but is not estimated: regress z − o on X.
            ws.z[i] = (ws.eta[i] - off(i)) + (y[i] - ws.mu[i]) / d;
            ws.w[i] = wi;
        }

        // Solve XᵀWX β = XᵀWz with the fused, in-place kernels.
        x.xtwx_xtwz_into(&ws.w, &ws.z, &mut ws.xtwx, &mut ws.xtwz)?;
        cholesky_with_ridge_into(&mut ws.xtwx, &mut ws.factor, &mut ws.diag, 14)?;
        cholesky_solve_into(&ws.factor, &ws.xtwz, &mut ws.new_beta)?;

        // Update state.
        x.matvec_into(&ws.new_beta, &mut ws.new_eta)?;
        if offset.is_some() {
            for (i, e) in ws.new_eta.iter_mut().enumerate() {
                *e += off(i);
            }
        }
        for i in 0..n {
            ws.new_mu[i] = link.inverse(ws.new_eta[i]);
        }
        let new_deviance: f64 = y
            .iter()
            .zip(&ws.new_mu)
            .map(|(&yi, &mi)| family.unit_deviance(yi, mi))
            .sum();

        std::mem::swap(&mut ws.beta, &mut ws.new_beta);
        std::mem::swap(&mut ws.eta, &mut ws.new_eta);
        std::mem::swap(&mut ws.mu, &mut ws.new_mu);
        last_change = ((ws.deviance - new_deviance).abs()) / (new_deviance.abs() + 0.1);
        ws.deviance = new_deviance;

        if last_change < options.tolerance {
            ws.log_likelihood = y
                .iter()
                .zip(&ws.mu)
                .map(|(&yi, &mi)| family.log_likelihood(yi, mi))
                .sum();
            // Final working weights at the *converged* η/μ (one step
            // fresher than the weights the last solve used) — same pass
            // as above, not a duplicated formula.
            for i in 0..n {
                ws.w[i] = working_terms(link, family, ws.eta[i], ws.mu[i]).1;
            }
            ws.iterations = iter;
            booters_obs::counter_add("glm.irls_fits", 1);
            booters_obs::counter_add("glm.irls_iterations", iter as u64);
            return Ok(());
        }
    }

    Err(GlmError::NotConverged {
        iterations: options.max_iterations,
        last_change,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::PoissonFamily;
    use crate::link::LogLink;
    use booters_testkit::rngs::StdRng;
    use booters_testkit::SeedableRng;

    fn poisson_problem(n: usize, seed: u64) -> (Matrix, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let xi = (i % 30) as f64 / 10.0;
            x[(i, 0)] = 1.0;
            x[(i, 1)] = xi;
            let mu = (1.0 + 0.2 * xi).exp();
            y[i] = booters_stats::dist::Poisson::new(mu).sample(&mut rng) as f64;
        }
        (x, y)
    }

    #[test]
    fn workspace_fit_is_bit_identical_to_fit_irls() {
        let (x, y) = poisson_problem(200, 11);
        let reference =
            crate::fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default()).unwrap();
        let mut ws = IrlsWorkspace::new();
        fit_irls_into(
            &mut ws,
            &x,
            &y,
            None,
            &PoissonFamily,
            &LogLink,
            &IrlsOptions::default(),
            WarmStart::Cold,
        )
        .unwrap();
        assert_eq!(ws.beta(), reference.beta.as_slice());
        assert_eq!(ws.mu(), reference.mu.as_slice());
        assert_eq!(ws.eta(), reference.eta.as_slice());
        assert_eq!(ws.weights(), reference.weights.as_slice());
        assert_eq!(ws.log_likelihood(), reference.log_likelihood);
        assert_eq!(ws.deviance(), reference.deviance);
        assert_eq!(ws.iterations(), reference.iterations);
        let fit = ws.to_glm_fit();
        assert_eq!(fit.beta, reference.beta);
        assert_eq!(fit.n, reference.n);
        assert_eq!(fit.p, reference.p);
    }

    #[test]
    fn workspace_is_reusable_across_shapes() {
        let mut ws = IrlsWorkspace::new();
        for (n, seed) in [(60usize, 1u64), (200, 2), (60, 3)] {
            let (x, y) = poisson_problem(n, seed);
            fit_irls_into(
                &mut ws,
                &x,
                &y,
                None,
                &PoissonFamily,
                &LogLink,
                &IrlsOptions::default(),
                WarmStart::Cold,
            )
            .unwrap();
            let reference =
                crate::fit_irls(&x, &y, &PoissonFamily, &LogLink, &IrlsOptions::default())
                    .unwrap();
            assert_eq!(ws.beta(), reference.beta.as_slice(), "n={n}");
        }
    }

    #[test]
    fn warm_start_from_solution_converges_fast_to_same_optimum() {
        let (x, y) = poisson_problem(300, 5);
        let mut ws = IrlsWorkspace::new();
        fit_irls_into(
            &mut ws,
            &x,
            &y,
            None,
            &PoissonFamily,
            &LogLink,
            &IrlsOptions::default(),
            WarmStart::Cold,
        )
        .unwrap();
        let cold_beta = ws.beta().to_vec();
        let cold_iters = ws.iterations();
        fit_irls_into(
            &mut ws,
            &x,
            &y,
            None,
            &PoissonFamily,
            &LogLink,
            &IrlsOptions::default(),
            WarmStart::Beta(&cold_beta),
        )
        .unwrap();
        assert!(
            ws.iterations() < cold_iters,
            "warm {} vs cold {}",
            ws.iterations(),
            cold_iters
        );
        for (a, b) in ws.beta().iter().zip(&cold_beta) {
            assert!((a - b).abs() < 1e-8, "warm {a} vs cold {b}");
        }
    }

    #[test]
    fn wrong_length_warm_start_falls_back_to_cold() {
        let (x, y) = poisson_problem(80, 9);
        let mut cold = IrlsWorkspace::new();
        fit_irls_into(
            &mut cold,
            &x,
            &y,
            None,
            &PoissonFamily,
            &LogLink,
            &IrlsOptions::default(),
            WarmStart::Cold,
        )
        .unwrap();
        let mut ws = IrlsWorkspace::new();
        fit_irls_into(
            &mut ws,
            &x,
            &y,
            None,
            &PoissonFamily,
            &LogLink,
            &IrlsOptions::default(),
            WarmStart::Beta(&[0.0; 7]),
        )
        .unwrap();
        assert_eq!(ws.beta(), cold.beta());
        assert_eq!(ws.iterations(), cold.iterations());
    }

    #[test]
    fn validation_errors_match_fit_irls() {
        let (x, _) = poisson_problem(10, 1);
        let mut ws = IrlsWorkspace::new();
        let short = vec![1.0; 4];
        assert!(matches!(
            fit_irls_into(
                &mut ws,
                &x,
                &short,
                None,
                &PoissonFamily,
                &LogLink,
                &IrlsOptions::default(),
                WarmStart::Cold,
            ),
            Err(GlmError::DimensionMismatch { .. })
        ));
        let neg = vec![-1.0; 10];
        assert!(matches!(
            fit_irls_into(
                &mut ws,
                &x,
                &neg,
                None,
                &PoissonFamily,
                &LogLink,
                &IrlsOptions::default(),
                WarmStart::Cold,
            ),
            Err(GlmError::InvalidResponse { at: 0 })
        ));
    }
}
