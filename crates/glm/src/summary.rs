//! Table 1-style rendering of fitted models.
//!
//! The paper's Table 1 lists, per regressor: coefficient, standard error,
//! z, P>|z| and the 95% CI, with `*`/`**` significance markers. This module
//! renders the same layout from a [`FitInference`].

use crate::inference::FitInference;
use crate::negbin::NegBinFit;

/// Render a coefficient table in the paper's Table 1 layout.
pub fn coefficient_table(inference: &FitInference) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28} {:>10} {:>10} {:>8} {:>8}  {:>9} {:>9}\n",
        "", "Coef.", "Std.err.", "z", "P>|z|", "L95", "U95"
    ));
    for c in &inference.coefficients {
        out.push_str(&format!(
            "{:<28} {:>10.3} {:>10.4} {:>8.2} {:>6.3}{:<2} {:>9.3} {:>9.3}\n",
            c.name,
            c.coef,
            c.std_error,
            c.z,
            c.p_value,
            c.stars(),
            c.ci_lower,
            c.ci_upper
        ));
    }
    out
}

/// Render a full NB2 model summary: header with α, log-likelihood and the
/// overdispersion LR test, then the coefficient table.
pub fn negbin_summary(fit: &NegBinFit) -> String {
    let (lr, lr_p) = fit.overdispersion_lr();
    let mut out = String::new();
    out.push_str("Negative binomial regression (NB2, log link)\n");
    out.push_str(&format!(
        "  n = {}    parameters = {}    alpha = {:.5}\n",
        fit.fit.n, fit.fit.p, fit.alpha
    ));
    out.push_str(&format!(
        "  log-likelihood = {:.2}    Poisson LL = {:.2}    LR(alpha=0) = {:.1} (p = {:.2e})\n",
        fit.log_likelihood, fit.poisson_log_likelihood, lr, lr_p
    ));
    out.push_str(&format!(
        "  covariance: {:?}, {:.0}% CI\n\n",
        fit.inference.kind,
        fit.inference.level * 100.0
    ));
    out.push_str(&coefficient_table(&fit.inference));
    out
}

/// Render an OLS fit summary (used for the Figure 5 slope regressions).
pub fn ols_summary(fit: &crate::ols::OlsFit) -> String {
    let mut out = String::from("Ordinary least squares\n");
    out.push_str(&format!(
        "  n = {}    parameters = {}    R² = {:.4}  (adj {:.4})    σ = {:.4}\n",
        fit.n, fit.p, fit.r_squared, fit.adj_r_squared, fit.sigma
    ));
    if fit.f_statistic.is_finite() {
        out.push_str(&format!(
            "  F = {:.2} (p = {:.3e})\n",
            fit.f_statistic, fit.f_p_value
        ));
    }
    out.push('\n');
    out.push_str(&format!(
        "{:<20} {:>10} {:>10} {:>8} {:>8}  {:>9} {:>9}\n",
        "", "Coef.", "Std.err.", "t", "P>|t|", "L95", "U95"
    ));
    for c in &fit.coefficients {
        out.push_str(&format!(
            "{:<20} {:>10.4} {:>10.4} {:>8.2} {:>6.3}{:<2} {:>9.4} {:>9.4}\n",
            c.name, c.coef, c.std_error, c.z, c.p_value, c.stars(), c.ci_lower, c.ci_upper
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_linalg::Matrix;
    use booters_stats::dist::NegativeBinomial;
    use booters_testkit::rngs::StdRng;
    use booters_testkit::SeedableRng;

    #[test]
    fn ols_summary_renders() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 + 2.0 * x + (x * 7.0).sin()).collect();
        let fit = crate::ols::fit_simple(&xs, &ys, 0.95).unwrap();
        let s = ols_summary(&fit);
        assert!(s.contains("Ordinary least squares"));
        assert!(s.contains("_cons"));
        assert!(s.contains("R²"));
        assert!(s.contains('F'));
    }

    #[test]
    fn summary_contains_expected_fields() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 200;
        let mut x = Matrix::zeros(n, 2);
        let mut y = vec![0.0; n];
        for i in 0..n {
            x[(i, 0)] = 1.0;
            x[(i, 1)] = (i % 10) as f64;
            let mu = (2.0 + 0.1 * x[(i, 1)]).exp();
            y[i] = NegativeBinomial::new(mu, 0.3).sample(&mut rng) as f64;
        }
        let names = vec!["_cons".to_string(), "time".to_string()];
        let fit =
            crate::negbin::fit_negbin(&x, &y, &names, &crate::negbin::NegBinOptions::default())
                .unwrap();
        let s = negbin_summary(&fit);
        assert!(s.contains("Negative binomial regression"));
        assert!(s.contains("alpha"));
        assert!(s.contains("_cons"));
        assert!(s.contains("time"));
        assert!(s.contains("L95"));
        // Table has one line per coefficient plus headers.
        assert!(s.lines().count() >= 7);
    }
}
