//! Link functions mapping the linear predictor η to the mean μ.

/// A GLM link function g with μ = g⁻¹(η).
pub trait Link {
    /// g(μ) — the link itself.
    fn link(&self, mu: f64) -> f64;
    /// g⁻¹(η) — the inverse link (mean function).
    fn inverse(&self, eta: f64) -> f64;
    /// dμ/dη evaluated at η.
    fn d_inverse(&self, eta: f64) -> f64;
    /// Short name for summaries.
    fn name(&self) -> &'static str;
}

/// Identity link (Gaussian default): μ = η.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityLink;

impl Link for IdentityLink {
    fn link(&self, mu: f64) -> f64 {
        mu
    }
    fn inverse(&self, eta: f64) -> f64 {
        eta
    }
    fn d_inverse(&self, _eta: f64) -> f64 {
        1.0
    }
    fn name(&self) -> &'static str {
        "identity"
    }
}

/// Log link (count-model default): μ = exp(η).
///
/// η is clamped to ±`LogLink::ETA_CLAMP` before exponentiation so a wild
/// IRLS step cannot produce an infinite mean and poison the weights.
#[derive(Debug, Clone, Copy, Default)]
pub struct LogLink;

impl LogLink {
    /// Clamp bound for the linear predictor (e^30 ≈ 1.07e13 — far above
    /// any weekly attack count, far below overflow).
    pub const ETA_CLAMP: f64 = 30.0;
}

impl Link for LogLink {
    fn link(&self, mu: f64) -> f64 {
        mu.max(f64::MIN_POSITIVE).ln()
    }
    fn inverse(&self, eta: f64) -> f64 {
        eta.clamp(-Self::ETA_CLAMP, Self::ETA_CLAMP).exp()
    }
    fn d_inverse(&self, eta: f64) -> f64 {
        self.inverse(eta)
    }
    fn name(&self) -> &'static str {
        "log"
    }
}

/// Logit link: μ = 1/(1+e^{−η}). Provided for completeness (binary GLMs in
/// extensions; not used by the paper's count models).
#[derive(Debug, Clone, Copy, Default)]
pub struct LogitLink;

impl Link for LogitLink {
    fn link(&self, mu: f64) -> f64 {
        let m = mu.clamp(1e-12, 1.0 - 1e-12);
        (m / (1.0 - m)).ln()
    }
    fn inverse(&self, eta: f64) -> f64 {
        1.0 / (1.0 + (-eta).exp())
    }
    fn d_inverse(&self, eta: f64) -> f64 {
        let p = self.inverse(eta);
        p * (1.0 - p)
    }
    fn name(&self) -> &'static str {
        "logit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let l = IdentityLink;
        assert_eq!(l.inverse(l.link(3.5)), 3.5);
        assert_eq!(l.d_inverse(3.5), 1.0);
    }

    #[test]
    fn log_roundtrip_and_derivative() {
        let l = LogLink;
        for &mu in &[0.1, 1.0, 100.0, 1e6] {
            assert!((l.inverse(l.link(mu)) - mu).abs() / mu < 1e-12);
        }
        // dμ/dη = μ for the log link.
        let eta = 2.0;
        let h = 1e-7;
        let numeric = (l.inverse(eta + h) - l.inverse(eta - h)) / (2.0 * h);
        assert!((l.d_inverse(eta) - numeric).abs() < 1e-4);
    }

    #[test]
    fn log_clamps_extreme_eta() {
        let l = LogLink;
        assert!(l.inverse(1e9).is_finite());
        assert!(l.inverse(-1e9) > 0.0);
    }

    #[test]
    fn logit_roundtrip_and_bounds() {
        let l = LogitLink;
        for &p in &[0.01, 0.3, 0.5, 0.99] {
            assert!((l.inverse(l.link(p)) - p).abs() < 1e-12);
        }
        assert!(l.inverse(100.0) <= 1.0);
        assert!(l.inverse(-100.0) >= 0.0);
        // Max derivative at η=0 is 1/4.
        assert!((l.d_inverse(0.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(IdentityLink.name(), "identity");
        assert_eq!(LogLink.name(), "log");
        assert_eq!(LogitLink.name(), "logit");
    }
}
