#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
//! Generalised linear models from scratch.
//!
//! The paper fits negative binomial (NB2) regressions to weekly DoS attack
//! counts ("We use a negative binomial rather than poisson regression
//! model, as the events ... are not independent"). No mature Rust GLM
//! library exists, so this crate implements the textbook machinery
//! (Hardin & Hilbe, *Generalized Linear Models and Extensions*; Cameron &
//! Trivedi, *Regression Analysis of Count Data*):
//!
//! * [`link`] — link functions (identity, log, logit).
//! * [`family`] — exponential-family variance/deviance/likelihood
//!   definitions (Gaussian, Poisson, NB2 with fixed α).
//! * [`irls`] — the iteratively reweighted least squares fitter shared by
//!   every family.
//! * [`poisson`] — Poisson regression (the baseline the paper rejects in
//!   favour of NB because of overdispersion).
//! * [`negbin`] — NB2 regression with dispersion α estimated by profile
//!   maximum likelihood, the paper's actual model.
//! * [`ols`] — ordinary least squares with full inference (used for the
//!   Figure 5 slopes and as the substrate of White's test).
//! * [`inference`] — Wald z/p/confidence intervals, model-based and HC1
//!   sandwich ("pseudolikelihood") covariance, incidence-rate ratios.
//! * [`summary`] — Table 1-style rendering of a fitted model.
//! * [`workspace`] — the allocation-free IRLS core: a reusable buffer
//!   arena ([`IrlsWorkspace`]) plus warm-start continuation, which the
//!   profile-α loop in [`negbin`] exploits to cut fit time.

pub mod family;
pub mod inference;
pub mod irls;
pub mod link;
pub mod negbin;
pub mod ols;
pub mod poisson;
pub mod summary;
pub mod workspace;

pub use family::{Family, Gaussian, NegBin2, PoissonFamily};
pub use inference::{joint_wald_test, CoefEstimate, CovarianceKind, FitInference};
pub use irls::{fit_irls, fit_irls_offset, lr_test, GlmError, GlmFit, IrlsOptions};
pub use link::{IdentityLink, Link, LogLink, LogitLink};
pub use negbin::{fit_negbin, fit_negbin_with, NegBinFit, NegBinOptions};
pub use ols::{fit_ols, OlsFit};
pub use poisson::{fit_poisson, fit_poisson_with};
pub use workspace::{fit_irls_into, IrlsWorkspace, WarmStart};
