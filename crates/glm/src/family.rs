//! GLM families: variance functions, log-likelihoods and deviances.

use booters_stats::special::ln_gamma;

/// An exponential-family (or quasi-family) distribution for a GLM.
pub trait Family {
    /// Var(Y) as a function of the mean μ.
    fn variance(&self, mu: f64) -> f64;

    /// Log-likelihood contribution of one observation.
    fn log_likelihood(&self, y: f64, mu: f64) -> f64;

    /// Unit deviance contribution of one observation
    /// (d_i with total deviance D = Σ d_i).
    fn unit_deviance(&self, y: f64, mu: f64) -> f64;

    /// Short name for summaries.
    fn name(&self) -> &'static str;
}

/// Gaussian family with (profile) unit variance — the deviance is the RSS.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gaussian;

impl Family for Gaussian {
    fn variance(&self, _mu: f64) -> f64 {
        1.0
    }

    fn log_likelihood(&self, y: f64, mu: f64) -> f64 {
        // Unit-variance normal log-density (constant-σ case is handled by
        // OLS which profiles σ out).
        let r = y - mu;
        -0.5 * (r * r + (2.0 * std::f64::consts::PI).ln())
    }

    fn unit_deviance(&self, y: f64, mu: f64) -> f64 {
        let r = y - mu;
        r * r
    }

    fn name(&self) -> &'static str {
        "gaussian"
    }
}

/// Poisson family: Var = μ.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoissonFamily;

impl Family for PoissonFamily {
    fn variance(&self, mu: f64) -> f64 {
        mu.max(f64::MIN_POSITIVE)
    }

    fn log_likelihood(&self, y: f64, mu: f64) -> f64 {
        let mu = mu.max(f64::MIN_POSITIVE);
        y * mu.ln() - mu - ln_gamma(y + 1.0)
    }

    fn unit_deviance(&self, y: f64, mu: f64) -> f64 {
        let mu = mu.max(f64::MIN_POSITIVE);
        let term = if y > 0.0 { y * (y / mu).ln() } else { 0.0 };
        2.0 * (term - (y - mu))
    }

    fn name(&self) -> &'static str {
        "poisson"
    }
}

/// NB2 negative binomial family with fixed dispersion α: Var = μ + α μ².
///
/// The NB2 log-likelihood (Cameron & Trivedi eq. 3.26):
/// ℓ = Σ lnΓ(y+1/α) − lnΓ(1/α) − lnΓ(y+1) + y ln(αμ) − (y+1/α) ln(1+αμ).
#[derive(Debug, Clone, Copy)]
pub struct NegBin2 {
    /// Dispersion parameter α > 0.
    pub alpha: f64,
}

impl NegBin2 {
    /// Construct with dispersion α; panics unless α > 0.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "NegBin2: alpha must be > 0, got {alpha}");
        NegBin2 { alpha }
    }
}

impl Family for NegBin2 {
    fn variance(&self, mu: f64) -> f64 {
        let mu = mu.max(f64::MIN_POSITIVE);
        mu + self.alpha * mu * mu
    }

    fn log_likelihood(&self, y: f64, mu: f64) -> f64 {
        let mu = mu.max(f64::MIN_POSITIVE);
        let a = self.alpha;
        let inv_a = 1.0 / a;
        ln_gamma(y + inv_a) - ln_gamma(inv_a) - ln_gamma(y + 1.0) + y * (a * mu).ln()
            - (y + inv_a) * (1.0 + a * mu).ln()
    }

    fn unit_deviance(&self, y: f64, mu: f64) -> f64 {
        let mu = mu.max(f64::MIN_POSITIVE);
        let a = self.alpha;
        let t1 = if y > 0.0 { y * (y / mu).ln() } else { 0.0 };
        let y_adj = y + 1.0 / a;
        let t2 = y_adj * ((1.0 + a * y) / (1.0 + a * mu)).ln();
        2.0 * (t1 - t2)
    }

    fn name(&self) -> &'static str {
        "negbin2"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_stats::dist::{NegativeBinomial, Poisson};

    #[test]
    fn poisson_loglik_matches_distribution() {
        let f = PoissonFamily;
        let d = Poisson::new(4.2);
        for k in 0..10u64 {
            assert!((f.log_likelihood(k as f64, 4.2) - d.ln_pmf(k)).abs() < 1e-12);
        }
    }

    #[test]
    fn poisson_deviance_zero_at_saturation() {
        let f = PoissonFamily;
        assert!(f.unit_deviance(5.0, 5.0).abs() < 1e-12);
        assert!(f.unit_deviance(0.0, 1e-300) >= 0.0);
        assert!(f.unit_deviance(5.0, 3.0) > 0.0);
    }

    #[test]
    fn negbin_loglik_matches_distribution() {
        let f = NegBin2::new(0.5);
        let d = NegativeBinomial::new(7.0, 0.5);
        for k in 0..15u64 {
            assert!(
                (f.log_likelihood(k as f64, 7.0) - d.ln_pmf(k)).abs() < 1e-10,
                "k={k}"
            );
        }
    }

    #[test]
    fn negbin_deviance_zero_at_saturation() {
        let f = NegBin2::new(0.3);
        assert!(f.unit_deviance(6.0, 6.0).abs() < 1e-12);
        assert!(f.unit_deviance(6.0, 2.0) > 0.0);
        assert!(f.unit_deviance(0.0, 2.0) > 0.0);
    }

    #[test]
    fn negbin_variance_formula() {
        let f = NegBin2::new(0.25);
        assert!((f.variance(10.0) - 35.0).abs() < 1e-12); // 10 + 0.25*100
    }

    #[test]
    fn negbin_approaches_poisson_likelihood() {
        // α = 1e-6 is the fitter's lower search bound; below that the
        // lnΓ(y+1/α) − lnΓ(1/α) difference loses float precision.
        let nb = NegBin2::new(1e-6);
        let po = PoissonFamily;
        for k in 0..10u64 {
            let a = nb.log_likelihood(k as f64, 5.0);
            let b = po.log_likelihood(k as f64, 5.0);
            assert!((a - b).abs() < 1e-4, "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn gaussian_deviance_is_squared_error() {
        let g = Gaussian;
        assert_eq!(g.unit_deviance(3.0, 1.0), 4.0);
        assert_eq!(g.variance(123.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be > 0")]
    fn negbin_rejects_zero_alpha() {
        NegBin2::new(0.0);
    }
}
