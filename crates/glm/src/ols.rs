//! Ordinary least squares with full inference.
//!
//! Used directly for the Figure 5 slope comparisons (UK vs US trends
//! before/during the NCA advertising campaign) and as the substrate of
//! White's heteroskedasticity test.

use crate::inference::CoefEstimate;
use booters_linalg::{LinalgError, Matrix, Qr};
use booters_stats::dist::{FDist, StudentsT};

/// A fitted OLS regression.
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Per-coefficient inference (t-based).
    pub coefficients: Vec<CoefEstimate>,
    /// Fitted values.
    pub fitted: Vec<f64>,
    /// Residuals.
    pub residuals: Vec<f64>,
    /// Residual sum of squares.
    pub rss: f64,
    /// Total sum of squares (about the mean).
    pub tss: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Adjusted R².
    pub adj_r_squared: f64,
    /// Residual standard error.
    pub sigma: f64,
    /// Overall F statistic (slope coefficients jointly zero).
    pub f_statistic: f64,
    /// p-value of the F statistic.
    pub f_p_value: f64,
    /// Observations.
    pub n: usize,
    /// Parameters.
    pub p: usize,
}

impl OlsFit {
    /// Look up a coefficient by name.
    pub fn coef(&self, name: &str) -> Option<&CoefEstimate> {
        self.coefficients.iter().find(|c| c.name == name)
    }
}

/// Fit OLS of `y` on `x` (the design must already include any constant
/// column). `names` labels the columns; `level` sets the CI coverage.
///
/// Inference uses the exact t distribution with n−p degrees of freedom.
pub fn fit_ols(
    x: &Matrix,
    y: &[f64],
    names: &[String],
    level: f64,
) -> Result<OlsFit, LinalgError> {
    let n = x.rows();
    let p = x.cols();
    assert_eq!(y.len(), n, "fit_ols: response length mismatch");
    assert_eq!(names.len(), p, "fit_ols: names length mismatch");
    assert!(n > p, "fit_ols: need more observations than parameters");

    let qr = Qr::new(x)?;
    let beta = qr.solve(y)?;
    let fitted = x.matvec(&beta)?;
    let residuals: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
    let rss: f64 = residuals.iter().map(|r| r * r).sum();
    let ybar = y.iter().sum::<f64>() / n as f64;
    let tss: f64 = y.iter().map(|v| (v - ybar) * (v - ybar)).sum();
    let df = (n - p) as f64;
    let sigma2 = rss / df;
    let sigma = sigma2.sqrt();
    let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 0.0 };
    let adj_r_squared = 1.0 - (1.0 - r_squared) * (n as f64 - 1.0) / df;

    let xtx_inv = qr.xtx_inverse()?;
    let tdist = StudentsT::new(df);
    let tcrit = tdist.quantile(0.5 + level / 2.0);
    let mut coefficients = Vec::with_capacity(p);
    for j in 0..p {
        let se = (sigma2 * xtx_inv[(j, j)].max(0.0)).sqrt();
        let t = if se > 0.0 { beta[j] / se } else { f64::INFINITY };
        coefficients.push(CoefEstimate {
            name: names[j].clone(),
            coef: beta[j],
            std_error: se,
            z: t,
            p_value: tdist.two_sided_p(t),
            ci_lower: beta[j] - tcrit * se,
            ci_upper: beta[j] + tcrit * se,
        });
    }

    // Overall F test against the intercept-only model (slopes = p−1 when a
    // constant is present; we use p−1 as the numerator df which matches the
    // conventional summary when the design includes an intercept).
    let k = (p.max(1) - 1) as f64;
    let (f_statistic, f_p_value) = if k > 0.0 && rss > 0.0 && tss > rss {
        let f = ((tss - rss) / k) / sigma2;
        (f, FDist::new(k, df).sf(f))
    } else {
        (f64::NAN, f64::NAN)
    };

    Ok(OlsFit {
        coefficients,
        fitted,
        residuals,
        rss,
        tss,
        r_squared,
        adj_r_squared,
        sigma,
        f_statistic,
        f_p_value,
        n,
        p,
    })
}

/// Convenience: simple regression of `y` on a single regressor plus
/// intercept; returns the full fit with columns `_cons`, `x`.
pub fn fit_simple(xs: &[f64], ys: &[f64], level: f64) -> Result<OlsFit, LinalgError> {
    let n = xs.len();
    let mut x = Matrix::zeros(n, 2);
    for i in 0..n {
        x[(i, 0)] = 1.0;
        x[(i, 1)] = xs[i];
    }
    fit_ols(&x, ys, &["_cons".to_string(), "x".to_string()], level)
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_testkit::rngs::StdRng;
    use booters_testkit::SeedableRng;

    #[test]
    fn exact_line_has_zero_residuals() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 + 3.0 * x).collect();
        let fit = fit_simple(&xs, &ys, 0.95).unwrap();
        assert!((fit.coef("_cons").unwrap().coef - 2.0).abs() < 1e-10);
        assert!((fit.coef("x").unwrap().coef - 3.0).abs() < 1e-10);
        assert!(fit.rss < 1e-18);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inference_matches_textbook_example() {
        // Small dataset with hand-checkable values.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 5.0, 4.0, 5.0];
        let fit = fit_simple(&xs, &ys, 0.95).unwrap();
        // slope = Sxy/Sxx = 6/10 = 0.6; intercept = 4 − 0.6·3 = 2.2
        let slope = fit.coef("x").unwrap();
        assert!((slope.coef - 0.6).abs() < 1e-12);
        assert!((fit.coef("_cons").unwrap().coef - 2.2).abs() < 1e-12);
        // RSS = Σ(y−ŷ)² = 3.4 − ... compute: fitted = 2.8,3.4,4,4.6,5.2
        // residuals: -0.8,0.6,1,-0.6,-0.2 → RSS = 0.64+0.36+1+0.36+0.04 = 2.4
        assert!((fit.rss - 2.4).abs() < 1e-12);
        // σ² = 2.4/3 = 0.8; SE(slope) = sqrt(0.8/10) ≈ 0.2828
        assert!((slope.std_error - (0.8f64 / 10.0).sqrt()).abs() < 1e-10);
        // t = 0.6/0.2828 ≈ 2.1213; p ≈ 0.124
        assert!((slope.z - 2.121_320_343_559_642).abs() < 1e-9);
        assert!((slope.p_value - 0.124).abs() < 0.002);
    }

    #[test]
    fn ci_covers_true_slope_under_noise() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 200;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 1.0 + 0.5 * x + booters_stats::dist::standard_normal_sample(&mut rng))
            .collect();
        let fit = fit_simple(&xs, &ys, 0.95).unwrap();
        let s = fit.coef("x").unwrap();
        assert!(s.ci_lower < 0.5 && 0.5 < s.ci_upper);
        assert!(fit.f_p_value < 1e-10);
    }

    #[test]
    fn r_squared_zero_for_pure_noise_slope() {
        let mut rng = StdRng::seed_from_u64(33);
        let n = 300;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..n)
            .map(|_| booters_stats::dist::standard_normal_sample(&mut rng))
            .collect();
        let fit = fit_simple(&xs, &ys, 0.95).unwrap();
        assert!(fit.r_squared < 0.05);
        assert!(!fit.coef("x").unwrap().reject_like());
    }

    impl CoefEstimate {
        fn reject_like(&self) -> bool {
            self.p_value < 0.05
        }
    }

    #[test]
    fn multivariate_fit_recovers_coefficients() {
        let mut rng = StdRng::seed_from_u64(55);
        let n = 400;
        let mut x = Matrix::zeros(n, 3);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let a = (i % 17) as f64;
            let b = ((i * 7) % 23) as f64;
            x[(i, 0)] = 1.0;
            x[(i, 1)] = a;
            x[(i, 2)] = b;
            y[i] = 5.0 - 0.3 * a + 0.7 * b
                + 0.5 * booters_stats::dist::standard_normal_sample(&mut rng);
        }
        let names = vec!["_cons".into(), "a".into(), "b".into()];
        let fit = fit_ols(&x, &y, &names, 0.95).unwrap();
        assert!((fit.coef("a").unwrap().coef + 0.3).abs() < 0.02);
        assert!((fit.coef("b").unwrap().coef - 0.7).abs() < 0.02);
        assert!(fit.adj_r_squared > 0.9);
    }
}
