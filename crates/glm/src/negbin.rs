//! NB2 negative binomial regression with profile-ML dispersion.
//!
//! The paper's model: weekly attack counts regressed on intervention
//! dummies, seasonal dummies, Easter and a linear trend under a log link,
//! "fitting for optimum log-pseudolikelihood". We estimate β by IRLS for
//! fixed α and maximise the profile log-likelihood ℓ(α) = max_β ℓ(β, α)
//! over ln α by golden-section search; the method-of-moments estimate from
//! a Poisson pre-fit seeds the bracket.

use crate::family::{NegBin2, PoissonFamily};
use crate::inference::{wald_inference, CovarianceKind, FitInference};
use crate::irls::{GlmError, GlmFit, IrlsOptions};
use crate::link::LogLink;
use crate::workspace::{fit_irls_into, IrlsWorkspace, WarmStart};
use booters_linalg::Matrix;

/// Options for [`fit_negbin`].
#[derive(Debug, Clone, Copy)]
pub struct NegBinOptions {
    /// IRLS options for each inner β fit.
    pub irls: IrlsOptions,
    /// Lower bound of the α search (exclusive of 0; small α ⇒ Poisson).
    pub alpha_min: f64,
    /// Upper bound of the α search.
    pub alpha_max: f64,
    /// Relative tolerance of the golden-section search in ln α.
    pub alpha_tolerance: f64,
    /// Confidence level for the Wald intervals.
    pub level: f64,
    /// Covariance estimator.
    pub covariance: CovarianceKind,
    /// Seed each profile-α IRLS solve with the previous α's converged β
    /// (continuation). The optimum is unchanged to well within the IRLS
    /// tolerance — only the iteration path differs — and any warm solve
    /// that fails is retried cold. Disable to reproduce the historic
    /// cold-start trajectory bit for bit.
    pub warm_start: bool,
}

impl Default for NegBinOptions {
    fn default() -> Self {
        NegBinOptions {
            irls: IrlsOptions::default(),
            alpha_min: 1e-6,
            alpha_max: 20.0,
            alpha_tolerance: 1e-7,
            level: 0.95,
            covariance: CovarianceKind::ModelBased,
            warm_start: true,
        }
    }
}

/// A fitted NB2 regression.
#[derive(Debug, Clone)]
pub struct NegBinFit {
    /// The converged IRLS fit at the ML dispersion.
    pub fit: GlmFit,
    /// ML estimate of the dispersion α.
    pub alpha: f64,
    /// Wald inference for the coefficients.
    pub inference: FitInference,
    /// Profile log-likelihood at the optimum.
    pub log_likelihood: f64,
    /// Log-likelihood of the Poisson fit (α→0 boundary), for the
    /// overdispersion likelihood-ratio test.
    pub poisson_log_likelihood: f64,
}

impl NegBinFit {
    /// Likelihood-ratio statistic for H₀: α = 0 (Poisson) vs H₁: α > 0.
    ///
    /// Under H₀ the statistic is a 50:50 mixture of 0 and χ²(1) (boundary
    /// problem), so the p-value is half the χ²(1) upper tail.
    pub fn overdispersion_lr(&self) -> (f64, f64) {
        let stat = (2.0 * (self.log_likelihood - self.poisson_log_likelihood)).max(0.0);
        let p = 0.5 * booters_stats::dist::ChiSquared::new(1.0).sf(stat);
        (stat, p)
    }

    /// Predicted mean for a design row.
    pub fn predict_row(&self, row: &[f64]) -> f64 {
        let eta: f64 = row.iter().zip(&self.fit.beta).map(|(a, b)| a * b).sum();
        eta.clamp(-crate::link::LogLink::ETA_CLAMP, crate::link::LogLink::ETA_CLAMP)
            .exp()
    }

    /// Predicted means for a whole design matrix.
    pub fn predict(&self, x: &Matrix) -> Vec<f64> {
        (0..x.rows()).map(|i| self.predict_row(x.row(i))).collect()
    }
}

/// Profile log-likelihood at a fixed α: max_β ℓ(β, α), solved into the
/// workspace. With `warm_start`, IRLS is seeded from `warm` (the previous
/// profile point's β — continuation) and retried cold on any failure; on
/// success `warm` is refreshed with the new optimum for the next point.
fn profile_loglik_into(
    ws: &mut IrlsWorkspace,
    warm: &mut [f64],
    x: &Matrix,
    y: &[f64],
    alpha: f64,
    options: &NegBinOptions,
) -> Result<f64, GlmError> {
    let family = NegBin2::new(alpha);
    if options.warm_start {
        let attempt = fit_irls_into(
            ws,
            x,
            y,
            None,
            &family,
            &LogLink,
            &options.irls,
            WarmStart::Beta(warm),
        );
        if attempt.is_err() {
            booters_obs::counter_add("glm.warm_start_retries", 1);
            fit_irls_into(ws, x, y, None, &family, &LogLink, &options.irls, WarmStart::Cold)?;
        } else {
            booters_obs::counter_add("glm.warm_start_hits", 1);
        }
        warm.copy_from_slice(ws.beta());
    } else {
        fit_irls_into(ws, x, y, None, &family, &LogLink, &options.irls, WarmStart::Cold)?;
    }
    Ok(ws.log_likelihood())
}

/// Method-of-moments starting α from a Poisson fit:
/// α̂ = Σ[(y−μ)² − μ] / Σ μ² (Cameron & Trivedi's auxiliary regression).
fn moment_alpha(y: &[f64], mu: &[f64]) -> f64 {
    let num: f64 = y
        .iter()
        .zip(mu)
        .map(|(&yi, &mi)| (yi - mi) * (yi - mi) - mi)
        .sum();
    let den: f64 = mu.iter().map(|&m| m * m).sum();
    (num / den.max(1e-12)).max(1e-6)
}

/// Fit an NB2 regression of `y` on `x` with column `names`.
///
/// Convenience wrapper over [`fit_negbin_with`] with a private, throwaway
/// workspace. Callers fitting many models (the pipeline's per-country and
/// duration-scan loops) should hold an [`IrlsWorkspace`] and call
/// [`fit_negbin_with`] to amortise the buffer allocations.
pub fn fit_negbin(
    x: &Matrix,
    y: &[f64],
    names: &[String],
    options: &NegBinOptions,
) -> Result<NegBinFit, GlmError> {
    let mut ws = IrlsWorkspace::new();
    fit_negbin_with(&mut ws, x, y, names, options)
}

/// Fit an NB2 regression into a caller-owned workspace.
///
/// All per-iteration IRLS buffers live in `ws`, so the entire profile-α
/// search — typically 40–60 inner IRLS solves — allocates only at the
/// final [`GlmFit`]/inference materialisation. With
/// [`NegBinOptions::warm_start`] each profile point seeds IRLS from its
/// neighbour's β, which cuts inner iterations severalfold; the
/// golden-section trajectory (the α sequence evaluated) is identical
/// either way.
pub fn fit_negbin_with(
    ws: &mut IrlsWorkspace,
    x: &Matrix,
    y: &[f64],
    names: &[String],
    options: &NegBinOptions,
) -> Result<NegBinFit, GlmError> {
    booters_obs::counter_add("glm.negbin_fits", 1);
    // Poisson pre-fit: seeds α, anchors the LR test, and (warm path)
    // provides the first continuation point for β.
    fit_irls_into(
        ws,
        x,
        y,
        None,
        &PoissonFamily,
        &LogLink,
        &options.irls,
        WarmStart::Cold,
    )?;
    let poisson_log_likelihood = ws.log_likelihood();
    let alpha0 = moment_alpha(y, ws.mu()).clamp(options.alpha_min, options.alpha_max);
    let mut warm = ws.beta().to_vec();

    // Golden-section maximisation of the profile log-likelihood in ln α.
    // The profile is unimodal for NB2 (log-concave in ln α in practice).
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut lo = options.alpha_min.ln();
    let mut hi = options.alpha_max.ln();
    // Shrink the bracket around the moment estimate to speed convergence,
    // keeping at least two decades each side.
    let centre = alpha0.ln();
    lo = lo.max(centre - 6.0);
    hi = hi.min(centre + 6.0).max(lo + 1.0);

    let mut a = hi - phi * (hi - lo);
    let mut b = lo + phi * (hi - lo);
    let mut fa = profile_loglik_into(ws, &mut warm, x, y, a.exp(), options)?;
    let mut fb = profile_loglik_into(ws, &mut warm, x, y, b.exp(), options)?;
    let mut evals = 2;
    while (hi - lo) > options.alpha_tolerance.max(1e-10) && evals < 200 {
        if fa < fb {
            lo = a;
            a = b;
            fa = fb;
            b = lo + phi * (hi - lo);
            fb = profile_loglik_into(ws, &mut warm, x, y, b.exp(), options)?;
        } else {
            hi = b;
            b = a;
            fb = fa;
            a = hi - phi * (hi - lo);
            fa = profile_loglik_into(ws, &mut warm, x, y, a.exp(), options)?;
        }
        evals += 1;
        if (hi - lo) < 1e-8 {
            break;
        }
    }
    let alpha = (0.5 * (lo + hi)).exp();
    let log_likelihood = profile_loglik_into(ws, &mut warm, x, y, alpha, options)?;
    let fit = ws.to_glm_fit();
    let inference = wald_inference(x, y, &fit, names, options.covariance, options.level)?;

    Ok(NegBinFit {
        fit,
        alpha,
        inference,
        log_likelihood,
        poisson_log_likelihood,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_stats::dist::NegativeBinomial;
    use booters_testkit::rngs::StdRng;
    use booters_testkit::SeedableRng;

    fn simulate_nb(
        n: usize,
        b0: f64,
        b1: f64,
        alpha: f64,
        seed: u64,
    ) -> (Matrix, Vec<f64>, Vec<String>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Matrix::zeros(n, 2);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let xi = (i % 40) as f64 / 10.0;
            x[(i, 0)] = 1.0;
            x[(i, 1)] = xi;
            let mu = (b0 + b1 * xi).exp();
            y[i] = NegativeBinomial::new(mu, alpha).sample(&mut rng) as f64;
        }
        (x, y, vec!["_cons".into(), "x".into()])
    }

    #[test]
    fn recovers_coefficients_and_alpha() {
        let (x, y, names) = simulate_nb(1200, 2.0, 0.4, 0.5, 99);
        let fit = fit_negbin(&x, &y, &names, &NegBinOptions::default()).unwrap();
        assert!((fit.inference.coef("_cons").unwrap().coef - 2.0).abs() < 0.15);
        assert!((fit.inference.coef("x").unwrap().coef - 0.4).abs() < 0.05);
        assert!(
            (fit.alpha - 0.5).abs() < 0.12,
            "alpha = {} (true 0.5)",
            fit.alpha
        );
    }

    #[test]
    fn ci_covers_true_slope() {
        let (x, y, names) = simulate_nb(800, 1.5, 0.25, 0.3, 4);
        let fit = fit_negbin(&x, &y, &names, &NegBinOptions::default()).unwrap();
        let c = fit.inference.coef("x").unwrap();
        assert!(c.ci_lower < 0.25 && 0.25 < c.ci_upper);
    }

    #[test]
    fn overdispersion_lr_rejects_poisson_for_nb_data() {
        let (x, y, names) = simulate_nb(600, 2.5, 0.2, 0.8, 17);
        let fit = fit_negbin(&x, &y, &names, &NegBinOptions::default()).unwrap();
        let (stat, p) = fit.overdispersion_lr();
        assert!(stat > 50.0, "stat={stat}");
        assert!(p < 1e-10);
    }

    #[test]
    fn near_poisson_data_gives_small_alpha() {
        // Simulate pure Poisson; α̂ should collapse towards the boundary.
        let mut rng = StdRng::seed_from_u64(23);
        let n = 600;
        let mut x = Matrix::zeros(n, 1);
        let mut y = vec![0.0; n];
        for i in 0..n {
            x[(i, 0)] = 1.0;
            y[i] = booters_stats::dist::Poisson::new(20.0).sample(&mut rng) as f64;
        }
        let fit = fit_negbin(&x, &y, &["_cons".into()], &NegBinOptions::default()).unwrap();
        assert!(fit.alpha < 0.01, "alpha={}", fit.alpha);
        let (_, p) = fit.overdispersion_lr();
        assert!(p > 0.01, "should not reject Poisson, p={p}");
    }

    #[test]
    fn negbin_se_wider_than_poisson_for_overdispersed_data() {
        let (x, y, names) = simulate_nb(600, 2.0, 0.3, 0.6, 31);
        let nb = fit_negbin(&x, &y, &names, &NegBinOptions::default()).unwrap();
        let po = crate::poisson::fit_poisson(&x, &y, &names, &IrlsOptions::default(), 0.95)
            .unwrap();
        let nb_se = nb.inference.coef("x").unwrap().std_error;
        let po_se = po.inference.coef("x").unwrap().std_error;
        assert!(nb_se > 1.5 * po_se, "nb={nb_se} po={po_se}");
    }

    #[test]
    fn warm_start_matches_cold_start_to_tolerance() {
        // Continuation changes the IRLS trajectory, not the optimum: the
        // α sequence evaluated is identical, and each converged β agrees
        // to well within the deviance tolerance.
        let (x, y, names) = simulate_nb(400, 2.0, 0.3, 0.5, 55);
        let warm = fit_negbin(&x, &y, &names, &NegBinOptions::default()).unwrap();
        let cold = fit_negbin(
            &x,
            &y,
            &names,
            &NegBinOptions {
                warm_start: false,
                ..NegBinOptions::default()
            },
        )
        .unwrap();
        // α agrees to the golden-section noise floor: near the (flat)
        // optimum the two trajectories' log-likelihoods differ by IRLS
        // stopping noise (~1e-10), so bracket comparisons may flip once
        // the bracket is ~1e-7 wide in ln α. β and ℓ are far tighter.
        assert!(
            (warm.alpha - cold.alpha).abs() < 1e-6 * warm.alpha.max(1.0),
            "alpha warm={} cold={}",
            warm.alpha,
            cold.alpha
        );
        assert!((warm.log_likelihood - cold.log_likelihood).abs() < 1e-6);
        for (a, b) in warm.fit.beta.iter().zip(&cold.fit.beta) {
            assert!((a - b).abs() < 1e-6, "warm {a} cold {b}");
        }
    }

    #[test]
    fn workspace_reuse_across_models_matches_fresh_workspace() {
        let (x1, y1, names1) = simulate_nb(300, 1.8, 0.2, 0.4, 8);
        let (x2, y2, names2) = simulate_nb(500, 2.2, 0.35, 0.6, 21);
        let mut ws = IrlsWorkspace::new();
        let a1 = fit_negbin_with(&mut ws, &x1, &y1, &names1, &NegBinOptions::default()).unwrap();
        let a2 = fit_negbin_with(&mut ws, &x2, &y2, &names2, &NegBinOptions::default()).unwrap();
        let b1 = fit_negbin(&x1, &y1, &names1, &NegBinOptions::default()).unwrap();
        let b2 = fit_negbin(&x2, &y2, &names2, &NegBinOptions::default()).unwrap();
        assert_eq!(a1.fit.beta, b1.fit.beta);
        assert_eq!(a1.alpha, b1.alpha);
        assert_eq!(a2.fit.beta, b2.fit.beta);
        assert_eq!(a2.alpha, b2.alpha);
    }

    #[test]
    fn predict_matches_fitted_means() {
        let (x, y, names) = simulate_nb(300, 1.8, 0.2, 0.4, 8);
        let fit = fit_negbin(&x, &y, &names, &NegBinOptions::default()).unwrap();
        let pred = fit.predict(&x);
        for i in 0..x.rows() {
            assert!((pred[i] - fit.fit.mu[i]).abs() / fit.fit.mu[i] < 1e-9);
        }
    }

    #[test]
    fn intervention_recovery_end_to_end() {
        // The core claim of the reproduction: a step-dummy effect of −0.4
        // on a trending, seasonal NB series is recovered with correct sign
        // and magnitude.
        let mut rng = StdRng::seed_from_u64(77);
        let n = 148; // paper's ~148-week window
        let mut x = Matrix::zeros(n, 3);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let t = i as f64;
            let dummy = if (90..100).contains(&i) { 1.0 } else { 0.0 };
            x[(i, 0)] = dummy;
            x[(i, 1)] = t;
            x[(i, 2)] = 1.0;
            let mu = (10.0 + 0.01 * t - 0.4 * dummy).exp();
            y[i] = NegativeBinomial::new(mu, 0.02).sample(&mut rng) as f64;
        }
        let names = vec!["intervention".into(), "time".into(), "_cons".into()];
        let fit = fit_negbin(&x, &y, &names, &NegBinOptions::default()).unwrap();
        let c = fit.inference.coef("intervention").unwrap();
        assert!(c.coef < -0.2 && c.coef > -0.6, "coef={}", c.coef);
        assert!(c.p_value < 0.01);
        assert!((fit.inference.coef("time").unwrap().coef - 0.01).abs() < 0.003);
    }
}
