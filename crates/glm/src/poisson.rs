//! Poisson regression — the overdispersion baseline.
//!
//! The paper explicitly rejects Poisson in favour of negative binomial
//! because DoS attack counts are overdispersed; we keep the Poisson fitter
//! both as the NB starting point and as the ablation baseline
//! (`bench_tables` compares the two).

use crate::family::PoissonFamily;
use crate::inference::{wald_inference, CovarianceKind, FitInference};
use crate::irls::{GlmError, GlmFit, IrlsOptions};
use crate::link::LogLink;
use crate::workspace::{fit_irls_into, IrlsWorkspace, WarmStart};
use booters_linalg::Matrix;

/// A fitted Poisson regression.
#[derive(Debug, Clone)]
pub struct PoissonFit {
    /// The converged IRLS fit.
    pub fit: GlmFit,
    /// Wald inference for the coefficients.
    pub inference: FitInference,
}

impl PoissonFit {
    /// Pearson dispersion statistic χ²/(n−p); values ≫ 1 indicate
    /// overdispersion and motivate the NB model.
    pub fn dispersion(&self, y: &[f64]) -> f64 {
        let chi2 = self.fit.pearson_chi2(y, &PoissonFamily);
        chi2 / (self.fit.n - self.fit.p).max(1) as f64
    }
}

/// Fit a Poisson regression of `y` on `x` with column `names`.
pub fn fit_poisson(
    x: &Matrix,
    y: &[f64],
    names: &[String],
    irls: &IrlsOptions,
    level: f64,
) -> Result<PoissonFit, GlmError> {
    let mut ws = IrlsWorkspace::new();
    fit_poisson_with(&mut ws, x, y, names, irls, level)
}

/// Fit a Poisson regression into a caller-owned workspace (see
/// [`IrlsWorkspace`]); results are bit-identical to [`fit_poisson`].
pub fn fit_poisson_with(
    ws: &mut IrlsWorkspace,
    x: &Matrix,
    y: &[f64],
    names: &[String],
    irls: &IrlsOptions,
    level: f64,
) -> Result<PoissonFit, GlmError> {
    fit_irls_into(ws, x, y, None, &PoissonFamily, &LogLink, irls, WarmStart::Cold)?;
    let fit = ws.to_glm_fit();
    let inference = wald_inference(x, y, &fit, names, CovarianceKind::ModelBased, level)?;
    Ok(PoissonFit { fit, inference })
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_testkit::rngs::StdRng;
    use booters_testkit::SeedableRng;

    #[test]
    fn fits_and_reports_dispersion_near_one_for_poisson_data() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 500;
        let mut x = Matrix::zeros(n, 2);
        let mut y = vec![0.0; n];
        for i in 0..n {
            let xi = (i % 25) as f64 / 5.0;
            x[(i, 0)] = 1.0;
            x[(i, 1)] = xi;
            let mu = (1.0 + 0.3 * xi).exp();
            y[i] = booters_stats::dist::Poisson::new(mu).sample(&mut rng) as f64;
        }
        let names = vec!["_cons".into(), "x".into()];
        let fit = fit_poisson(&x, &y, &names, &IrlsOptions::default(), 0.95).unwrap();
        let disp = fit.dispersion(&y);
        assert!((disp - 1.0).abs() < 0.25, "dispersion={disp}");
        assert!((fit.inference.coef("x").unwrap().coef - 0.3).abs() < 0.03);
    }

    #[test]
    fn dispersion_flags_overdispersed_counts() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 500;
        let mut x = Matrix::zeros(n, 1);
        let mut y = vec![0.0; n];
        for i in 0..n {
            x[(i, 0)] = 1.0;
            y[i] = booters_stats::dist::NegativeBinomial::new(30.0, 1.0).sample(&mut rng) as f64;
        }
        let fit = fit_poisson(&x, &y, &["_cons".into()], &IrlsOptions::default(), 0.95).unwrap();
        assert!(fit.dispersion(&y) > 10.0);
    }
}
