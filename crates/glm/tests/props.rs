//! Property-based tests for the GLM stack: estimator invariances that
//! must hold for any data.

use booters_glm::irls::{fit_irls, IrlsOptions};
use booters_glm::negbin::{fit_negbin, NegBinOptions};
use booters_glm::ols::fit_simple;
use booters_glm::{LogLink, PoissonFamily};
use booters_linalg::Matrix;
use booters_testkit::strategy::prop;
use booters_testkit::{forall, prop_assert, Strategy};

/// Strategy: a small regression problem with positive counts.
fn count_problem() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    prop::collection::vec((0.0..10.0f64, 0u64..400), 12..60).prop_map(|rows| {
        let xs: Vec<f64> = rows.iter().map(|(x, _)| *x).collect();
        let ys: Vec<f64> = rows.iter().map(|(_, y)| *y as f64).collect();
        (xs, ys)
    })
}

/// Strategy: a Table-1-shaped NB2 problem — 148 weekly observations on a
/// design with intercept, linear trend, an annual harmonic pair, and two
/// intervention dummies, with multiplicative noise on the conditional
/// mean to induce overdispersion. Mirrors the paper's global model shape
/// without being collinear (the dummies never sum to the intercept).
fn table1_problem() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (
        prop::collection::vec(0.25..4.0f64, 148),
        -1.0..1.0f64,
        -1.5..0.5f64,
    )
        .prop_map(|(noise, trend, effect)| {
            let n = 148;
            let mut x = Matrix::zeros(n, 6);
            let mut y = Vec::with_capacity(n);
            for i in 0..n {
                let t = i as f64 / n as f64;
                let theta = 2.0 * std::f64::consts::PI * i as f64 / 52.0;
                let d1 = if (60..66).contains(&i) { 1.0 } else { 0.0 };
                let d2 = if i >= 120 { 1.0 } else { 0.0 };
                x[(i, 0)] = 1.0;
                x[(i, 1)] = t;
                x[(i, 2)] = theta.sin();
                x[(i, 3)] = theta.cos();
                x[(i, 4)] = d1;
                x[(i, 5)] = d2;
                let eta = 4.0
                    + trend * t
                    + 0.3 * theta.sin()
                    + 0.2 * theta.cos()
                    + effect * d1
                    + 0.5 * effect * d2;
                y.push((eta.exp() * noise[i]).round());
            }
            (x, y)
        })
}

fn table1_names() -> Vec<String> {
    ["_cons", "trend", "sin52", "cos52", "window1", "window2"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

fn design(xs: &[f64]) -> Matrix {
    let mut m = Matrix::zeros(xs.len(), 2);
    for (i, &x) in xs.iter().enumerate() {
        m[(i, 0)] = 1.0;
        m[(i, 1)] = x;
    }
    m
}

forall! {
    #![cases(48)]

    fn ols_residuals_sum_to_zero_with_intercept((xs, ys) in count_problem()) {
        if let Ok(fit) = fit_simple(&xs, &ys, 0.95) {
            let s: f64 = fit.residuals.iter().sum();
            prop_assert!(s.abs() < 1e-6 * ys.len() as f64, "Σr = {s}");
            // R² in [0, 1].
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&fit.r_squared));
        }
    }

    fn ols_shift_equivariance((xs, ys) in count_problem(), c in -100.0..100.0f64) {
        let shifted: Vec<f64> = ys.iter().map(|y| y + c).collect();
        if let (Ok(a), Ok(b)) = (fit_simple(&xs, &ys, 0.95), fit_simple(&xs, &shifted, 0.95)) {
            // Slope unchanged, intercept shifts by c.
            let sa = a.coef("x").unwrap().coef;
            let sb = b.coef("x").unwrap().coef;
            prop_assert!((sa - sb).abs() < 1e-6, "slopes {sa} vs {sb}");
            let ia = a.coef("_cons").unwrap().coef;
            let ib = b.coef("_cons").unwrap().coef;
            prop_assert!((ib - ia - c).abs() < 1e-6);
        }
    }

    fn poisson_score_equation_holds((xs, ys) in count_problem()) {
        // At the MLE, Σ(y−μ)=0 and Σx(y−μ)=0 (score equations for the
        // canonical log link).
        let x = design(&xs);
        if ys.iter().sum::<f64>() == 0.0 {
            return;
        }
        if let Ok(fit) = fit_irls(&x, &ys, &PoissonFamily, &LogLink, &IrlsOptions::default()) {
            let r: Vec<f64> = ys.iter().zip(&fit.mu).map(|(y, m)| y - m).collect();
            let scale = ys.iter().sum::<f64>().max(1.0);
            prop_assert!(r.iter().sum::<f64>().abs() / scale < 1e-5);
            let xr: f64 = xs.iter().zip(&r).map(|(x, e)| x * e).sum();
            prop_assert!(xr.abs() / scale < 1e-4);
        }
    }

    fn log_link_scale_shifts_only_intercept((xs, ys) in count_problem(), k in 2u64..10) {
        // Multiplying counts by k shifts the intercept by ln k and leaves
        // the slope (approximately — k·y is still integer-valued Poisson-
        // like) unchanged.
        if ys.iter().sum::<f64>() == 0.0 {
            return;
        }
        let x = design(&xs);
        let scaled: Vec<f64> = ys.iter().map(|y| y * k as f64).collect();
        let a = fit_irls(&x, &ys, &PoissonFamily, &LogLink, &IrlsOptions::default());
        let b = fit_irls(&x, &scaled, &PoissonFamily, &LogLink, &IrlsOptions::default());
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert!((b.beta[1] - a.beta[1]).abs() < 1e-5, "slopes differ");
            prop_assert!((b.beta[0] - a.beta[0] - (k as f64).ln()).abs() < 1e-5);
        }
    }

    fn warm_start_negbin_matches_cold_start((x, y) in table1_problem()) {
        // The warm-started profile search evaluates the identical α
        // sequence but seeds each inner IRLS from the previous β. The
        // converged answers are tolerance-equal, not bit-equal: β and the
        // log-likelihood agree to ~1e-8 (scale-relative), while α carries
        // the golden-section noise floor (~1e-7 in ln α) — once the
        // bracket is that narrow, ~1e-10 stopping noise in the profile
        // log-likelihood can flip a comparison and shift the midpoint.
        let names = table1_names();
        let warm = fit_negbin(&x, &y, &names, &NegBinOptions::default());
        let cold = fit_negbin(
            &x,
            &y,
            &names,
            &NegBinOptions { warm_start: false, ..NegBinOptions::default() },
        );
        if let (Ok(a), Ok(b)) = (warm, cold) {
            let scale = b.fit.beta.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (j, (wa, co)) in a.fit.beta.iter().zip(&b.fit.beta).enumerate() {
                prop_assert!(
                    (wa - co).abs() <= 1e-6 * scale,
                    "beta[{j}] warm {wa} vs cold {co}"
                );
            }
            let ll_scale = b.log_likelihood.abs().max(1.0);
            prop_assert!(
                (a.log_likelihood - b.log_likelihood).abs() <= 1e-8 * ll_scale,
                "ll warm {} vs cold {}",
                a.log_likelihood,
                b.log_likelihood
            );
            prop_assert!(
                (a.alpha - b.alpha).abs() <= 1e-6 * b.alpha.max(1e-3),
                "alpha warm {} vs cold {}",
                a.alpha,
                b.alpha
            );
        }
    }

    fn negbin_loglik_at_least_poisson((xs, ys) in count_problem()) {
        // The NB2 profile likelihood dominates the Poisson boundary value
        // (up to search tolerance).
        if ys.iter().sum::<f64>() == 0.0 {
            return;
        }
        let x = design(&xs);
        let names = vec!["_cons".to_string(), "x".to_string()];
        if let Ok(fit) = fit_negbin(&x, &ys, &names, &NegBinOptions::default()) {
            prop_assert!(
                fit.log_likelihood >= fit.poisson_log_likelihood - 0.5,
                "nb ll {} below poisson ll {}",
                fit.log_likelihood,
                fit.poisson_log_likelihood
            );
            prop_assert!(fit.alpha > 0.0);
            // Fitted means are positive and finite.
            prop_assert!(fit.fit.mu.iter().all(|m| m.is_finite() && *m > 0.0));
        }
    }
}
