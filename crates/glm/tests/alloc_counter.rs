//! Counting-allocator proof that [`fit_irls_into`] performs zero heap
//! allocations per fit once the workspace is warm.
//!
//! A `#[global_allocator]` wrapper over the system allocator counts every
//! `alloc`/`alloc_zeroed`/`realloc` call. The test runs one fit to size
//! the workspace buffers, then asserts that a second fit on the same
//! shape allocates nothing at all — the contract that makes the
//! profile-α continuation in `booters-glm::negbin` cheap.
//!
//! This lives in its own integration-test binary because a global
//! allocator is process-wide: any concurrently running test would
//! pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use booters_glm::irls::IrlsOptions;
use booters_glm::workspace::{fit_irls_into, IrlsWorkspace, WarmStart};
use booters_glm::{LogLink, NegBin2, PoissonFamily};
use booters_linalg::Matrix;

struct CountingAlloc;

static ALLOC_CALLS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Table-1-shaped deterministic problem: 148 weekly counts on a design
/// with intercept, trend, annual harmonics, and an intervention dummy.
fn problem() -> (Matrix, Vec<f64>) {
    let n = 148;
    let mut x = Matrix::zeros(n, 5);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let t = i as f64 / n as f64;
        let theta = 2.0 * std::f64::consts::PI * i as f64 / 52.0;
        let dummy = if i >= 100 { 1.0 } else { 0.0 };
        x[(i, 0)] = 1.0;
        x[(i, 1)] = t;
        x[(i, 2)] = theta.sin();
        x[(i, 3)] = theta.cos();
        x[(i, 4)] = dummy;
        let eta = 4.0 + 0.4 * t + 0.3 * theta.sin() + 0.2 * theta.cos() - 0.8 * dummy;
        // Deterministic "noise" so the counts are not an exact GLM fit.
        let wobble = 1.0 + 0.35 * ((i as f64 * 0.7).sin());
        y.push((eta.exp() * wobble).round());
    }
    (x, y)
}

fn allocations_during(f: impl FnOnce()) -> usize {
    let before = ALLOC_CALLS.load(Ordering::SeqCst);
    f();
    ALLOC_CALLS.load(Ordering::SeqCst) - before
}

#[test]
fn fit_irls_into_allocates_nothing_after_warmup() {
    let (x, y) = problem();
    let opts = IrlsOptions::default();
    let family = NegBin2::new(0.5);
    let mut ws = IrlsWorkspace::new();

    // Warm-up fit: sizes every buffer in the workspace.
    fit_irls_into(&mut ws, &x, &y, None, &family, &LogLink, &opts, WarmStart::Cold).unwrap();
    let warm_beta: Vec<f64> = ws.beta().to_vec();

    // Cold re-fit on the warm workspace: zero allocations.
    let cold_allocs = allocations_during(|| {
        fit_irls_into(&mut ws, &x, &y, None, &family, &LogLink, &opts, WarmStart::Cold).unwrap();
    });
    assert_eq!(cold_allocs, 0, "cold re-fit allocated {cold_allocs} times");

    // Warm-started re-fit (the profile-continuation path): also zero.
    let warm_allocs = allocations_during(|| {
        fit_irls_into(
            &mut ws,
            &x,
            &y,
            None,
            &family,
            &LogLink,
            &opts,
            WarmStart::Beta(&warm_beta),
        )
        .unwrap();
    });
    assert_eq!(warm_allocs, 0, "warm re-fit allocated {warm_allocs} times");

    // Switching family on the same shape stays allocation-free too.
    let poisson_allocs = allocations_during(|| {
        fit_irls_into(&mut ws, &x, &y, None, &PoissonFamily, &LogLink, &opts, WarmStart::Cold)
            .unwrap();
    });
    assert_eq!(poisson_allocs, 0, "family switch allocated {poisson_allocs} times");

    // Sanity: the counter itself works.
    let v_allocs = allocations_during(|| {
        let v = vec![0u8; 4096];
        std::hint::black_box(&v);
    });
    assert!(v_allocs >= 1, "counter failed to observe a Vec allocation");
}
