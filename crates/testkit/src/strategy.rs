//! Input generators ("strategies") for the property-test harness.
//!
//! A [`Strategy`] produces random values of one type and knows how to
//! propose *smaller* variants of a failing value (shrinking). The
//! combinators cover exactly what the workspace suites use: numeric
//! ranges, `any::<T>()`, fixed values ([`Just`]), tuples, sized
//! collections ([`vec()`]), and the [`Strategy::prop_map`] /
//! [`Strategy::prop_flat_map`] adapters.

use crate::rng::{uniform_u64_below, Rng};
use crate::rngs::StdRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of test inputs with optional shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Propose strictly "smaller" candidate values derived from a failing
    /// `value`, most aggressive first. Default: no shrinking.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Transform generated values. Shrinking does not propagate through
    /// the (non-invertible) mapping.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Clone + Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy built from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! impl_int_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*value as i128, self.start as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int_toward(*value as i128, *self.start() as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_int_strategy!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize);

/// Candidates between `low` and `value`: the low bound itself, then
/// successive midpoints approaching `value` from below.
fn shrink_int_toward(value: i128, low: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if value <= low {
        return out;
    }
    out.push(low);
    let mut delta = (value - low) / 2;
    while delta > 0 && out.len() < 16 {
        let cand = value - delta;
        if cand != low {
            out.push(cand);
        }
        delta /= 2;
    }
    out
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64_toward(*value, self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        shrink_f64_toward(*value, *self.start())
    }
}

fn shrink_f64_toward(value: f64, low: f64) -> Vec<f64> {
    let mut out = Vec::new();
    if !(value > low) {
        return out;
    }
    // Prefer "simple" values inside the range: the bound and zero.
    out.push(low);
    if low < 0.0 && value > 0.0 {
        out.push(0.0);
    }
    let mut delta = (value - low) / 2.0;
    for _ in 0..8 {
        let cand = value - delta;
        if cand > low && cand < value {
            out.push(cand);
        }
        delta /= 2.0;
    }
    out
}

// ---------------------------------------------------------------------------
// any / Just
// ---------------------------------------------------------------------------

/// Full-domain strategy for `T`, mirroring `proptest`'s `any::<T>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a natural full-domain distribution and shrink order.
pub trait ArbitraryValue: Clone + Debug {
    /// Draw one value from the full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
    /// Shrink candidates toward the type's simplest value.
    fn shrink_value(&self) -> Vec<Self>;
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_value()
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink_value(&self) -> Vec<$t> {
                shrink_int_toward(*self as i128, 0)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
    fn shrink_value(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// A strategy that always yields the same value (`proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Map / FlatMap
// ---------------------------------------------------------------------------

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let first = self.inner.generate(rng);
        (self.f)(first).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+ $(,)?))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Length specification for [`vec()`]: a fixed size or a `min..max` range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (exclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "vec: empty size range {r:?}");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Strategy for `Vec<T>` with element strategy `elem` and a length drawn
/// from `size` (mirrors `proptest::collection::vec`).
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { elem, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min
            + if span > 1 {
                uniform_u64_below(rng, span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        // Structural shrinks first: halve, then drop single elements.
        if len > self.size.min {
            let half = (len / 2).max(self.size.min);
            if half < len {
                out.push(value[..half].to_vec());
            }
            for i in (0..len).take(8) {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Element-wise shrinks (first candidate per position only, to
        // keep the greedy pass bounded).
        for (i, item) in value.iter().enumerate().take(16) {
            if let Some(cand) = self.elem.shrink(item).into_iter().next() {
                let mut v = value.clone();
                v[i] = cand;
                out.push(v);
            }
        }
        out
    }
}

/// Namespace mirror of `proptest::prop::collection`, so ported suites can
/// keep `prop::collection::vec(...)` spellings.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use super::super::vec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn range_strategy_generates_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = 10u64..200;
        for _ in 0..500 {
            let v = s.generate(&mut rng);
            assert!((10..200).contains(&v));
        }
    }

    #[test]
    fn int_shrink_moves_toward_low_bound() {
        let s = 10i32..200;
        let cands = s.shrink(&100);
        assert!(cands.contains(&10));
        assert!(cands.iter().all(|&c| (10..100).contains(&c)));
    }

    #[test]
    fn vec_strategy_respects_size_and_shrinks_structurally() {
        let mut rng = StdRng::seed_from_u64(2);
        let s = vec(0.0..1.0f64, 3..10);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((3..10).contains(&v.len()));
        }
        let failing = s.generate(&mut rng);
        for cand in s.shrink(&failing) {
            assert!(cand.len() >= 3, "shrank below min len: {}", cand.len());
        }
    }

    #[test]
    fn tuple_strategy_shrinks_componentwise() {
        let s = (0u32..100, 0.0..1.0f64);
        let cands = s.shrink(&(50, 0.5));
        assert!(!cands.is_empty());
        for (a, b) in cands {
            assert!(a < 100 && (0.0..1.0).contains(&b));
        }
    }

    #[test]
    fn flat_map_composes() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = (1u8..=12).prop_flat_map(|m| (Just(m), 1u8..=28));
        for _ in 0..100 {
            let (m, d) = s.generate(&mut rng);
            assert!((1..=12).contains(&m) && (1..=28).contains(&d));
        }
    }
}
