#![warn(missing_docs)]
//! # booters-testkit
//!
//! Hermetic, zero-dependency test substrate for the booters workspace:
//! everything needed to build and test fully offline.
//!
//! | module | what it replaces | what it provides |
//! |---|---|---|
//! | [`rng`] | `rand` | splitmix64 seeding + xoshiro256++ core, [`Rng`]/[`SeedableRng`] traits, [`rngs::StdRng`] |
//! | [`strategy`] + [`harness`] | `proptest` | [`forall!`] property tests with greedy shrinking and seed replay |
//! | [`mod@bench`] | `criterion` | warmup + timed samples, median/MAD, one JSON line per benchmark |
//!
//! ## Seeding
//!
//! All randomness flows from a single `u64` via
//! [`SeedableRng::seed_from_u64`]; identical seeds give identical streams
//! on every platform, so fixed seeds make the Table 1/2/3 artifacts
//! byte-reproducible. Property-test failures print the `TESTKIT_SEED`
//! value that replays them.

pub mod bench;
pub mod harness;
#[macro_use]
mod macros;
pub mod rng;
pub mod strategy;

pub use rng::rngs;
pub use rng::{Rng, RngCore, SeedableRng};
pub use strategy::{any, Just, Strategy};
