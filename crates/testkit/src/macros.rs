//! The [`forall!`] property-test macro and its assertion helpers.

/// Define a block of property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]`
/// that runs the body over generated inputs. An optional leading
/// `#![cases(N)]` sets the case count for every property in the block
/// (default [`DEFAULT_CASES`](crate::harness::DEFAULT_CASES)).
///
/// ```
/// booters_testkit::forall! {
///     #![cases(64)]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         booters_testkit::prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() {}
/// ```
///
/// A failing property panics with the minimal shrunk counterexample and
/// the `TESTKIT_SEED` value that replays it.
#[macro_export]
macro_rules! forall {
    ( #![cases($cases:expr)] $($rest:tt)* ) => {
        $crate::__forall_impl! { cases = $cases; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__forall_impl! { cases = $crate::harness::DEFAULT_CASES; $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __forall_impl {
    ( cases = $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __strategy = ( $( $strat, )+ );
            $crate::harness::check(
                concat!(module_path!(), "::", stringify!($name)),
                $cases,
                __strategy,
                |( $( $arg, )+ )| $body,
            );
        }
    )*};
}

/// Assert a condition inside a property body; on failure the harness
/// records the message, shrinks the input and reports the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a property body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            panic!(
                "prop_assert_eq! failed: {:?} != {:?} ({} vs {})",
                l, r, stringify!($left), stringify!($right)
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            panic!($($fmt)+);
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::strategy::{any, vec, Just, Strategy};

    crate::forall! {
        #![cases(64)]

        fn tuples_and_patterns_work((a, b) in (0u32..10, 0u32..10), c in any::<bool>()) {
            crate::prop_assert!(a < 10 && b < 10);
            let _ = c;
        }

        fn vec_and_map_compose(v in vec(0u8..100, 1..20).prop_map(|v| v.len())) {
            crate::prop_assert!((1..20).contains(&v));
        }

        fn just_passes_through(x in Just(41), y in 1u32..2) {
            crate::prop_assert_eq!(x + y, 42);
        }
    }
}
