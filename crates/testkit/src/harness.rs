//! The property-test runner behind the [`forall!`](crate::forall) macro.
//!
//! Each property runs a configurable number of generated cases from a
//! deterministic seed schedule. On failure the harness greedily shrinks
//! the input, then panics with the minimal counterexample *and* the seed
//! that reproduces it (`TESTKIT_SEED=<n> cargo test <name>`).

use crate::rng::SeedableRng;
use crate::rngs::StdRng;
use crate::strategy::Strategy;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 256;

/// Base seed of the deterministic case schedule. Overridden by the
/// `TESTKIT_SEED` environment variable to replay a reported failure.
pub const DEFAULT_BASE_SEED: u64 = 0xB007_E25;

/// Cap on greedy shrink steps, so pathological strategies terminate.
const MAX_SHRINK_STEPS: u32 = 1_000;

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Install (once, process-wide) a panic hook that stays silent while this
/// thread is probing candidate inputs, and delegates to the previous hook
/// otherwise. Without this, every probed case would spam the test log.
fn install_quiet_hook() {
    use std::sync::Once;
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
}

/// Extract a human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run `test` once, capturing a panic as `Err(message)`.
fn run_case<V, F: Fn(V)>(test: &F, value: V) -> Result<(), String> {
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    outcome.map_err(|payload| panic_message(payload.as_ref()))
}

/// The seed of case `i` in the schedule starting at `base`. Case 0 uses
/// `base` itself so a reported seed replays directly as `TESTKIT_SEED`.
fn case_seed(base: u64, i: u32) -> u64 {
    // Distinct odd stride keeps the per-case seeds well separated; the
    // splitmix64 expansion inside seed_from_u64 decorrelates them.
    base.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Execute a property: `cases` runs of `test` on inputs drawn from
/// `strategy`. Called by the [`forall!`](crate::forall) macro.
///
/// Environment overrides:
/// - `TESTKIT_SEED=<n>` — replay the schedule starting at seed `n`
///   (pass the seed printed by a failure to reproduce it as case 0);
/// - `TESTKIT_CASES=<n>` — override the case count.
pub fn check<S, F>(name: &str, cases: u32, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    install_quiet_hook();
    let (base_seed, replaying) = match std::env::var("TESTKIT_SEED") {
        Ok(v) => (
            v.parse::<u64>()
                .unwrap_or_else(|_| panic!("TESTKIT_SEED must be a u64, got {v:?}")),
            true,
        ),
        Err(_) => (DEFAULT_BASE_SEED, false),
    };
    let cases = std::env::var("TESTKIT_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(if replaying { 1 } else { cases });

    for i in 0..cases {
        let seed = case_seed(base_seed, i);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = strategy.generate(&mut rng);
        if let Err(message) = run_case(&test, input.clone()) {
            let (minimal, steps) = shrink_failure(&strategy, &test, input, message);
            panic!(
                "property {name} failed (case {i}/{cases}, after {steps} shrink steps)\n\
                 minimal failing input: {minimal:?}\n\
                 reproduce with: TESTKIT_SEED={seed} cargo test {short}\n",
                short = name.rsplit("::").next().unwrap_or(name),
            );
        }
    }
}

/// Greedy shrink: repeatedly take the first candidate that still fails,
/// until no candidate fails or the step budget is exhausted. Returns the
/// minimal input rendered with its failure message, plus the step count.
fn shrink_failure<S, F>(
    strategy: &S,
    test: &F,
    mut failing: S::Value,
    mut message: String,
) -> (String, u32)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let mut steps = 0u32;
    'outer: while steps < MAX_SHRINK_STEPS {
        for candidate in strategy.shrink(&failing) {
            steps += 1;
            if steps >= MAX_SHRINK_STEPS {
                break 'outer;
            }
            if let Err(m) = run_case(test, candidate.clone()) {
                failing = candidate;
                message = m;
                continue 'outer;
            }
        }
        break;
    }
    (format!("{failing:?}\nfailure: {message}"), steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::vec;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check("testkit::always_true", 50, (0u32..100,), |(_x,)| {
            counter.set(counter.get() + 1);
        });
        assert_eq!(counter.get(), 50);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check("testkit::fails_over_10", 200, (0u32..1000,), |(x,)| {
                assert!(x <= 10, "x={x} exceeds 10");
            });
        }));
        let message = panic_message(outcome.expect_err("property must fail").as_ref());
        assert!(message.contains("TESTKIT_SEED="), "no seed in: {message}");
        assert!(message.contains("minimal failing input"), "{message}");
        // Greedy shrinking must land on the boundary counterexample.
        assert!(message.contains("(11,"), "not minimal: {message}");
    }

    #[test]
    fn deterministic_schedule_is_reproducible() {
        let seen = std::cell::RefCell::new(Vec::new());
        check("testkit::record", 10, (0u64..1_000_000,), |(x,)| {
            seen.borrow_mut().push(x);
        });
        let first = seen.borrow().clone();
        seen.borrow_mut().clear();
        check("testkit::record", 10, (0u64..1_000_000,), |(x,)| {
            seen.borrow_mut().push(x);
        });
        assert_eq!(*seen.borrow(), first);
    }

    #[test]
    fn vec_inputs_shrink_toward_short_vectors() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check(
                "testkit::no_long_vecs",
                200,
                (vec(0u32..10, 0..50),),
                |(v,)| assert!(v.len() < 3, "len={}", v.len()),
            );
        }));
        let message = panic_message(outcome.expect_err("must fail").as_ref());
        // A minimal counterexample has exactly 3 elements.
        let start = message.find('[').expect("vec debug in message");
        let end = message[start..].find(']').unwrap() + start;
        let elems = message[start + 1..end].split(',').count();
        assert_eq!(elems, 3, "not minimal: {message}");
    }
}
