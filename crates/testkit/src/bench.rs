//! Lightweight benchmark runner replacing `criterion` for the
//! `harness = false` bench targets.
//!
//! Each benchmark is warmed up, then timed over a fixed number of
//! samples; the runner reports the per-iteration **median** and **MAD**
//! (median absolute deviation — robust to scheduler noise) as one JSON
//! line per benchmark on stdout:
//!
//! ```text
//! {"name":"negbin_fit_paper_size","median_ns":123456,"mad_ns":789,"samples":20,"iters_per_sample":4}
//! ```
//!
//! Set `BENCH_JSON=<path>` to also append the lines to a file (the
//! `BENCH_*.json` trajectory), and `BENCH_SAMPLE_SIZE=<n>` to override
//! every group's sample count (useful for a quick smoke pass).

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for bench bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation attached to a benchmark group (recorded in the
/// JSON line so rates can be derived offline).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver (API-compatible subset of
/// `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warmup: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, self.warmup, None, f);
        self
    }

    /// Open a named group; benchmarks in it are reported as
    /// `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group's per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{}", self.name, name),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warmup,
            self.throughput,
            f,
        );
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] (or
/// [`Bencher::iter_with_setup`]) with the routine to time.
pub struct Bencher {
    sample_size: usize,
    warmup: Duration,
    /// Per-sample elapsed time and iteration count, filled by `iter`.
    samples: Vec<(Duration, u32)>,
}

impl Bencher {
    /// Time `routine`, warming up first and then collecting samples.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        // Warmup: run until the warmup budget elapses (at least once),
        // measuring a rough per-iteration cost to size the samples.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters == 0 || warm_start.elapsed() < self.warmup {
            std_black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1);
        // Aim for ~10ms per sample, between 1 and 10_000 iterations.
        let iters = (Duration::from_millis(10).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            self.samples.push((start.elapsed(), iters));
        }
    }

    /// Time `routine` on a fresh `setup()` value each iteration; only the
    /// routine is timed.
    pub fn iter_with_setup<S, T, Setup, F>(&mut self, mut setup: Setup, mut routine: F)
    where
        Setup: FnMut() -> S,
        F: FnMut(S) -> T,
    {
        // One warmup pass.
        std_black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push((start.elapsed(), 1));
        }
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

fn run_benchmark<F>(
    name: &str,
    sample_size: usize,
    warmup: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let sample_size = std::env::var("BENCH_SAMPLE_SIZE")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(sample_size);
    let mut bencher = Bencher {
        sample_size,
        warmup,
        samples: Vec::with_capacity(sample_size),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("bench {name}: no samples recorded (closure never called iter)");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(d, iters)| d.as_nanos() as f64 / *iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let med = median(&per_iter);
    let mut deviations: Vec<f64> = per_iter.iter().map(|x| (x - med).abs()).collect();
    deviations.sort_by(|a, b| a.total_cmp(b));
    let mad = median(&deviations);
    let throughput_field = match throughput {
        Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
        Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
        None => String::new(),
    };
    let line = format!(
        "{{\"name\":\"{name}\",\"median_ns\":{med:.0},\"mad_ns\":{mad:.0},\
         \"samples\":{n},\"iters_per_sample\":{iters}{throughput_field}}}",
        n = per_iter.len(),
        iters = bencher.samples[0].1,
    );
    println!("{line}");
    if let Ok(path) = std::env::var("BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = writeln!(file, "{line}");
        }
    }
}

/// Declare a bench entry function running the listed benchmark
/// functions, mirroring both forms of `criterion_group!`.
#[macro_export]
macro_rules! bench_group {
    ( name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)? ) => {
        fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $group:ident, $($target:path),+ $(,)? ) => {
        fn $group() {
            let mut criterion = $crate::bench::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main()` for a `harness = false` bench target, mirroring
/// `criterion_main!`.
#[macro_export]
macro_rules! bench_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runner_produces_sane_medians() {
        // Time a ~deterministic busy loop directly through the internals.
        let mut bencher = Bencher {
            sample_size: 5,
            warmup: Duration::from_millis(1),
            samples: Vec::new(),
        };
        bencher.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        assert_eq!(bencher.samples.len(), 5);
        let per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|(d, n)| d.as_nanos() as f64 / *n as f64)
            .collect();
        assert!(per_iter.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn median_and_mad_are_robust() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(median(&sorted), 3.0);
        let med = median(&sorted);
        let mut dev: Vec<f64> = sorted.iter().map(|x| (x - med).abs()).collect();
        dev.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(median(&dev), 1.0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
