//! Deterministic pseudo-random number generation: splitmix64 seeding and
//! the xoshiro256++ core, plus the small `rand`-shaped trait surface the
//! workspace actually uses (`seed_from_u64`, `gen`, `gen_range`).
//!
//! The generators are the reference algorithms of Blackman & Vigna
//! (<https://prng.di.unimi.it/>), transcribed from the public-domain C.
//! Identical seeds produce identical streams on every platform, which is
//! what makes the Table 1/2/3 artifacts byte-reproducible.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// splitmix64
// ---------------------------------------------------------------------------

/// SplitMix64: a tiny, fast generator used to expand a single `u64` seed
/// into the 256-bit xoshiro state (the seeding procedure the xoshiro
/// authors recommend). Also usable standalone for derived stream seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

// ---------------------------------------------------------------------------
// xoshiro256++
// ---------------------------------------------------------------------------

/// Xoshiro256++ — the workspace's deterministic generator. 256 bits of
/// state, period 2²⁵⁶−1, passes BigCrush; the `++` scrambler returns
/// full-strength 64-bit outputs suitable for deriving floats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Construct from a raw 256-bit state. Panics on the all-zero state,
    /// which is the single fixed point of the transition function.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "Xoshiro256pp: all-zero state");
        Xoshiro256pp { s }
    }

    /// Next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // splitmix64 output is equidistributed, so a run of four zero
        // words cannot occur from any seed; no fallback needed.
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        Xoshiro256pp::next_u64(self)
    }
}

/// Concrete-type aliases mirroring the `rand::rngs` layout so call sites
/// migrate with a one-line import change.
pub mod rngs {
    /// The workspace's standard seedable generator (xoshiro256++).
    pub type StdRng = super::Xoshiro256pp;
}

// ---------------------------------------------------------------------------
// Traits
// ---------------------------------------------------------------------------

/// The minimal generator interface: a source of 64-bit words.
pub trait RngCore {
    /// Next 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface: expand one `u64` into a full generator state.
pub trait SeedableRng: Sized {
    /// Construct a generator from a single integer seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`] (so `&mut R` works wherever `R: Rng + ?Sized` is asked).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its natural uniform distribution
    /// (`f64` in `[0,1)`, integers over their full domain, fair `bool`).
    #[inline]
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from a range (`a..b` or `a..=b`), unbiased via
    /// power-of-two rejection for integers.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their full natural domain by [`Rng::gen`].
pub trait FromRng {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl FromRng for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl FromRng for u16 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl FromRng for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Unbiased uniform draw below `bound` (`bound >= 1`) by masking to the
/// next power of two and rejecting overshoots — at most ~50% rejections.
#[inline]
pub fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound >= 1);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // bound is not a power of two here, so bound < 2^63 implies
    // next_power_of_two cannot overflow; bound > 2^63 needs the full mask.
    let mask = if bound > 1 << 63 {
        u64::MAX
    } else {
        bound.next_power_of_two() - 1
    };
    loop {
        let v = rng.next_u64() & mask;
        if v < bound {
            return v;
        }
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range: empty range {}..{}", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                let v = uniform_u64_below(rng, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range {start}..={end}");
                let span = end as i128 - start as i128 + 1;
                if span > u64::MAX as i128 {
                    // Full 64-bit domain: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                let v = uniform_u64_below(rng, span as u64);
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(i8, u8, i16, u16, i32, u32, i64, u64, isize, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(
            self.start < self.end && self.start.is_finite() && self.end.is_finite(),
            "gen_range: bad f64 range {}..{}",
            self.start,
            self.end
        );
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(
            start <= end && start.is_finite() && end.is_finite(),
            "gen_range: bad f64 range {start}..={end}"
        );
        start + rng.next_f64() * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 from seed 0 — first output is the published reference
    /// value 0xE220A8397B1DCDAF; the rest pin this transcription.
    #[test]
    fn splitmix64_golden_seed_zero() {
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(sm.next_u64(), 0xF88B_B8A8_724C_81EC);
    }

    /// Xoshiro256++ with the hand-checkable state {1,2,3,4}: the first
    /// output is rotl(1+4, 23) + 1 = 5·2²³ + 1 = 41943041, and the
    /// following outputs pin the state transition.
    #[test]
    fn xoshiro_golden_state_1234() {
        let mut rng = Xoshiro256pp::from_state([1, 2, 3, 4]);
        assert_eq!(rng.next_u64(), 41_943_041);
        assert_eq!(rng.next_u64(), 58_720_359);
        assert_eq!(rng.next_u64(), 3_588_806_011_781_223);
        assert_eq!(rng.next_u64(), 3_591_011_842_654_386);
        assert_eq!(rng.next_u64(), 9_228_616_714_210_784_205);
    }

    /// The composed seeding path (splitmix64 expansion → xoshiro256++
    /// outputs) for seed 42, pinned so any change to either algorithm or
    /// the glue between them is caught.
    #[test]
    fn seeded_stream_golden_seed_42() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        assert_eq!(rng.next_u64(), 15_021_278_609_987_233_951);
        assert_eq!(rng.next_u64(), 5_881_210_131_331_364_753);
        assert_eq!(rng.next_u64(), 18_149_643_915_985_481_100);
        assert_eq!(rng.next_u64(), 12_933_668_939_759_105_464);
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        let mut c = Xoshiro256pp::seed_from_u64(43);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    /// Chi-square uniformity over 16 `gen_range` buckets. With df = 15
    /// the 99.9th percentile is ≈ 37.7 (Wilson–Hilferty); 45 leaves a
    /// wide deterministic margin for this fixed seed.
    #[test]
    fn gen_range_chi_square_uniformity() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xC4150);
        let k = 16usize;
        let n = 64_000usize;
        let mut counts = vec![0u64; k];
        for _ in 0..n {
            counts[rng.gen_range(0..k)] += 1;
        }
        let expected = n as f64 / k as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 45.0, "chi2={chi2} counts={counts:?}");
    }

    /// Mean/variance sanity for the `[0,1)` f64 uniform: mean 1/2,
    /// variance 1/12.
    #[test]
    fn f64_uniform_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(0xF1_0A7);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.003, "var={var}");
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn gen_range_respects_bounds_all_types() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..2_000 {
            let a = rng.gen_range(-1..=1i8);
            assert!((-1..=1).contains(&a));
            let b = rng.gen_range(1024..u16::MAX);
            assert!((1024..u16::MAX).contains(&b));
            let c = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&c));
            let d = rng.gen_range(0..7usize);
            assert!(d < 7);
            let e = rng.gen_range(32..=255u32);
            assert!((32..=255).contains(&e));
            let f = rng.gen_range(-1000i64..1000);
            assert!((-1000..1000).contains(&f));
        }
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        // Must not overflow or hang on the widest possible range.
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn rng_trait_works_through_mut_references() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(-1.0..1.0)
        }
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let v = takes_generic(&mut rng);
        assert!((-1.0..1.0).contains(&v));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let heads = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((heads as f64 / 20_000.0 - 0.25).abs() < 0.02);
    }
}
