//! Property-based tests for special functions, distributions and
//! descriptive statistics.

use booters_stats::describe::{
    excess_kurtosis, mean, pearson, ranks, skewness, spearman, variance_sample,
};
use booters_stats::dist::{
    standard_normal_quantile, Binomial, ChiSquared, Exponential, GammaDist, NegativeBinomial,
    Normal, Poisson, StudentsT,
};
use booters_stats::special::{beta_inc, digamma, gamma, gamma_p, gamma_q, ln_gamma};
use booters_testkit::strategy::prop;
use booters_testkit::{forall, prop_assert};

forall! {
    #![cases(128)]

    fn gamma_recurrence(x in 0.1..60.0f64) {
        // Γ(x+1) = x·Γ(x) in log form.
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    fn digamma_is_log_derivative(x in 0.5..40.0f64) {
        let h = 1e-5;
        let numeric = (ln_gamma(x + h) - ln_gamma(x - h)) / (2.0 * h);
        prop_assert!((digamma(x) - numeric).abs() < 1e-5);
    }

    fn gamma_p_q_complementary(a in 0.1..30.0f64, x in 0.0..60.0f64) {
        prop_assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-10);
        prop_assert!((0.0..=1.0).contains(&gamma_p(a, x)));
    }

    fn gamma_p_monotone_in_x(a in 0.2..20.0f64, x in 0.1..40.0f64, dx in 0.01..5.0f64) {
        prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-12);
    }

    fn beta_inc_bounds_and_symmetry(a in 0.2..20.0f64, b in 0.2..20.0f64, x in 0.0..1.0f64) {
        let v = beta_inc(a, b, x);
        prop_assert!((0.0..=1.0).contains(&v));
        let sym = 1.0 - beta_inc(b, a, 1.0 - x);
        prop_assert!((v - sym).abs() < 1e-9);
    }

    fn gamma_positive(x in 0.05..30.0f64) {
        prop_assert!(gamma(x) > 0.0);
    }

    fn normal_cdf_monotone_and_symmetric(mu in -5.0..5.0f64, sigma in 0.1..5.0f64, x in -10.0..10.0f64) {
        let n = Normal::new(mu, sigma);
        prop_assert!(n.cdf(x + 0.1) >= n.cdf(x));
        // Symmetry about the mean.
        let d = x - mu;
        prop_assert!((n.cdf(mu + d) + n.cdf(mu - d) - 1.0).abs() < 1e-10);
    }

    fn normal_quantile_inverts_cdf(p in 0.001..0.999f64) {
        let z = standard_normal_quantile(p);
        prop_assert!((Normal::standard().cdf(z) - p).abs() < 1e-8);
    }

    fn poisson_cdf_monotone(lambda in 0.1..200.0f64, k in 0u64..100) {
        let d = Poisson::new(lambda);
        prop_assert!(d.cdf(k + 1) >= d.cdf(k) - 1e-12);
        prop_assert!(d.pmf(k) >= 0.0);
    }

    fn negbin_variance_exceeds_mean(mu in 0.5..500.0f64, alpha in 0.001..2.0f64) {
        let nb = NegativeBinomial::new(mu, alpha);
        prop_assert!(nb.variance() > mu);
        prop_assert!((0.0..=1.0).contains(&nb.p()));
    }

    fn negbin_cdf_in_unit_interval(mu in 0.5..100.0f64, alpha in 0.01..1.5f64, k in 0u64..300) {
        let nb = NegativeBinomial::new(mu, alpha);
        let c = nb.cdf(k);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
    }

    fn binomial_cdf_reaches_one(n in 1u64..60, p in 0.0..1.0f64) {
        let b = Binomial::new(n, p);
        prop_assert!((b.cdf(n) - 1.0).abs() < 1e-9);
        prop_assert!(b.variance() <= b.mean() + 1e-12);
    }

    fn exponential_quantile_roundtrip(rate in 0.05..20.0f64, p in 0.001..0.999f64) {
        let e = Exponential::new(rate);
        prop_assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-10);
    }

    fn chi_squared_quantile_roundtrip(df in 1.0..40.0f64, p in 0.01..0.99f64) {
        let c = ChiSquared::new(df);
        let x = c.quantile(p);
        prop_assert!((c.cdf(x) - p).abs() < 1e-6);
    }

    fn students_t_symmetry(df in 1.0..60.0f64, t in 0.0..8.0f64) {
        let d = StudentsT::new(df);
        prop_assert!((d.cdf(t) + d.cdf(-t) - 1.0).abs() < 1e-10);
        prop_assert!((0.0..=1.0).contains(&d.two_sided_p(t)));
    }

    fn gamma_dist_cdf_monotone(shape in 0.2..20.0f64, scale in 0.1..10.0f64, x in 0.0..50.0f64) {
        let g = GammaDist::new(shape, scale);
        prop_assert!(g.cdf(x + 0.5) >= g.cdf(x) - 1e-12);
    }

    fn mean_shift_invariance(xs in prop::collection::vec(-100.0..100.0f64, 3..40), c in -50.0..50.0f64) {
        let shifted: Vec<f64> = xs.iter().map(|x| x + c).collect();
        prop_assert!((mean(&shifted) - mean(&xs) - c).abs() < 1e-8);
        // Variance unchanged by shift.
        if xs.len() >= 2 {
            prop_assert!((variance_sample(&shifted) - variance_sample(&xs)).abs() < 1e-6);
        }
    }

    fn skewness_flips_under_negation(xs in prop::collection::vec(-50.0..50.0f64, 5..40)) {
        let neg: Vec<f64> = xs.iter().map(|x| -x).collect();
        let s = skewness(&xs);
        let sn = skewness(&neg);
        if s.is_finite() && sn.is_finite() {
            prop_assert!((s + sn).abs() < 1e-7, "s={s} sn={sn}");
        }
    }

    fn kurtosis_scale_invariant(xs in prop::collection::vec(-50.0..50.0f64, 6..40), c in 0.1..10.0f64) {
        let scaled: Vec<f64> = xs.iter().map(|x| x * c).collect();
        let k = excess_kurtosis(&xs);
        let ks = excess_kurtosis(&scaled);
        if k.is_finite() && ks.is_finite() {
            prop_assert!((k - ks).abs() < 1e-6 * k.abs().max(1.0));
        }
    }

    fn pearson_bounded(xs in prop::collection::vec(-50.0..50.0f64, 3..30),
                       ys in prop::collection::vec(-50.0..50.0f64, 3..30)) {
        let n = xs.len().min(ys.len());
        let r = pearson(&xs[..n], &ys[..n]);
        if r.is_finite() {
            prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&r));
        }
    }

    fn ranks_sum_is_invariant(xs in prop::collection::vec(-100.0..100.0f64, 1..30)) {
        let r = ranks(&xs);
        let n = xs.len() as f64;
        // Σ ranks = n(n+1)/2 regardless of ties (mid-ranks preserve the sum).
        let sum: f64 = r.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-8);
    }

    fn spearman_equals_pearson_of_ranks(xs in prop::collection::vec(-20.0..20.0f64, 5..25),
                                        ys in prop::collection::vec(-20.0..20.0f64, 5..25)) {
        let n = xs.len().min(ys.len());
        let s = spearman(&xs[..n], &ys[..n]);
        let p = pearson(&ranks(&xs[..n]), &ranks(&ys[..n]));
        if s.is_finite() && p.is_finite() {
            prop_assert!((s - p).abs() < 1e-12);
        }
    }
}
