#![allow(clippy::needless_range_loop)]
#![allow(clippy::module_inception)]
#![warn(missing_docs)]
//! Statistical foundation for the booters analysis stack.
//!
//! There is no mature GLM/statistics crate in the allowed dependency set, so
//! this crate implements from scratch everything the paper's analysis needs:
//!
//! * [`special`] — log-gamma, digamma, trigamma, error function and the
//!   regularised incomplete gamma/beta functions (the bedrock of every CDF).
//! * [`dist`] — probability distributions (Normal, Poisson, Negative
//!   Binomial, Gamma, Chi-squared, Student's t, F) with density, CDF,
//!   quantile and seedable sampling.
//! * [`describe`] — descriptive statistics: moments, skewness, kurtosis,
//!   Pearson correlation, autocorrelation.
//! * [`tests`] — the hypothesis tests used in §3 of the paper to validate
//!   booter self-reports: White's heteroskedasticity test, the D'Agostino
//!   K² skewness/kurtosis normality test, Jarque–Bera, Ljung–Box, and the
//!   prime-divisibility "multiplier" check.

pub mod describe;
pub mod dist;
pub mod special;
pub mod tests;

pub use dist::{
    ChiSquared, FDist, GammaDist, NegativeBinomial, Normal, Poisson, StudentsT,
};
