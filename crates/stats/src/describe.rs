//! Descriptive statistics: moments, skewness/kurtosis, correlation and
//! autocorrelation, used both by the hypothesis tests (§3 of the paper)
//! and the country-correlation analysis (Figure 4).

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divide by n). Returns `NaN` for an empty slice.
pub fn variance_population(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divide by n−1). Returns `NaN` for fewer than 2 points.
pub fn variance_sample(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance_sample(xs).sqrt()
}

/// Sample skewness g₁ = m₃ / m₂^{3/2} (biased/moment form, as used by the
/// D'Agostino test which applies its own small-sample correction).
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 3.0 {
        return f64::NAN;
    }
    let m = mean(xs);
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    if m2 == 0.0 {
        return 0.0;
    }
    m3 / m2.powf(1.5)
}

/// Sample excess kurtosis g₂ = m₄ / m₂² − 3 (moment form).
pub fn excess_kurtosis(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if n < 4.0 {
        return f64::NAN;
    }
    let m = mean(xs);
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n;
    if m2 == 0.0 {
        return 0.0;
    }
    m4 / (m2 * m2) - 3.0
}

/// Sample covariance (divide by n−1).
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance: length mismatch");
    if xs.len() < 2 {
        return f64::NAN;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() - 1) as f64
}

/// Pearson product-moment correlation coefficient.
///
/// Returns `NaN` if either series is constant (zero variance) — the paper's
/// Figure 4 treats such series as uncorrelatable rather than perfectly
/// correlated.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if !(sx > 0.0 && sy > 0.0) {
        return f64::NAN;
    }
    covariance(xs, ys) / (sx * sy)
}

/// Mid-ranks of a sample (ties share the average rank), 1-based.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("ranks: NaN in data"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation — Pearson correlation of mid-ranks; robust
/// to the heavy tails of attack-count data.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman: length mismatch");
    pearson(&ranks(xs), &ranks(ys))
}

/// Lag-k sample autocorrelation (denominator n, standard Box–Jenkins form).
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag >= n {
        return f64::NAN;
    }
    let m = mean(xs);
    let denom: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    if denom == 0.0 {
        return f64::NAN;
    }
    let num: f64 = (0..n - lag)
        .map(|i| (xs[i] - m) * (xs[i + lag] - m))
        .sum();
    num / denom
}

/// Quantile of a sample via linear interpolation (type-7, the R default).
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile: q={q} outside [0,1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("quantile: NaN in data"));
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
}

/// Median (50% quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Min and max of a slice; `None` when empty.
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    if xs.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Some((lo, hi))
}

/// Symmetric correlation matrix of several equal-length series.
///
/// `series[i]` is one variable's observations. Diagonal entries are 1 where
/// the variance is positive, `NaN` otherwise.
pub fn correlation_matrix(series: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let k = series.len();
    let mut out = vec![vec![f64::NAN; k]; k];
    for i in 0..k {
        for j in i..k {
            let r = if i == j {
                if variance_sample(&series[i]) > 0.0 {
                    1.0
                } else {
                    f64::NAN
                }
            } else {
                pearson(&series[i], &series[j])
            };
            out[i][j] = r;
            out[j][i] = r;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert_eq!(variance_population(&xs), 4.0);
        assert!((variance_sample(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_give_nan() {
        assert!(mean(&[]).is_nan());
        assert!(variance_population(&[]).is_nan());
        assert!(variance_sample(&[1.0]).is_nan());
    }

    #[test]
    fn skewness_symmetric_is_zero() {
        let xs = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&xs).abs() < 1e-12);
    }

    #[test]
    fn skewness_right_tail_positive() {
        let xs = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&xs) > 1.0);
    }

    #[test]
    fn kurtosis_uniform_is_negative() {
        // Discrete uniform has negative excess kurtosis.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let k = excess_kurtosis(&xs);
        assert!(k < -1.0 && k > -1.3, "k={k}"); // continuous uniform: -1.2
    }

    #[test]
    fn constant_series_zero_skew_kurt() {
        let xs = [3.0; 10];
        assert_eq!(skewness(&xs), 0.0);
        assert_eq!(excess_kurtosis(&xs), 0.0);
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_nan() {
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_nan());
    }

    #[test]
    fn covariance_hand_computed() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 2.0, 5.0];
        // means: 2, 3; products: (−1)(−1)+(0)(−1)+(1)(2)=3; /2 = 1.5
        assert!((covariance(&xs, &ys) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties_with_mid_ranks() {
        let xs = [10.0, 20.0, 20.0, 30.0];
        assert_eq!(ranks(&xs), vec![1.0, 2.5, 2.5, 4.0]);
        let ys = [5.0, 1.0, 3.0];
        assert_eq!(ranks(&ys), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn spearman_monotone_transform_invariance() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x: &f64| (x * x).exp()).collect(); // monotone
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        let zs: Vec<f64> = xs.iter().map(|&x| -x * x * x).collect();
        assert!((spearman(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_robust_to_outlier() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut ys = [2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        ys[5] = 1e9; // outlier preserves the rank order
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 0.9); // pearson is distorted
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let xs = [1.0, 3.0, 2.0, 5.0, 4.0];
        assert!((autocorrelation(&xs, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_alternating_is_negative() {
        let xs = [1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0];
        assert!(autocorrelation(&xs, 1) < -0.8);
    }

    #[test]
    fn quantile_and_median() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(median(&xs), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&[3.0, -1.0, 7.0]), Some((-1.0, 7.0)));
        assert_eq!(min_max(&[]), None);
    }

    #[test]
    fn correlation_matrix_is_symmetric_with_unit_diagonal() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 6.0];
        let b = vec![2.0, 1.0, 4.0, 3.0, 7.0];
        let c = vec![5.0, 4.0, 3.0, 2.0, 1.0];
        let m = correlation_matrix(&[a, b, c]);
        for i in 0..3 {
            assert!((m[i][i] - 1.0).abs() < 1e-12);
            for j in 0..3 {
                assert!((m[i][j] - m[j][i]).abs() < 1e-12);
            }
        }
        assert!(m[0][1] > 0.5);
        assert!(m[0][2] < -0.9);
    }
}
