//! Special functions: log-gamma, digamma, trigamma, erf and the regularised
//! incomplete gamma and beta functions.
//!
//! Implementations follow the classic numerical recipes: Lanczos for
//! `ln Γ`, asymptotic series with downward recurrence for ψ and ψ′,
//! Abramowitz & Stegun 7.1.26-style rational approximation refined to a
//! high-accuracy continued-fraction/series pair for the incomplete
//! functions. Accuracy targets are ~1e-12 relative for `ln Γ` and ~1e-10
//! for the incomplete functions, ample for z-tests and likelihoods on
//! count data.

/// Lanczos coefficients (g = 7, n = 9), Boost/GSL standard set.
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Uses the Lanczos approximation; relative error below ~1e-13 on the
/// positive axis away from the poles.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS[0];
    let t = x + LANCZOS_G + 0.5;
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Gamma function for moderate `x > 0` (via `exp(ln_gamma)`).
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

/// Digamma function ψ(x) = d/dx ln Γ(x) for `x > 0`.
///
/// Recurrence ψ(x) = ψ(x+1) − 1/x until x ≥ 10, then the asymptotic series.
pub fn digamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    // Asymptotic expansion: ln x - 1/(2x) - Σ B_{2n} / (2n x^{2n})
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result += x.ln() - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2
                    * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))));
    result
}

/// Trigamma function ψ′(x) for `x > 0`.
pub fn trigamma(mut x: f64) -> f64 {
    assert!(x > 0.0, "trigamma requires x > 0, got {x}");
    let mut result = 0.0;
    while x < 10.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    // ψ'(x) ≈ 1/x + 1/(2x²) + Σ B_{2n} / x^{2n+1}
    result
        + inv
            * (1.0
                + inv * (0.5 + inv * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 * (1.0 / 42.0 - inv2 / 30.0)))))
}

/// Error function, via the regularised incomplete gamma identity
/// `erf(x) = P(1/2, x²)` for `x ≥ 0` (odd extension below). Relative
/// accuracy ~1e-13 in the body, absolute ~1e-15 in the tails.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let v = gamma_p(0.5, x * x);
    if x > 0.0 {
        v
    } else {
        -v
    }
}

/// Complementary error function, `erfc(x) = Q(1/2, x²)` for `x ≥ 0`; the
/// upper-tail continued fraction keeps full relative accuracy deep into the
/// tail (needed for the p-values of large z statistics).
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        gamma_q(0.5, x * x)
    } else {
        2.0 - gamma_q(0.5, x * x)
    }
}

/// Regularised lower incomplete gamma function P(a, x) = γ(a,x)/Γ(a).
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain error: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularised upper incomplete gamma function Q(a, x) = 1 − P(a, x).
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain error: a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_q_cf(a: f64, x: f64) -> f64 {
    // Lentz's method for the continued fraction representation of Q.
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Natural log of the beta function B(a, b).
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularised incomplete beta function I_x(a, b).
///
/// Continued fraction (Numerical Recipes `betai`/`betacf`) with the
/// symmetry transformation for convergence.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc domain error: a={a}, b={b}");
    assert!((0.0..=1.0).contains(&x), "beta_inc: x={x} outside [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < tiny {
        d = tiny;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < tiny {
            d = tiny;
        }
        c = 1.0 + aa / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn ln_gamma_integers_match_factorials() {
        // Γ(n) = (n-1)!
        let facts = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (n, &f) in facts.iter().enumerate() {
            let x = (n + 1) as f64;
            assert!(
                (ln_gamma(x) - f64::ln(f)).abs() < TOL,
                "ln_gamma({x}) != ln({f})"
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < TOL);
        // Γ(3/2) = sqrt(pi)/2
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expect).abs() < TOL);
    }

    #[test]
    fn ln_gamma_large_argument_stirling() {
        // Compare to Stirling with correction terms at x=171 (near f64 Γ overflow).
        let x: f64 = 171.0;
        let stirling = 0.5 * (2.0 * std::f64::consts::PI / x).ln() + x * (x.ln() - 1.0)
            + 1.0 / (12.0 * x)
            - 1.0 / (360.0 * x.powi(3));
        assert!((ln_gamma(x) - stirling).abs() / stirling.abs() < 1e-12);
    }

    #[test]
    fn digamma_known_values() {
        // ψ(1) = -γ (Euler–Mascheroni)
        let euler = 0.577_215_664_901_532_9;
        assert!((digamma(1.0) + euler).abs() < 1e-12);
        // ψ(2) = 1 - γ
        assert!((digamma(2.0) - (1.0 - euler)).abs() < 1e-12);
        // ψ(1/2) = -γ - 2 ln 2
        assert!((digamma(0.5) + euler + 2.0 * 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn digamma_recurrence_holds() {
        for &x in &[0.3, 1.7, 5.5, 23.0] {
            assert!(
                (digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-11,
                "recurrence failed at {x}"
            );
        }
    }

    #[test]
    fn trigamma_known_values() {
        // ψ'(1) = π²/6
        let pi2_6 = std::f64::consts::PI.powi(2) / 6.0;
        assert!((trigamma(1.0) - pi2_6).abs() < 1e-11);
        // ψ'(1/2) = π²/2
        assert!((trigamma(0.5) - 3.0 * pi2_6).abs() < 1e-10);
    }

    #[test]
    fn trigamma_recurrence_holds() {
        for &x in &[0.4, 2.2, 9.0] {
            assert!((trigamma(x + 1.0) - trigamma(x) + 1.0 / (x * x)).abs() < 1e-11);
        }
    }

    #[test]
    fn trigamma_is_derivative_of_digamma() {
        let x = 3.7;
        let h = 1e-6;
        let numeric = (digamma(x + h) - digamma(x - h)) / (2.0 * h);
        assert!((trigamma(x) - numeric).abs() < 1e-7);
    }

    #[test]
    fn erf_known_values() {
        assert_eq!(erf(0.0), 0.0);
        // erf(1) = 0.8427007929497149
        assert!((erf(1.0) - 0.842_700_792_949_714_9).abs() < 1e-9);
        // erf is odd
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12);
        // erf(3) ~ 0.9999779095030014
        assert!((erf(3.0) - 0.999_977_909_503_001_4).abs() < 1e-7);
    }

    #[test]
    fn erfc_tail_is_positive_and_small() {
        let v = erfc(5.0);
        assert!(v > 0.0 && v < 2e-12);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            assert!((gamma_p(a, x) + gamma_q(a, x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 2.5, 10.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_p_chi_squared_1df() {
        // For chi²(1): CDF(x) = P(1/2, x/2); CDF(3.841459) ≈ 0.95
        let p = gamma_p(0.5, 3.841_458_820_694_124 / 2.0);
        assert!((p - 0.95).abs() < 1e-8);
    }

    #[test]
    fn beta_inc_boundaries_and_symmetry() {
        assert_eq!(beta_inc(2.0, 3.0, 0.0), 0.0);
        assert_eq!(beta_inc(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let (a, b, x) = (2.5, 1.5, 0.3);
        assert!((beta_inc(a, b, x) - (1.0 - beta_inc(b, a, 1.0 - x))).abs() < 1e-12);
    }

    #[test]
    fn beta_inc_uniform_special_case() {
        // I_x(1,1) = x
        for &x in &[0.1, 0.5, 0.9] {
            assert!((beta_inc(1.0, 1.0, x) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn beta_inc_students_t_check() {
        // t-dist 10 df: P(T <= 2.228139) = 0.975
        let t: f64 = 2.228_138_851_986_273;
        let df = 10.0;
        let x = df / (df + t * t);
        let p = 1.0 - 0.5 * beta_inc(df / 2.0, 0.5, x);
        assert!((p - 0.975).abs() < 1e-8);
    }

    #[test]
    fn ln_beta_matches_gammas() {
        let (a, b) = (3.0, 4.0);
        // B(3,4) = Γ3Γ4/Γ7 = 2*6/720 = 1/60
        assert!((ln_beta(a, b) - (1.0f64 / 60.0).ln()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }
}
