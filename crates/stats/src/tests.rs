//! Hypothesis tests used by §3 of the paper to validate the booter
//! self-reported attack counters:
//!
//! * [`white_test`] — White's test for heteroskedasticity (count data
//!   "tends to be heteroskedastistic ... as numbers go up the variance
//!   ... will increase as well"). Genuine counter series should reject
//!   homoskedasticity.
//! * [`dagostino_k2`] — the skewness/kurtosis normality test ("real-world
//!   data are often normally distributed, and faking with random data would
//!   produce uniform distributions").
//! * [`jarque_bera`] — the simpler moment-based normality test, kept as a
//!   cross-check.
//! * [`ljung_box`] — serial-correlation test used by the model diagnostics.
//! * [`prime_multiplier_check`] — the paper's "no sequences of any length
//!   had values which were all divisible by any prime less than 50" check
//!   for crude multiplicative forgery.

use crate::describe::{excess_kurtosis, mean, skewness};
use crate::dist::ChiSquared;
use booters_linalg::{Matrix, Qr};

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Degrees of freedom of the reference distribution.
    pub df: f64,
    /// The p-value (upper tail unless documented otherwise).
    pub p_value: f64,
}

impl TestResult {
    /// True if the null hypothesis is rejected at the given level.
    pub fn reject_at(&self, level: f64) -> bool {
        self.p_value < level
    }
}

/// Ordinary least squares of `y` on a design with intercept prepended,
/// returning fitted values and residuals. Internal helper for [`white_test`].
fn ols_fit(design: &Matrix, y: &[f64]) -> Option<(Vec<f64>, Vec<f64>)> {
    let qr = Qr::new(design).ok()?;
    let beta = qr.solve(y).ok()?;
    let fitted = design.matvec(&beta).ok()?;
    let resid: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
    Some((fitted, resid))
}

/// R² of a regression of `y` given residuals `resid`.
fn r_squared(y: &[f64], resid: &[f64]) -> f64 {
    let my = mean(y);
    let tss: f64 = y.iter().map(|v| (v - my) * (v - my)).sum();
    let rss: f64 = resid.iter().map(|e| e * e).sum();
    if tss <= 0.0 {
        return 0.0;
    }
    1.0 - rss / tss
}

/// White's test for heteroskedasticity of `y` regressed on a single
/// regressor `x` (the paper regresses weekly attack counts on time).
///
/// Procedure: OLS of y on (1, x); then the auxiliary regression of the
/// squared residuals on (1, x, x²). The LM statistic n·R² of the auxiliary
/// regression is χ²(2) under homoskedasticity. A *low* p-value means
/// heteroskedasticity — which for count data is the signature of genuine
/// (un-faked) series.
pub fn white_test(x: &[f64], y: &[f64]) -> Option<TestResult> {
    let n = x.len();
    if n != y.len() || n < 5 {
        return None;
    }
    let ones = vec![1.0; n];
    let design = {
        let mut m = Matrix::zeros(n, 2);
        for i in 0..n {
            m[(i, 0)] = ones[i];
            m[(i, 1)] = x[i];
        }
        m
    };
    let (_, resid) = ols_fit(&design, y)?;
    let e2: Vec<f64> = resid.iter().map(|e| e * e).collect();
    let aux = {
        let mut m = Matrix::zeros(n, 3);
        for i in 0..n {
            m[(i, 0)] = 1.0;
            m[(i, 1)] = x[i];
            m[(i, 2)] = x[i] * x[i];
        }
        m
    };
    let (_, aux_resid) = ols_fit(&aux, &e2)?;
    let r2 = r_squared(&e2, &aux_resid);
    let stat = n as f64 * r2.max(0.0);
    let df = 2.0;
    Some(TestResult {
        statistic: stat,
        df,
        p_value: ChiSquared::new(df).sf(stat),
    })
}

/// White's test for a general design matrix (columns are regressors, no
/// intercept — one is added internally). The auxiliary regression uses
/// levels, squares and unique cross-products of the regressors.
pub fn white_test_general(design_cols: &[Vec<f64>], y: &[f64]) -> Option<TestResult> {
    let k = design_cols.len();
    if k == 0 {
        return None;
    }
    let n = design_cols[0].len();
    if y.len() != n || design_cols.iter().any(|c| c.len() != n) {
        return None;
    }
    // Main regression: y ~ 1 + X
    let mut main = Matrix::zeros(n, k + 1);
    for i in 0..n {
        main[(i, 0)] = 1.0;
        for (j, c) in design_cols.iter().enumerate() {
            main[(i, j + 1)] = c[i];
        }
    }
    let (_, resid) = ols_fit(&main, y)?;
    let e2: Vec<f64> = resid.iter().map(|e| e * e).collect();
    // Auxiliary columns: levels, squares, cross products.
    let mut aux_cols: Vec<Vec<f64>> = Vec::new();
    for c in design_cols {
        aux_cols.push(c.clone());
    }
    for a in 0..k {
        for b in a..k {
            let col: Vec<f64> = (0..n).map(|i| design_cols[a][i] * design_cols[b][i]).collect();
            aux_cols.push(col);
        }
    }
    let p = aux_cols.len();
    let mut aux = Matrix::zeros(n, p + 1);
    for i in 0..n {
        aux[(i, 0)] = 1.0;
        for (j, c) in aux_cols.iter().enumerate() {
            aux[(i, j + 1)] = c[i];
        }
    }
    let (_, aux_resid) = ols_fit(&aux, &e2)?;
    let r2 = r_squared(&e2, &aux_resid);
    let stat = n as f64 * r2.max(0.0);
    let df = p as f64;
    Some(TestResult {
        statistic: stat,
        df,
        p_value: ChiSquared::new(df).sf(stat),
    })
}

/// D'Agostino's skewness z-test (the first half of K²).
pub fn dagostino_skewness_z(xs: &[f64]) -> Option<f64> {
    let n = xs.len() as f64;
    if n < 8.0 {
        return None;
    }
    let g1 = skewness(xs);
    let y = g1 * ((n + 1.0) * (n + 3.0) / (6.0 * (n - 2.0))).sqrt();
    let beta2 = 3.0 * (n * n + 27.0 * n - 70.0) * (n + 1.0) * (n + 3.0)
        / ((n - 2.0) * (n + 5.0) * (n + 7.0) * (n + 9.0));
    let w2 = -1.0 + (2.0 * (beta2 - 1.0)).sqrt();
    let delta = 1.0 / (0.5 * w2.ln()).sqrt();
    let alpha = (2.0 / (w2 - 1.0)).sqrt();
    let t = y / alpha;
    Some(delta * (t + (t * t + 1.0).sqrt()).ln())
}

/// Anscombe–Glynn kurtosis z-test (the second half of K²).
pub fn dagostino_kurtosis_z(xs: &[f64]) -> Option<f64> {
    let n = xs.len() as f64;
    if n < 20.0 {
        return None;
    }
    let b2 = excess_kurtosis(xs) + 3.0;
    let eb2 = 3.0 * (n - 1.0) / (n + 1.0);
    let vb2 = 24.0 * n * (n - 2.0) * (n - 3.0) / ((n + 1.0).powi(2) * (n + 3.0) * (n + 5.0));
    let x = (b2 - eb2) / vb2.sqrt();
    let sqrt_beta1 = 6.0 * (n * n - 5.0 * n + 2.0) / ((n + 7.0) * (n + 9.0))
        * (6.0 * (n + 3.0) * (n + 5.0) / (n * (n - 2.0) * (n - 3.0))).sqrt();
    let a = 6.0 + 8.0 / sqrt_beta1 * (2.0 / sqrt_beta1 + (1.0 + 4.0 / (sqrt_beta1 * sqrt_beta1)).sqrt());
    let num = 1.0 - 2.0 / (9.0 * a);
    let den_inner = (1.0 - 2.0 / a) / (1.0 + x * (2.0 / (a - 4.0)).sqrt());
    let z = (num - den_inner.cbrt()) / (2.0 / (9.0 * a)).sqrt();
    Some(z)
}

/// D'Agostino–Pearson K² omnibus normality test.
///
/// K² = Z₁² + Z₂² ~ χ²(2) under normality. Used on the top booter series to
/// check the self-reported counters look like real-world (≈ normal weekly
/// increments) rather than uniform machine-generated noise.
pub fn dagostino_k2(xs: &[f64]) -> Option<TestResult> {
    let z1 = dagostino_skewness_z(xs)?;
    let z2 = dagostino_kurtosis_z(xs)?;
    let stat = z1 * z1 + z2 * z2;
    Some(TestResult {
        statistic: stat,
        df: 2.0,
        p_value: ChiSquared::new(2.0).sf(stat),
    })
}

/// Jarque–Bera normality test. JB = n/6 (g₁² + g₂²/4) ~ χ²(2).
pub fn jarque_bera(xs: &[f64]) -> Option<TestResult> {
    let n = xs.len() as f64;
    if n < 8.0 {
        return None;
    }
    let g1 = skewness(xs);
    let g2 = excess_kurtosis(xs);
    let stat = n / 6.0 * (g1 * g1 + g2 * g2 / 4.0);
    Some(TestResult {
        statistic: stat,
        df: 2.0,
        p_value: ChiSquared::new(2.0).sf(stat),
    })
}

/// Ljung–Box test for serial correlation up to `lags`.
///
/// Q = n(n+2) Σ r_k²/(n−k) ~ χ²(lags). Used as a residual diagnostic on the
/// fitted negative binomial model.
pub fn ljung_box(xs: &[f64], lags: usize) -> Option<TestResult> {
    let n = xs.len();
    if lags == 0 || n <= lags + 1 {
        return None;
    }
    let nf = n as f64;
    let mut q = 0.0;
    for k in 1..=lags {
        let r = crate::describe::autocorrelation(xs, k);
        if !r.is_finite() {
            return None;
        }
        q += r * r / (nf - k as f64);
    }
    q *= nf * (nf + 2.0);
    Some(TestResult {
        statistic: q,
        df: lags as f64,
        p_value: ChiSquared::new(lags as f64).sf(q),
    })
}

/// Asymptotic Kolmogorov distribution survival function
/// Q(λ) = 2 Σ (−1)^{j−1} exp(−2 j² λ²).
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-16 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One-sample Kolmogorov–Smirnov test against a theoretical CDF.
///
/// Returns the D statistic and the asymptotic p-value (valid for n ≳ 35;
/// conservative below). Used to check simulated samples against their
/// nominal distributions.
pub fn ks_test(xs: &[f64], cdf: impl Fn(f64) -> f64) -> Option<TestResult> {
    let n = xs.len();
    if n < 5 {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("ks_test: NaN"));
    let nf = n as f64;
    let mut d = 0.0_f64;
    for (i, &x) in sorted.iter().enumerate() {
        let f = cdf(x);
        let lo = i as f64 / nf;
        let hi = (i + 1) as f64 / nf;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    let lambda = (nf.sqrt() + 0.12 + 0.11 / nf.sqrt()) * d;
    Some(TestResult {
        statistic: d,
        df: nf,
        p_value: kolmogorov_sf(lambda),
    })
}

/// Two-sample Kolmogorov–Smirnov test: do two samples come from the same
/// distribution? Used to compare observation fidelities.
pub fn ks_two_sample(xs: &[f64], ys: &[f64]) -> Option<TestResult> {
    let (n, m) = (xs.len(), ys.len());
    if n < 5 || m < 5 {
        return None;
    }
    let mut a = xs.to_vec();
    let mut b = ys.to_vec();
    a.sort_by(|u, v| u.partial_cmp(v).expect("ks: NaN"));
    b.sort_by(|u, v| u.partial_cmp(v).expect("ks: NaN"));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d = 0.0_f64;
    while i < n && j < m {
        let x = a[i].min(b[j]);
        while i < n && a[i] <= x {
            i += 1;
        }
        while j < m && b[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / n as f64 - j as f64 / m as f64).abs());
    }
    let ne = (n as f64 * m as f64) / (n as f64 + m as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Some(TestResult {
        statistic: d,
        df: ne,
        p_value: kolmogorov_sf(lambda),
    })
}

/// The primes below 50, as used by the paper's multiplier check.
pub const PRIMES_BELOW_50: [u64; 15] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47];

/// Result of the prime-divisibility multiplier check on one series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiplierCheck {
    /// For each prime below 50, the length of the longest run of
    /// consecutive values all divisible by that prime.
    pub longest_runs: Vec<(u64, usize)>,
    /// Length of the series examined.
    pub len: usize,
}

impl MultiplierCheck {
    /// True when some prime divides a run at least `threshold` long —
    /// the signature of a crude "multiply a genuine counter by k" forgery.
    pub fn suspicious(&self, threshold: usize) -> bool {
        self.longest_runs.iter().any(|&(_, run)| run >= threshold)
    }

    /// The prime with the longest divisible run, if any run is non-zero.
    pub fn worst(&self) -> Option<(u64, usize)> {
        self.longest_runs
            .iter()
            .copied()
            .max_by_key(|&(_, run)| run)
            .filter(|&(_, run)| run > 0)
    }
}

/// Check whether any prime below 50 divides every element of a long run of
/// the series (paper §3: "no sequences of any length had values which were
/// all divisible by any prime less than 50").
///
/// Zero values are treated as divisible by everything (a zeroed counter is
/// not evidence of forgery), so runs are broken only by a non-zero,
/// non-divisible value.
pub fn prime_multiplier_check(series: &[u64]) -> MultiplierCheck {
    let mut longest_runs = Vec::with_capacity(PRIMES_BELOW_50.len());
    for &p in &PRIMES_BELOW_50 {
        let mut best = 0usize;
        let mut run = 0usize;
        for &v in series {
            if v % p == 0 {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        longest_runs.push((p, best));
    }
    MultiplierCheck {
        longest_runs,
        len: series.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_testkit::rngs::StdRng;
    use booters_testkit::{Rng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }

    #[test]
    fn white_detects_heteroskedasticity() {
        // Variance grows with x — like genuine count data.
        let mut r = rng();
        let n = 300;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| {
                let sd = 1.0 + 0.2 * xi;
                2.0 + 0.5 * xi + sd * crate::dist::standard_normal_sample(&mut r)
            })
            .collect();
        let res = white_test(&x, &y).unwrap();
        assert!(res.reject_at(0.05), "p={}", res.p_value);
    }

    #[test]
    fn white_accepts_homoskedastic_data() {
        let mut r = rng();
        let n = 300;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| 2.0 + 0.5 * xi + 3.0 * crate::dist::standard_normal_sample(&mut r))
            .collect();
        let res = white_test(&x, &y).unwrap();
        assert!(!res.reject_at(0.01), "p={}", res.p_value);
    }

    #[test]
    fn white_general_matches_single_on_one_regressor() {
        let mut r = rng();
        let n = 200;
        let x: Vec<f64> = (0..n).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|&xi| 1.0 + 2.0 * xi + (1.0 + xi) * crate::dist::standard_normal_sample(&mut r))
            .collect();
        let a = white_test(&x, &y).unwrap();
        let b = white_test_general(std::slice::from_ref(&x), &y).unwrap();
        assert!((a.statistic - b.statistic).abs() < 1e-8);
        assert_eq!(a.df, b.df);
    }

    #[test]
    fn white_too_short_returns_none() {
        assert!(white_test(&[1.0, 2.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn k2_accepts_normal_data() {
        let mut r = rng();
        let xs: Vec<f64> = (0..500)
            .map(|_| 10.0 + 2.0 * crate::dist::standard_normal_sample(&mut r))
            .collect();
        let res = dagostino_k2(&xs).unwrap();
        assert!(!res.reject_at(0.01), "p={}", res.p_value);
    }

    #[test]
    fn k2_rejects_uniform_data() {
        // Uniform data has strongly negative excess kurtosis; the paper's
        // forgery scenario ("faking with random data would produce uniform
        // distributions") should be flagged.
        let mut r = rng();
        let xs: Vec<f64> = (0..500).map(|_| r.gen::<f64>() * 100.0).collect();
        let res = dagostino_k2(&xs).unwrap();
        assert!(res.reject_at(0.05), "p={}", res.p_value);
    }

    #[test]
    fn k2_rejects_exponential_data() {
        let mut r = rng();
        let xs: Vec<f64> = (0..400).map(|_| -(r.gen::<f64>().max(1e-12)).ln()).collect();
        let res = dagostino_k2(&xs).unwrap();
        assert!(res.reject_at(0.05));
    }

    #[test]
    fn jarque_bera_agrees_with_k2_direction() {
        let mut r = rng();
        let normal: Vec<f64> = (0..400)
            .map(|_| crate::dist::standard_normal_sample(&mut r))
            .collect();
        let uniform: Vec<f64> = (0..400).map(|_| r.gen::<f64>()).collect();
        assert!(!jarque_bera(&normal).unwrap().reject_at(0.01));
        assert!(jarque_bera(&uniform).unwrap().reject_at(0.05));
    }

    #[test]
    fn ljung_box_detects_autocorrelation() {
        // AR(1) with phi = 0.8.
        let mut r = rng();
        let mut xs = vec![0.0f64; 400];
        for i in 1..400 {
            xs[i] = 0.8 * xs[i - 1] + crate::dist::standard_normal_sample(&mut r);
        }
        let res = ljung_box(&xs, 10).unwrap();
        assert!(res.reject_at(0.001));
    }

    #[test]
    fn ljung_box_accepts_white_noise() {
        let mut r = rng();
        let xs: Vec<f64> = (0..400)
            .map(|_| crate::dist::standard_normal_sample(&mut r))
            .collect();
        let res = ljung_box(&xs, 10).unwrap();
        assert!(!res.reject_at(0.01), "p={}", res.p_value);
    }

    #[test]
    fn ks_accepts_correct_distribution() {
        let mut r = rng();
        let xs: Vec<f64> = (0..500).map(|_| r.gen::<f64>()).collect();
        let res = ks_test(&xs, |x| x.clamp(0.0, 1.0)).unwrap();
        assert!(!res.reject_at(0.01), "p={}", res.p_value);
    }

    #[test]
    fn ks_rejects_wrong_distribution() {
        let mut r = rng();
        // Squared uniforms against the uniform CDF.
        let xs: Vec<f64> = (0..500).map(|_| r.gen::<f64>().powi(2)).collect();
        let res = ks_test(&xs, |x| x.clamp(0.0, 1.0)).unwrap();
        assert!(res.reject_at(0.001), "p={}", res.p_value);
    }

    #[test]
    fn ks_validates_normal_sampler() {
        // The KS test closes the loop on our own normal sampler + CDF.
        let mut r = rng();
        let xs: Vec<f64> = (0..800)
            .map(|_| crate::dist::standard_normal_sample(&mut r))
            .collect();
        let n = crate::dist::Normal::standard();
        let res = ks_test(&xs, |x| n.cdf(x)).unwrap();
        assert!(!res.reject_at(0.01), "p={}", res.p_value);
    }

    #[test]
    fn ks_two_sample_same_and_different() {
        let mut r = rng();
        let a: Vec<f64> = (0..400).map(|_| crate::dist::standard_normal_sample(&mut r)).collect();
        let b: Vec<f64> = (0..400).map(|_| crate::dist::standard_normal_sample(&mut r)).collect();
        let same = ks_two_sample(&a, &b).unwrap();
        assert!(!same.reject_at(0.01), "p={}", same.p_value);
        let c: Vec<f64> = (0..400)
            .map(|_| 1.0 + crate::dist::standard_normal_sample(&mut r))
            .collect();
        let diff = ks_two_sample(&a, &c).unwrap();
        assert!(diff.reject_at(0.001), "p={}", diff.p_value);
    }

    #[test]
    fn ks_too_short_returns_none() {
        assert!(ks_test(&[1.0, 2.0], |x| x).is_none());
        assert!(ks_two_sample(&[1.0; 3], &[1.0; 10]).is_none());
    }

    #[test]
    fn multiplier_check_flags_scaled_series() {
        // A counter multiplied by 7: every value divisible by 7.
        let series: Vec<u64> = (1..50).map(|i| i * 7).collect();
        let check = prime_multiplier_check(&series);
        assert!(check.suspicious(20));
        assert_eq!(check.worst().unwrap().0 % 7, 0);
    }

    #[test]
    fn multiplier_check_passes_genuine_series() {
        // Odd/even mixed increments: no prime divides long runs.
        let mut r = rng();
        let mut total = 1_000u64;
        let series: Vec<u64> = (0..100)
            .map(|_| {
                total += r.gen_range(10u64..200);
                total
            })
            .collect();
        let check = prime_multiplier_check(&series);
        // Runs of divisibility by 2 happen by chance but stay short.
        assert!(!check.suspicious(15), "worst={:?}", check.worst());
    }

    #[test]
    fn multiplier_check_zero_values_do_not_break_runs() {
        let series = [14u64, 0, 21, 28];
        let check = prime_multiplier_check(&series);
        let seven = check.longest_runs.iter().find(|&&(p, _)| p == 7).unwrap();
        assert_eq!(seven.1, 4);
    }

    #[test]
    fn test_result_reject_levels() {
        let t = TestResult {
            statistic: 5.0,
            df: 2.0,
            p_value: 0.03,
        };
        assert!(t.reject_at(0.05));
        assert!(!t.reject_at(0.01));
    }
}
