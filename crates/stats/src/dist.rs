//! Probability distributions with density, CDF, quantile and sampling.
//!
//! Each distribution is a small value type; sampling takes any
//! [`booters_testkit::Rng`] so simulations stay seedable and deterministic.
//! CDFs route through the incomplete gamma/beta functions in
//! [`crate::special`]; quantiles use closed forms where they exist and
//! bracketed Newton refinement otherwise.

use crate::special::{beta_inc, gamma_p, gamma_q, ln_beta, ln_gamma};
use booters_testkit::Rng;

// ---------------------------------------------------------------------------
// Normal
// ---------------------------------------------------------------------------

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    /// Mean.
    pub mu: f64,
    /// Standard deviation (> 0).
    pub sigma: f64,
}

impl Normal {
    /// Construct; panics if `sigma <= 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "Normal: sigma must be > 0, got {sigma}");
        Normal { mu, sigma }
    }

    /// The standard normal N(0, 1).
    pub fn standard() -> Self {
        Normal { mu: 0.0, sigma: 1.0 }
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * crate::special::erfc(-z)
    }

    /// Two-sided tail probability for a z-statistic: `P(|Z| > |z|)`.
    pub fn two_sided_p(z: f64) -> f64 {
        crate::special::erfc(z.abs() / std::f64::consts::SQRT_2)
    }

    /// Quantile (inverse CDF) via the Acklam rational approximation with a
    /// single Halley refinement step; absolute error below 1e-13.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "Normal::quantile: p={p}");
        self.mu + self.sigma * standard_normal_quantile(p)
    }

    /// Draw one sample (Box–Muller polar/Marsaglia method).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mu + self.sigma * standard_normal_sample(rng)
    }
}

/// Standard normal quantile (Acklam's algorithm + one Halley step).
pub fn standard_normal_quantile(p: f64) -> f64 {
    if p == 0.0 {
        return f64::NEG_INFINITY;
    }
    if p == 1.0 {
        return f64::INFINITY;
    }
    // Acklam's coefficients.
    const A: [f64; 6] = [
        -39.696_830_286_653_76,
        220.946_098_424_520_9,
        -275.928_510_446_968_9,
        138.357_751_867_269,
        -30.664_798_066_147_16,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -54.476_098_798_224_06,
        161.585_836_858_040_9,
        -155.698_979_859_886_6,
        66.801_311_887_719_72,
        -13.280_681_552_885_72,
    ];
    const C: [f64; 6] = [
        -0.007_784_894_002_430_293,
        -0.322_396_458_041_136_4,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        0.007_784_695_709_041_462,
        0.322_467_129_070_039_8,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step against the true CDF.
    let std = Normal::standard();
    let e = std.cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Draw a standard normal variate by the Marsaglia polar method.
pub fn standard_normal_sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

/// Poisson distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    /// Rate (mean) parameter, > 0.
    pub lambda: f64,
}

impl Poisson {
    /// Construct; panics if `lambda <= 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "Poisson: lambda must be > 0, got {lambda}");
        Poisson { lambda }
    }

    /// Log probability mass at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        let kf = k as f64;
        kf * self.lambda.ln() - self.lambda - ln_gamma(kf + 1.0)
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// CDF: `P(X <= k) = Q(k+1, λ)` (regularised upper incomplete gamma).
    pub fn cdf(&self, k: u64) -> f64 {
        gamma_q(k as f64 + 1.0, self.lambda)
    }

    /// Draw one sample. Knuth's product method for small λ, the
    /// normal-approximation with acceptance correction (PTRS-lite: rounded
    /// Gaussian with rejection against the exact pmf ratio) for large λ.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^{-λ}.
            let limit = (-self.lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.gen::<f64>();
                if p <= limit {
                    return k;
                }
                k += 1;
            }
        }
        // Atkinson's transformed rejection from a logistic envelope.
        let lambda = self.lambda;
        let beta = std::f64::consts::PI / (3.0 * lambda).sqrt();
        let alpha = beta * lambda;
        let k_const = (0.767 - 3.36 / lambda).ln() - lambda - beta.ln();
        loop {
            let u: f64 = rng.gen();
            if u <= 0.0 || u >= 1.0 {
                continue;
            }
            let x = (alpha - ((1.0 - u) / u).ln()) / beta;
            let n = (x + 0.5).floor();
            if n < 0.0 {
                continue;
            }
            let v: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let y = alpha - beta * x;
            let t = 1.0 + y.exp();
            let lhs = y + (v / (t * t)).ln();
            let rhs = k_const + n * lambda.ln() - ln_gamma(n + 1.0);
            if lhs <= rhs {
                return n as u64;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Gamma
// ---------------------------------------------------------------------------

/// Gamma distribution with shape `k` and scale `theta` (mean = k·θ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GammaDist {
    /// Shape parameter, > 0.
    pub shape: f64,
    /// Scale parameter, > 0.
    pub scale: f64,
}

impl GammaDist {
    /// Construct; panics on non-positive parameters.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0, "GammaDist: shape={shape}, scale={scale}");
        GammaDist { shape, scale }
    }

    /// Probability density at `x >= 0`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return if self.shape < 1.0 {
                f64::INFINITY
            } else if self.shape == 1.0 {
                1.0 / self.scale
            } else {
                0.0
            };
        }
        ((self.shape - 1.0) * x.ln() - x / self.scale
            - ln_gamma(self.shape)
            - self.shape * self.scale.ln())
        .exp()
    }

    /// CDF via the regularised lower incomplete gamma.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        gamma_p(self.shape, x / self.scale)
    }

    /// Draw one sample via Marsaglia–Tsang (2000), with the shape<1 boost.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let shape = self.shape;
        if shape < 1.0 {
            // Boost: X(a) = X(a+1) * U^{1/a}
            let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
            let boosted = GammaDist::new(shape + 1.0, 1.0).sample(rng);
            return boosted * u.powf(1.0 / shape) * self.scale;
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal_sample(rng);
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u: f64 = rng.gen();
            if u < 1.0 - 0.0331 * x.powi(4)
                || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln())
            {
                return d * v3 * self.scale;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Negative binomial (NB2 parameterisation)
// ---------------------------------------------------------------------------

/// Negative binomial distribution in the NB2 (mean, dispersion) form used by
/// count regression: mean `mu`, dispersion `alpha` with Var = μ + α μ².
///
/// Equivalently a Poisson(λ) with λ ~ Gamma(shape = 1/α, scale = α μ).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeBinomial {
    /// Mean, > 0.
    pub mu: f64,
    /// Dispersion α, > 0. As α → 0 the distribution approaches Poisson(μ).
    pub alpha: f64,
}

impl NegativeBinomial {
    /// Construct; panics on non-positive parameters.
    pub fn new(mu: f64, alpha: f64) -> Self {
        assert!(mu > 0.0 && alpha > 0.0, "NegativeBinomial: mu={mu}, alpha={alpha}");
        NegativeBinomial { mu, alpha }
    }

    /// Size parameter r = 1/α (number of failures in the classic form).
    pub fn r(&self) -> f64 {
        1.0 / self.alpha
    }

    /// Success probability p = r/(r+μ) in the classic parameterisation.
    pub fn p(&self) -> f64 {
        self.r() / (self.r() + self.mu)
    }

    /// Variance μ + α μ².
    pub fn variance(&self) -> f64 {
        self.mu + self.alpha * self.mu * self.mu
    }

    /// Log probability mass at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        let kf = k as f64;
        let r = self.r();
        ln_gamma(kf + r) - ln_gamma(r) - ln_gamma(kf + 1.0)
            + r * (r / (r + self.mu)).ln()
            + kf * (self.mu / (r + self.mu)).ln()
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// CDF: `P(X <= k) = I_p(r, k+1)` (regularised incomplete beta).
    pub fn cdf(&self, k: u64) -> f64 {
        beta_inc(self.r(), k as f64 + 1.0, self.p())
    }

    /// Draw one sample as a Gamma–Poisson mixture.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lambda = GammaDist::new(self.r(), self.alpha * self.mu).sample(rng);
        if lambda <= 0.0 {
            return 0;
        }
        Poisson::new(lambda.max(1e-12)).sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Binomial
// ---------------------------------------------------------------------------

/// Binomial distribution with `n` trials and success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    /// Number of trials.
    pub n: u64,
    /// Success probability in [0, 1].
    pub p: f64,
}

impl Binomial {
    /// Construct; panics if `p` is outside [0, 1].
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "Binomial: p={p}");
        Binomial { n, p }
    }

    /// Log probability mass at `k`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        let (nf, kf) = (self.n as f64, k as f64);
        ln_gamma(nf + 1.0) - ln_gamma(kf + 1.0) - ln_gamma(nf - kf + 1.0)
            + kf * self.p.ln()
            + (nf - kf) * (1.0 - self.p).ln()
    }

    /// Probability mass at `k`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// CDF via the regularised incomplete beta:
    /// `P(X <= k) = I_{1-p}(n-k, k+1)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        beta_inc((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
    }

    /// Mean `n·p`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `n·p·(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }
}

// ---------------------------------------------------------------------------
// Exponential
// ---------------------------------------------------------------------------

/// Exponential distribution with rate λ (mean 1/λ) — inter-arrival times
/// of Poisson attack processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    /// Rate parameter, > 0.
    pub rate: f64,
}

impl Exponential {
    /// Construct; panics unless `rate > 0`.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0, "Exponential: rate={rate}");
        Exponential { rate }
    }

    /// Probability density at `x ≥ 0`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    /// CDF.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    /// Quantile (inverse CDF).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "Exponential::quantile: p={p}");
        -(1.0 - p).ln() / self.rate
    }

    /// Draw one sample by inversion.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.rate
    }
}

// ---------------------------------------------------------------------------
// Chi-squared
// ---------------------------------------------------------------------------

/// Chi-squared distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    /// Degrees of freedom, > 0.
    pub df: f64,
}

impl ChiSquared {
    /// Construct; panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "ChiSquared: df must be > 0, got {df}");
        ChiSquared { df }
    }

    /// CDF.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        gamma_p(self.df / 2.0, x / 2.0)
    }

    /// Upper tail probability (the p-value of a chi-squared statistic).
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        gamma_q(self.df / 2.0, x / 2.0)
    }

    /// Quantile via bracketing + bisection/Newton hybrid.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "ChiSquared::quantile: p={p}");
        if p == 0.0 {
            return 0.0;
        }
        // Wilson–Hilferty starting point, then bisection refinement.
        let z = standard_normal_quantile(p);
        let d = self.df;
        let mut x = d * (1.0 - 2.0 / (9.0 * d) + z * (2.0 / (9.0 * d)).sqrt()).powi(3);
        if !(x.is_finite() && x > 0.0) {
            x = d;
        }
        // Bracket.
        let (mut lo, mut hi) = (0.0_f64, x.max(1.0));
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e10 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Draw one sample as Gamma(df/2, 2).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        GammaDist::new(self.df / 2.0, 2.0).sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Student's t
// ---------------------------------------------------------------------------

/// Student's t distribution with `df` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentsT {
    /// Degrees of freedom, > 0.
    pub df: f64,
}

impl StudentsT {
    /// Construct; panics if `df <= 0`.
    pub fn new(df: f64) -> Self {
        assert!(df > 0.0, "StudentsT: df must be > 0, got {df}");
        StudentsT { df }
    }

    /// Probability density.
    pub fn pdf(&self, t: f64) -> f64 {
        let d = self.df;
        (-((d + 1.0) / 2.0) * (1.0 + t * t / d).ln() - 0.5 * d.ln() - ln_beta(d / 2.0, 0.5))
            .exp()
    }

    /// CDF.
    pub fn cdf(&self, t: f64) -> f64 {
        let d = self.df;
        let x = d / (d + t * t);
        let tail = 0.5 * beta_inc(d / 2.0, 0.5, x);
        if t >= 0.0 {
            1.0 - tail
        } else {
            tail
        }
    }

    /// Two-sided tail probability `P(|T| > |t|)`.
    pub fn two_sided_p(&self, t: f64) -> f64 {
        let d = self.df;
        beta_inc(d / 2.0, 0.5, d / (d + t * t))
    }

    /// Quantile via symmetry + bisection on the CDF.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p) && p > 0.0, "StudentsT::quantile: p={p}");
        if (p - 0.5).abs() < 1e-16 {
            return 0.0;
        }
        if p < 0.5 {
            return -self.quantile(1.0 - p);
        }
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        while self.cdf(hi) < p {
            hi *= 2.0;
            if hi > 1e12 {
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-13 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

// ---------------------------------------------------------------------------
// F distribution
// ---------------------------------------------------------------------------

/// Fisher–Snedecor F distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FDist {
    /// Numerator degrees of freedom, > 0.
    pub df1: f64,
    /// Denominator degrees of freedom, > 0.
    pub df2: f64,
}

impl FDist {
    /// Construct; panics on non-positive degrees of freedom.
    pub fn new(df1: f64, df2: f64) -> Self {
        assert!(df1 > 0.0 && df2 > 0.0, "FDist: df1={df1}, df2={df2}");
        FDist { df1, df2 }
    }

    /// CDF.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let (d1, d2) = (self.df1, self.df2);
        beta_inc(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2))
    }

    /// Upper tail probability (the p-value of an F statistic).
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_testkit::rngs::StdRng;
    use booters_testkit::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB007E2)
    }

    #[test]
    fn normal_pdf_cdf_known_values() {
        let n = Normal::standard();
        assert!((n.pdf(0.0) - 0.398_942_280_401_432_7).abs() < 1e-12);
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((n.cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-9);
        assert!((n.cdf(-1.959_963_984_540_054) - 0.025).abs() < 1e-9);
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        let n = Normal::new(2.0, 3.0);
        for &p in &[0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-9, "p={p}");
        }
    }

    #[test]
    fn normal_two_sided_p() {
        assert!((Normal::two_sided_p(1.959_963_984_540_054) - 0.05).abs() < 1e-9);
        assert!((Normal::two_sided_p(-2.575_829_303_548_901) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn normal_sample_moments() {
        let n = Normal::new(5.0, 2.0);
        let mut r = rng();
        let xs: Vec<f64> = (0..20_000).map(|_| n.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.06, "mean={mean}");
        assert!((var - 4.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let p = Poisson::new(4.2);
        let total: f64 = (0..100).map(|k| p.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_cdf_matches_partial_sums() {
        let p = Poisson::new(7.5);
        let mut acc = 0.0;
        for k in 0..20 {
            acc += p.pmf(k);
            assert!((p.cdf(k) - acc).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn poisson_sample_mean_small_lambda() {
        let p = Poisson::new(3.0);
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| p.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn poisson_sample_mean_large_lambda() {
        let p = Poisson::new(500.0);
        let mut r = rng();
        let n = 5_000;
        let xs: Vec<f64> = (0..n).map(|_| p.sample(&mut r) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 500.0).abs() < 2.0, "mean={mean}");
        assert!((var / 500.0 - 1.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn gamma_cdf_exponential_case() {
        let g = GammaDist::new(1.0, 2.0);
        // Exp(scale 2): CDF(x) = 1 - e^{-x/2}
        for &x in &[0.5, 1.0, 4.0] {
            assert!((g.cdf(x) - (1.0 - (-x / 2.0f64).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_sample_moments() {
        let g = GammaDist::new(3.0, 2.0); // mean 6, var 12
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| g.sample(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean={mean}");
        assert!((var - 12.0).abs() < 0.7, "var={var}");
    }

    #[test]
    fn gamma_sample_shape_below_one() {
        let g = GammaDist::new(0.5, 1.0); // mean 0.5
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| g.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.03, "mean={mean}");
    }

    #[test]
    fn negbin_pmf_sums_to_one() {
        let nb = NegativeBinomial::new(10.0, 0.5);
        let total: f64 = (0..2000).map(|k| nb.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negbin_moments_match_formula() {
        let nb = NegativeBinomial::new(10.0, 0.5);
        let mean: f64 = (0..4000).map(|k| k as f64 * nb.pmf(k)).sum();
        let var: f64 = (0..4000).map(|k| (k as f64 - mean).powi(2) * nb.pmf(k)).sum();
        assert!((mean - 10.0).abs() < 1e-6);
        assert!((var - nb.variance()).abs() < 1e-4);
        assert!((nb.variance() - 60.0).abs() < 1e-12); // 10 + 0.5*100
    }

    #[test]
    fn negbin_cdf_matches_partial_sums() {
        let nb = NegativeBinomial::new(5.0, 0.8);
        let mut acc = 0.0;
        for k in 0..30 {
            acc += nb.pmf(k);
            assert!((nb.cdf(k) - acc).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn negbin_approaches_poisson_as_alpha_vanishes() {
        let nb = NegativeBinomial::new(6.0, 1e-8);
        let po = Poisson::new(6.0);
        for k in 0..20 {
            assert!((nb.pmf(k) - po.pmf(k)).abs() < 1e-5, "k={k}");
        }
    }

    #[test]
    fn negbin_sample_moments() {
        let nb = NegativeBinomial::new(50.0, 0.2); // var = 50 + 0.2*2500 = 550
        let mut r = rng();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| nb.sample(&mut r) as f64).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.7, "mean={mean}");
        assert!((var / 550.0 - 1.0).abs() < 0.12, "var={var}");
    }

    #[test]
    fn binomial_pmf_sums_to_one_and_moments() {
        let b = Binomial::new(30, 0.3);
        let total: f64 = (0..=30).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mean: f64 = (0..=30).map(|k| k as f64 * b.pmf(k)).sum();
        assert!((mean - b.mean()).abs() < 1e-10);
        assert!((b.variance() - 6.3).abs() < 1e-12);
    }

    #[test]
    fn binomial_cdf_matches_partial_sums() {
        let b = Binomial::new(20, 0.45);
        let mut acc = 0.0;
        for k in 0..20 {
            acc += b.pmf(k);
            assert!((b.cdf(k) - acc).abs() < 1e-10, "k={k}");
        }
        assert_eq!(b.cdf(20), 1.0);
    }

    #[test]
    fn binomial_degenerate_p() {
        let b0 = Binomial::new(5, 0.0);
        assert_eq!(b0.pmf(0), 1.0);
        assert_eq!(b0.pmf(1), 0.0);
        let b1 = Binomial::new(5, 1.0);
        assert_eq!(b1.pmf(5), 1.0);
        assert_eq!(b1.pmf(4), 0.0);
    }

    #[test]
    fn exponential_cdf_quantile_roundtrip() {
        let e = Exponential::new(2.5);
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            assert!((e.cdf(e.quantile(p)) - p).abs() < 1e-12);
        }
        assert!((e.pdf(0.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn exponential_sample_mean() {
        let e = Exponential::new(0.5); // mean 2
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| e.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn chi_squared_cdf_and_quantile() {
        let c = ChiSquared::new(1.0);
        assert!((c.cdf(3.841_458_820_694_124) - 0.95).abs() < 1e-8);
        assert!((c.quantile(0.95) - 3.841_458_820_694_124).abs() < 1e-6);
        let c5 = ChiSquared::new(5.0);
        assert!((c5.quantile(0.95) - 11.070_497_693_516_35).abs() < 1e-6);
        assert!((c5.sf(11.070_497_693_516_35) - 0.05).abs() < 1e-8);
    }

    #[test]
    fn chi_squared_sample_mean() {
        let c = ChiSquared::new(7.0);
        let mut r = rng();
        let n = 20_000;
        let mean = (0..n).map(|_| c.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 7.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn students_t_cdf_and_quantile() {
        let t = StudentsT::new(10.0);
        assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((t.cdf(2.228_138_851_986_273) - 0.975).abs() < 1e-8);
        assert!((t.quantile(0.975) - 2.228_138_851_986_273).abs() < 1e-6);
        assert!((t.quantile(0.025) + 2.228_138_851_986_273).abs() < 1e-6);
    }

    #[test]
    fn students_t_two_sided() {
        let t = StudentsT::new(30.0);
        let p = t.two_sided_p(2.042_272_456_301_238);
        assert!((p - 0.05).abs() < 1e-7, "p={p}");
    }

    #[test]
    fn students_t_approaches_normal() {
        let t = StudentsT::new(1e6);
        let n = Normal::standard();
        for &x in &[-2.0, -0.5, 0.7, 1.96] {
            assert!((t.cdf(x) - n.cdf(x)).abs() < 1e-5);
        }
    }

    #[test]
    fn f_dist_cdf_known_value() {
        // F(1, n) is the square of t(n): P(F_{1,10} <= t²) = P(|T| <= t)
        let f = FDist::new(1.0, 10.0);
        let t = 2.228_138_851_986_273_f64;
        assert!((f.cdf(t * t) - 0.95).abs() < 1e-8);
        assert!((f.sf(t * t) - 0.05).abs() < 1e-8);
    }

    #[test]
    fn pdf_integrates_to_cdf_students_t() {
        // Trapezoid integral of the pdf matches the cdf difference.
        let t = StudentsT::new(6.0);
        let (a, b) = (-1.0, 2.0);
        let n = 4000;
        let h = (b - a) / n as f64;
        let mut integral = 0.5 * (t.pdf(a) + t.pdf(b));
        for i in 1..n {
            integral += t.pdf(a + i as f64 * h);
        }
        integral *= h;
        assert!((integral - (t.cdf(b) - t.cdf(a))).abs() < 1e-7);
    }
}
