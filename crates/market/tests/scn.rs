//! Parser contract tests for the `.scn` scenario format.
//!
//! Two halves (DESIGN.md §5j):
//!
//! * a `forall!` round-trip property — for any representable
//!   [`ScenarioSpec`], `parse_scn(spec.to_scn()) == Ok(spec)`, i.e. the
//!   canonical formatter and the parser are exact inverses;
//! * a table-driven diagnostics suite pinning the **exact** rendered
//!   error text, line, and column for every [`ScnErrorKind`] variant,
//!   so editor-facing diagnostics cannot drift silently.

use booters_market::{parse_scn, ClassSel, ScenarioSpec, Shock, ShockKind};
use booters_netsim::Country;
use booters_testkit::rngs::StdRng;
use booters_testkit::{any, forall, prop_assert_eq, Rng, SeedableRng};
use booters_timeseries::date::days_in_month;
use booters_timeseries::Date;

const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
const TITLE_CHARS: &[u8] =
    b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,:;()%+-/'";

fn gen_name(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1usize..=10);
    (0..len)
        .map(|_| NAME_CHARS[rng.gen_range(0..NAME_CHARS.len())] as char)
        .collect()
}

fn gen_text(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..=24);
    (0..len)
        .map(|_| TITLE_CHARS[rng.gen_range(0..TITLE_CHARS.len())] as char)
        .collect()
}

fn gen_date(rng: &mut StdRng) -> Date {
    let year = rng.gen_range(2014i32..=2020);
    let month = rng.gen_range(1u8..=12);
    let day = rng.gen_range(1u8..=days_in_month(year, month));
    Date::new(year, month, day)
}

/// A percentage strictly above the parser's -100 floor. Drawn from a
/// continuous range, so its `Display` form exercises the shortest
/// round-trip float formatter rather than hand-picked pretty values.
fn gen_pct(rng: &mut StdRng) -> f64 {
    rng.gen_range(-99.0..400.0)
}

fn gen_kind(rng: &mut StdRng) -> ShockKind {
    const CLASSES: [ClassSel; 4] =
        [ClassSel::Major, ClassSel::Medium, ClassSel::Small, ClassSel::Any];
    match rng.gen_range(0u32..8) {
        0 => ShockKind::SupplyCut {
            class: CLASSES[rng.gen_range(0..4usize)],
            count: rng.gen_range(1u32..=5),
        },
        1 => ShockKind::DemandShift {
            pct: gen_pct(rng),
            delay_weeks: rng.gen_range(0u32..=8),
            duration_weeks: rng.gen_range(1u32..=30),
        },
        2 => ShockKind::Displacement {
            absorb: rng.gen::<f64>(),
        },
        3 => ShockKind::Reprisal {
            country: Country::ALL[rng.gen_range(0..Country::ALL.len())],
            pct: gen_pct(rng),
            duration_weeks: rng.gen_range(1u32..=30),
        },
        4 => {
            let duration_weeks = rng.gen_range(1u32..=30);
            ShockKind::DomainSeizure {
                domains: rng.gen_range(1u32..=40),
                pct: gen_pct(rng),
                recovery: rng.gen::<f64>(),
                lag_weeks: rng.gen_range(0..=duration_weeks),
                duration_weeks,
            }
        }
        5 => ShockKind::Rebrand {
            migration: rng.gen::<f64>(),
        },
        6 => ShockKind::PaymentFriction {
            pct: gen_pct(rng),
            duration_weeks: rng.gen_range(1u32..=30),
        },
        _ => ShockKind::Deterrence {
            pct: gen_pct(rng),
            half_life_weeks: rng.gen_range(0.25f64..26.0),
        },
    }
}

/// Any spec the format can represent, driven by one seed.
fn gen_spec(seed: u64) -> ScenarioSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let name = gen_name(&mut rng);
    let title = gen_text(&mut rng);
    let cite = if rng.gen_bool(0.5) {
        Some(gen_text(&mut rng))
    } else {
        None
    };
    let n_shocks = rng.gen_range(0usize..=6);
    let shocks = (0..n_shocks)
        .map(|_| Shock {
            date: gen_date(&mut rng),
            kind: gen_kind(&mut rng),
        })
        .collect();
    ScenarioSpec {
        name,
        title,
        cite,
        shocks,
    }
}

forall! {
    #![cases(96)]

    fn format_then_parse_is_identity(seed in any::<u64>()) {
        let spec = gen_spec(seed);
        prop_assert_eq!(parse_scn(&spec.to_scn()), Ok(spec));
    }
}

/// Every `ScnErrorKind` variant, with the exact rendered diagnostic —
/// message text, 1-based line, 1-based byte column — pinned.
#[test]
fn diagnostics_report_exact_text_line_and_column() {
    let cases: &[(&str, &str)] = &[
        // MissingScenario: empty input points past the last line.
        ("", "line 1, col 1: expected `scenario <name>` as the first directive"),
        // MissingScenario: comments only — still no scenario by EOF.
        (
            "# nothing here\n",
            "line 2, col 1: expected `scenario <name>` as the first directive",
        ),
        // MissingScenario: another directive arrived first.
        (
            "title \"x\"\n",
            "line 1, col 1: expected `scenario <name>` as the first directive",
        ),
        // DuplicateScenario
        (
            "scenario a\nscenario b\n",
            "line 2, col 1: duplicate `scenario` directive",
        ),
        // MissingValue: directive with no operand points one past EOL.
        ("scenario", "line 1, col 9: expected a value after `scenario`"),
        (
            "scenario a\nshock 2018-01-01",
            "line 2, col 17: expected a value after `shock`",
        ),
        // BadName
        (
            "scenario Bad!",
            "line 1, col 10: invalid scenario name `Bad!` (expected [a-z0-9_-]+)",
        ),
        // TrailingInput after a complete `scenario` directive.
        (
            "scenario a extra",
            "line 1, col 12: unexpected trailing input `extra`",
        ),
        // ExpectedString
        (
            "scenario a\ntitle x",
            "line 2, col 7: expected a quoted string after `title`",
        ),
        // UnterminatedString
        ("scenario a\ncite \"x", "line 2, col 6: unterminated string"),
        // TrailingInput after a closed quoted string.
        (
            "scenario a\ntitle \"x\" y",
            "line 2, col 11: unexpected trailing input `y`",
        ),
        // UnknownDirective
        ("scenario a\nfoo bar", "line 2, col 1: unknown directive `foo`"),
        // BadDate
        (
            "scenario a\nshock 2018-02-30 rebrand migration=0.5",
            "line 2, col 7: invalid date `2018-02-30` (expected YYYY-MM-DD)",
        ),
        // UnknownShock
        (
            "scenario a\nshock 2018-01-01 meteor",
            "line 2, col 18: unknown shock kind `meteor`",
        ),
        // BadField: not `field=value`.
        (
            "scenario a\nshock 2018-01-01 rebrand migration",
            "line 2, col 26: expected `field=value`, found `migration`",
        ),
        // DuplicateField
        (
            "scenario a\nshock 2018-01-01 rebrand migration=0.5 migration=0.5",
            "line 2, col 40: duplicate field `migration`",
        ),
        // UnknownField
        (
            "scenario a\nshock 2018-01-01 rebrand migration=0.5 extra=1",
            "line 2, col 40: unknown field `extra` for shock `rebrand`",
        ),
        // MissingField points one past the end of the shock line.
        (
            "scenario a\nshock 2018-01-01 rebrand",
            "line 2, col 25: missing field `migration` for shock `rebrand`",
        ),
        // BadNumber points at the value, not the key.
        (
            "scenario a\nshock 2018-01-01 rebrand migration=x",
            "line 2, col 36: invalid number `x` for field `migration`",
        ),
        // UnknownCountry
        (
            "scenario a\nshock 2018-01-01 reprisal country=XX pct=1 duration=1",
            "line 2, col 35: unknown country code `XX`",
        ),
        // UnknownClass
        (
            "scenario a\nshock 2018-01-01 supply_cut class=huge count=1",
            "line 2, col 35: unknown size class `huge`",
        ),
        // OutOfRange: fraction outside [0, 1].
        (
            "scenario a\nshock 2018-01-01 rebrand migration=1.5",
            "line 2, col 36: field `migration` out of range: must be in [0, 1]",
        ),
        // OutOfRange: percentage at or below -100.
        (
            "scenario a\nshock 2018-01-01 payment_friction pct=-150 duration=4",
            "line 2, col 39: field `pct` out of range: must be greater than -100",
        ),
        // OutOfRange: zero count.
        (
            "scenario a\nshock 2018-01-01 supply_cut class=any count=0",
            "line 2, col 45: field `count` out of range: must be at least 1",
        ),
        // OutOfRange: seizure lag past its own duration.
        (
            "scenario a\nshock 2018-01-01 domain_seizure domains=1 pct=-10 recovery=0.5 lag=9 duration=4",
            "line 2, col 68: field `lag` out of range: must not exceed duration",
        ),
        // OutOfRange: non-positive deterrence half-life.
        (
            "scenario a\nshock 2018-01-01 deterrence pct=-10 half_life=0",
            "line 2, col 47: field `half_life` out of range: must be positive",
        ),
    ];
    for (src, expected) in cases {
        let err = parse_scn(src).expect_err(expected);
        assert_eq!(&err.to_string(), expected, "for source {src:?}");
    }
}
