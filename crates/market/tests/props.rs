#![allow(clippy::field_reassign_with_default)]
//! Property-based tests for the market simulator: sampling kernels,
//! conservation laws and concentration metrics.

use booters_market::concentration::{herfindahl, top_k_share};
use booters_market::market::{sample_binomial, sample_multinomial, MarketConfig, MarketSim};
use booters_market::Calibration;
use booters_timeseries::Date;
use booters_testkit::strategy::prop;
use booters_testkit::{any, forall, prop_assert, prop_assert_eq};
use booters_testkit::rngs::StdRng;
use booters_testkit::SeedableRng;

forall! {
    #![cases(64)]

    fn binomial_sample_within_bounds(n in 0u64..1_000_000, p in 0.0..1.0f64, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = sample_binomial(&mut rng, n, p);
        prop_assert!(k <= n);
    }

    fn multinomial_conserves(
        n in 0u64..500_000,
        weights in prop::collection::vec(0.0..10.0f64, 1..12),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = sample_multinomial(&mut rng, n, &weights);
        prop_assert_eq!(out.len(), weights.len());
        if weights.iter().sum::<f64>() > 0.0 {
            prop_assert_eq!(out.iter().sum::<u64>(), n);
        }
        // Zero-weight cells get nothing (except the final remainder cell,
        // which absorbs rounding only when it has weight).
        for (i, (&w, &k)) in weights.iter().zip(&out).enumerate() {
            if w == 0.0 && i != weights.len() - 1 {
                prop_assert_eq!(k, 0, "cell {} got {} with zero weight", i, k);
            }
        }
    }

    fn herfindahl_bounds(volumes in prop::collection::vec(0u64..10_000, 1..30)) {
        let h = herfindahl(&volumes);
        if h.is_finite() {
            let n = volumes.iter().filter(|&&v| v > 0).count() as f64;
            prop_assert!(h <= 1.0 + 1e-12);
            prop_assert!(h >= 1.0 / n - 1e-12, "h={h} below 1/n");
            // Top-1 share bounds HHI: s1² ≤ HHI ≤ s1.
            let s1 = top_k_share(&volumes, 1);
            prop_assert!(s1 * s1 <= h + 1e-12);
            prop_assert!(h <= s1 + 1e-12);
        }
    }

    fn weekly_outputs_always_consistent(seed in any::<u64>(), scale_milli in 1u64..20) {
        let mut cal = Calibration::default();
        // Short window keeps each case fast.
        cal.scenario_start = Date::new(2018, 10, 1);
        cal.scenario_end = Date::new(2019, 1, 7);
        let mut sim = MarketSim::new(MarketConfig {
            calibration: cal,
            scale: scale_milli as f64 / 1000.0,
            seed,
            ..MarketConfig::default()
        });
        while let Some(w) = sim.step() {
            prop_assert_eq!(w.total, w.country_counts.iter().sum::<u64>());
            prop_assert_eq!(w.total, w.protocol_counts.iter().sum::<u64>());
            let alloc: u64 = w.booter_attacks.iter().map(|(_, n)| n).sum();
            prop_assert_eq!(w.total, alloc);
            let joint: u64 = w.country_protocol.iter().flatten().sum();
            prop_assert_eq!(w.total, joint);
        }
    }

    fn displayed_counters_respect_artifacts(seed in any::<u64>()) {
        let mut cal = Calibration::default();
        cal.scenario_start = Date::new(2018, 1, 1);
        cal.scenario_end = Date::new(2018, 4, 2);
        let mut sim = MarketSim::new(MarketConfig {
            calibration: cal,
            scale: 0.01,
            seed,
            ..MarketConfig::default()
        });
        while let Some(w) = sim.step() {
            for (_, c) in &w.displayed_counters {
                // Counters are plain u64s; the rounds-to-1000 artifact
                // implies divisibility.
                prop_assert!(*c < u64::MAX / 2);
            }
        }
    }
}
