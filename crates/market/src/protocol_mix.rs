//! Protocol popularity over time — the generative model behind Figure 6.
//!
//! §4.2: protocols "go in and out of vogue"; the 2017–2018 growth "appears
//! to be largely driven by an increase in attacks using the LDAP protocol";
//! China's LDAP rise "takes place six months later ... largely replacing
//! NTP attacks"; attacks against China avoid DNS (the Great Firewall
//! blocks DNS traffic); "Attacks targeting the UK appear to be almost
//! entirely LDAP since mid-2017". Intervention drops concentrate in the
//! protocols of the booters affected: HackForums → CHARGEN/NTP,
//! Webstresser → DNS (plus a small LDAP drop), Xmas2018 → LDAP and DNS.

use crate::calibration::Calibration;
use crate::events::{self, EventId};
use booters_netsim::{Country, UdpProtocol};
use booters_timeseries::Date;

/// Logistic curve in weeks: 0 → 1 with midpoint `mid` and scale `scale`.
fn logistic(weeks: f64, mid: f64, scale: f64) -> f64 {
    1.0 / (1.0 + (-(weeks - mid) / scale).exp())
}

/// Unnormalised base popularity of a protocol at `monday` for attacks on
/// `country`.
fn base_weight(protocol: UdpProtocol, country: Country, monday: Date) -> f64 {
    // Weeks since the start of 2017, the LDAP inflection era.
    let w = monday.days_since(Date::new(2017, 1, 2)) as f64 / 7.0;
    let cn = country == Country::Cn;
    let uk = country == Country::Uk;
    match protocol {
        UdpProtocol::Ldap => {
            // Rise from ~0 to dominance across 2017–2018; CN six months
            // later; UK converges to almost-entirely-LDAP.
            let mid = if cn { 52.0 } else { 26.0 };
            let ceiling = if uk { 1.6 } else { 0.9 };
            0.02 + ceiling * logistic(w, mid, 10.0)
        }
        UdpProtocol::Ntp => {
            // Strong early, fading as LDAP replaces it (fastest in CN).
            let floor = if cn { 0.25 } else { 0.18 };
            floor + 0.25 * (1.0 - logistic(w, 20.0, 12.0))
        }
        UdpProtocol::Chargen => 0.04 + 0.22 * (1.0 - logistic(w, 6.0, 10.0)),
        UdpProtocol::Dns => {
            if cn {
                0.0 // Great Firewall blocks DNS
            } else {
                0.22
            }
        }
        UdpProtocol::Ssdp => {
            if cn {
                0.30
            } else {
                0.12
            }
        }
        UdpProtocol::Portmap => {
            if country == Country::Us {
                0.10
            } else if cn {
                0.02
            } else {
                0.06
            }
        }
        UdpProtocol::Qotd => 0.015 + 0.02 * (1.0 - logistic(w, -60.0, 10.0)),
        UdpProtocol::Time => 0.01,
        UdpProtocol::Mdns => 0.02,
        UdpProtocol::Mssql => 0.025,
    }
}

/// Multiplicative dip applied to a protocol during an intervention window —
/// the §4.2 observation that post-intervention drops are protocol-specific.
fn intervention_dip(cal: &Calibration, protocol: UdpProtocol, monday: Date) -> f64 {
    let mut dip = 1.0;
    let in_window = |id: EventId, extra_weeks: i64| -> bool {
        if let Some(ic) = cal.intervention(id) {
            let date = events::event(id).date.week_start();
            let start = date.add_days(7 * ic.overall.delay_weeks as i64);
            let end = start.add_days(7 * (ic.overall.duration_weeks as i64 + extra_weeks));
            monday >= start && monday < end
        } else {
            false
        }
    };
    if in_window(EventId::HackForumsClosure, 0) {
        match protocol {
            UdpProtocol::Chargen => dip *= 0.35,
            UdpProtocol::Ntp => dip *= 0.55,
            _ => {}
        }
    }
    if in_window(EventId::WebstresserTakedown, 0) {
        match protocol {
            UdpProtocol::Dns => dip *= 0.45,
            UdpProtocol::Ldap => dip *= 0.90,
            _ => {}
        }
    }
    if in_window(EventId::Xmas2018, 0) {
        match protocol {
            UdpProtocol::Ldap => dip *= 0.55,
            UdpProtocol::Dns => dip *= 0.80,
            _ => {}
        }
    }
    dip
}

/// Normalised protocol weights for attacks on `country` in the week of
/// `monday`. Sums to 1.
pub fn protocol_weights(cal: &Calibration, country: Country, monday: Date) -> [f64; 10] {
    let mut w = [0.0; 10];
    for (i, &p) in UdpProtocol::ALL.iter().enumerate() {
        w[i] = base_weight(p, country, monday) * intervention_dip(cal, p, monday);
    }
    let total: f64 = w.iter().sum();
    if total > 0.0 {
        for v in &mut w {
            *v /= total;
        }
    }
    w
}

/// Weight of one protocol (convenience accessor).
pub fn protocol_weight(
    cal: &Calibration,
    country: Country,
    monday: Date,
    protocol: UdpProtocol,
) -> f64 {
    protocol_weights(cal, country, monday)[protocol.index()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::default()
    }

    #[test]
    fn weights_normalise() {
        let c = cal();
        for &(y, m, d) in &[(2014, 9, 1), (2016, 6, 6), (2017, 8, 7), (2019, 1, 7)] {
            for &country in &[Country::Us, Country::Cn, Country::Uk] {
                let w = protocol_weights(&c, country, Date::new(y, m, d));
                let total: f64 = w.iter().sum();
                assert!((total - 1.0).abs() < 1e-12, "{y}-{m} {country}");
                assert!(w.iter().all(|&v| v >= 0.0));
            }
        }
    }

    #[test]
    fn ldap_rises_across_2017_2018() {
        let c = cal();
        let early = protocol_weight(&c, Country::Us, Date::new(2016, 6, 6), UdpProtocol::Ldap);
        let late = protocol_weight(&c, Country::Us, Date::new(2018, 10, 1), UdpProtocol::Ldap);
        assert!(early < 0.1, "early={early}");
        assert!(late > 0.35, "late={late}");
    }

    #[test]
    fn cn_ldap_rise_lags_six_months() {
        let c = cal();
        let date = Date::new(2017, 7, 3);
        let us = protocol_weight(&c, Country::Us, date, UdpProtocol::Ldap);
        let cn = protocol_weight(&c, Country::Cn, date, UdpProtocol::Ldap);
        assert!(us > 2.0 * cn, "us={us} cn={cn}");
        // By end-2018 CN has caught up substantially.
        let cn_late = protocol_weight(&c, Country::Cn, Date::new(2018, 12, 3), UdpProtocol::Ldap);
        assert!(cn_late > 0.25, "cn_late={cn_late}");
    }

    #[test]
    fn cn_never_sees_dns() {
        let c = cal();
        for &(y, m) in &[(2015, 1), (2017, 6), (2019, 1)] {
            let w = protocol_weight(&c, Country::Cn, Date::new(y, m, 6), UdpProtocol::Dns);
            assert_eq!(w, 0.0);
        }
    }

    #[test]
    fn uk_is_mostly_ldap_by_mid_2018() {
        let c = cal();
        let w = protocol_weight(&c, Country::Uk, Date::new(2018, 7, 2), UdpProtocol::Ldap);
        assert!(w > 0.55, "uk ldap={w}");
    }

    #[test]
    fn chargen_era_fades() {
        let c = cal();
        let early = protocol_weight(&c, Country::Us, Date::new(2014, 9, 1), UdpProtocol::Chargen);
        let late = protocol_weight(&c, Country::Us, Date::new(2018, 9, 3), UdpProtocol::Chargen);
        assert!(early > 3.0 * late, "early={early} late={late}");
    }

    #[test]
    fn hackforums_window_dips_chargen_and_ntp() {
        let c = cal();
        let before = Date::new(2016, 10, 17);
        let during = Date::new(2016, 11, 14);
        let ch_b = protocol_weight(&c, Country::Us, before, UdpProtocol::Chargen);
        let ch_d = protocol_weight(&c, Country::Us, during, UdpProtocol::Chargen);
        assert!(ch_d < 0.6 * ch_b, "before={ch_b} during={ch_d}");
    }

    #[test]
    fn xmas_window_dips_ldap_share() {
        let c = cal();
        let before = Date::new(2018, 12, 10);
        let during = Date::new(2019, 1, 14);
        let b = protocol_weight(&c, Country::Us, before, UdpProtocol::Ldap);
        let d = protocol_weight(&c, Country::Us, during, UdpProtocol::Ldap);
        assert!(d < b, "before={b} during={d}");
    }

    #[test]
    fn webstresser_window_dips_dns() {
        let c = cal();
        let before = Date::new(2018, 4, 23);
        let during = Date::new(2018, 5, 14); // delay 2wk then 3wk window
        let b = protocol_weight(&c, Country::Us, before, UdpProtocol::Dns);
        let d = protocol_weight(&c, Country::Us, during, UdpProtocol::Dns);
        assert!(d < 0.7 * b, "before={b} during={d}");
    }
}
