//! Booter population dynamics — births, deaths, resurrections (Figure 8)
//! and the structural shocks interventions apply to the market.
//!
//! §4.3: "Most weeks there is little change, with two exceptions" — the
//! Webstresser takedown (a spike of deaths among small booters that had
//! subcontracted to it) and Xmas2018 (which closed two of the three major
//! providers, with the survivor ending up with ~60% of the market and one
//! of the closed majors returning "under a similar name" in March).

use crate::booter::{Booter, BooterState, SizeClass};
use crate::shocks::{ClassSel, ShockKind};
use booters_netsim::UdpProtocol;
use booters_testkit::rngs::StdRng;
use booters_testkit::Rng;

/// Weekly lifecycle tallies (one point of Figure 8).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleWeek {
    /// Booters that stopped responding this week.
    pub deaths: u32,
    /// Previously dead booters running again.
    pub resurrections: u32,
    /// Newly discovered booters (bursty — discovery sweeps are aperiodic).
    pub births: u32,
}

/// Population manager.
#[derive(Debug)]
pub struct Population {
    booters: Vec<Booter>,
    next_id: u32,
    /// Weeks until the next discovery sweep.
    weeks_to_sweep: u32,
    /// Ids of the three pre-Xmas2018 majors, in descending weight order.
    majors: [u32; 3],
    /// Id of the major killed at Xmas2018 that resurrects in March 2019.
    returning_major: u32,
}

/// Baseline churn parameters.
const WEEKLY_DEATH_PROB_SMALL: f64 = 0.035;
const WEEKLY_DEATH_PROB_MEDIUM: f64 = 0.015;
const WEEKLY_RESURRECT_PROB: f64 = 0.12;

impl Population {
    /// Seed the market: three majors plus a bed of medium/small services.
    pub fn new(rng: &mut StdRng) -> Population {
        let mut booters = Vec::new();
        let mut next_id = 0u32;
        let add = |rng: &mut StdRng,
                       booters: &mut Vec<Booter>,
                       next_id: &mut u32,
                       size: SizeClass,
                       weight: f64,
                       self_reports: bool|
         -> u32 {
            let id = *next_id;
            *next_id += 1;
            booters.push(Booter {
                id,
                size,
                weight,
                state: BooterState::Alive,
                born_week: 0,
                died_week: None,
                self_reports,
                true_total: 0,
                counter_offset: if rng.gen::<f64>() < 0.03 { 150_000 } else { 0 },
                rounds_to_1000: rng.gen::<f64>() < 0.02,
                wipe_prob: if rng.gen::<f64>() < 0.1 { 0.01 } else { 0.0 },
                // Honeypot avoidance (like vDOS' 'SUDP') is a niche,
                // small-operator behaviour. Keeping large booters honest
                // also keeps dataset coverage stable — a big avoider's
                // noisy volume share would otherwise swing weekly coverage
                // for every country at once, leaking phantom intervention
                // effects into unaffected countries.
                avoids_honeypots: size == SizeClass::Small && rng.gen::<f64>() < 0.10,
                protocols: sample_portfolio(rng),
            });
            id
        };

        // Webstresser analogue: biggest booter, does not self-report.
        let webstresser = add(rng, &mut booters, &mut next_id, SizeClass::Major, 0.30, false);
        let m1 = add(rng, &mut booters, &mut next_id, SizeClass::Major, 0.22, true);
        let m2 = add(rng, &mut booters, &mut next_id, SizeClass::Major, 0.18, true);
        let m3 = add(rng, &mut booters, &mut next_id, SizeClass::Major, 0.13, true);
        let _ = webstresser;
        for _ in 0..12 {
            let w = 0.015 + rng.gen::<f64>() * 0.02;
            add(rng, &mut booters, &mut next_id, SizeClass::Medium, w, true);
        }
        for _ in 0..30 {
            let w = 0.002 + rng.gen::<f64>() * 0.006;
            add(rng, &mut booters, &mut next_id, SizeClass::Small, w, true);
        }
        Population {
            booters,
            next_id,
            weeks_to_sweep: 6,
            majors: [m1, m2, m3],
            returning_major: m1,
        }
    }

    /// All booters (any state).
    pub fn booters(&self) -> &[Booter] {
        &self.booters
    }

    /// Mutable access for the market allocator.
    pub fn booters_mut(&mut self) -> &mut [Booter] {
        &mut self.booters
    }

    /// Booter with id 0 is the Webstresser analogue.
    pub fn webstresser_id(&self) -> u32 {
        0
    }

    /// The three pre-Xmas majors (self-reporting).
    pub fn major_ids(&self) -> [u32; 3] {
        self.majors
    }

    /// Alive booters' total weight.
    pub fn alive_weight(&self) -> f64 {
        self.booters
            .iter()
            .filter(|b| b.is_alive())
            .map(|b| b.weight)
            .sum()
    }

    /// Number of alive booters.
    pub fn alive_count(&self) -> usize {
        self.booters.iter().filter(|b| b.is_alive()).count()
    }

    fn spawn(&mut self, rng: &mut StdRng, week: usize, size: SizeClass) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        let weight = match size {
            SizeClass::Major => 0.10,
            SizeClass::Medium => 0.01 + rng.gen::<f64>() * 0.02,
            SizeClass::Small => 0.002 + rng.gen::<f64>() * 0.005,
        };
        self.booters.push(Booter {
            id,
            size,
            weight,
            state: BooterState::Alive,
            born_week: week,
            died_week: None,
            self_reports: true,
            true_total: 0,
            counter_offset: 0,
            rounds_to_1000: false,
            wipe_prob: if rng.gen::<f64>() < 0.1 { 0.01 } else { 0.0 },
            avoids_honeypots: size == SizeClass::Small && rng.gen::<f64>() < 0.10,
            protocols: sample_portfolio(rng),
        });
        id
    }

    fn kill_id(&mut self, id: u32, week: usize, permanent: bool) -> bool {
        if let Some(b) = self.booters.iter_mut().find(|b| b.id == id) {
            if b.is_alive() {
                b.kill(week, permanent);
                return true;
            }
        }
        false
    }

    /// One week of churn plus any intervention shocks. Returns the
    /// lifecycle tallies for Figure 8.
    pub fn step(
        &mut self,
        rng: &mut StdRng,
        week: usize,
        shock: Option<MarketShock>,
    ) -> LifecycleWeek {
        let mut tally = LifecycleWeek::default();

        // Intervention shocks first.
        match shock {
            Some(MarketShock::WebstresserTakedown) => {
                if self.kill_id(self.webstresser_id(), week, true) {
                    tally.deaths += 1;
                }
                // Subcontracting small booters collapse with it.
                let victims: Vec<u32> = self
                    .booters
                    .iter()
                    .filter(|b| b.is_alive() && b.size == SizeClass::Small)
                    .map(|b| b.id)
                    .take(9)
                    .collect();
                for id in victims {
                    if self.kill_id(id, week, false) {
                        tally.deaths += 1;
                    }
                }
            }
            Some(MarketShock::Xmas2018) => {
                // Two of the three majors go down, plus several others —
                // the FBI action "immediately took seven booter services
                // offline".
                let [m1, m2, m3] = self.majors;
                if self.kill_id(m1, week, false) {
                    tally.deaths += 1;
                }
                if self.kill_id(m2, week, true) {
                    tally.deaths += 1;
                }
                // Displacement bonus: the surviving major absorbs most of
                // the dead majors' market (ends up ~60% of the market).
                let absorbed: f64 = self
                    .booters
                    .iter()
                    .filter(|b| b.id == m1 || b.id == m2)
                    .map(|b| b.weight)
                    .sum();
                if let Some(surv) = self.booters.iter_mut().find(|b| b.id == m3) {
                    surv.weight += absorbed * 1.6;
                }
                let victims: Vec<u32> = self
                    .booters
                    .iter()
                    .filter(|b| b.is_alive() && b.size != SizeClass::Major)
                    .map(|b| b.id)
                    .take(5)
                    .collect();
                for id in victims {
                    if self.kill_id(id, week, false) {
                        tally.deaths += 1;
                    }
                }
            }
            Some(MarketShock::ReturnOfTheMajor) => {
                let id = self.returning_major;
                if let Some(b) = self.booters.iter_mut().find(|b| b.id == id) {
                    if b.state == BooterState::Dead {
                        b.resurrect();
                        tally.resurrections += 1;
                    }
                }
            }
            None => {}
        }

        self.churn_and_sweeps(rng, week, &mut tally);
        tally
    }

    /// One week of churn with scenario-DSL structural shocks instead of
    /// the hard-wired [`MarketShock`]s. Structural shocks are applied
    /// deterministically (no RNG draws) in the order given, so the
    /// baseline-churn RNG stream below stays aligned with [`Self::step`]
    /// — a scenario run consumes exactly the same random sequence as the
    /// no-shock run, which is what makes scenario goldens thread- and
    /// kernel-invariant (DESIGN.md §5j).
    pub fn step_scenario(
        &mut self,
        rng: &mut StdRng,
        week: usize,
        shocks: &[&ShockKind],
    ) -> LifecycleWeek {
        let mut tally = LifecycleWeek::default();
        // Weight closed by supply cuts earlier in this week's shock list,
        // available for a subsequent `displacement` to absorb.
        let mut closed_weight = 0.0f64;
        for kind in shocks {
            match **kind {
                ShockKind::SupplyCut { class, count } => {
                    closed_weight += self.supply_cut(class, count as usize, week, &mut tally);
                }
                ShockKind::Displacement { absorb } => {
                    self.displace(absorb * closed_weight);
                }
                ShockKind::Rebrand { migration } => {
                    if self.rebrand(migration) {
                        tally.resurrections += 1;
                    }
                }
                // Demand-side kinds act through
                // `crate::demand::scenario_log_intensity`, not here.
                ShockKind::DemandShift { .. }
                | ShockKind::Reprisal { .. }
                | ShockKind::DomainSeizure { .. }
                | ShockKind::PaymentFriction { .. }
                | ShockKind::Deterrence { .. } => {}
            }
        }
        self.churn_and_sweeps(rng, week, &mut tally);
        tally
    }

    /// Permanently close the `count` largest-weight alive booters
    /// matching `class` (ties broken by ascending id). Returns the total
    /// weight closed.
    fn supply_cut(
        &mut self,
        class: ClassSel,
        count: usize,
        week: usize,
        tally: &mut LifecycleWeek,
    ) -> f64 {
        let matches = |b: &Booter| match class {
            ClassSel::Major => b.size == SizeClass::Major,
            ClassSel::Medium => b.size == SizeClass::Medium,
            ClassSel::Small => b.size == SizeClass::Small,
            ClassSel::Any => true,
        };
        let mut targets: Vec<(u32, f64)> = self
            .booters
            .iter()
            .filter(|b| b.is_alive() && matches(b))
            .map(|b| (b.id, b.weight))
            .collect();
        // Largest weight first; equal weights fall back to ascending id
        // so the target list is fully deterministic.
        targets.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let mut closed = 0.0;
        for &(id, weight) in targets.iter().take(count) {
            if self.kill_id(id, week, true) {
                tally.deaths += 1;
                closed += weight;
            }
        }
        closed
    }

    /// The largest surviving booter (ties broken by ascending id) absorbs
    /// `extra` market weight.
    fn displace(&mut self, extra: f64) {
        let winner = self
            .booters
            .iter()
            .filter(|b| b.is_alive())
            .max_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap().then(b.id.cmp(&a.id)))
            .map(|b| b.id);
        if let Some(id) = winner {
            if let Some(b) = self.booters.iter_mut().find(|b| b.id == id) {
                b.weight += extra;
            }
        }
    }

    /// Re-open the most recently closed booter "under a similar name",
    /// keeping `migration` of its former weight. Candidates are Dead or
    /// Retired records with a recorded death week; ties on the death week
    /// resolve to the largest weight, then the smallest id. Unlike
    /// [`Booter::resurrect`], this revives Retired records too — a
    /// rebrand is a *new* service inheriting the customer base, not the
    /// seized one coming back.
    fn rebrand(&mut self, migration: f64) -> bool {
        let candidate = self
            .booters
            .iter()
            .filter(|b| !b.is_alive() && b.died_week.is_some())
            .max_by(|a, b| {
                a.died_week
                    .cmp(&b.died_week)
                    .then(a.weight.partial_cmp(&b.weight).unwrap())
                    .then(b.id.cmp(&a.id))
            })
            .map(|b| b.id);
        let Some(id) = candidate else { return false };
        if let Some(b) = self.booters.iter_mut().find(|b| b.id == id) {
            b.state = BooterState::Alive;
            b.weight *= migration;
            true
        } else {
            false
        }
    }

    /// Baseline churn and discovery sweeps, shared verbatim between
    /// [`Self::step`] and [`Self::step_scenario`] so both consume the
    /// same RNG stream.
    fn churn_and_sweeps(&mut self, rng: &mut StdRng, week: usize, tally: &mut LifecycleWeek) {
        // Baseline churn.
        let ids: Vec<(u32, SizeClass, BooterState, Option<usize>)> = self
            .booters
            .iter()
            .map(|b| (b.id, b.size, b.state, b.died_week))
            .collect();
        for (id, size, state, died) in ids {
            match state {
                BooterState::Alive => {
                    let p = match size {
                        SizeClass::Major => 0.0,
                        SizeClass::Medium => WEEKLY_DEATH_PROB_MEDIUM,
                        SizeClass::Small => WEEKLY_DEATH_PROB_SMALL,
                    };
                    if rng.gen::<f64>() < p && self.kill_id(id, week, false) {
                        tally.deaths += 1;
                    }
                }
                BooterState::Dead => {
                    // Resurrection chance decays with time dead.
                    let age = week.saturating_sub(died.unwrap_or(week));
                    let p = WEEKLY_RESURRECT_PROB * (0.8f64).powi(age as i32);
                    if rng.gen::<f64>() < p {
                        if let Some(b) = self.booters.iter_mut().find(|b| b.id == id) {
                            b.resurrect();
                            tally.resurrections += 1;
                        }
                    }
                }
                BooterState::Retired => {}
            }
        }

        // Discovery sweeps: bursty births (a data-collection artifact the
        // paper warns about — "should be viewed cautiously").
        if self.weeks_to_sweep == 0 {
            let births = rng.gen_range(2..=9);
            for _ in 0..births {
                let size = if rng.gen::<f64>() < 0.3 {
                    SizeClass::Medium
                } else {
                    SizeClass::Small
                };
                self.spawn(rng, week, size);
            }
            tally.births += births;
            self.weeks_to_sweep = rng.gen_range(4..=10);
        } else {
            self.weeks_to_sweep -= 1;
        }
    }
}

/// Structural shocks applied by interventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarketShock {
    /// 2018-04-24: Webstresser and its subcontractors go down.
    WebstresserTakedown,
    /// 2018-12-19: the FBI action closes two majors and several others.
    Xmas2018,
    /// March 2019: a closed major returns under a similar name.
    ReturnOfTheMajor,
}

/// Draw a 2–4 protocol portfolio for a booter.
fn sample_portfolio(rng: &mut StdRng) -> Vec<UdpProtocol> {
    let n = rng.gen_range(2..=4usize);
    let mut portfolio = Vec::with_capacity(n);
    while portfolio.len() < n {
        let p = UdpProtocol::ALL[rng.gen_range(0..UdpProtocol::ALL.len())];
        if !portfolio.contains(&p) {
            portfolio.push(p);
        }
    }
    portfolio
}

#[cfg(test)]
mod tests {
    use super::*;
    use booters_testkit::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xB008)
    }

    #[test]
    fn initial_population_shape() {
        let mut r = rng();
        let p = Population::new(&mut r);
        assert!(p.alive_count() >= 40);
        let majors = p
            .booters()
            .iter()
            .filter(|b| b.size == SizeClass::Major)
            .count();
        assert_eq!(majors, 4); // Webstresser + three self-reporting majors
        // Webstresser does not self-report.
        let w = p.booters().iter().find(|b| b.id == p.webstresser_id()).unwrap();
        assert!(!w.self_reports);
        assert!((p.alive_weight() - 1.0).abs() < 0.6); // ~1, not normalised
    }

    #[test]
    fn webstresser_shock_kills_it_and_small_booters() {
        let mut r = rng();
        let mut p = Population::new(&mut r);
        let before = p.alive_count();
        let t = p.step(&mut r, 10, Some(MarketShock::WebstresserTakedown));
        assert!(t.deaths >= 10, "deaths={}", t.deaths);
        assert!(p.alive_count() < before);
        let w = p.booters().iter().find(|b| b.id == p.webstresser_id()).unwrap();
        assert_eq!(w.state, BooterState::Retired);
    }

    #[test]
    fn xmas_shock_restructures_market() {
        let mut r = rng();
        let mut p = Population::new(&mut r);
        let [m1, m2, m3] = p.major_ids();
        let t = p.step(&mut r, 20, Some(MarketShock::Xmas2018));
        assert!(t.deaths >= 7, "deaths={}", t.deaths);
        let get = |id| p.booters().iter().find(|b| b.id == id).unwrap().clone();
        assert_ne!(get(m1).state, BooterState::Alive);
        assert_eq!(get(m2).state, BooterState::Retired);
        assert!(get(m3).is_alive());
        // Survivor's share of the alive self-reporting market ≈ 60%.
        let alive_rep: f64 = p
            .booters()
            .iter()
            .filter(|b| b.is_alive() && b.self_reports)
            .map(|b| b.weight)
            .sum();
        let share = get(m3).weight / alive_rep;
        assert!(share > 0.45 && share < 0.75, "share={share}");
    }

    #[test]
    fn returning_major_resurrects_once() {
        let mut r = rng();
        let mut p = Population::new(&mut r);
        let [m1, _, _] = p.major_ids();
        p.step(&mut r, 20, Some(MarketShock::Xmas2018));
        let t = p.step(&mut r, 32, Some(MarketShock::ReturnOfTheMajor));
        assert!(t.resurrections >= 1);
        let b = p.booters().iter().find(|b| b.id == m1).unwrap();
        assert!(b.is_alive());
    }

    #[test]
    fn churn_is_quiet_most_weeks() {
        let mut r = rng();
        let mut p = Population::new(&mut r);
        let mut total_deaths = 0;
        let mut quiet_weeks = 0;
        for w in 0..40 {
            let t = p.step(&mut r, w, None);
            total_deaths += t.deaths;
            if t.deaths <= 2 {
                quiet_weeks += 1;
            }
        }
        assert!(quiet_weeks >= 30, "quiet={quiet_weeks}");
        assert!(total_deaths < 70);
    }

    #[test]
    fn births_arrive_in_bursts() {
        let mut r = rng();
        let mut p = Population::new(&mut r);
        let mut birth_weeks = 0;
        let mut total_births = 0;
        for w in 0..50 {
            let t = p.step(&mut r, w, None);
            if t.births > 0 {
                birth_weeks += 1;
                total_births += t.births;
            }
        }
        assert!((4..=13).contains(&birth_weeks), "weeks={birth_weeks}");
        assert!(total_births >= 10);
    }

    #[test]
    fn resurrections_happen_after_churn_deaths() {
        let mut r = rng();
        let mut p = Population::new(&mut r);
        let mut res = 0;
        for w in 0..80 {
            let t = p.step(&mut r, w, None);
            res += t.resurrections;
        }
        assert!(res > 0, "no resurrections in 80 weeks");
    }

    #[test]
    fn scenario_step_with_no_shocks_matches_plain_step() {
        // The §5j alignment property: an empty scenario week consumes
        // exactly the RNG stream of a shockless `step`, so both runs
        // stay bit-identical forever after.
        let mut r1 = rng();
        let mut r2 = rng();
        let mut p1 = Population::new(&mut r1);
        let mut p2 = Population::new(&mut r2);
        for w in 0..60 {
            let a = p1.step(&mut r1, w, None);
            let b = p2.step_scenario(&mut r2, w, &[]);
            assert_eq!(a, b, "week {w}");
        }
        let snap = |p: &Population| -> Vec<(u32, f64, BooterState)> {
            p.booters().iter().map(|b| (b.id, b.weight, b.state)).collect()
        };
        assert_eq!(snap(&p1), snap(&p2));
    }

    #[test]
    fn supply_cut_retires_largest_of_class_and_displacement_absorbs() {
        let mut r = rng();
        let mut p = Population::new(&mut r);
        // Largest major is the Webstresser analogue (weight 0.30).
        let web = p.webstresser_id();
        let survivor_before: f64 = {
            let mut ws: Vec<f64> = p
                .booters()
                .iter()
                .filter(|b| b.size == SizeClass::Major)
                .map(|b| b.weight)
                .collect();
            ws.sort_by(|a, b| b.partial_cmp(a).unwrap());
            ws[1] // the next-largest major inherits
        };
        let cut = ShockKind::SupplyCut {
            class: ClassSel::Major,
            count: 1,
        };
        let disp = ShockKind::Displacement { absorb: 0.5 };
        let t = p.step_scenario(&mut r, 10, &[&cut, &disp]);
        assert!(t.deaths >= 1);
        let w = p.booters().iter().find(|b| b.id == web).unwrap();
        assert_eq!(w.state, BooterState::Retired);
        let winner = p
            .booters()
            .iter()
            .filter(|b| b.is_alive())
            .max_by(|a, b| a.weight.partial_cmp(&b.weight).unwrap())
            .unwrap();
        assert!(
            (winner.weight - (survivor_before + 0.5 * 0.30)).abs() < 1e-12,
            "winner weight {}",
            winner.weight
        );
    }

    #[test]
    fn rebrand_revives_the_retired_casualty_with_scaled_weight() {
        let mut r = rng();
        let mut p = Population::new(&mut r);
        let web = p.webstresser_id();
        let cut = ShockKind::SupplyCut {
            class: ClassSel::Major,
            count: 1,
        };
        p.step_scenario(&mut r, 10, &[&cut]);
        let dead_weight = p.booters().iter().find(|b| b.id == web).unwrap().weight;
        let reb = ShockKind::Rebrand { migration: 0.7 };
        let t = p.step_scenario(&mut r, 14, &[&reb]);
        assert!(t.resurrections >= 1);
        let b = p.booters().iter().find(|b| b.id == web).unwrap();
        assert!(b.is_alive(), "rebrand must revive a Retired record");
        assert!((b.weight - dead_weight * 0.7).abs() < 1e-12);
    }

    #[test]
    fn portfolios_are_distinct_and_bounded() {
        let mut r = rng();
        for _ in 0..50 {
            let port = sample_portfolio(&mut r);
            assert!(port.len() >= 2 && port.len() <= 4);
            let mut dedup = port.clone();
            dedup.dedup();
            assert_eq!(dedup.len(), port.len());
        }
    }
}
