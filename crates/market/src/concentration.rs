//! Market concentration metrics.
//!
//! §4.3 and §7: the Xmas2018 intervention moved the market "away from
//! multiple mid-range providers towards a market dominated by a single
//! booter", making it "more 'brittle'" — any future action against the
//! dominant provider would be "especially disruptive". This module
//! quantifies that with the Herfindahl–Hirschman index and top-k shares
//! over the simulated booter attack allocations.

use crate::market::WeekOutput;

/// Herfindahl–Hirschman index of a share vector: Σ sᵢ² with shares in
/// [0, 1]. 1/N for a symmetric N-firm market, → 1 under monopoly.
pub fn herfindahl(volumes: &[u64]) -> f64 {
    let total: u64 = volumes.iter().sum();
    if total == 0 {
        return f64::NAN;
    }
    volumes
        .iter()
        .map(|&v| {
            let s = v as f64 / total as f64;
            s * s
        })
        .sum()
}

/// Gini coefficient of a volume vector: 0 for perfect equality, → 1 as a
/// single participant takes everything. A second lens on the §7
/// concentration claim, less sensitive to the number of tiny fringe
/// booters than the HHI.
pub fn gini(volumes: &[u64]) -> f64 {
    let n = volumes.len();
    let total: u64 = volumes.iter().sum();
    if n == 0 || total == 0 {
        return f64::NAN;
    }
    let mut sorted = volumes.to_vec();
    sorted.sort_unstable();
    // G = (2 Σ i·xᵢ)/(n Σ xᵢ) − (n+1)/n with xᵢ ascending, i 1-based.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
        .sum();
    2.0 * weighted / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Combined share of the `k` largest participants.
pub fn top_k_share(volumes: &[u64], k: usize) -> f64 {
    let total: u64 = volumes.iter().sum();
    if total == 0 {
        return f64::NAN;
    }
    let mut sorted = volumes.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted.iter().take(k).sum::<u64>() as f64 / total as f64
}

/// Weekly market-concentration series from the simulator output.
#[derive(Debug, Clone)]
pub struct ConcentrationSeries {
    /// Week index of each point.
    pub weeks: Vec<usize>,
    /// HHI per week.
    pub hhi: Vec<f64>,
    /// Top-1 share per week.
    pub top1: Vec<f64>,
    /// Effective number of competitors (1/HHI) per week.
    pub effective_firms: Vec<f64>,
}

impl ConcentrationSeries {
    /// Compute from weekly outputs.
    pub fn from_weeks(weeks: &[WeekOutput]) -> ConcentrationSeries {
        let mut out = ConcentrationSeries {
            weeks: Vec::with_capacity(weeks.len()),
            hhi: Vec::with_capacity(weeks.len()),
            top1: Vec::with_capacity(weeks.len()),
            effective_firms: Vec::with_capacity(weeks.len()),
        };
        for w in weeks {
            let volumes: Vec<u64> = w.booter_attacks.iter().map(|(_, n)| *n).collect();
            let h = herfindahl(&volumes);
            out.weeks.push(w.week);
            out.hhi.push(h);
            out.top1.push(top_k_share(&volumes, 1));
            out.effective_firms.push(if h > 0.0 { 1.0 / h } else { f64::NAN });
        }
        out
    }

    /// Mean HHI over a week range.
    pub fn mean_hhi(&self, from_week: usize, to_week: usize) -> f64 {
        let vals: Vec<f64> = self
            .weeks
            .iter()
            .zip(&self.hhi)
            .filter(|(&w, _)| w >= from_week && w < to_week)
            .map(|(_, &h)| h)
            .filter(|h| h.is_finite())
            .collect();
        if vals.is_empty() {
            return f64::NAN;
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{MarketConfig, MarketSim};
    use booters_timeseries::Date;

    #[test]
    fn hhi_closed_forms() {
        // Symmetric duopoly: 0.5; monopoly: 1; 4 equal firms: 0.25.
        assert!((herfindahl(&[50, 50]) - 0.5).abs() < 1e-12);
        assert!((herfindahl(&[100]) - 1.0).abs() < 1e-12);
        assert!((herfindahl(&[25, 25, 25, 25]) - 0.25).abs() < 1e-12);
        assert!(herfindahl(&[]).is_nan());
        assert!(herfindahl(&[0, 0]).is_nan());
    }

    #[test]
    fn gini_closed_forms() {
        // Perfect equality: 0.
        assert!(gini(&[10, 10, 10, 10]).abs() < 1e-12);
        // Monopoly among n participants: (n−1)/n.
        assert!((gini(&[0, 0, 0, 100]) - 0.75).abs() < 1e-12);
        // Degenerate inputs.
        assert!(gini(&[]).is_nan());
        assert!(gini(&[0, 0]).is_nan());
        // Bounded in [0, 1).
        let g = gini(&[1, 5, 20, 100, 3]);
        assert!((0.0..1.0).contains(&g));
    }

    #[test]
    fn gini_rises_with_concentration() {
        let spread = gini(&[20, 25, 30, 25]);
        let concentrated = gini(&[80, 10, 5, 5]);
        assert!(concentrated > spread + 0.2);
    }

    #[test]
    fn top_k_share_basics() {
        assert!((top_k_share(&[60, 30, 10], 1) - 0.6).abs() < 1e-12);
        assert!((top_k_share(&[60, 30, 10], 2) - 0.9).abs() < 1e-12);
        assert!((top_k_share(&[60, 30, 10], 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn concentration_rises_after_xmas2018() {
        let weeks = MarketSim::new(MarketConfig {
            scale: 0.01,
            seed: 77,
            ..MarketConfig::default()
        })
        .run();
        let xmas_week = weeks
            .iter()
            .find(|w| w.monday >= Date::new(2018, 12, 17))
            .unwrap()
            .week;
        let series = ConcentrationSeries::from_weeks(&weeks);
        let before = series.mean_hhi(xmas_week.saturating_sub(12), xmas_week);
        let after = series.mean_hhi(xmas_week + 2, xmas_week + 12);
        assert!(
            after > 1.5 * before,
            "HHI before={before:.3} after={after:.3} — market should concentrate"
        );
        // Effective competitor count collapses correspondingly.
        let eff_before = 1.0 / before;
        let eff_after = 1.0 / after;
        assert!(eff_after < eff_before);
    }

    #[test]
    fn series_is_aligned_with_weeks() {
        let weeks = MarketSim::new(MarketConfig {
            scale: 0.005,
            seed: 3,
            ..MarketConfig::default()
        })
        .run();
        let series = ConcentrationSeries::from_weeks(&weeks);
        assert_eq!(series.weeks.len(), weeks.len());
        assert_eq!(series.hhi.len(), weeks.len());
        for (h, t) in series.hhi.iter().zip(&series.top1) {
            if h.is_finite() {
                assert!(*t * *t <= *h + 1e-12, "top1²={} must be ≤ HHI={h}", t * t);
            }
        }
    }
}
