//! Displacement analysis.
//!
//! §4.3: booter outages "often appear to be 'absorbed' by displacement to
//! other booters ... so the overall attack numbers remain steady"; §6.5
//! adds that the influx can overwhelm smaller providers ("ironically this
//! can be seen as a 'denial of service'"). This module measures
//! displacement in the simulated market: when a set of booters dies, how
//! much of their former volume reappears at the survivors?

use crate::market::WeekOutput;
use std::collections::{HashMap, HashSet};

/// Result of a displacement measurement around one death event.
#[derive(Debug, Clone)]
pub struct DisplacementMeasure {
    /// Combined weekly volume of the dying booters before the event.
    pub dead_volume_before: f64,
    /// Combined weekly volume of the survivors before the event.
    pub survivor_volume_before: f64,
    /// Combined weekly volume of the survivors after the event.
    pub survivor_volume_after: f64,
    /// Total market volume before / after (demand may itself shift).
    pub market_before: f64,
    /// Total market volume after the event.
    pub market_after: f64,
}

impl DisplacementMeasure {
    /// Fraction of the dead booters' volume absorbed by survivors:
    /// (survivor gain) / (dead volume), clamped to [0, ∞). 1.0 means the
    /// paper's "absorbed by displacement"; ~0 means the demand vanished.
    pub fn absorption_ratio(&self) -> f64 {
        if self.dead_volume_before <= 0.0 {
            return f64::NAN;
        }
        ((self.survivor_volume_after - self.survivor_volume_before)
            / self.dead_volume_before)
            .max(0.0)
    }

    /// Net market change across the event, as a fraction of the before
    /// volume (negative = the intervention suppressed total demand).
    pub fn market_change(&self) -> f64 {
        if self.market_before <= 0.0 {
            return f64::NAN;
        }
        self.market_after / self.market_before - 1.0
    }
}

/// Average per-booter weekly volumes over a week range.
fn volumes_over(
    weeks: &[WeekOutput],
    from_week: usize,
    to_week: usize,
) -> (HashMap<u32, f64>, f64) {
    let mut by_booter: HashMap<u32, f64> = HashMap::new();
    let mut n_weeks = 0usize;
    for w in weeks.iter().filter(|w| w.week >= from_week && w.week < to_week) {
        n_weeks += 1;
        for (id, v) in &w.booter_attacks {
            *by_booter.entry(*id).or_insert(0.0) += *v as f64;
        }
    }
    if n_weeks == 0 {
        return (by_booter, 0.0);
    }
    let total: f64 = by_booter.values().sum::<f64>() / n_weeks as f64;
    for v in by_booter.values_mut() {
        *v /= n_weeks as f64;
    }
    (by_booter, total)
}

/// Measure displacement around a death event at `event_week`: booters
/// active in the `lookback`-week window before but absent in the
/// `lookahead`-week window after are the "dead"; everyone else active
/// after is a survivor.
pub fn measure_displacement(
    weeks: &[WeekOutput],
    event_week: usize,
    lookback: usize,
    lookahead: usize,
) -> DisplacementMeasure {
    let (before, market_before) =
        volumes_over(weeks, event_week.saturating_sub(lookback), event_week);
    let (after, market_after) = volumes_over(weeks, event_week + 1, event_week + 1 + lookahead);

    let after_ids: HashSet<u32> = after.keys().copied().collect();
    let mut dead_volume_before = 0.0;
    let mut survivor_volume_before = 0.0;
    for (id, v) in &before {
        if after_ids.contains(id) {
            survivor_volume_before += v;
        } else {
            dead_volume_before += v;
        }
    }
    let survivor_volume_after: f64 = after
        .iter()
        .filter(|(id, _)| before.contains_key(id))
        .map(|(_, v)| v)
        .sum();

    DisplacementMeasure {
        dead_volume_before,
        survivor_volume_before,
        survivor_volume_after,
        market_before,
        market_after,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{MarketConfig, MarketSim};
    use booters_timeseries::Date;

    fn run() -> Vec<WeekOutput> {
        MarketSim::new(MarketConfig {
            scale: 0.02,
            seed: 404,
            ..MarketConfig::default()
        })
        .run()
    }

    #[test]
    fn webstresser_volume_is_displaced() {
        // The Webstresser takedown kills ~30% of market weight, but demand
        // (per the paper's Table 2) only drops ~21% for 3 weeks —
        // displacement routes the remainder to the survivors.
        let weeks = run();
        let event_week = weeks
            .iter()
            .find(|w| w.monday >= Date::new(2018, 4, 23))
            .unwrap()
            .week;
        let m = measure_displacement(&weeks, event_week, 6, 6);
        assert!(m.dead_volume_before > 0.0, "webstresser had volume");
        let absorption = m.absorption_ratio();
        assert!(
            absorption > 0.3,
            "survivors absorbed only {absorption:.2} of the dead volume"
        );
        // The market dip is far smaller than the dead share.
        let dead_share = m.dead_volume_before / m.market_before;
        assert!(dead_share > 0.2, "dead share {dead_share:.2}");
        assert!(
            m.market_change() > -dead_share,
            "market fell {:.2} — more than the dead share, no displacement",
            m.market_change()
        );
    }

    #[test]
    fn quiet_weeks_show_no_dead_volume() {
        let weeks = run();
        // A mid-2017 week with no shock: churn deaths are tiny.
        let event_week = weeks
            .iter()
            .find(|w| w.monday >= Date::new(2017, 6, 5))
            .unwrap()
            .week;
        let m = measure_displacement(&weeks, event_week, 4, 4);
        let dead_share = m.dead_volume_before / m.market_before.max(1.0);
        assert!(dead_share < 0.10, "dead share {dead_share:.3} in a quiet week");
    }

    #[test]
    fn absorption_nan_when_nothing_died() {
        let m = DisplacementMeasure {
            dead_volume_before: 0.0,
            survivor_volume_before: 10.0,
            survivor_volume_after: 12.0,
            market_before: 10.0,
            market_after: 12.0,
        };
        assert!(m.absorption_ratio().is_nan());
        assert!((m.market_change() - 0.2).abs() < 1e-12);
    }
}
