//! The intervention timeline of §2 — every event labelled in Figure 1.

use booters_timeseries::Date;

/// Identifier for each intervention event in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventId {
    /// Operation Vivarium: UK arrests of LizardStresser users (2015-08-28).
    OperationVivarium,
    /// Sentencing of a Vivarium-linked teenager (2015-12-22).
    SentencingVivarium,
    /// Krebs' vDOS exposé and the Israeli arrests (2016-09-08).
    KrebsVdosArrests,
    /// LizardStresser operator arrests in the US/NL (2016-10-06).
    LizardStresserArrests,
    /// HackForums closes its Server Stress Testing section (2016-10-28).
    HackForumsClosure,
    /// Europol-coordinated international action against users (2016-12-05).
    InternationalUserAction,
    /// Titaniumstresser operator sentenced (2017-04-25).
    TitaniumSentencing,
    /// NCA Google search advert campaign (UK only), Dec 2017 – Jun 2018.
    NcaAds,
    /// vDOS-linked sentencing (2017-12-19).
    VdosSentencing,
    /// LizardStresser operator sentenced in the US (2018-03-27).
    LizardStresserSentencing,
    /// Dejabooter operator sentenced (2018-04-08).
    DejabooterSentencing,
    /// Webstresser takedown and admin arrests (2018-04-24).
    WebstresserTakedown,
    /// First Mirai sentencing (2018-09-18).
    MiraiSentencing1,
    /// Second Mirai sentencing and related actions (2018-10-26).
    MiraiSentencing2,
    /// FBI Xmas2018 action: 15 domains seized, three operators arrested
    /// (2018-12-19).
    Xmas2018,
}

/// The operational category of an intervention (§6 discusses effects by
/// type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Arrests of users or operators.
    Arrests,
    /// Court case / sentencing publicity.
    Sentencing,
    /// Takedown of booter website(s)/domains.
    Takedown,
    /// Closure of a market shop-front (forum section).
    ForumClosure,
    /// Targeted messaging (the NCA search adverts).
    Messaging,
}

/// One intervention event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterventionEvent {
    /// Which event.
    pub id: EventId,
    /// Figure 1's label.
    pub name: &'static str,
    /// Date of the event (campaigns use their start date).
    pub date: Date,
    /// For campaigns, the end date.
    pub end_date: Option<Date>,
    /// Category.
    pub kind: EventKind,
}

/// The full timeline, chronological.
pub fn timeline() -> Vec<InterventionEvent> {
    vec![
        InterventionEvent {
            id: EventId::OperationVivarium,
            name: "Operation Vivarium",
            date: Date::new(2015, 8, 28),
            end_date: None,
            kind: EventKind::Arrests,
        },
        InterventionEvent {
            id: EventId::SentencingVivarium,
            name: "Sentencing Vivarium",
            date: Date::new(2015, 12, 22),
            end_date: None,
            kind: EventKind::Sentencing,
        },
        InterventionEvent {
            id: EventId::KrebsVdosArrests,
            name: "Krebs vDOS leaks and arrests",
            date: Date::new(2016, 9, 8),
            end_date: None,
            kind: EventKind::Arrests,
        },
        InterventionEvent {
            id: EventId::LizardStresserArrests,
            name: "Lizardstresser arrests",
            date: Date::new(2016, 10, 6),
            end_date: None,
            kind: EventKind::Arrests,
        },
        InterventionEvent {
            id: EventId::HackForumsClosure,
            name: "Hackforums shuts down SST section",
            date: Date::new(2016, 10, 28),
            end_date: None,
            kind: EventKind::ForumClosure,
        },
        InterventionEvent {
            id: EventId::InternationalUserAction,
            name: "International action against users",
            date: Date::new(2016, 12, 5),
            end_date: None,
            kind: EventKind::Arrests,
        },
        InterventionEvent {
            id: EventId::TitaniumSentencing,
            name: "Titaniumstresser sentencing",
            date: Date::new(2017, 4, 25),
            end_date: None,
            kind: EventKind::Sentencing,
        },
        InterventionEvent {
            id: EventId::NcaAds,
            name: "NCA Google ads",
            date: Date::new(2017, 12, 25),
            end_date: Some(Date::new(2018, 6, 30)),
            kind: EventKind::Messaging,
        },
        InterventionEvent {
            id: EventId::VdosSentencing,
            name: "vDOS sentencing",
            date: Date::new(2017, 12, 19),
            end_date: None,
            kind: EventKind::Sentencing,
        },
        InterventionEvent {
            id: EventId::LizardStresserSentencing,
            name: "Lizardstresser sentenced",
            date: Date::new(2018, 3, 27),
            end_date: None,
            kind: EventKind::Sentencing,
        },
        InterventionEvent {
            id: EventId::DejabooterSentencing,
            name: "Dejabooter sentenced",
            date: Date::new(2018, 4, 8),
            end_date: None,
            kind: EventKind::Sentencing,
        },
        InterventionEvent {
            id: EventId::WebstresserTakedown,
            name: "Webstresser takedown",
            date: Date::new(2018, 4, 24),
            end_date: None,
            kind: EventKind::Takedown,
        },
        InterventionEvent {
            id: EventId::MiraiSentencing1,
            name: "Mirai sentencing 1",
            date: Date::new(2018, 9, 18),
            end_date: None,
            kind: EventKind::Sentencing,
        },
        InterventionEvent {
            id: EventId::MiraiSentencing2,
            name: "Mirai sentencing 2",
            date: Date::new(2018, 10, 26),
            end_date: None,
            kind: EventKind::Sentencing,
        },
        InterventionEvent {
            id: EventId::Xmas2018,
            name: "Xmas 2018 event",
            date: Date::new(2018, 12, 19),
            end_date: None,
            kind: EventKind::Takedown,
        },
    ]
}

/// Look up one event.
pub fn event(id: EventId) -> InterventionEvent {
    timeline()
        .into_iter()
        .find(|e| e.id == id)
        .expect("event in timeline")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_is_chronological_and_complete() {
        let t = timeline();
        assert_eq!(t.len(), 15);
        for w in t.windows(2) {
            // NCA ads (25 Dec) and vDOS sentencing (19 Dec) are the only
            // near-tie; the list is sorted by the narrative of §2, allow
            // 7-day slack.
            assert!(
                w[1].date.days_since(w[0].date) >= -7,
                "{} before {}",
                w[1].name,
                w[0].name
            );
        }
    }

    #[test]
    fn key_dates_match_the_paper() {
        assert_eq!(event(EventId::Xmas2018).date, Date::new(2018, 12, 19));
        assert_eq!(event(EventId::WebstresserTakedown).date, Date::new(2018, 4, 24));
        assert_eq!(event(EventId::HackForumsClosure).date, Date::new(2016, 10, 28));
        assert_eq!(event(EventId::VdosSentencing).date, Date::new(2017, 12, 19));
        assert_eq!(event(EventId::MiraiSentencing2).date, Date::new(2018, 10, 26));
    }

    #[test]
    fn nca_campaign_has_an_end_date() {
        let e = event(EventId::NcaAds);
        assert_eq!(e.kind, EventKind::Messaging);
        let end = e.end_date.expect("campaign end");
        assert!(end > e.date);
        // Roughly six months.
        let days = end.days_since(e.date);
        assert!((150..230).contains(&days), "campaign {days} days");
    }

    #[test]
    fn kinds_are_assigned_sensibly() {
        assert_eq!(event(EventId::Xmas2018).kind, EventKind::Takedown);
        assert_eq!(event(EventId::HackForumsClosure).kind, EventKind::ForumClosure);
        assert_eq!(event(EventId::MiraiSentencing1).kind, EventKind::Sentencing);
        assert_eq!(event(EventId::OperationVivarium).kind, EventKind::Arrests);
    }
}
