//! The demand model: expected log attack intensity per country per week.
//!
//! Inside the modelling window (June 2016 – April 2019) this is exactly the
//! paper's fitted model (Table 1 global shape, Table 2 per-country
//! intervention effects), so that the analysis pipeline can recover the
//! published coefficients from simulated draws. Before June 2016 a flat
//! "era level" reproduces the left half of Figure 1.

use crate::calibration::Calibration;
use crate::events::{self, EventId, EventKind};
use crate::shocks::ScenarioSpec;
use booters_netsim::Country;
use booters_timeseries::seasonal::{easter_dummy, seasonal_row};
use booters_timeseries::Date;

/// The intervention-free structure every demand variant shares: country
/// share, seasonality, Easter, era level + trend, and the CN hump. With
/// `nca` the UK trend flattens during the NCA ad campaign (the paper's
/// fitted history); without it the trend is purely linear (the
/// counterfactual scenario baseline — the NCA campaign is itself an
/// intervention, so scenario runs must not inherit it).
fn base_structure(cal: &Calibration, country: Country, monday: Date, nca: bool) -> f64 {
    let profile = cal.country(country);
    let mut log_mu = profile.share.ln();

    // Seasonal structure applies across the whole series.
    let row = seasonal_row(monday);
    for (j, &v) in row.iter().enumerate() {
        log_mu += v * cal.global.seasonal[j];
    }
    log_mu += easter_dummy(monday, 7, 7) * cal.global.easter;

    let weeks_since_window = monday.days_since(cal.window_start) as f64 / 7.0;
    if weeks_since_window < 0.0 {
        // Pre-window era: flat level, no trend (Figure 1's 2014–2016 look).
        log_mu += cal.pre_window_log_level;
    } else {
        log_mu += cal.global.log_level;
        log_mu += trend_contribution(cal, country, weeks_since_window, nca);
    }

    // China's NTP-era hump (Table 3: CN at over half of world attacks in
    // Feb-17). Modelled as a sharp-onset plateau (difference of
    // logistics): the rise starts after the HackForums window closes so
    // that the global intervention effect is not masked — in the paper's
    // data the CN wave likewise postdates the HackForums drop.
    if profile.hump_amplitude != 0.0 {
        let w = monday.days_since(Date::new(2017, 2, 13)) as f64 / 7.0;
        let rise = 1.0 / (1.0 + (-w / 1.5).exp());
        let w_end = monday.days_since(Date::new(2017, 6, 5)) as f64 / 7.0;
        let fall = 1.0 / (1.0 + (-w_end / 6.0).exp());
        log_mu += profile.hump_amplitude * (rise - fall).max(0.0);
    }

    log_mu
}

/// Expected log intensity of attacks on `country` in the week starting at
/// `monday` (which must be a Monday; use `Date::week_start`).
pub fn country_log_intensity(cal: &Calibration, country: Country, monday: Date) -> f64 {
    let mut log_mu = base_structure(cal, country, monday, true);

    // The five significant interventions, per-country (Table 2).
    for ic in &cal.interventions {
        let effect = ic.effect_in(country);
        if !effect.significant {
            continue;
        }
        let event_date = events::event(ic.id).date;
        let start = event_date.week_start().add_days(7 * effect.delay_weeks as i64);
        let end = start.add_days(7 * effect.duration_weeks as i64);
        if monday >= start && monday < end {
            log_mu += effect.coef();
        }
    }

    // Minor events leave a small one-week mark (China excepted).
    if country != Country::Cn {
        for ev in events::timeline() {
            if cal.intervention(ev.id).is_some() || ev.kind == EventKind::Messaging {
                continue;
            }
            let start = ev.date.week_start();
            let end = start.add_days(7 * cal.minor_event_weeks as i64);
            if monday >= start && monday < end {
                log_mu += cal.minor_event_dip;
            }
        }
    }

    log_mu
}

/// Expected log intensity for `country` under a scenario spec: the
/// intervention-free base structure (no Table 2 windows, no
/// minor-event dips, no NCA trend break — those are all *interventions*,
/// which a scenario replaces) plus the spec's composed demand-side
/// shock deltas ([`ScenarioSpec::log_demand_delta`]).
pub fn scenario_log_intensity(
    cal: &Calibration,
    spec: &ScenarioSpec,
    country: Country,
    monday: Date,
) -> f64 {
    base_structure(cal, country, monday, false) + spec.log_demand_delta(country, monday)
}

/// Cumulative trend for `country` after `weeks` weeks in the modelling
/// window, honouring the UK's NCA-campaign flattening (§4.1/Figure 5)
/// unless `nca` is off.
fn trend_contribution(cal: &Calibration, country: Country, weeks: f64, nca: bool) -> f64 {
    let profile = cal.country(country);
    if country != Country::Uk || !nca {
        return profile.weekly_trend * weeks;
    }
    let nca = events::event(EventId::NcaAds);
    let nca_start_w = nca.date.week_start().days_since(cal.window_start) as f64 / 7.0;
    let recovery_w = cal.nca_recovery.week_start().days_since(cal.window_start) as f64 / 7.0;
    if weeks <= nca_start_w {
        profile.weekly_trend * weeks
    } else if weeks <= recovery_w {
        profile.weekly_trend * nca_start_w + cal.nca_uk_trend * (weeks - nca_start_w)
    } else {
        profile.weekly_trend * nca_start_w
            + cal.nca_uk_trend * (recovery_w - nca_start_w)
            + profile.weekly_trend * (weeks - recovery_w)
    }
}

/// Expected global (all-country) attack count for a week: Σ exp(log μ_c).
pub fn global_intensity(cal: &Calibration, monday: Date) -> f64 {
    Country::ALL
        .iter()
        .map(|&c| country_log_intensity(cal, c, monday).exp())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::default()
    }

    #[test]
    fn window_origin_level_matches_table1() {
        // Summing country shares at t=0 should land near exp(10.289)
        // (seasonality for June pushes it slightly down).
        let c = cal();
        let total = global_intensity(&c, Date::new(2016, 6, 6));
        let expect = (10.289f64 + c.global.seasonal[4]).exp(); // June = seasonal_6
        // CN hump tail adds a little.
        assert!(
            (total / expect - 1.0).abs() < 0.35,
            "total={total} expect≈{expect}"
        );
    }

    #[test]
    fn trend_raises_intensity_over_window() {
        let c = cal();
        let early = country_log_intensity(&c, Country::Us, Date::new(2016, 6, 6));
        let late = country_log_intensity(&c, Country::Us, Date::new(2018, 6, 4));
        // ~104 weeks at 0.013/week ≈ +1.35, minus small seasonal diffs.
        assert!((late - early - 1.35).abs() < 0.1, "delta={}", late - early);
    }

    #[test]
    fn xmas2018_dips_us_but_not_fr() {
        let c = cal();
        let before = Date::new(2018, 12, 10);
        let during = Date::new(2019, 1, 7);
        let us_dip = country_log_intensity(&c, Country::Us, during)
            - country_log_intensity(&c, Country::Us, before);
        let fr_dip = country_log_intensity(&c, Country::Fr, during)
            - country_log_intensity(&c, Country::Fr, before);
        // US carries the −49% effect; FR only seasonal/trend drift.
        assert!(us_dip < -0.5, "us_dip={us_dip}");
        assert!(fr_dip > -0.1, "fr_dip={fr_dip}");
    }

    #[test]
    fn nl_reprisal_spikes_during_webstresser() {
        let c = cal();
        let before = Date::new(2018, 4, 16);
        let during = Date::new(2018, 4, 30);
        let nl = country_log_intensity(&c, Country::Nl, during)
            - country_log_intensity(&c, Country::Nl, before);
        assert!(nl > 0.7, "nl={nl}"); // +146% ⇒ +0.90 log
        // Overall (delayed 2 weeks) effect has not started for the US yet.
        let us = country_log_intensity(&c, Country::Us, during)
            - country_log_intensity(&c, Country::Us, before);
        assert!(us.abs() < 0.1, "us={us}");
        // Three weeks later the US dip is active.
        let us_later = country_log_intensity(&c, Country::Us, Date::new(2018, 5, 14))
            - country_log_intensity(&c, Country::Us, before);
        assert!(us_later < -0.2, "us_later={us_later}");
    }

    #[test]
    fn uk_flattens_during_nca_campaign() {
        let c = cal();
        // Slope over the campaign window ≈ 0; US keeps growing.
        let uk_jan = country_log_intensity(&c, Country::Uk, Date::new(2018, 1, 8));
        let uk_jun = country_log_intensity(&c, Country::Uk, Date::new(2018, 6, 4));
        let us_jan = country_log_intensity(&c, Country::Us, Date::new(2018, 1, 8));
        let us_jun = country_log_intensity(&c, Country::Us, Date::new(2018, 6, 4));
        // Control for seasonality by comparing the UK-US difference drift.
        let uk_drift = uk_jun - uk_jan;
        let us_drift = us_jun - us_jan;
        assert!(us_drift - uk_drift > 0.15, "uk={uk_drift} us={us_drift}");
    }

    #[test]
    fn uk_growth_resumes_after_recovery() {
        // After August 2018 the UK's drift matches the US's again
        // (seasonality cancels in the UK−US contrast).
        let c = cal();
        let uk_drift = country_log_intensity(&c, Country::Uk, Date::new(2018, 10, 1))
            - country_log_intensity(&c, Country::Uk, Date::new(2018, 8, 6));
        let us_drift = country_log_intensity(&c, Country::Us, Date::new(2018, 10, 1))
            - country_log_intensity(&c, Country::Us, Date::new(2018, 8, 6));
        assert!((uk_drift - us_drift).abs() < 0.05, "uk={uk_drift} us={us_drift}");
        // And the drift is positive once seasonals are removed: compare
        // two weeks within the same month (same seasonal dummy).
        let a = country_log_intensity(&c, Country::Uk, Date::new(2018, 10, 1));
        let b = country_log_intensity(&c, Country::Uk, Date::new(2018, 10, 15));
        assert!(b > a, "uk growth not resumed: {a} -> {b}");
    }

    #[test]
    fn cn_hump_peaks_in_spring_2017() {
        let c = cal();
        let at_peak = country_log_intensity(&c, Country::Cn, Date::new(2017, 4, 3));
        let before = country_log_intensity(&c, Country::Cn, Date::new(2016, 6, 6));
        let after = country_log_intensity(&c, Country::Cn, Date::new(2018, 6, 4));
        assert!(at_peak - before > 1.5, "rise={}", at_peak - before);
        assert!(at_peak - after > 1.5, "fall={}", at_peak - after);
    }

    #[test]
    fn cn_hump_spares_the_hackforums_window() {
        // The hump must not mask the HackForums effect: its contribution
        // inside the window (Oct 2016 – late Jan 2017) stays small.
        let c = cal();
        let in_window = country_log_intensity(&c, Country::Cn, Date::new(2017, 1, 9));
        let base = country_log_intensity(&c, Country::Cn, Date::new(2016, 9, 5));
        assert!(in_window - base < 0.3, "leak={}", in_window - base);
    }

    #[test]
    fn cn_share_dominates_at_hump_peak() {
        let c = cal();
        let monday = Date::new(2017, 4, 3);
        let cn = country_log_intensity(&c, Country::Cn, monday).exp();
        let total = global_intensity(&c, monday);
        let share = cn / total;
        // The paper's Feb-17 CN share is 55%, but its Table 3 column sums
        // to 108% (double counting); our single-assignment share peaks
        // near 30% — EXPERIMENTS.md records the comparison.
        assert!(share > 0.25 && share < 0.65, "share={share}");
    }

    #[test]
    fn pre_window_is_flat() {
        let c = cal();
        let a = country_log_intensity(&c, Country::Us, Date::new(2014, 9, 1));
        let b = country_log_intensity(&c, Country::Us, Date::new(2016, 3, 7));
        // Only seasonal differences between two pre-window weeks.
        assert!((a - b).abs() < 0.3, "a−b={}", a - b);
    }

    #[test]
    fn minor_events_leave_small_dips() {
        let c = cal();
        // Operation Vivarium week (2015-08-28 → week of 08-24).
        let dip_week = Date::new(2015, 8, 24);
        let ref_week = Date::new(2015, 8, 10);
        let delta = country_log_intensity(&c, Country::Us, dip_week)
            - country_log_intensity(&c, Country::Us, ref_week);
        assert!((delta - c.minor_event_dip).abs() < 1e-9, "delta={delta}");
    }

    #[test]
    fn scenario_baseline_has_no_paper_interventions() {
        use crate::shocks::ScenarioSpec;
        let c = cal();
        let b = ScenarioSpec::baseline();
        // Xmas2018 window: the fitted history dips, the counterfactual
        // baseline does not.
        let before = Date::new(2018, 12, 10);
        let during = Date::new(2019, 1, 7);
        let fitted_dip = country_log_intensity(&c, Country::Us, during)
            - country_log_intensity(&c, Country::Us, before);
        let base_dip = scenario_log_intensity(&c, &b, Country::Us, during)
            - scenario_log_intensity(&c, &b, Country::Us, before);
        assert!(fitted_dip < -0.5, "fitted={fitted_dip}");
        assert!(base_dip > -0.1, "baseline={base_dip}");
        // And no minor-event dip either (Operation Vivarium week).
        let minor = scenario_log_intensity(&c, &b, Country::Us, Date::new(2015, 8, 24))
            - scenario_log_intensity(&c, &b, Country::Us, Date::new(2015, 8, 10));
        assert!(minor.abs() < 1e-9, "minor={minor}");
    }

    #[test]
    fn scenario_baseline_uk_trend_is_linear() {
        use crate::shocks::ScenarioSpec;
        // The NCA flattening is an intervention: inside the campaign
        // window the scenario baseline keeps the UK's linear trend, so
        // it drifts up faster than the fitted (flattened) history.
        let c = cal();
        let b = ScenarioSpec::baseline();
        let jan = Date::new(2018, 1, 8);
        let jun = Date::new(2018, 6, 4);
        let baseline_drift = scenario_log_intensity(&c, &b, Country::Uk, jun)
            - scenario_log_intensity(&c, &b, Country::Uk, jan);
        let fitted_drift = country_log_intensity(&c, Country::Uk, jun)
            - country_log_intensity(&c, Country::Uk, jan);
        assert!(
            baseline_drift - fitted_drift > 0.15,
            "baseline={baseline_drift} fitted={fitted_drift}"
        );
    }

    #[test]
    fn scenario_shock_delta_lands_on_top_of_the_baseline() {
        use crate::shocks::{ScenarioSpec, Shock, ShockKind};
        let c = cal();
        let spec = ScenarioSpec {
            name: "t".into(),
            title: "t".into(),
            cite: None,
            shocks: vec![Shock {
                date: Date::new(2018, 1, 10),
                kind: ShockKind::PaymentFriction {
                    pct: -40.0,
                    duration_weeks: 4,
                },
            }],
        };
        let base = ScenarioSpec::baseline();
        let monday = Date::new(2018, 1, 15);
        let delta = scenario_log_intensity(&c, &spec, Country::Us, monday)
            - scenario_log_intensity(&c, &base, Country::Us, monday);
        assert!((delta - 0.6f64.ln()).abs() < 1e-12, "delta={delta}");
    }

    #[test]
    fn global_intensity_is_sum_of_countries() {
        let c = cal();
        let monday = Date::new(2018, 2, 5);
        let total = global_intensity(&c, monday);
        let manual: f64 = Country::ALL
            .iter()
            .map(|&cc| country_log_intensity(&c, cc, monday).exp())
            .sum();
        assert!((total - manual).abs() < 1e-9);
    }
}
