//! Paper-derived calibration constants.
//!
//! The reproduction embeds the paper's *published* model as ground truth:
//! Table 1's coefficients define the global weekly attack intensity,
//! Table 2's per-country effect sizes and durations define how each
//! intervention lands in each country, and Table 3's shares anchor country
//! levels. The analysis pipeline must then recover these numbers from the
//! simulated data — making the whole repository an end-to-end consistency
//! proof of the paper's method.

use crate::events::EventId;
use booters_netsim::Country;
use booters_timeseries::Date;

/// Global Table 1 model: log link, weekly data.
#[derive(Debug, Clone, Copy)]
pub struct GlobalModel {
    /// `_cons` — log attack intensity at the modelling-window origin
    /// (first week of June 2016). Table 1: 10.289.
    pub log_level: f64,
    /// `time` — weekly log-linear trend. Table 1: 0.010.
    pub weekly_trend: f64,
    /// `seasonal_2` … `seasonal_12` (January is the reference). Table 1.
    pub seasonal: [f64; 11],
    /// Easter window coefficient. Table 1: −0.016.
    pub easter: f64,
    /// NB2 dispersion α of weekly counts (not reported by the paper;
    /// chosen so coefficient standard errors match Table 1's magnitude).
    pub dispersion: f64,
}

impl Default for GlobalModel {
    fn default() -> Self {
        GlobalModel {
            log_level: 10.289,
            weekly_trend: 0.010,
            seasonal: [
                0.076,  // seasonal_2  (February)
                -0.051, // seasonal_3
                -0.025, // seasonal_4
                -0.098, // seasonal_5
                -0.134, // seasonal_6
                -0.125, // seasonal_7
                -0.078, // seasonal_8
                0.069,  // seasonal_9
                -0.086, // seasonal_10
                -0.111, // seasonal_11
                0.091,  // seasonal_12
            ],
            easter: -0.016,
            dispersion: 0.012,
        }
    }
}

/// Effect of one intervention in one country (or overall).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountryEffect {
    /// Mean percentage change in attacks (−32.0 means “−32%”).
    pub mean_pct: f64,
    /// Weeks between event and effect onset.
    pub delay_weeks: usize,
    /// Effect duration in weeks (0 ⇒ no significant effect).
    pub duration_weeks: usize,
    /// Whether the paper found the effect statistically significant.
    pub significant: bool,
}

impl CountryEffect {
    /// Log-scale coefficient: ln(1 + mean%/100); 0 for non-significant
    /// effects (the DGP applies nothing).
    pub fn coef(&self) -> f64 {
        if !self.significant {
            return 0.0;
        }
        (1.0 + self.mean_pct / 100.0).ln()
    }

    const fn none() -> CountryEffect {
        CountryEffect {
            mean_pct: 0.0,
            delay_weeks: 0,
            duration_weeks: 0,
            significant: false,
        }
    }

    const fn new(mean_pct: f64, delay_weeks: usize, duration_weeks: usize) -> CountryEffect {
        CountryEffect {
            mean_pct,
            delay_weeks,
            duration_weeks,
            significant: true,
        }
    }
}

/// Calibration of one intervention: overall effect plus Table 2's
/// per-country breakdown.
#[derive(Debug, Clone)]
pub struct InterventionCalibration {
    /// Which event.
    pub id: EventId,
    /// Overall (global) effect — Table 1 / Table 2 "Overall" column.
    pub overall: CountryEffect,
    /// Per-country effects for the Table 2 countries.
    pub by_country: Vec<(Country, CountryEffect)>,
}

impl InterventionCalibration {
    /// Effect in `country`: the Table 2 entry when present, otherwise the
    /// overall effect (AU/CA/SA/rest-of-world follow the global pattern).
    /// China is insulated from every intervention (§4.1: "China stands
    /// apart, showing no correlation ... or impact from interventions").
    pub fn effect_in(&self, country: Country) -> CountryEffect {
        if country == Country::Cn {
            return CountryEffect::none();
        }
        self.by_country
            .iter()
            .find(|(c, _)| *c == country)
            .map(|(_, e)| *e)
            .unwrap_or(self.overall)
    }
}

/// Per-country demand profile.
#[derive(Debug, Clone, Copy)]
pub struct CountryProfile {
    /// Country.
    pub country: Country,
    /// Long-run share of global attacks (Table 3-anchored).
    pub share: f64,
    /// Weekly log trend within the modelling window.
    pub weekly_trend: f64,
    /// Amplitude of the China NTP-era hump in log units (0 except CN).
    pub hump_amplitude: f64,
}

/// The full calibration bundle.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Global Table 1 model.
    pub global: GlobalModel,
    /// Significant interventions with per-country effects (Table 2).
    pub interventions: Vec<InterventionCalibration>,
    /// Country demand profiles.
    pub countries: Vec<CountryProfile>,
    /// Log-scale dip applied for minor (globally non-significant) events,
    /// so Figure 1 carries their marks without perturbing Table 1.
    pub minor_event_dip: f64,
    /// Duration of minor-event dips, weeks.
    pub minor_event_weeks: usize,
    /// Scenario start (Figure 1 begins July 2014).
    pub scenario_start: Date,
    /// Scenario end (April 2019).
    pub scenario_end: Date,
    /// Modelling-window origin (June 2016): `time = 0` in Table 1.
    pub window_start: Date,
    /// Pre-window era log level (flat 2014–mid-2016 series in Figure 1).
    pub pre_window_log_level: f64,
    /// NCA campaign trend suppression: UK weekly trend during (and shortly
    /// after) the advert window. Figure 5: "a nearly-flat slope of -0.1".
    pub nca_uk_trend: f64,
    /// Date UK growth resumes (§4.1: "This flat trend continues until
    /// August \[2018\]").
    pub nca_recovery: Date,
}

impl Default for Calibration {
    fn default() -> Self {
        use Country::*;
        let interventions = vec![
            InterventionCalibration {
                id: EventId::Xmas2018,
                overall: CountryEffect::new(-32.0, 0, 10),
                by_country: vec![
                    (Uk, CountryEffect::new(-27.0, 0, 9)),
                    (Us, CountryEffect::new(-49.0, 0, 9)),
                    (Ru, CountryEffect::new(-33.0, 0, 9)),
                    (Fr, CountryEffect::none()),
                    (De, CountryEffect::new(-28.0, 0, 8)),
                    (Pl, CountryEffect::new(-23.0, 0, 3)),
                    (Nl, CountryEffect::new(-16.0, 0, 8)),
                ],
            },
            InterventionCalibration {
                id: EventId::MiraiSentencing2,
                overall: CountryEffect::new(-40.0, 0, 8),
                by_country: vec![
                    (Uk, CountryEffect::new(-27.0, 0, 2)),
                    (Us, CountryEffect::new(-31.0, 0, 7)),
                    (Ru, CountryEffect::none()),
                    (Fr, CountryEffect::none()),
                    (De, CountryEffect::new(-32.0, 0, 6)),
                    (Pl, CountryEffect::new(-47.0, 0, 2)),
                    (Nl, CountryEffect::new(-19.0, 0, 6)),
                ],
            },
            InterventionCalibration {
                id: EventId::WebstresserTakedown,
                overall: CountryEffect::new(-21.0, 2, 3),
                by_country: vec![
                    (Uk, CountryEffect::none()),
                    (Us, CountryEffect::new(-24.0, 2, 4)),
                    (Ru, CountryEffect::none()),
                    (Fr, CountryEffect::new(-22.0, 2, 4)),
                    (De, CountryEffect::new(-29.0, 2, 9)),
                    (Pl, CountryEffect::new(-29.0, 2, 6)),
                    // The Dutch reprisal spike: +146% for 4 weeks,
                    // immediately (retaliation was instant).
                    (Nl, CountryEffect::new(146.0, 0, 4)),
                ],
            },
            InterventionCalibration {
                id: EventId::VdosSentencing,
                overall: CountryEffect::new(-24.0, 0, 3),
                by_country: vec![
                    (Uk, CountryEffect::new(-20.0, 0, 3)),
                    (Us, CountryEffect::none()),
                    (Ru, CountryEffect::new(-37.0, 0, 2)),
                    (Fr, CountryEffect::new(-30.0, 0, 2)),
                    (De, CountryEffect::none()),
                    (Pl, CountryEffect::none()),
                    (Nl, CountryEffect::new(-24.0, 0, 3)),
                ],
            },
            InterventionCalibration {
                id: EventId::HackForumsClosure,
                overall: CountryEffect::new(-30.0, 0, 13),
                by_country: vec![
                    (Uk, CountryEffect::new(-48.0, 0, 15)),
                    (Us, CountryEffect::new(-30.0, 0, 7)),
                    (Ru, CountryEffect::new(-13.0, 0, 14)),
                    (Fr, CountryEffect::new(-52.0, 0, 15)),
                    (De, CountryEffect::new(-32.0, 0, 7)),
                    (Pl, CountryEffect::none()),
                    (Nl, CountryEffect::new(-35.0, 0, 15)),
                ],
            },
        ];

        let countries = vec![
            CountryProfile { country: Us, share: 0.45, weekly_trend: 0.013, hump_amplitude: 0.0 },
            CountryProfile { country: Uk, share: 0.08, weekly_trend: 0.010, hump_amplitude: 0.0 },
            CountryProfile { country: Fr, share: 0.10, weekly_trend: 0.009, hump_amplitude: 0.0 },
            CountryProfile { country: De, share: 0.06, weekly_trend: 0.009, hump_amplitude: 0.0 },
            CountryProfile { country: Cn, share: 0.07, weekly_trend: 0.000, hump_amplitude: 2.8 },
            CountryProfile { country: Pl, share: 0.05, weekly_trend: 0.012, hump_amplitude: 0.0 },
            CountryProfile { country: Ru, share: 0.025, weekly_trend: 0.005, hump_amplitude: 0.0 },
            CountryProfile { country: Nl, share: 0.03, weekly_trend: 0.010, hump_amplitude: 0.0 },
            CountryProfile { country: Au, share: 0.03, weekly_trend: 0.008, hump_amplitude: 0.0 },
            CountryProfile { country: Ca, share: 0.03, weekly_trend: 0.008, hump_amplitude: 0.0 },
            CountryProfile { country: Sa, share: 0.02, weekly_trend: 0.008, hump_amplitude: 0.0 },
            CountryProfile { country: RestOfWorld, share: 0.055, weekly_trend: 0.008, hump_amplitude: 0.0 },
        ];

        Calibration {
            global: GlobalModel::default(),
            interventions,
            countries,
            minor_event_dip: -0.06,
            minor_event_weeks: 1,
            scenario_start: Date::new(2014, 7, 1),
            scenario_end: Date::new(2019, 4, 1),
            window_start: Date::new(2016, 6, 6),
            pre_window_log_level: 10.289,
            nca_uk_trend: 0.000,
            nca_recovery: Date::new(2018, 8, 6),
        }
    }
}

impl Calibration {
    /// Profile for one country.
    pub fn country(&self, country: Country) -> &CountryProfile {
        self.countries
            .iter()
            .find(|p| p.country == country)
            .expect("country profile present")
    }

    /// Calibration for one intervention, if it is one of the significant
    /// five.
    pub fn intervention(&self, id: EventId) -> Option<&InterventionCalibration> {
        self.interventions.iter().find(|i| i.id == id)
    }

    /// The Table 2 countries, in the paper's column order.
    pub fn table2_countries() -> [Country; 7] {
        [
            Country::Uk,
            Country::Us,
            Country::Ru,
            Country::Fr,
            Country::De,
            Country::Pl,
            Country::Nl,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_sum_to_one() {
        let c = Calibration::default();
        let total: f64 = c.countries.iter().map(|p| p.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "total={total}");
    }

    #[test]
    fn five_significant_interventions() {
        let c = Calibration::default();
        assert_eq!(c.interventions.len(), 5);
        let ids: Vec<EventId> = c.interventions.iter().map(|i| i.id).collect();
        assert!(ids.contains(&EventId::Xmas2018));
        assert!(ids.contains(&EventId::HackForumsClosure));
        assert!(ids.contains(&EventId::WebstresserTakedown));
        assert!(ids.contains(&EventId::VdosSentencing));
        assert!(ids.contains(&EventId::MiraiSentencing2));
    }

    #[test]
    fn table1_coefficients_match_effects() {
        // coef = ln(1 + mean%) should land near Table 1's log coefficients.
        let c = Calibration::default();
        let xmas = c.intervention(EventId::Xmas2018).unwrap();
        assert!((xmas.overall.coef() - (-0.386)).abs() < 0.02); // Table 1: −0.393
        let hf = c.intervention(EventId::HackForumsClosure).unwrap();
        assert!((hf.overall.coef() - (-0.357)).abs() < 0.02); // Table 1: −0.360
        let mirai = c.intervention(EventId::MiraiSentencing2).unwrap();
        assert!((mirai.overall.coef() - (-0.511)).abs() < 0.02); // Table 1: −0.516
        let wb = c.intervention(EventId::WebstresserTakedown).unwrap();
        assert!((wb.overall.coef() - (-0.236)).abs() < 0.02); // Table 1: −0.238
        let vdos = c.intervention(EventId::VdosSentencing).unwrap();
        assert!((vdos.overall.coef() - (-0.274)).abs() < 0.02); // Table 1: −0.275
    }

    #[test]
    fn china_is_insulated_from_everything() {
        let c = Calibration::default();
        for i in &c.interventions {
            let e = i.effect_in(Country::Cn);
            assert!(!e.significant);
            assert_eq!(e.coef(), 0.0);
        }
    }

    #[test]
    fn nl_reprisal_is_positive() {
        let c = Calibration::default();
        let wb = c.intervention(EventId::WebstresserTakedown).unwrap();
        let nl = wb.effect_in(Country::Nl);
        assert!(nl.coef() > 0.8); // ln(2.46) ≈ 0.90
        assert_eq!(nl.duration_weeks, 4);
    }

    #[test]
    fn unlisted_countries_follow_overall() {
        let c = Calibration::default();
        let xmas = c.intervention(EventId::Xmas2018).unwrap();
        let au = xmas.effect_in(Country::Au);
        assert_eq!(au, xmas.overall);
    }

    #[test]
    fn fr_insulated_from_xmas2018() {
        let c = Calibration::default();
        let xmas = c.intervention(EventId::Xmas2018).unwrap();
        assert!(!xmas.effect_in(Country::Fr).significant);
    }

    #[test]
    fn webstresser_is_delayed_a_fortnight() {
        let c = Calibration::default();
        let wb = c.intervention(EventId::WebstresserTakedown).unwrap();
        assert_eq!(wb.overall.delay_weeks, 2);
        // ... except the NL reprisal which was immediate.
        assert_eq!(wb.effect_in(Country::Nl).delay_weeks, 0);
    }

    #[test]
    fn seasonal_vector_matches_table1() {
        let g = GlobalModel::default();
        assert_eq!(g.seasonal.len(), 11);
        assert!((g.seasonal[0] - 0.076).abs() < 1e-12); // February
        assert!((g.seasonal[10] - 0.091).abs() < 1e-12); // December
        assert!((g.easter + 0.016).abs() < 1e-12);
        assert!((g.weekly_trend - 0.010).abs() < 1e-12);
        assert!((g.log_level - 10.289).abs() < 1e-12);
    }
}
