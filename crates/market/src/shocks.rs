//! Composable intervention-shock primitives and the [`ScenarioSpec`]
//! type that names a timed composition of them.
//!
//! The source paper hard-wires five police interventions into the demand
//! model ([`crate::demand::country_log_intensity`]) and the population
//! dynamics ([`crate::lifecycle::MarketShock`]). The successor literature
//! shows the intervention space is richer: coordinated global takedowns
//! with seized-domain redirects and deterrence messaging (Vu et al.,
//! arXiv 2502.04753), rebrand/resurrection with customer migration after
//! a takedown (Kopp et al., arXiv 1909.07455), and payment-infrastructure
//! undermining (Karami et al., arXiv 1508.03410). This module expresses
//! all of them — the paper's and the successors' — as small composable
//! primitives so that any intervention programme can be simulated by the
//! same market engine.
//!
//! A [`Shock`] is a [`ShockKind`] anchored to a calendar date (applied in
//! the week containing that date). Shocks come in two families:
//!
//! * **Demand-side** shocks perturb the expected log attack intensity of
//!   the counterfactual demand model
//!   ([`crate::demand::scenario_log_intensity`]): [`ShockKind::DemandShift`],
//!   [`ShockKind::Reprisal`], [`ShockKind::DomainSeizure`],
//!   [`ShockKind::PaymentFriction`], [`ShockKind::Deterrence`]. Their
//!   composition is a *sum of log deltas*, so demand-side shocks commute.
//! * **Structural** shocks mutate the booter population
//!   ([`crate::lifecycle::Population::step_scenario`]):
//!   [`ShockKind::SupplyCut`], [`ShockKind::Displacement`],
//!   [`ShockKind::Rebrand`]. They are applied deterministically (no RNG
//!   draws) in the order they appear in the spec, and do **not** commute:
//!   a `Displacement` absorbs the weight closed by the `SupplyCut`s listed
//!   before it in the same week (DESIGN.md §5j).
//!
//! Every shock's exact decay math and units are documented in
//! `SCENARIOS.md`; the `.scn` text format for specs is parsed by
//! [`crate::scn`].

use booters_netsim::Country;
use booters_timeseries::{Date, InterventionWindow};

/// Which booter size classes a structural shock targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassSel {
    /// Market-dominating services only.
    Major,
    /// Mid-market services only.
    Medium,
    /// Small services only.
    Small,
    /// Any size class.
    Any,
}

impl ClassSel {
    /// Keyword used by the `.scn` format.
    pub fn keyword(self) -> &'static str {
        match self {
            ClassSel::Major => "major",
            ClassSel::Medium => "medium",
            ClassSel::Small => "small",
            ClassSel::Any => "any",
        }
    }

    /// Parse a `.scn` keyword.
    pub fn from_keyword(s: &str) -> Option<ClassSel> {
        Some(match s {
            "major" => ClassSel::Major,
            "medium" => ClassSel::Medium,
            "small" => ClassSel::Small,
            "any" => ClassSel::Any,
            _ => return None,
        })
    }
}

/// One intervention primitive. See the module docs for the demand-side /
/// structural split and `SCENARIOS.md` for the full semantics reference.
#[derive(Debug, Clone, PartialEq)]
pub enum ShockKind {
    /// Structural: permanently close the `count` largest-weight alive
    /// booters of `class` (largest first, booter id breaking ties). The
    /// closed services retire — they do not resurrect through baseline
    /// churn (law enforcement holds the infrastructure) — but a later
    /// [`ShockKind::Rebrand`] can re-open the most recently closed one.
    SupplyCut {
        /// Which size classes are eligible.
        class: ClassSel,
        /// How many booters to close.
        count: u32,
    },
    /// Demand-side: a level shift of `pct` percent on every country's
    /// intensity, starting `delay_weeks` after the shock week and lasting
    /// `duration_weeks` (log-scale coefficient `ln(1 + pct/100)`).
    DemandShift {
        /// Mean percentage change (−32.0 means “−32%”); must be > −100.
        pct: f64,
        /// Weeks between the shock date and effect onset.
        delay_weeks: u32,
        /// Effect duration in weeks.
        duration_weeks: u32,
    },
    /// Structural: the largest surviving booter absorbs `absorb` of the
    /// market weight closed *earlier in the same week's shock list* —
    /// the Xmas2018 pattern where the surviving major ended up with ~60%
    /// of the market. Order-sensitive: list it after the supply cuts it
    /// reacts to.
    Displacement {
        /// Fraction of just-closed weight absorbed, in `[0, 1]`.
        absorb: f64,
    },
    /// Demand-side: a country-confined shift of `pct` percent for
    /// `duration_weeks`, starting immediately — the Webstresser pattern
    /// where NL attacks *rose* 146% while everywhere else fell
    /// (reprisal/Streisand response).
    Reprisal {
        /// The single affected victim country.
        country: Country,
        /// Mean percentage change; must be > −100.
        pct: f64,
        /// Effect duration in weeks.
        duration_weeks: u32,
    },
    /// Demand-side: seizure of `domains` booter front domains cuts demand
    /// by `pct` percent. After `lag_weeks`, a fraction `recovery` of the
    /// *lost* demand returns (customers find successor domains — Vu et
    /// al. measure substantial but partial recovery); the residual cut
    /// `pct·(1 − recovery)` persists until `duration_weeks` elapse.
    DomainSeizure {
        /// Number of seized domains (reporting flavour; Vu et al.: 27).
        domains: u32,
        /// Initial mean percentage change; must be > −100 (and negative
        /// to model a seizure).
        pct: f64,
        /// Fraction of the lost demand that returns after the lag, `[0, 1]`.
        recovery: f64,
        /// Weeks of full effect before partial recovery.
        lag_weeks: u32,
        /// Total effect duration in weeks (≥ `lag_weeks`).
        duration_weeks: u32,
    },
    /// Structural: the most recently closed booter re-opens "under a
    /// similar name", keeping `migration` of its former market weight
    /// (Kopp et al.: customers migrate to the rebrand, but not all of
    /// them). Ties on the closing week resolve to the largest weight,
    /// then the smallest id.
    Rebrand {
        /// Fraction of the former weight the rebrand retains, `[0, 1]`.
        migration: f64,
    },
    /// Demand-side: payment-infrastructure friction (processor
    /// blacklisting, seized wallets — Karami et al.) shifts every
    /// country's intensity by `pct` percent for `duration_weeks`,
    /// starting immediately.
    PaymentFriction {
        /// Mean percentage change; must be > −100.
        pct: f64,
        /// Effect duration in weeks.
        duration_weeks: u32,
    },
    /// Demand-side: deterrence messaging (search-ad redirects, press
    /// coverage) with an initial effect of `pct` percent that decays
    /// exponentially: in week `w` since the shock the log coefficient is
    /// `ln(1 + pct/100) · 2^(−w / half_life_weeks)`. The effect never
    /// switches off; it decays below measurability.
    Deterrence {
        /// Initial mean percentage change; must be > −100.
        pct: f64,
        /// Half-life of the log-scale effect, in weeks (> 0).
        half_life_weeks: f64,
    },
}

impl ShockKind {
    /// The `.scn` keyword for this shock kind.
    pub fn keyword(&self) -> &'static str {
        match self {
            ShockKind::SupplyCut { .. } => "supply_cut",
            ShockKind::DemandShift { .. } => "demand_shift",
            ShockKind::Displacement { .. } => "displacement",
            ShockKind::Reprisal { .. } => "reprisal",
            ShockKind::DomainSeizure { .. } => "domain_seizure",
            ShockKind::Rebrand { .. } => "rebrand",
            ShockKind::PaymentFriction { .. } => "payment_friction",
            ShockKind::Deterrence { .. } => "deterrence",
        }
    }

    /// Whether this kind perturbs demand (vs the population structure).
    pub fn is_demand_side(&self) -> bool {
        matches!(
            self,
            ShockKind::DemandShift { .. }
                | ShockKind::Reprisal { .. }
                | ShockKind::DomainSeizure { .. }
                | ShockKind::PaymentFriction { .. }
                | ShockKind::Deterrence { .. }
        )
    }
}

/// A [`ShockKind`] anchored to a calendar date. The shock lands in the
/// week containing `date` (structural kinds) or starts its effect clock
/// at that week (demand-side kinds).
#[derive(Debug, Clone, PartialEq)]
pub struct Shock {
    /// Anchor date; the effective week is `date.week_start()`.
    pub date: Date,
    /// What happens.
    pub kind: ShockKind,
}

/// A named, ordered composition of timed shocks — one intervention
/// programme the market simulator can play out end to end.
///
/// Distinct from `booters_core::Scenario` (a *simulated run*): a
/// `ScenarioSpec` is the *description* that configures one
/// (`MarketConfig::scenario`). Specs round-trip through the `.scn` text
/// format: [`ScenarioSpec::to_scn`] is the canonical formatter and
/// `crate::scn::parse_scn` the parser.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Machine name (`[a-z0-9_-]+`), used in file names and goldens.
    pub name: String,
    /// Human title shown in reports.
    pub title: String,
    /// Literature citation, when the scenario reproduces a published
    /// intervention.
    pub cite: Option<String>,
    /// The shocks, in application order (order matters for structural
    /// shocks sharing a week — see the module docs).
    pub shocks: Vec<Shock>,
}

impl ScenarioSpec {
    /// An empty spec: the no-intervention counterfactual baseline.
    pub fn baseline() -> ScenarioSpec {
        ScenarioSpec {
            name: "baseline".to_string(),
            title: "No-intervention counterfactual".to_string(),
            cite: None,
            shocks: Vec::new(),
        }
    }

    /// Sum of all demand-side log deltas active for `country` in the week
    /// starting at `monday` (which must be a Monday). Structural shocks
    /// contribute nothing here — they act through the population.
    pub fn log_demand_delta(&self, country: Country, monday: Date) -> f64 {
        let mut delta = 0.0;
        for shock in &self.shocks {
            let onset = shock.date.week_start();
            let weeks = monday.days_since(onset) as f64 / 7.0;
            if weeks < 0.0 {
                continue;
            }
            let w = weeks as u32;
            delta += match shock.kind {
                ShockKind::DemandShift {
                    pct,
                    delay_weeks,
                    duration_weeks,
                } => {
                    if w >= delay_weeks && w < delay_weeks + duration_weeks {
                        log_coef(pct)
                    } else {
                        0.0
                    }
                }
                ShockKind::Reprisal {
                    country: c,
                    pct,
                    duration_weeks,
                } => {
                    if c == country && w < duration_weeks {
                        log_coef(pct)
                    } else {
                        0.0
                    }
                }
                ShockKind::DomainSeizure {
                    pct,
                    recovery,
                    lag_weeks,
                    duration_weeks,
                    ..
                } => {
                    if w < lag_weeks {
                        log_coef(pct)
                    } else if w < duration_weeks {
                        log_coef(pct * (1.0 - recovery))
                    } else {
                        0.0
                    }
                }
                ShockKind::PaymentFriction {
                    pct,
                    duration_weeks,
                } => {
                    if w < duration_weeks {
                        log_coef(pct)
                    } else {
                        0.0
                    }
                }
                ShockKind::Deterrence {
                    pct,
                    half_life_weeks,
                } => log_coef(pct) * (-(w as f64) / half_life_weeks).exp2(),
                ShockKind::SupplyCut { .. }
                | ShockKind::Displacement { .. }
                | ShockKind::Rebrand { .. } => 0.0,
            };
        }
        delta
    }

    /// Structural shock kinds landing in the week starting at `monday`,
    /// in spec order.
    pub fn structural_for(&self, monday: Date) -> Vec<&ShockKind> {
        self.shocks
            .iter()
            .filter(|s| !s.kind.is_demand_side() && s.date.week_start() == monday)
            .map(|s| &s.kind)
            .collect()
    }

    /// Intervention windows for the analysis pipeline: one dummy per
    /// demand-side shock, named `s{i}_{keyword}` by position so windows
    /// are unique even when a kind repeats. A [`ShockKind::Deterrence`]
    /// window approximates the exponential decay with a box of
    /// `ceil(3·half_life)` weeks (~88% of the integrated effect);
    /// structural shocks get no window — they reallocate volume without
    /// changing country totals.
    pub fn windows(&self) -> Vec<InterventionWindow> {
        self.shocks
            .iter()
            .enumerate()
            .filter_map(|(i, shock)| {
                let name = format!("s{}_{}", i + 1, shock.kind.keyword());
                let (delay, duration) = match shock.kind {
                    ShockKind::DemandShift {
                        delay_weeks,
                        duration_weeks,
                        ..
                    } => (delay_weeks, duration_weeks),
                    ShockKind::Reprisal { duration_weeks, .. }
                    | ShockKind::DomainSeizure { duration_weeks, .. }
                    | ShockKind::PaymentFriction { duration_weeks, .. } => (0, duration_weeks),
                    ShockKind::Deterrence {
                        half_life_weeks, ..
                    } => (0, (3.0 * half_life_weeks).ceil().max(1.0) as u32),
                    ShockKind::SupplyCut { .. }
                    | ShockKind::Displacement { .. }
                    | ShockKind::Rebrand { .. } => return None,
                };
                Some(InterventionWindow::delayed(
                    &name,
                    shock.date,
                    delay as usize,
                    duration as usize,
                ))
            })
            .collect()
    }

    /// Render the canonical `.scn` source for this spec. Parsing the
    /// result with `crate::scn::parse_scn` yields the spec back exactly
    /// (Rust's `f64` `Display` is shortest-round-trip), which the
    /// `forall!` property suite in `crates/market/tests/scn.rs` pins.
    pub fn to_scn(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scenario {}", self.name);
        let _ = writeln!(out, "title \"{}\"", self.title);
        if let Some(cite) = &self.cite {
            let _ = writeln!(out, "cite \"{cite}\"");
        }
        for shock in &self.shocks {
            let _ = write!(out, "shock {} {}", shock.date, shock.kind.keyword());
            match &shock.kind {
                ShockKind::SupplyCut { class, count } => {
                    let _ = write!(out, " class={} count={count}", class.keyword());
                }
                ShockKind::DemandShift {
                    pct,
                    delay_weeks,
                    duration_weeks,
                } => {
                    let _ = write!(
                        out,
                        " pct={pct} delay={delay_weeks} duration={duration_weeks}"
                    );
                }
                ShockKind::Displacement { absorb } => {
                    let _ = write!(out, " absorb={absorb}");
                }
                ShockKind::Reprisal {
                    country,
                    pct,
                    duration_weeks,
                } => {
                    let _ = write!(
                        out,
                        " country={} pct={pct} duration={duration_weeks}",
                        country.label()
                    );
                }
                ShockKind::DomainSeizure {
                    domains,
                    pct,
                    recovery,
                    lag_weeks,
                    duration_weeks,
                } => {
                    let _ = write!(
                        out,
                        " domains={domains} pct={pct} recovery={recovery} \
                         lag={lag_weeks} duration={duration_weeks}"
                    );
                }
                ShockKind::Rebrand { migration } => {
                    let _ = write!(out, " migration={migration}");
                }
                ShockKind::PaymentFriction {
                    pct,
                    duration_weeks,
                } => {
                    let _ = write!(out, " pct={pct} duration={duration_weeks}");
                }
                ShockKind::Deterrence {
                    pct,
                    half_life_weeks,
                } => {
                    let _ = write!(out, " pct={pct} half_life={half_life_weeks}");
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Log-scale coefficient of a percentage change: `ln(1 + pct/100)`.
fn log_coef(pct: f64) -> f64 {
    (1.0 + pct / 100.0).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with(kind: ShockKind) -> ScenarioSpec {
        ScenarioSpec {
            name: "t".into(),
            title: "t".into(),
            cite: None,
            shocks: vec![Shock {
                date: Date::new(2018, 1, 10),
                kind,
            }],
        }
    }

    #[test]
    fn demand_shift_respects_delay_and_duration() {
        let s = spec_with(ShockKind::DemandShift {
            pct: -50.0,
            delay_weeks: 2,
            duration_weeks: 3,
        });
        let onset = Date::new(2018, 1, 10).week_start();
        assert_eq!(s.log_demand_delta(Country::Us, onset), 0.0);
        assert_eq!(s.log_demand_delta(Country::Us, onset.add_days(7)), 0.0);
        let active = s.log_demand_delta(Country::Us, onset.add_days(14));
        assert!((active - 0.5f64.ln()).abs() < 1e-12, "active={active}");
        assert_eq!(s.log_demand_delta(Country::Us, onset.add_days(35)), 0.0);
    }

    #[test]
    fn reprisal_confines_to_its_country() {
        let s = spec_with(ShockKind::Reprisal {
            country: Country::Nl,
            pct: 146.0,
            duration_weeks: 4,
        });
        let onset = Date::new(2018, 1, 10).week_start();
        assert!(s.log_demand_delta(Country::Nl, onset) > 0.89);
        assert_eq!(s.log_demand_delta(Country::Us, onset), 0.0);
        assert_eq!(s.log_demand_delta(Country::Nl, onset.add_days(28)), 0.0);
    }

    #[test]
    fn domain_seizure_recovers_partially_after_lag() {
        let s = spec_with(ShockKind::DomainSeizure {
            domains: 27,
            pct: -40.0,
            recovery: 0.5,
            lag_weeks: 2,
            duration_weeks: 6,
        });
        let onset = Date::new(2018, 1, 10).week_start();
        let full = s.log_demand_delta(Country::Us, onset);
        let partial = s.log_demand_delta(Country::Us, onset.add_days(21));
        assert!((full - 0.6f64.ln()).abs() < 1e-12);
        assert!((partial - 0.8f64.ln()).abs() < 1e-12);
        assert!(partial > full, "recovery must shrink the cut");
        assert_eq!(s.log_demand_delta(Country::Us, onset.add_days(42)), 0.0);
    }

    #[test]
    fn deterrence_halves_every_half_life() {
        let s = spec_with(ShockKind::Deterrence {
            pct: -20.0,
            half_life_weeks: 4.0,
        });
        let onset = Date::new(2018, 1, 10).week_start();
        let d0 = s.log_demand_delta(Country::Us, onset);
        let d4 = s.log_demand_delta(Country::Us, onset.add_days(28));
        let d8 = s.log_demand_delta(Country::Us, onset.add_days(56));
        assert!((d4 - d0 / 2.0).abs() < 1e-12, "d0={d0} d4={d4}");
        assert!((d8 - d0 / 4.0).abs() < 1e-12);
        assert!(d0 < 0.0 && d8 > d0);
    }

    #[test]
    fn structural_kinds_are_demand_silent() {
        for kind in [
            ShockKind::SupplyCut {
                class: ClassSel::Major,
                count: 2,
            },
            ShockKind::Displacement { absorb: 0.6 },
            ShockKind::Rebrand { migration: 0.7 },
        ] {
            let s = spec_with(kind);
            let onset = Date::new(2018, 1, 10).week_start();
            assert_eq!(s.log_demand_delta(Country::Us, onset), 0.0);
            assert_eq!(s.structural_for(onset).len(), 1);
            assert!(s.windows().is_empty());
        }
    }

    #[test]
    fn windows_are_uniquely_named_and_deterrence_is_boxed() {
        let spec = ScenarioSpec {
            name: "w".into(),
            title: "w".into(),
            cite: None,
            shocks: vec![
                Shock {
                    date: Date::new(2018, 1, 10),
                    kind: ShockKind::DemandShift {
                        pct: -30.0,
                        delay_weeks: 1,
                        duration_weeks: 5,
                    },
                },
                Shock {
                    date: Date::new(2018, 3, 1),
                    kind: ShockKind::Deterrence {
                        pct: -10.0,
                        half_life_weeks: 4.0,
                    },
                },
                Shock {
                    date: Date::new(2018, 3, 1),
                    kind: ShockKind::SupplyCut {
                        class: ClassSel::Any,
                        count: 1,
                    },
                },
            ],
        };
        let ws = spec.windows();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].name, "s1_demand_shift");
        assert_eq!(ws[0].delay_weeks, 1);
        assert_eq!(ws[0].duration_weeks, 5);
        assert_eq!(ws[1].name, "s2_deterrence");
        assert_eq!(ws[1].duration_weeks, 12); // ceil(3 · 4)
    }

    #[test]
    fn baseline_is_empty() {
        let b = ScenarioSpec::baseline();
        assert!(b.shocks.is_empty());
        assert!(b.windows().is_empty());
        assert_eq!(b.log_demand_delta(Country::Us, Date::new(2018, 1, 8)), 0.0);
    }
}
