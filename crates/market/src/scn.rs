//! Hand-rolled parser for the line-oriented `.scn` scenario format.
//!
//! Like `booters-core`'s run-report JSON writer, this parser is written
//! from scratch so the workspace stays dependency-free. The grammar is
//! deliberately small — one directive per line:
//!
//! ```text
//! # comment (whole line; blank lines are skipped)
//! scenario <name>                  # first directive, exactly once
//! title "<free text>"              # optional; defaults to the name
//! cite "<free text>"               # optional literature citation
//! shock <YYYY-MM-DD> <kind> key=value ...
//! ```
//!
//! `<name>` matches `[a-z0-9_-]+`. Quoted strings run to the next `"`
//! with no escape sequences. Shock kinds and their fields are exactly
//! the variants of [`ShockKind`] (see `SCENARIOS.md` for the full field
//! reference). Shocks apply in file order, which matters for structural
//! shocks sharing a week (DESIGN.md §5j).
//!
//! Errors are typed ([`ScnError`]) and carry a 1-based line and column
//! (byte offset of the offending token), so callers can surface
//! `line 4, col 27: unknown field `pct2` for shock `demand_shift``
//! diagnostics without string matching. [`parse_scn`] is the exact
//! inverse of [`ScenarioSpec::to_scn`] on canonical sources; the
//! `forall!` suite in `crates/market/tests/scn.rs` pins the round-trip.

use crate::shocks::{ClassSel, ScenarioSpec, Shock, ShockKind};
use booters_netsim::Country;
use booters_timeseries::date::days_in_month;
use booters_timeseries::Date;

/// A parse failure with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScnError {
    /// 1-based line number of the offending token.
    pub line: usize,
    /// 1-based column (byte offset within the line) of the offending
    /// token. Errors about something *missing* point one past the end
    /// of the relevant line.
    pub col: usize,
    /// What went wrong.
    pub kind: ScnErrorKind,
}

impl std::fmt::Display for ScnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}, col {}: {}", self.line, self.col, self.kind)
    }
}

impl std::error::Error for ScnError {}

/// The reason a `.scn` source failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScnErrorKind {
    /// The first directive was not `scenario`, or the file had none.
    MissingScenario,
    /// A second `scenario` directive appeared.
    DuplicateScenario,
    /// A line started with an unrecognised directive word.
    UnknownDirective(String),
    /// A directive was missing its operand (payload: the directive).
    MissingValue(String),
    /// The scenario name did not match `[a-z0-9_-]+` (payload: the name).
    BadName(String),
    /// A directive needing a quoted string found something else
    /// (payload: the directive).
    ExpectedString(String),
    /// A quoted string had no closing `"`.
    UnterminatedString,
    /// Extra tokens followed a complete directive (payload: the first
    /// trailing token).
    TrailingInput(String),
    /// A shock date was not a valid `YYYY-MM-DD` (payload: the token).
    BadDate(String),
    /// An unrecognised shock kind (payload: the keyword).
    UnknownShock(String),
    /// A shock argument was not `field=value` (payload: the token).
    BadField(String),
    /// The same field appeared twice in one shock (payload: the field).
    DuplicateField(String),
    /// A field that the shock kind does not accept.
    UnknownField {
        /// The offending field name.
        field: String,
        /// The shock kind it was given to.
        shock: String,
    },
    /// A required field was absent.
    MissingField {
        /// The missing field name.
        field: String,
        /// The shock kind that requires it.
        shock: String,
    },
    /// A field value failed numeric parsing.
    BadNumber {
        /// The unparseable text.
        value: String,
        /// The field it was given for.
        field: String,
    },
    /// A `country=` value was not a known label (payload: the value).
    UnknownCountry(String),
    /// A `class=` value was not a known size class (payload: the value).
    UnknownClass(String),
    /// A numeric field parsed but violated its range constraint.
    OutOfRange {
        /// The field name.
        field: String,
        /// Human-readable constraint, e.g. `must be in [0, 1]`.
        why: String,
    },
}

impl std::fmt::Display for ScnErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScnErrorKind::MissingScenario => {
                write!(f, "expected `scenario <name>` as the first directive")
            }
            ScnErrorKind::DuplicateScenario => write!(f, "duplicate `scenario` directive"),
            ScnErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ScnErrorKind::MissingValue(d) => write!(f, "expected a value after `{d}`"),
            ScnErrorKind::BadName(n) => {
                write!(f, "invalid scenario name `{n}` (expected [a-z0-9_-]+)")
            }
            ScnErrorKind::ExpectedString(d) => write!(f, "expected a quoted string after `{d}`"),
            ScnErrorKind::UnterminatedString => write!(f, "unterminated string"),
            ScnErrorKind::TrailingInput(t) => write!(f, "unexpected trailing input `{t}`"),
            ScnErrorKind::BadDate(t) => write!(f, "invalid date `{t}` (expected YYYY-MM-DD)"),
            ScnErrorKind::UnknownShock(k) => write!(f, "unknown shock kind `{k}`"),
            ScnErrorKind::BadField(t) => write!(f, "expected `field=value`, found `{t}`"),
            ScnErrorKind::DuplicateField(k) => write!(f, "duplicate field `{k}`"),
            ScnErrorKind::UnknownField { field, shock } => {
                write!(f, "unknown field `{field}` for shock `{shock}`")
            }
            ScnErrorKind::MissingField { field, shock } => {
                write!(f, "missing field `{field}` for shock `{shock}`")
            }
            ScnErrorKind::BadNumber { value, field } => {
                write!(f, "invalid number `{value}` for field `{field}`")
            }
            ScnErrorKind::UnknownCountry(v) => write!(f, "unknown country code `{v}`"),
            ScnErrorKind::UnknownClass(v) => write!(f, "unknown size class `{v}`"),
            ScnErrorKind::OutOfRange { field, why } => {
                write!(f, "field `{field}` out of range: {why}")
            }
        }
    }
}

fn err(line: usize, col: usize, kind: ScnErrorKind) -> ScnError {
    ScnError { line, col, kind }
}

/// One whitespace-delimited token with its 1-based byte column.
struct Tok<'a> {
    text: &'a str,
    col: usize,
}

fn tokens(line: &str) -> Vec<Tok<'_>> {
    let bytes = line.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b' ' || bytes[i] == b'\t' {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && bytes[i] != b' ' && bytes[i] != b'\t' {
            i += 1;
        }
        out.push(Tok {
            text: &line[start..i],
            col: start + 1,
        });
    }
    out
}

fn is_valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
}

fn parse_date(tok: &str) -> Option<Date> {
    let b = tok.as_bytes();
    if b.len() != 10 || b[4] != b'-' || b[7] != b'-' {
        return None;
    }
    for (i, &c) in b.iter().enumerate() {
        if i != 4 && i != 7 && !c.is_ascii_digit() {
            return None;
        }
    }
    let year: i32 = tok[0..4].parse().ok()?;
    let month: u8 = tok[5..7].parse().ok()?;
    let day: u8 = tok[8..10].parse().ok()?;
    if !(1..=12).contains(&month) || day < 1 || day > days_in_month(year, month) {
        return None;
    }
    Some(Date::new(year, month, day))
}

/// Parse a quoted-string directive operand (`title`, `cite`). Returns
/// the string body, or the positioned error.
fn parse_quoted(
    line: &str,
    lineno: usize,
    directive: &Tok<'_>,
) -> Result<(String, ()), ScnError> {
    let after = directive.col - 1 + directive.text.len();
    let rest = &line[after..];
    let Some(off) = rest.find(|c: char| c != ' ' && c != '\t') else {
        return Err(err(
            lineno,
            line.len() + 1,
            ScnErrorKind::MissingValue(directive.text.to_string()),
        ));
    };
    let start = after + off;
    if line.as_bytes()[start] != b'"' {
        return Err(err(
            lineno,
            start + 1,
            ScnErrorKind::ExpectedString(directive.text.to_string()),
        ));
    }
    let body_start = start + 1;
    let Some(close) = line[body_start..].find('"') else {
        return Err(err(lineno, start + 1, ScnErrorKind::UnterminatedString));
    };
    let value = line[body_start..body_start + close].to_string();
    let tail_start = body_start + close + 1;
    let tail = &line[tail_start..];
    if let Some(toff) = tail.find(|c: char| c != ' ' && c != '\t') {
        let t: String = tail[toff..]
            .split([' ', '\t'])
            .next()
            .unwrap_or("")
            .to_string();
        return Err(err(
            lineno,
            tail_start + toff + 1,
            ScnErrorKind::TrailingInput(t),
        ));
    }
    Ok((value, ()))
}

/// One parsed `field=value` with token positions for diagnostics.
struct Field<'a> {
    key: &'a str,
    value: &'a str,
    key_col: usize,
    value_col: usize,
}

/// Typed accessors over a shock's field list: each lookup consumes
/// knowledge of which fields are legal so unknown-field detection can
/// run after construction.
struct Fields<'a> {
    shock: &'a str,
    lineno: usize,
    eol_col: usize,
    entries: Vec<Field<'a>>,
}

impl<'a> Fields<'a> {
    fn get(&self, key: &str) -> Result<&Field<'a>, ScnError> {
        self.entries.iter().find(|f| f.key == key).ok_or_else(|| {
            err(
                self.lineno,
                self.eol_col,
                ScnErrorKind::MissingField {
                    field: key.to_string(),
                    shock: self.shock.to_string(),
                },
            )
        })
    }

    fn u32(&self, key: &str) -> Result<(u32, usize), ScnError> {
        let f = self.get(key)?;
        let v: u32 = f.value.parse().map_err(|_| {
            err(
                self.lineno,
                f.value_col,
                ScnErrorKind::BadNumber {
                    value: f.value.to_string(),
                    field: key.to_string(),
                },
            )
        })?;
        Ok((v, f.value_col))
    }

    fn f64(&self, key: &str) -> Result<(f64, usize), ScnError> {
        let f = self.get(key)?;
        let v: f64 = f.value.parse().map_err(|_| {
            err(
                self.lineno,
                f.value_col,
                ScnErrorKind::BadNumber {
                    value: f.value.to_string(),
                    field: key.to_string(),
                },
            )
        })?;
        if !v.is_finite() {
            return Err(self.out_of_range(key, f.value_col, "must be finite"));
        }
        Ok((v, f.value_col))
    }

    fn out_of_range(&self, field: &str, col: usize, why: &str) -> ScnError {
        err(
            self.lineno,
            col,
            ScnErrorKind::OutOfRange {
                field: field.to_string(),
                why: why.to_string(),
            },
        )
    }

    /// Reject any field not in `allowed` (call after all gets succeed).
    fn check_known(&self, allowed: &[&str]) -> Result<(), ScnError> {
        for f in &self.entries {
            if !allowed.contains(&f.key) {
                return Err(err(
                    self.lineno,
                    f.key_col,
                    ScnErrorKind::UnknownField {
                        field: f.key.to_string(),
                        shock: self.shock.to_string(),
                    },
                ));
            }
        }
        Ok(())
    }

    fn pct(&self, key: &str) -> Result<f64, ScnError> {
        let (v, col) = self.f64(key)?;
        if v <= -100.0 {
            return Err(self.out_of_range(key, col, "must be greater than -100"));
        }
        Ok(v)
    }

    fn fraction(&self, key: &str) -> Result<f64, ScnError> {
        let (v, col) = self.f64(key)?;
        if !(0.0..=1.0).contains(&v) {
            return Err(self.out_of_range(key, col, "must be in [0, 1]"));
        }
        Ok(v)
    }

    fn at_least_one(&self, key: &str) -> Result<u32, ScnError> {
        let (v, col) = self.u32(key)?;
        if v < 1 {
            return Err(self.out_of_range(key, col, "must be at least 1"));
        }
        Ok(v)
    }
}

fn parse_shock_kind(
    kind_tok: &Tok<'_>,
    fields: Fields<'_>,
) -> Result<ShockKind, ScnError> {
    let lineno = fields.lineno;
    match kind_tok.text {
        "supply_cut" => {
            let class_f = fields.get("class")?;
            let class = ClassSel::from_keyword(class_f.value).ok_or_else(|| {
                err(
                    lineno,
                    class_f.value_col,
                    ScnErrorKind::UnknownClass(class_f.value.to_string()),
                )
            })?;
            let count = fields.at_least_one("count")?;
            fields.check_known(&["class", "count"])?;
            Ok(ShockKind::SupplyCut { class, count })
        }
        "demand_shift" => {
            let pct = fields.pct("pct")?;
            let (delay_weeks, _) = fields.u32("delay")?;
            let duration_weeks = fields.at_least_one("duration")?;
            fields.check_known(&["pct", "delay", "duration"])?;
            Ok(ShockKind::DemandShift {
                pct,
                delay_weeks,
                duration_weeks,
            })
        }
        "displacement" => {
            let absorb = fields.fraction("absorb")?;
            fields.check_known(&["absorb"])?;
            Ok(ShockKind::Displacement { absorb })
        }
        "reprisal" => {
            let country_f = fields.get("country")?;
            let country = Country::from_label(country_f.value).ok_or_else(|| {
                err(
                    lineno,
                    country_f.value_col,
                    ScnErrorKind::UnknownCountry(country_f.value.to_string()),
                )
            })?;
            let pct = fields.pct("pct")?;
            let duration_weeks = fields.at_least_one("duration")?;
            fields.check_known(&["country", "pct", "duration"])?;
            Ok(ShockKind::Reprisal {
                country,
                pct,
                duration_weeks,
            })
        }
        "domain_seizure" => {
            let domains = fields.at_least_one("domains")?;
            let pct = fields.pct("pct")?;
            let recovery = fields.fraction("recovery")?;
            let (lag_weeks, lag_col) = fields.u32("lag")?;
            let duration_weeks = fields.at_least_one("duration")?;
            if lag_weeks > duration_weeks {
                return Err(fields.out_of_range("lag", lag_col, "must not exceed duration"));
            }
            fields.check_known(&["domains", "pct", "recovery", "lag", "duration"])?;
            Ok(ShockKind::DomainSeizure {
                domains,
                pct,
                recovery,
                lag_weeks,
                duration_weeks,
            })
        }
        "rebrand" => {
            let migration = fields.fraction("migration")?;
            fields.check_known(&["migration"])?;
            Ok(ShockKind::Rebrand { migration })
        }
        "payment_friction" => {
            let pct = fields.pct("pct")?;
            let duration_weeks = fields.at_least_one("duration")?;
            fields.check_known(&["pct", "duration"])?;
            Ok(ShockKind::PaymentFriction {
                pct,
                duration_weeks,
            })
        }
        "deterrence" => {
            let pct = fields.pct("pct")?;
            let (half_life_weeks, hl_col) = fields.f64("half_life")?;
            if half_life_weeks <= 0.0 {
                return Err(fields.out_of_range("half_life", hl_col, "must be positive"));
            }
            fields.check_known(&["pct", "half_life"])?;
            Ok(ShockKind::Deterrence {
                pct,
                half_life_weeks,
            })
        }
        other => Err(err(
            lineno,
            kind_tok.col,
            ScnErrorKind::UnknownShock(other.to_string()),
        )),
    }
}

/// Parse one `.scn` source into a [`ScenarioSpec`].
///
/// On canonical sources this is the exact inverse of
/// [`ScenarioSpec::to_scn`]:
///
/// ```
/// use booters_market::{parse_scn, ScenarioSpec};
/// let spec = parse_scn("scenario demo\ntitle \"Demo\"\n\
///                       shock 2018-01-10 demand_shift pct=-30 delay=0 duration=4\n")
///     .unwrap();
/// assert_eq!(parse_scn(&spec.to_scn()), Ok(spec));
/// ```
pub fn parse_scn(src: &str) -> Result<ScenarioSpec, ScnError> {
    let mut name: Option<String> = None;
    let mut title: Option<String> = None;
    let mut cite: Option<String> = None;
    let mut shocks: Vec<Shock> = Vec::new();
    let mut n_lines = 0;

    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        n_lines = lineno;
        let toks = tokens(line);
        let Some(first) = toks.first() else { continue };
        if first.text.starts_with('#') {
            continue;
        }
        if name.is_none() && first.text != "scenario" {
            return Err(err(lineno, first.col, ScnErrorKind::MissingScenario));
        }
        match first.text {
            "scenario" => {
                if name.is_some() {
                    return Err(err(lineno, first.col, ScnErrorKind::DuplicateScenario));
                }
                let Some(val) = toks.get(1) else {
                    return Err(err(
                        lineno,
                        line.len() + 1,
                        ScnErrorKind::MissingValue("scenario".to_string()),
                    ));
                };
                if !is_valid_name(val.text) {
                    return Err(err(
                        lineno,
                        val.col,
                        ScnErrorKind::BadName(val.text.to_string()),
                    ));
                }
                if let Some(extra) = toks.get(2) {
                    return Err(err(
                        lineno,
                        extra.col,
                        ScnErrorKind::TrailingInput(extra.text.to_string()),
                    ));
                }
                name = Some(val.text.to_string());
            }
            "title" => {
                let (value, ()) = parse_quoted(line, lineno, first)?;
                title = Some(value);
            }
            "cite" => {
                let (value, ()) = parse_quoted(line, lineno, first)?;
                cite = Some(value);
            }
            "shock" => {
                let Some(date_tok) = toks.get(1) else {
                    return Err(err(
                        lineno,
                        line.len() + 1,
                        ScnErrorKind::MissingValue("shock".to_string()),
                    ));
                };
                let Some(date) = parse_date(date_tok.text) else {
                    return Err(err(
                        lineno,
                        date_tok.col,
                        ScnErrorKind::BadDate(date_tok.text.to_string()),
                    ));
                };
                let Some(kind_tok) = toks.get(2) else {
                    return Err(err(
                        lineno,
                        line.len() + 1,
                        ScnErrorKind::MissingValue("shock".to_string()),
                    ));
                };
                let mut entries: Vec<Field<'_>> = Vec::new();
                for t in &toks[3..] {
                    let Some(eq) = t.text.find('=') else {
                        return Err(err(
                            lineno,
                            t.col,
                            ScnErrorKind::BadField(t.text.to_string()),
                        ));
                    };
                    let key = &t.text[..eq];
                    let value = &t.text[eq + 1..];
                    if key.is_empty() || value.is_empty() {
                        return Err(err(
                            lineno,
                            t.col,
                            ScnErrorKind::BadField(t.text.to_string()),
                        ));
                    }
                    if entries.iter().any(|f| f.key == key) {
                        return Err(err(
                            lineno,
                            t.col,
                            ScnErrorKind::DuplicateField(key.to_string()),
                        ));
                    }
                    entries.push(Field {
                        key,
                        value,
                        key_col: t.col,
                        value_col: t.col + eq + 1,
                    });
                }
                let fields = Fields {
                    shock: kind_tok.text,
                    lineno,
                    eol_col: line.len() + 1,
                    entries,
                };
                let kind = parse_shock_kind(kind_tok, fields)?;
                shocks.push(Shock { date, kind });
            }
            other => {
                return Err(err(
                    lineno,
                    first.col,
                    ScnErrorKind::UnknownDirective(other.to_string()),
                ));
            }
        }
    }

    let Some(name) = name else {
        return Err(err(n_lines + 1, 1, ScnErrorKind::MissingScenario));
    };
    let title = title.unwrap_or_else(|| name.clone());
    Ok(ScenarioSpec {
        name,
        title,
        cite,
        shocks,
    })
}

/// Names and `.scn` sources of the eight built-in scenarios — the
/// paper's five interventions plus the three successor-literature
/// programmes — in chronological order of their first shock.
pub const BUILTIN_SOURCES: [(&str, &str); 8] = [
    (
        "hackforums",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/hackforums.scn"
        )),
    ),
    (
        "payment_friction",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/payment_friction.scn"
        )),
    ),
    (
        "rebrand_migration",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/rebrand_migration.scn"
        )),
    ),
    (
        "vdos_sentencing",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/vdos_sentencing.scn"
        )),
    ),
    (
        "webstresser",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/webstresser.scn"
        )),
    ),
    (
        "poweroff",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/poweroff.scn"
        )),
    ),
    (
        "mirai_sentencing",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/mirai_sentencing.scn"
        )),
    ),
    (
        "xmas2018",
        include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../scenarios/xmas2018.scn"
        )),
    ),
];

/// Parse every built-in `.scn` source. Panics if a bundled source is
/// malformed (pinned by tests, so it cannot happen at runtime).
pub fn builtin_scenarios() -> Vec<ScenarioSpec> {
    BUILTIN_SOURCES
        .iter()
        .map(|(name, src)| {
            let spec = parse_scn(src)
                .unwrap_or_else(|e| panic!("built-in scenario `{name}` failed to parse: {e}"));
            assert_eq!(
                spec.name, *name,
                "built-in scenario file name and `scenario` directive disagree"
            );
            spec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_parse_and_cover_all_kinds() {
        let specs = builtin_scenarios();
        assert_eq!(specs.len(), 8);
        let mut keywords: Vec<&str> = specs
            .iter()
            .flat_map(|s| s.shocks.iter().map(|sh| sh.kind.keyword()))
            .collect();
        keywords.sort_unstable();
        keywords.dedup();
        assert_eq!(
            keywords,
            [
                "demand_shift",
                "deterrence",
                "displacement",
                "domain_seizure",
                "payment_friction",
                "rebrand",
                "reprisal",
                "supply_cut",
            ]
        );
    }

    #[test]
    fn builtins_round_trip_through_canonical_form() {
        for spec in builtin_scenarios() {
            let rendered = spec.to_scn();
            assert_eq!(parse_scn(&rendered), Ok(spec.clone()), "{}", spec.name);
        }
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let spec = parse_scn("# header\n\nscenario a\n# mid\ntitle \"A\"\n").unwrap();
        assert_eq!(spec.name, "a");
        assert_eq!(spec.title, "A");
        assert!(spec.cite.is_none());
    }

    #[test]
    fn title_defaults_to_name() {
        let spec = parse_scn("scenario bare\n").unwrap();
        assert_eq!(spec.title, "bare");
    }

    #[test]
    fn error_display_includes_position() {
        let e = parse_scn("scenario a\nshock 2018-13-01 demand_shift\n").unwrap_err();
        assert_eq!(
            e.to_string(),
            "line 2, col 7: invalid date `2018-13-01` (expected YYYY-MM-DD)"
        );
    }
}
