//! Conversion of weekly market output into packet-level attack commands
//! for `booters-netsim`.
//!
//! The market simulator works at weekly aggregates; the honeypot engine
//! works at individual attacks. This module expands a [`WeekOutput`] into
//! [`AttackCommand`]s: victims drawn in the right countries, protocols
//! drawn from the week's mix, durations matching the measured
//! distribution ("over 50% of attacks were less than 5 minutes"), and each
//! command attributed to a booter (whose honeypot-avoidance flag carries
//! through to coverage).

use crate::booter::Booter;
use crate::market::WeekOutput;
use booters_netsim::{AttackCommand, Country, UdpProtocol, VictimAddr};
use booters_testkit::rngs::StdRng;
use booters_testkit::Rng;

/// Seconds in a week.
const WEEK_SECS: u64 = 7 * 86_400;

/// Expand one week into attack commands.
///
/// `booters` supplies per-booter avoidance flags; `week_index_origin` sets
/// the absolute time base (seconds since scenario start for week 0).
/// `limit` caps the number of commands (sampling uniformly across the
/// week's volume) so packet-level runs stay tractable; pass `usize::MAX`
/// for everything.
pub fn commands_for_week(
    out: &WeekOutput,
    booters: &[Booter],
    rng: &mut StdRng,
    limit: usize,
) -> Vec<AttackCommand> {
    let total = out.total;
    if total == 0 {
        return Vec::new();
    }
    let n = (total as usize).min(limit);
    // Sampling probability per unit so every (country, protocol) cell is
    // represented proportionally.
    let keep = n as f64 / total as f64;

    // Booter lookup: id → (avoids, weight) for attribution draws.
    let alive: Vec<(&Booter, f64)> = out
        .booter_attacks
        .iter()
        .filter_map(|(id, cnt)| {
            booters
                .iter()
                .find(|b| b.id == *id)
                .map(|b| (b, *cnt as f64))
        })
        .collect();
    let booter_total: f64 = alive.iter().map(|(_, c)| c).sum();

    let week_base = out.week as u64 * WEEK_SECS;
    let mut commands = Vec::with_capacity(n + 16);
    for country in Country::ALL {
        for (pi, &protocol) in UdpProtocol::ALL.iter().enumerate() {
            let cell = out.country_protocol[country.index()][pi];
            if cell == 0 {
                continue;
            }
            let take = ((cell as f64 * keep).round() as u64).min(cell);
            for _ in 0..take {
                let victim = VictimAddr::sample_in(country, rng);
                let time = week_base + rng.gen_range(0..WEEK_SECS);
                // Duration: ~55% under 5 minutes, tail to 30 minutes.
                let duration_secs = if rng.gen::<f64>() < 0.55 {
                    rng.gen_range(30..300)
                } else {
                    rng.gen_range(300..1800)
                };
                // Attribute to a booter by weight.
                let (booter, avoids) = if booter_total > 0.0 && !alive.is_empty() {
                    let mut pick = rng.gen::<f64>() * booter_total;
                    let mut chosen = alive[alive.len() - 1].0;
                    for (b, c) in &alive {
                        if pick < *c {
                            chosen = b;
                            break;
                        }
                        pick -= c;
                    }
                    (chosen.id, chosen.avoids_honeypots)
                } else {
                    (0, false)
                };
                commands.push(AttackCommand {
                    time,
                    victim,
                    protocol,
                    duration_secs,
                    packets_per_second: rng.gen_range(10_000..100_000),
                    booter,
                    avoids_honeypots: avoids,
                });
            }
        }
    }
    commands.sort_by_key(|c| c.time);
    commands
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::{MarketConfig, MarketSim};
    use booters_testkit::SeedableRng;

    fn one_week() -> (WeekOutput, Vec<Booter>) {
        let mut sim = MarketSim::new(MarketConfig {
            scale: 0.01,
            seed: 5,
            ..MarketConfig::default()
        });
        let w = sim.step().unwrap();
        (w, sim.population().booters().to_vec())
    }

    #[test]
    fn commands_match_week_volume() {
        let (w, booters) = one_week();
        let mut rng = StdRng::seed_from_u64(1);
        let cmds = commands_for_week(&w, &booters, &mut rng, usize::MAX);
        let n = cmds.len() as f64;
        // Per-cell rounding loses/gains a little.
        let slack = 0.05 * w.total as f64 + 60.0;
        assert!(
            (n - w.total as f64).abs() <= slack,
            "commands={n} total={}",
            w.total
        );
    }

    #[test]
    fn limit_caps_commands() {
        let (w, booters) = one_week();
        let mut rng = StdRng::seed_from_u64(2);
        let cmds = commands_for_week(&w, &booters, &mut rng, 100);
        assert!(cmds.len() <= 180, "len={}", cmds.len()); // per-cell rounding slack
        assert!(!cmds.is_empty());
    }

    #[test]
    fn commands_are_sorted_and_inside_the_week() {
        let (w, booters) = one_week();
        let mut rng = StdRng::seed_from_u64(3);
        let cmds = commands_for_week(&w, &booters, &mut rng, 500);
        for pair in cmds.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        let base = w.week as u64 * WEEK_SECS;
        for c in &cmds {
            assert!(c.time >= base && c.time < base + WEEK_SECS);
        }
    }

    #[test]
    fn victim_countries_match_the_cells() {
        let (w, booters) = one_week();
        let mut rng = StdRng::seed_from_u64(4);
        let cmds = commands_for_week(&w, &booters, &mut rng, usize::MAX);
        // Tally commands per country and compare with the week's counts.
        let mut tally = [0u64; 12];
        for c in &cmds {
            tally[c.victim.country().index()] += 1;
        }
        for country in Country::ALL {
            let expect = w.country_counts[country.index()];
            let got = tally[country.index()];
            if expect > 50 {
                let rel = (got as f64 - expect as f64).abs() / expect as f64;
                assert!(rel < 0.15, "{country}: got={got} expect={expect}");
            }
        }
    }

    #[test]
    fn durations_are_mostly_short() {
        let (w, booters) = one_week();
        let mut rng = StdRng::seed_from_u64(6);
        let cmds = commands_for_week(&w, &booters, &mut rng, 2000);
        let short = cmds.iter().filter(|c| c.duration_secs < 300).count();
        let frac = short as f64 / cmds.len() as f64;
        assert!(frac > 0.4 && frac < 0.7, "short fraction={frac}");
    }

    #[test]
    fn booter_attribution_uses_alive_booters() {
        let (w, booters) = one_week();
        let mut rng = StdRng::seed_from_u64(7);
        let cmds = commands_for_week(&w, &booters, &mut rng, 1000);
        let alive_ids: std::collections::HashSet<u32> =
            w.booter_attacks.iter().map(|(id, _)| *id).collect();
        for c in &cmds {
            assert!(alive_ids.contains(&c.booter), "booter {} not alive", c.booter);
        }
    }
}
