//! Booter service agents and their self-reported attack counters.
//!
//! §3 documents how booters display running totals straight out of their
//! SQL databases (`SELECT COUNT(*) FROM logs`), and the artifacts the
//! paper had to handle: one booter "counted from 150 000 rather than
//! zero", some "wipe their databases ... from time to time", one
//! "reported values which were regularly multiples of 1000 and we exclude
//! it". All three artifact types are modelled so the validation suite in
//! `booters-core` has something real to catch.

use booters_netsim::UdpProtocol;

/// Market size class of a booter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// One of the handful of market-dominating services.
    Major,
    /// Mid-market service.
    Medium,
    /// Small, often unstable service.
    Small,
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BooterState {
    /// Operating and (if it self-reports) scrapeable.
    Alive,
    /// Not responding; may resurrect (§3: "how many subsequently
    /// reappear").
    Dead,
    /// Permanently gone (operator arrested / domain seized and abandoned).
    Retired,
}

/// One booter service.
#[derive(Debug, Clone)]
pub struct Booter {
    /// Stable identifier.
    pub id: u32,
    /// Size class.
    pub size: SizeClass,
    /// Market weight while alive (relative attack share).
    pub weight: f64,
    /// Current state.
    pub state: BooterState,
    /// Week index the booter entered the market.
    pub born_week: usize,
    /// Week index of the most recent death, if any.
    pub died_week: Option<usize>,
    /// Whether the booter displays an attack counter (Webstresser did not).
    pub self_reports: bool,
    /// True cumulative attacks performed.
    pub true_total: u64,
    /// Artifact: constant added to the displayed counter ("counted from
    /// 150 000 rather than zero").
    pub counter_offset: u64,
    /// Artifact: displayed counter is rounded to multiples of 1000 (the
    /// paper excludes this booter).
    pub rounds_to_1000: bool,
    /// Weekly probability of a database wipe (counter resets to zero).
    pub wipe_prob: f64,
    /// Whether the booter filters honeypots from its reflector lists
    /// (low-coverage methods like vDOS' 'SUDP').
    pub avoids_honeypots: bool,
    /// Protocols in this booter's attack portfolio.
    pub protocols: Vec<UdpProtocol>,
}

impl Booter {
    /// Record `n` attacks performed this week.
    pub fn record_attacks(&mut self, n: u64) {
        self.true_total += n;
    }

    /// Wipe the database (counter artifact).
    pub fn wipe(&mut self) {
        self.true_total = 0;
    }

    /// The counter a scraper would read, `None` when the booter does not
    /// display one or is not reachable.
    pub fn displayed_counter(&self) -> Option<u64> {
        if self.state != BooterState::Alive || !self.self_reports {
            return None;
        }
        let raw = self.true_total + self.counter_offset;
        Some(if self.rounds_to_1000 {
            (raw / 1000) * 1000
        } else {
            raw
        })
    }

    /// True when alive.
    pub fn is_alive(&self) -> bool {
        self.state == BooterState::Alive
    }

    /// Kill the booter (takedown, arrest, or churn). Permanent when
    /// `permanent` (retired), otherwise it may resurrect.
    pub fn kill(&mut self, week: usize, permanent: bool) {
        if self.state == BooterState::Alive {
            self.state = if permanent {
                BooterState::Retired
            } else {
                BooterState::Dead
            };
            self.died_week = Some(week);
        }
    }

    /// Bring a dead booter back ("resurrection").
    pub fn resurrect(&mut self) {
        if self.state == BooterState::Dead {
            self.state = BooterState::Alive;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booter() -> Booter {
        Booter {
            id: 1,
            size: SizeClass::Medium,
            weight: 0.05,
            state: BooterState::Alive,
            born_week: 0,
            died_week: None,
            self_reports: true,
            true_total: 0,
            counter_offset: 0,
            rounds_to_1000: false,
            wipe_prob: 0.0,
            avoids_honeypots: false,
            protocols: vec![UdpProtocol::Ldap, UdpProtocol::Dns],
        }
    }

    #[test]
    fn counter_accumulates() {
        let mut b = booter();
        b.record_attacks(100);
        b.record_attacks(250);
        assert_eq!(b.displayed_counter(), Some(350));
        assert_eq!(b.true_total, 350);
    }

    #[test]
    fn offset_artifact_inflates_display() {
        let mut b = booter();
        b.counter_offset = 150_000;
        b.record_attacks(42);
        assert_eq!(b.displayed_counter(), Some(150_042));
    }

    #[test]
    fn rounding_artifact() {
        let mut b = booter();
        b.rounds_to_1000 = true;
        b.record_attacks(12_345);
        assert_eq!(b.displayed_counter(), Some(12_000));
    }

    #[test]
    fn wipe_resets_counter_but_not_offset() {
        let mut b = booter();
        b.counter_offset = 1000;
        b.record_attacks(500);
        b.wipe();
        assert_eq!(b.displayed_counter(), Some(1000));
    }

    #[test]
    fn dead_booters_display_nothing() {
        let mut b = booter();
        b.record_attacks(10);
        b.kill(5, false);
        assert_eq!(b.displayed_counter(), None);
        assert_eq!(b.state, BooterState::Dead);
        assert_eq!(b.died_week, Some(5));
        b.resurrect();
        assert_eq!(b.displayed_counter(), Some(10));
    }

    #[test]
    fn retired_booters_cannot_resurrect() {
        let mut b = booter();
        b.kill(3, true);
        b.resurrect();
        assert_eq!(b.state, BooterState::Retired);
    }

    #[test]
    fn non_reporting_booters_display_nothing() {
        let mut b = booter();
        b.self_reports = false;
        b.record_attacks(99);
        assert_eq!(b.displayed_counter(), None);
    }

    #[test]
    fn killing_a_dead_booter_keeps_first_death_week() {
        let mut b = booter();
        b.kill(5, false);
        b.kill(9, false);
        assert_eq!(b.died_week, Some(5));
    }
}
