#![allow(clippy::module_inception)]
#![warn(missing_docs)]
//! Agent-based simulator of the booter (DDoS-for-hire) market.
//!
//! The paper's raw data — who attacked whom, when, through which booter —
//! is proprietary, so this crate rebuilds the market that generated it.
//! The published regression coefficients (Tables 1 and 2) are embedded as
//! the ground-truth data-generating process: per-country weekly attack
//! intensities follow the paper's log-linear model (trend, monthly
//! seasonality, Easter, intervention windows), and the full analysis
//! pipeline in `booters-core` must *recover* those coefficients from the
//! simulated packet/flow data. Market structure (Figures 7 and 8) emerges
//! from booter agents: births, deaths, resurrections, displacement and
//! the self-reported attack counters with their PHP-counter artifacts.
//!
//! Modules:
//!
//! * [`events`] — the §2 timeline: all fifteen labelled interventions.
//! * [`calibration`] — the paper-derived constants (Table 1 coefficients,
//!   Table 2 per-country effects and durations, Table 3 country shares).
//! * [`demand`] — expected log-intensity of attacks per country per week.
//! * [`protocol_mix`] — protocol popularity over time (Figure 6): the
//!   LDAP rise, the CHARGEN/NTP era, China's distinct mix.
//! * [`booter`] — booter service agents and their self-report counters.
//! * [`lifecycle`] — population dynamics: births, deaths, resurrections
//!   and intervention kill-lists (Figure 8).
//! * [`market`] — the weekly simulation loop tying it all together.
//! * [`commands`] — conversion of weekly market output into packet-level
//!   [`booters_netsim::AttackCommand`]s.
//! * [`shocks`] — composable intervention-shock primitives and the
//!   [`ScenarioSpec`] type naming a timed composition of them.
//! * [`scn`] — the hand-rolled parser for the `.scn` scenario text
//!   format, plus the eight built-in scenarios.

pub mod booter;
pub mod calibration;
pub mod commands;
pub mod concentration;
pub mod demand;
pub mod displacement;
pub mod events;
pub mod lifecycle;
pub mod market;
pub mod protocol_mix;
pub mod scn;
pub mod shocks;

pub use booter::{Booter, BooterState, SizeClass};
pub use calibration::Calibration;
pub use events::{EventId, EventKind, InterventionEvent};
pub use market::{MarketSim, MarketConfig, WeekOutput};
pub use scn::{builtin_scenarios, parse_scn, ScnError, ScnErrorKind};
pub use shocks::{ClassSel, ScenarioSpec, Shock, ShockKind};
