//! The weekly market simulation loop.
//!
//! Each week the simulator: applies any structural shock to the booter
//! population, draws per-country attack counts from the calibrated NB2
//! demand model, decomposes them into protocols, allocates the global
//! volume across alive booters (with displacement emerging from weight
//! renormalisation), and updates the self-reported counters.

use crate::booter::BooterState;
use crate::calibration::Calibration;
use crate::demand::{country_log_intensity, scenario_log_intensity};
use crate::lifecycle::{LifecycleWeek, MarketShock, Population};
use crate::protocol_mix::protocol_weights;
use crate::shocks::ScenarioSpec;
use booters_netsim::Country;
use booters_stats::dist::{standard_normal_sample, NegativeBinomial, Poisson};
use booters_timeseries::Date;
use booters_testkit::rngs::StdRng;
use booters_testkit::{Rng, SeedableRng};

/// Market simulation configuration.
#[derive(Debug, Clone)]
pub struct MarketConfig {
    /// Calibration bundle (paper-derived constants).
    pub calibration: Calibration,
    /// RNG seed — every run is deterministic given the seed.
    pub seed: u64,
    /// Volume multiplier. 1.0 reproduces the paper's absolute scale
    /// (~30k–170k attacks/week); tests use small values for speed. Scaling
    /// only shifts the model constant, leaving every other coefficient
    /// untouched.
    pub scale: f64,
    /// Standard deviation of per-booter weekly log-share noise (booters
    /// are "fairly unstable", §4.3).
    pub booter_noise_sd: f64,
    /// Fraction of a booter's attacks visible in its self-report counter
    /// (self-reports include non-UDP-reflection attacks; observation is a
    /// different channel than the honeypots).
    pub selfreport_factor: f64,
    /// When set, the paper's hard-wired intervention history is replaced
    /// by this scenario spec: demand follows the counterfactual baseline
    /// plus the spec's demand-side shocks, and population dynamics apply
    /// the spec's structural shocks instead of [`MarketShock`]s. `None`
    /// (the default) reproduces the paper exactly.
    pub scenario: Option<ScenarioSpec>,
}

impl Default for MarketConfig {
    fn default() -> Self {
        MarketConfig {
            calibration: Calibration::default(),
            seed: 0xB007_5EED,
            scale: 1.0,
            booter_noise_sd: 0.45,
            selfreport_factor: 0.5,
            scenario: None,
        }
    }
}

/// Output of one simulated week.
#[derive(Debug, Clone)]
pub struct WeekOutput {
    /// Week index since scenario start.
    pub week: usize,
    /// Monday of the week.
    pub monday: Date,
    /// Attacks per victim country (indexed by [`Country::index`]).
    pub country_counts: [u64; 12],
    /// Attacks per protocol (indexed by `UdpProtocol::index` in
    /// `booters-netsim`).
    pub protocol_counts: [u64; 10],
    /// Joint country × protocol breakdown.
    pub country_protocol: [[u64; 10]; 12],
    /// Attacks performed by each alive booter this week.
    pub booter_attacks: Vec<(u32, u64)>,
    /// Counters displayed by self-reporting, alive booters after this week.
    pub displayed_counters: Vec<(u32, u64)>,
    /// Lifecycle tallies for Figure 8.
    pub lifecycle: LifecycleWeek,
    /// Global total (sum over countries).
    pub total: u64,
}

/// The market simulator.
#[derive(Debug)]
pub struct MarketSim {
    config: MarketConfig,
    rng: StdRng,
    population: Population,
    week: usize,
    monday: Date,
    end: Date,
}

impl MarketSim {
    /// Create a simulator positioned at the scenario start.
    pub fn new(config: MarketConfig) -> MarketSim {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let population = Population::new(&mut rng);
        let monday = config.calibration.scenario_start.week_start();
        let end = config.calibration.scenario_end.week_start();
        MarketSim {
            config,
            rng,
            population,
            week: 0,
            monday,
            end,
        }
    }

    /// Total number of weeks in the scenario.
    pub fn n_weeks(&self) -> usize {
        (self.end.days_since(self.config.calibration.scenario_start.week_start()) / 7) as usize
    }

    /// Monday of the upcoming week (before stepping).
    pub fn current_monday(&self) -> Date {
        self.monday
    }

    /// Borrow the population (e.g. for avoidance flags).
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Which structural shock (if any) lands in the week of `monday`.
    fn shock_for(&self, monday: Date) -> Option<MarketShock> {
        let in_week = |d: Date| d.week_start() == monday;
        if in_week(Date::new(2018, 4, 24)) {
            Some(MarketShock::WebstresserTakedown)
        } else if in_week(Date::new(2018, 12, 19)) {
            Some(MarketShock::Xmas2018)
        } else if in_week(Date::new(2019, 3, 4)) {
            Some(MarketShock::ReturnOfTheMajor)
        } else {
            None
        }
    }

    /// Simulate one week. Returns `None` once the scenario is exhausted.
    pub fn step(&mut self) -> Option<WeekOutput> {
        if self.monday >= self.end {
            return None;
        }
        let monday = self.monday;
        let cal = &self.config.calibration;

        // 1. Population dynamics and shocks. Scenario runs swap both the
        // structural-shock source and the demand model; the `None` arm is
        // the paper's hard-wired history, untouched so its RNG stream and
        // float-op order (and therefore every existing golden) stay
        // byte-identical.
        let lifecycle = match &self.config.scenario {
            None => {
                let shock = self.shock_for(monday);
                self.population.step(&mut self.rng, self.week, shock)
            }
            Some(spec) => {
                let shocks = spec.structural_for(monday);
                self.population.step_scenario(&mut self.rng, self.week, &shocks)
            }
        };

        // 2. Per-country counts from the calibrated NB2 model.
        let mut country_counts = [0u64; 12];
        let mut country_protocol = [[0u64; 10]; 12];
        let mut protocol_counts = [0u64; 10];
        for &country in Country::ALL.iter() {
            let log_mu = match &self.config.scenario {
                None => country_log_intensity(cal, country, monday),
                Some(spec) => scenario_log_intensity(cal, spec, country, monday),
            };
            let mu = log_mu.exp() * self.config.scale;
            let count = if mu < 0.5 {
                0
            } else {
                NegativeBinomial::new(mu, cal.global.dispersion).sample(&mut self.rng)
            };
            country_counts[country.index()] = count;

            // 3. Protocol decomposition.
            let weights = protocol_weights(cal, country, monday);
            let split = sample_multinomial(&mut self.rng, count, &weights);
            for (i, &n) in split.iter().enumerate() {
                country_protocol[country.index()][i] = n;
                protocol_counts[i] += n;
            }
        }
        let total: u64 = country_counts.iter().sum();

        // 4. Booter allocation with lognormal share noise.
        let noise_sd = self.config.booter_noise_sd;
        let mut weights: Vec<(usize, f64)> = Vec::new();
        for (idx, b) in self.population.booters().iter().enumerate() {
            if b.is_alive() {
                let noise = (noise_sd * standard_normal_sample(&mut self.rng)).exp();
                weights.push((idx, b.weight * noise));
            }
        }
        let weight_sum: f64 = weights.iter().map(|(_, w)| w).sum();
        let mut booter_attacks = Vec::with_capacity(weights.len());
        if weight_sum > 0.0 {
            let probs: Vec<f64> = weights.iter().map(|(_, w)| w / weight_sum).collect();
            let alloc = sample_multinomial(&mut self.rng, total, &probs);
            for ((idx, _), n) in weights.iter().zip(alloc) {
                let b = &mut self.population.booters_mut()[*idx];
                let reported = (n as f64 * self.config.selfreport_factor).round() as u64;
                b.record_attacks(reported);
                booter_attacks.push((b.id, n));
            }
        }

        // 5. Database wipes and displayed counters.
        let mut displayed_counters = Vec::new();
        for b in self.population.booters_mut() {
            if b.state == BooterState::Alive && b.wipe_prob > 0.0
                && self.rng.gen::<f64>() < b.wipe_prob {
                    b.wipe();
                }
        }
        for b in self.population.booters() {
            if let Some(c) = b.displayed_counter() {
                displayed_counters.push((b.id, c));
            }
        }

        let out = WeekOutput {
            week: self.week,
            monday,
            country_counts,
            protocol_counts,
            country_protocol,
            booter_attacks,
            displayed_counters,
            lifecycle,
            total,
        };
        self.week += 1;
        self.monday = self.monday.add_days(7);
        Some(out)
    }

    /// Run the whole scenario.
    pub fn run(mut self) -> Vec<WeekOutput> {
        let mut out = Vec::with_capacity(self.n_weeks());
        while let Some(w) = self.step() {
            out.push(w);
        }
        out
    }
}

/// Multinomial sample: distribute `n` items over `weights` (need not be
/// normalised). Uses sequential conditional binomials; each binomial uses
/// an exact Bernoulli loop for small n, a Poisson approximation for rare
/// events and a normal approximation for large counts.
pub fn sample_multinomial(rng: &mut StdRng, n: u64, weights: &[f64]) -> Vec<u64> {
    let mut out = vec![0u64; weights.len()];
    let mut remaining = n;
    let mut weight_left: f64 = weights.iter().sum();
    for (i, &w) in weights.iter().enumerate() {
        if remaining == 0 || weight_left <= 0.0 {
            break;
        }
        if i == weights.len() - 1 {
            out[i] = remaining;
            break;
        }
        let p = (w / weight_left).clamp(0.0, 1.0);
        let draw = sample_binomial(rng, remaining, p);
        out[i] = draw;
        remaining -= draw;
        weight_left -= w;
    }
    out
}

/// Binomial(n, p) sample with regime-appropriate approximations.
pub fn sample_binomial(rng: &mut StdRng, n: u64, p: f64) -> u64 {
    if p <= 0.0 || n == 0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let np = n as f64 * p;
    let var = np * (1.0 - p);
    if n <= 64 {
        let mut k = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                k += 1;
            }
        }
        k
    } else if np < 30.0 {
        // Rare-event regime: Poisson approximation.
        Poisson::new(np.max(1e-9)).sample(rng).min(n)
    } else if n as f64 - np < 30.0 {
        // Symmetric rare regime on the other side.
        n - Poisson::new((n as f64 - np).max(1e-9)).sample(rng).min(n)
    } else {
        // CLT regime.
        let draw = np + var.sqrt() * standard_normal_sample(rng);
        draw.round().clamp(0.0, n as f64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(scale: f64) -> MarketConfig {
        MarketConfig {
            scale,
            seed: 42,
            ..MarketConfig::default()
        }
    }

    #[test]
    fn scenario_covers_the_paper_range() {
        let sim = MarketSim::new(test_config(0.01));
        // July 2014 – April 2019 is ~247 weeks.
        assert!((240..255).contains(&sim.n_weeks()), "weeks={}", sim.n_weeks());
    }

    #[test]
    fn totals_are_consistent() {
        let mut sim = MarketSim::new(test_config(0.01));
        for _ in 0..30 {
            let w = sim.step().unwrap();
            assert_eq!(w.total, w.country_counts.iter().sum::<u64>());
            assert_eq!(w.total, w.protocol_counts.iter().sum::<u64>());
            let joint: u64 = w.country_protocol.iter().flatten().sum();
            assert_eq!(w.total, joint);
            let allocated: u64 = w.booter_attacks.iter().map(|(_, n)| n).sum();
            assert_eq!(w.total, allocated, "booter allocation must conserve attacks");
        }
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let a = MarketSim::new(test_config(0.005)).run();
        let b = MarketSim::new(test_config(0.005)).run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total, y.total);
            assert_eq!(x.country_counts, y.country_counts);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut c = test_config(0.005);
        let a = MarketSim::new(c.clone()).run();
        c.seed = 43;
        let b = MarketSim::new(c).run();
        assert!(a.iter().zip(&b).any(|(x, y)| x.total != y.total));
    }

    #[test]
    fn growth_emerges_within_the_window() {
        let out = MarketSim::new(test_config(0.01)).run();
        let avg = |from: Date, to: Date| {
            let vals: Vec<u64> = out
                .iter()
                .filter(|w| w.monday >= from && w.monday < to)
                .map(|w| w.total)
                .collect();
            vals.iter().sum::<u64>() as f64 / vals.len() as f64
        };
        let y2016 = avg(Date::new(2016, 6, 1), Date::new(2016, 10, 1));
        let y2018 = avg(Date::new(2018, 8, 1), Date::new(2018, 12, 1));
        assert!(y2018 > 1.8 * y2016, "2016={y2016} 2018={y2018}");
    }

    #[test]
    fn xmas_shock_drops_totals() {
        // Raw weekly means are confounded by seasonality and the
        // overlapping Mirai window, so contrast the Xmas2018 window with
        // the immediate recovery once the 10-week window lapses.
        let out = MarketSim::new(test_config(0.01)).run();
        let avg = |from: Date, to: Date| {
            let vals: Vec<u64> = out
                .iter()
                .filter(|w| w.monday >= from && w.monday < to)
                .map(|w| w.total)
                .collect();
            vals.iter().sum::<u64>() as f64 / vals.len().max(1) as f64
        };
        let during = avg(Date::new(2018, 12, 24), Date::new(2019, 2, 18));
        let after = avg(Date::new(2019, 2, 25), Date::new(2019, 3, 25));
        assert!(during < 0.80 * after, "during={during} after={after}");
    }

    #[test]
    fn us_is_the_biggest_victim_country() {
        let out = MarketSim::new(test_config(0.01)).run();
        let mut per_country = [0u64; 12];
        for w in &out {
            for (i, &c) in w.country_counts.iter().enumerate() {
                per_country[i] += c;
            }
        }
        let us = per_country[Country::Us.index()];
        for (i, &c) in per_country.iter().enumerate() {
            if i != Country::Us.index() {
                assert!(us >= c, "US beaten by index {i}");
            }
        }
    }

    #[test]
    fn displayed_counters_grow_except_wipes() {
        let mut sim = MarketSim::new(test_config(0.01));
        let mut last: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        let mut decreases = 0;
        let mut observations = 0;
        for _ in 0..100 {
            let w = sim.step().unwrap();
            for (id, c) in &w.displayed_counters {
                if let Some(&prev) = last.get(id) {
                    observations += 1;
                    if *c < prev {
                        decreases += 1;
                    }
                }
                last.insert(*id, *c);
            }
        }
        assert!(observations > 1000);
        // Wipes are rare.
        assert!((decreases as f64) < 0.02 * observations as f64, "decreases={decreases}");
    }

    #[test]
    fn scenario_runs_are_deterministic_and_conserve() {
        let mut cfg = test_config(0.005);
        cfg.scenario = crate::scn::builtin_scenarios()
            .into_iter()
            .find(|s| s.name == "xmas2018");
        let a = MarketSim::new(cfg.clone()).run();
        let b = MarketSim::new(cfg).run();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.total, y.total);
            assert_eq!(x.country_counts, y.country_counts);
            let allocated: u64 = x.booter_attacks.iter().map(|(_, n)| n).sum();
            assert_eq!(x.total, allocated);
        }
    }

    #[test]
    fn payment_friction_scenario_suppresses_demand_vs_baseline() {
        let run = |spec: ScenarioSpec| {
            let mut cfg = test_config(0.01);
            cfg.scenario = Some(spec);
            MarketSim::new(cfg).run()
        };
        let baseline = run(ScenarioSpec::baseline());
        let friction = run(
            crate::scn::builtin_scenarios()
                .into_iter()
                .find(|s| s.name == "payment_friction")
                .unwrap(),
        );
        // Same seed, same RNG stream: only the demand delta differs.
        let window = |out: &[WeekOutput]| -> u64 {
            out.iter()
                .filter(|w| {
                    w.monday >= Date::new(2017, 6, 5) && w.monday < Date::new(2017, 12, 4)
                })
                .map(|w| w.total)
                .sum()
        };
        let b = window(&baseline);
        let f = window(&friction);
        assert!(
            (f as f64) < 0.75 * b as f64,
            "friction={f} baseline={b}"
        );
    }

    #[test]
    fn multinomial_conserves_and_distributes() {
        let mut rng = StdRng::seed_from_u64(7);
        let weights = [0.5, 0.3, 0.2];
        let out = sample_multinomial(&mut rng, 100_000, &weights);
        assert_eq!(out.iter().sum::<u64>(), 100_000);
        assert!((out[0] as f64 - 50_000.0).abs() < 1500.0, "{out:?}");
        assert!((out[2] as f64 - 20_000.0).abs() < 1500.0, "{out:?}");
    }

    #[test]
    fn binomial_regimes_are_unbiased() {
        let mut rng = StdRng::seed_from_u64(11);
        // Small-n exact regime.
        let mean_small: f64 =
            (0..2000).map(|_| sample_binomial(&mut rng, 20, 0.3) as f64).sum::<f64>() / 2000.0;
        assert!((mean_small - 6.0).abs() < 0.25, "small={mean_small}");
        // Poisson regime.
        let mean_poisson: f64 = (0..2000)
            .map(|_| sample_binomial(&mut rng, 100_000, 1e-4) as f64)
            .sum::<f64>()
            / 2000.0;
        assert!((mean_poisson - 10.0).abs() < 0.4, "poisson={mean_poisson}");
        // Normal regime.
        let mean_normal: f64 = (0..2000)
            .map(|_| sample_binomial(&mut rng, 10_000, 0.4) as f64)
            .sum::<f64>()
            / 2000.0;
        assert!((mean_normal - 4000.0).abs() < 6.0, "normal={mean_normal}");
    }

    #[test]
    fn booter_market_concentrates_after_xmas() {
        let out = MarketSim::new(test_config(0.01)).run();
        // Top-booter share of total attacks over a multi-week window
        // (single weeks are dominated by the lognormal share noise).
        let top_share = |from: Date, to: Date| {
            let mut per_booter: std::collections::HashMap<u32, u64> = Default::default();
            let mut total = 0u64;
            for w in out.iter().filter(|w| w.monday >= from && w.monday < to) {
                for (id, n) in &w.booter_attacks {
                    *per_booter.entry(*id).or_insert(0) += n;
                    total += n;
                }
            }
            *per_booter.values().max().unwrap_or(&0) as f64 / total.max(1) as f64
        };
        let post = top_share(Date::new(2019, 1, 7), Date::new(2019, 3, 4));
        let pre = top_share(Date::new(2018, 10, 1), Date::new(2018, 12, 10));
        assert!(post > 0.35, "post-Xmas top share = {post}");
        assert!(post > pre, "pre={pre} post={post}");
    }
}
