#![warn(missing_docs)]
//! Shared scaffolding for the table/figure regeneration binaries and the
//! criterion benches.
//!
//! Every `repro_*` binary accepts an optional scale argument (default
//! 0.25): `cargo run --release -p booters-bench --bin repro_table1 -- 1.0`
//! runs at the paper's absolute volume. Output files land in `out/` under
//! the workspace root.

use booters_core::pipeline::PipelineConfig;
use booters_core::scenario::{Fidelity, Scenario, ScenarioConfig};
use booters_market::calibration::Calibration;
use booters_market::market::MarketConfig;
use std::path::PathBuf;

/// Default volume scale for repro runs: fast but statistically faithful
/// (scaling only shifts the model constant).
pub const DEFAULT_SCALE: f64 = 0.25;

/// Deterministic seed shared by all repro binaries so tables and figures
/// come from the same simulated world.
pub const REPRO_SEED: u64 = 0xB00735;

/// Parse the scale argument.
pub fn scale_from_args() -> f64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_SCALE)
}

/// Standard scenario configuration for repro runs.
pub fn repro_config(scale: f64) -> ScenarioConfig {
    ScenarioConfig {
        market: MarketConfig {
            calibration: Calibration::default(),
            scale,
            seed: REPRO_SEED,
            ..MarketConfig::default()
        },
        fidelity: Fidelity::Aggregate,
        ..ScenarioConfig::default()
    }
}

/// Run the standard scenario.
pub fn run_scenario(scale: f64) -> Scenario {
    Scenario::run(repro_config(scale))
}

/// The paper's pipeline configuration.
pub fn pipeline_config() -> PipelineConfig {
    PipelineConfig::default()
}

/// Write an artifact under `out/` (created on demand) and echo the path.
pub fn write_artifact(name: &str, contents: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("out");
    std::fs::create_dir_all(&dir).expect("create out/");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write artifact");
    eprintln!("wrote {}", path.display());
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repro_config_is_deterministic() {
        let a = repro_config(0.1);
        let b = repro_config(0.1);
        assert_eq!(a.market.seed, b.market.seed);
        assert_eq!(a.market.scale, 0.1);
    }

    #[test]
    fn scale_default_applies() {
        assert_eq!(DEFAULT_SCALE, 0.25);
    }
}
