//! Regenerate the §3 self-report validation analysis: White's
//! heteroskedasticity test, the skewness/kurtosis normality tests, the
//! prime-divisibility multiplier check and the cross-dataset correlation.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_validation [scale]`

use booters_bench::{run_scenario, scale_from_args, write_artifact};
use booters_core::verify::{cross_dataset_correlation, render_validation, validate_top_booters};

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let validations = validate_top_booters(&scenario.selfreport, 10);
    let corr = cross_dataset_correlation(&scenario.honeypot, &scenario.selfreport);
    let rendered = render_validation(&validations, corr);
    println!("{rendered}");
    println!("Paper reference (§3): the top ten booters' series were normally");
    println!("distributed or heteroskedastic at 95% confidence; no sequences were");
    println!("divisible by any prime below 50; cross-dataset correlation 0.47.");
    write_artifact("validation.txt", &rendered);
}
