//! Exercise the streaming ingest path end to end: run the full-packet
//! measurement chain once through the batch in-memory pipeline and once
//! through the `booters-serve` streaming node (sharded intake, watermark
//! expiry, rolling warm-started refits), render Tables 1 and 2 from
//! both, and write each rendering as its own artifact so the verify
//! recipe can `cmp` them byte-for-byte.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_serve [scale]`

use booters_bench::{pipeline_config, scale_from_args, write_artifact, REPRO_SEED};
use booters_core::pipeline::{build_dataset_serve, fit_global};
use booters_core::report::{table1, table2};
use booters_core::scenario::{Fidelity, Scenario, ScenarioConfig};
use booters_market::calibration::Calibration;
use booters_market::market::MarketConfig;
use booters_serve::ServeConfig;
use std::time::Instant;

fn serve_scenario_config(scale: f64) -> ScenarioConfig {
    ScenarioConfig {
        market: MarketConfig {
            calibration: Calibration::default(),
            scale,
            seed: REPRO_SEED,
            ..MarketConfig::default()
        },
        fidelity: Fidelity::FullPackets { per_week: 8 },
        ..ScenarioConfig::default()
    }
}

fn render(s: &Scenario) -> (String, String) {
    let cal = Calibration::default();
    let cfg = pipeline_config();
    let t1 = table1(&fit_global(&s.honeypot, &cal, &cfg).expect("global fit"));
    let t2 = table2(&s.honeypot, &cal, &cfg).expect("country fits");
    (t1, t2)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("simulating full-packet scenario at scale {scale} ...");

    let start = Instant::now();
    let batch = Scenario::run(serve_scenario_config(scale));
    let t_batch = start.elapsed().as_secs_f64();
    let (t1_batch, t2_batch) = render(&batch);

    let start = Instant::now();
    let streamed = build_dataset_serve(serve_scenario_config(scale), ServeConfig::default())
        .expect("streaming scenario");
    let t_serve = start.elapsed().as_secs_f64();
    let stats = streamed.serve_stats.clone().expect("serve path ran");
    let (t1_serve, t2_serve) = render(&streamed);

    assert_eq!(
        t1_batch, t1_serve,
        "streaming Table 1 must be byte-identical to the batch pipeline"
    );
    assert_eq!(
        t2_batch, t2_serve,
        "streaming Table 2 must be byte-identical to the batch pipeline"
    );

    let report = format!(
        "streaming ingest: {} packets through {} shard(s), {} grouped, {} flows closed\n\
         watermark: {} advances, {} weeks closed, {} epochs, 0 late packets required (got {})\n\
         backpressure events: {}, peak open flows: {}, peak pending packets: {}\n\
         rolling refits: {} warm / {} full ({} failures)\n\
         wall time: batch {:.2}s vs streaming {:.2}s\n\
         Tables 1 and 2 byte-identical across both paths: yes\n",
        stats.packets,
        std::env::var("BOOTERS_SERVE_SHARDS").unwrap_or_else(|_| "8".into()),
        stats.grouped,
        stats.flows_closed,
        stats.watermark_advances,
        stats.weeks_closed,
        stats.epochs,
        stats.late_packets,
        stats.backpressure_events,
        stats.peak_open_flows,
        stats.peak_pending,
        stats.refits_warm,
        stats.refits_full,
        stats.refit_failures,
        t_batch,
        t_serve,
    );
    assert_eq!(stats.late_packets, 0);
    assert!(stats.weeks_closed >= 3, "expected real week closes");

    println!("{report}");
    println!("{t1_serve}");
    write_artifact("table1.batch.txt", &t1_batch);
    write_artifact("table1.serve.txt", &t1_serve);
    write_artifact("table2.batch.txt", &t2_batch);
    write_artifact("table2.serve.txt", &t2_serve);
    write_artifact("serve.txt", &report);
}
