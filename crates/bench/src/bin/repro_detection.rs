//! Automated intervention detection — the mechanised version of the
//! paper's claim that drops in the attack series "correspond closely to
//! events discussed in §2".
//!
//! Fits a baseline seasonal model, scans for runs below the fit, adds
//! LR-tested dummies greedily, and matches the detected windows against
//! the real intervention timeline.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_detection [scale]`

use booters_bench::{pipeline_config, run_scenario, scale_from_args, write_artifact};
use booters_core::detect::{detect_interventions, match_events, DetectOptions};
use booters_timeseries::Date;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let series = scenario
        .honeypot
        .global
        .window(Date::new(2016, 6, 6), Date::new(2019, 4, 1))
        .expect("modelling window");
    let mut found = detect_interventions(&series, &pipeline_config(), &DetectOptions::default())
        .expect("detection converges");
    match_events(&mut found, 3);

    let mut out = String::from("detected drop windows (deepest first):\n");
    for d in &found {
        out.push_str(&format!(
            "  {}  {:>2} weeks  coef {:+.3}  p={:.2e}  -> {}\n",
            d.start,
            d.duration_weeks,
            d.coef,
            d.p_value,
            d.matched_event.as_deref().unwrap_or("(no matching event)")
        ));
    }
    let matched = found.iter().filter(|d| d.matched_event.is_some()).count();
    out.push_str(&format!(
        "\n{matched}/{} detected windows match a real §2 event within 3 weeks\n",
        found.len()
    ));
    println!("{out}");
    println!("Paper reference: 'We found five such interventions that were statistically");
    println!("significant and ... they correspond closely to events discussed in §2.'");
    write_artifact("detection.txt", &out);
}
