//! Regenerate Table 3: share of attacks by country of victim at the five
//! February snapshots.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_table3 [scale]`

use booters_bench::{run_scenario, scale_from_args, write_artifact};
use booters_core::report::table3;

fn main() {
    let scale = scale_from_args();
    eprintln!("simulating at scale {scale} ...");
    let scenario = run_scenario(scale);
    let rendered = table3(&scenario.honeypot);
    println!("{rendered}");
    println!("Paper reference (Table 3): US 45/25/31/45/47%, CN spikes at Feb-17 (55%");
    println!("with double counting; our conservative single assignment peaks lower).");
    write_artifact("table3.txt", &rendered);
}
