//! Exercise the columnar event store end to end: ingest a full synthetic
//! sensor trace into the chunked on-disk format, report throughput and
//! compression, then rebuild the honeypot dataset through the
//! spill-to-disk out-of-core grouping path under a deliberately small
//! memory budget and check Table 1 is byte-identical to the in-memory
//! pipeline.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_store [scale]`

use booters_bench::{pipeline_config, scale_from_args, write_artifact, REPRO_SEED};
use booters_core::pipeline::{build_dataset_store, fit_global};
use booters_core::report::table1;
use booters_core::scenario::{Fidelity, Scenario, ScenarioConfig};
use booters_market::calibration::Calibration;
use booters_market::market::MarketConfig;
use booters_store::{ChunkWriter, SpillConfig, PACKET_BYTES};
use booters_netsim::{AttackCommand, Engine, EngineConfig, UdpProtocol, VictimAddr};
use std::time::Instant;

/// Small enough that every simulated week spills several sorted runs.
const STORE_BUDGET: usize = 128 << 10;

fn store_config(scale: f64) -> ScenarioConfig {
    ScenarioConfig {
        market: MarketConfig {
            calibration: Calibration::default(),
            scale,
            seed: REPRO_SEED,
            ..MarketConfig::default()
        },
        fidelity: Fidelity::FullPackets { per_week: 8 },
        ..ScenarioConfig::default()
    }
}

/// Time a raw ingest of one engine trace through the chunk writer.
fn ingest_report() -> String {
    let mut engine = Engine::new(EngineConfig::default());
    let cmds: Vec<AttackCommand> = (0..600u32)
        .map(|i| AttackCommand {
            time: 500 * i as u64,
            victim: VictimAddr::from_octets(25, (i % 9) as u8, (i / 9) as u8, 1),
            protocol: UdpProtocol::ALL[i as usize % UdpProtocol::ALL.len()],
            duration_secs: 300,
            packets_per_second: 50_000,
            booter: i % 31,
            avoids_honeypots: i % 5 == 0,
        })
        .collect();
    let packets = engine.simulate_attacks_batch(&cmds);
    let raw = packets.len() * PACKET_BYTES;
    let path = std::env::temp_dir().join(format!("booters-repro-store-{}.bst", std::process::id()));
    let start = Instant::now();
    let mut w = ChunkWriter::create(&path).expect("create store file");
    w.push_all(&packets).expect("ingest");
    let meta = w.finish().expect("finish store file");
    let secs = start.elapsed().as_secs_f64();
    let _ = std::fs::remove_file(&path);
    format!(
        "ingest: {} packets ({:.1} MB raw) in {:.3}s -> {:.1} MB/s, {:.0} packets/s\n\
         on disk: {:.1} MB across {} chunks, compression x{:.2}\n",
        meta.packets,
        raw as f64 / 1e6,
        secs,
        raw as f64 / 1e6 / secs,
        meta.packets as f64 / secs,
        meta.file_bytes as f64 / 1e6,
        meta.chunks,
        meta.compression_ratio(),
    )
}

fn main() {
    let scale = scale_from_args();
    let mut report = ingest_report();
    eprint!("{report}");

    eprintln!("simulating full-packet scenario at scale {scale} ...");
    let cal = Calibration::default();
    let cfg = pipeline_config();

    let start = Instant::now();
    let baseline = Scenario::run(store_config(scale));
    let t_mem = start.elapsed().as_secs_f64();
    let t1_mem = table1(&fit_global(&baseline.honeypot, &cal, &cfg).expect("global fit"));

    let start = Instant::now();
    let spill = SpillConfig {
        budget_bytes: STORE_BUDGET,
        ..SpillConfig::default()
    };
    let stored = build_dataset_store(store_config(scale), spill).expect("store-backed scenario");
    let t_store = start.elapsed().as_secs_f64();
    let stats = stored.store_stats.expect("store path ran");
    let t1_store = table1(&fit_global(&stored.honeypot, &cal, &cfg).expect("global fit"));

    assert_eq!(
        t1_mem, t1_store,
        "store-backed Table 1 must be byte-identical to the in-memory pipeline"
    );
    report.push_str(&format!(
        "out-of-core grouping: {} packets, {} spill runs ({:.1} MB in {} chunks), \
         peak buffer {} packets under a {} KiB budget\n\
         wall time: in-memory {:.2}s vs store-backed {:.2}s\n\
         Table 1 byte-identical across both paths: yes\n",
        stats.packets,
        stats.spill_runs,
        stats.run_bytes as f64 / 1e6,
        stats.run_chunks,
        stats.peak_buf_packets,
        STORE_BUDGET >> 10,
        t_mem,
        t_store,
    ));

    println!("{report}");
    println!("{t1_store}");
    write_artifact("store.txt", &report);
}
