//! Regenerate Figure 5: US and UK attack counts indexed to 100 at June
//! 2016, with the NCA Google-advert window highlighted and the slope
//! statistics §4.1 quotes.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_fig5 [scale]`

use booters_bench::{run_scenario, scale_from_args, write_artifact};
use booters_core::report::fig5_csv;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let (csv, slopes) = fig5_csv(&scenario.honeypot);
    write_artifact("fig5_us_uk_index.csv", &csv);
    println!("OLS slopes (index units/week):");
    println!("  2017:       US {:+.2} (paper 5.3)   UK {:+.2} (paper 3.2)", slopes.us_2017, slopes.uk_2017);
    println!("  NCA window: US {:+.2} (paper 6.8)   UK {:+.2} (paper -0.1)", slopes.us_nca, slopes.uk_nca);
    println!(
        "  UK/US ratio: {:.3} -> {:.3}  ({:.0}% relative UK decline over the campaign)",
        slopes.uk_us_ratio_start,
        slopes.uk_us_ratio_end,
        100.0 * slopes.uk_relative_decline()
    );
    println!("\nNote: raw window slopes are seasonally confounded in the reproduction;");
    println!("the ratio contrast is the robust form of the paper's finding (see");
    println!("EXPERIMENTS.md, Figure 5).");
}
