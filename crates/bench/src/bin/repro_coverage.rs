//! Regenerate the footnote-1 coverage analysis: what fraction of
//! commanded attacks the honeypot fleet observes, per protocol and per
//! booter behaviour (honest vs honeypot-avoiding).
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_coverage [scale]`

use booters_bench::{run_scenario, scale_from_args, write_artifact};
use booters_market::commands::commands_for_week;
use booters_market::market::{MarketConfig, MarketSim};
use booters_netsim::coverage::CoverageReport;
use booters_netsim::{Engine, EngineConfig};
use booters_testkit::rngs::StdRng;
use booters_testkit::SeedableRng;

fn main() {
    let scale = scale_from_args().min(0.05); // command expansion is per attack
    // Ground-truth coverage from the scenario runner.
    let scenario = run_scenario(scale);
    let overall = scenario.honeypot.global.total() / scenario.ground_truth.global.total();
    println!(
        "scenario coverage: {:.1}% of commanded attacks observed\n",
        100.0 * overall
    );

    // Detailed per-protocol coverage over a few simulated weeks.
    let mut sim = MarketSim::new(MarketConfig {
        scale,
        seed: 7,
        ..MarketConfig::default()
    });
    let mut engine = Engine::new(EngineConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    let mut all_commands = Vec::new();
    for _ in 0..26 {
        if let Some(out) = sim.step() {
            all_commands.extend(commands_for_week(
                &out,
                sim.population().booters(),
                &mut rng,
                2_000,
            ));
        }
    }
    let report = CoverageReport::from_commands(&mut engine, &all_commands);
    let rendered = report.render();
    println!("{rendered}");
    println!("Paper reference (footnote 1): LDAP 98%, NTP 97%, PORTMAP 97% coverage;");
    println!("honeypot-avoiding methods like vDOS 'SUDP' at 9%.");
    write_artifact("coverage.txt", &rendered);
}
