//! Regenerate Figure 1: weekly reflected-UDP attack counts July 2014 –
//! April 2019 with the fifteen labelled intervention events.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_fig1 [scale]`

use booters_bench::{run_scenario, scale_from_args, write_artifact};
use booters_core::report::fig1_csv;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let csv = fig1_csv(&scenario.honeypot);
    write_artifact("fig1_timeline.csv", &csv);
    // Console sparkline summary: quarterly means.
    let s = &scenario.honeypot.global;
    println!("weekly attacks (quarterly means):");
    let mut i = 0;
    while i < s.len() {
        let k = 13.min(s.len() - i);
        let mean: f64 = (0..k).map(|t| s.get(i + t)).sum::<f64>() / k as f64;
        let bar = "#".repeat((mean / s.values().iter().cloned().fold(0.0, f64::max) * 60.0) as usize);
        println!("{}  {:>9.0}  {}", s.week_date(i), mean, bar);
        i += 13;
    }
}
