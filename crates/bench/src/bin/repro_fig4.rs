//! Regenerate Figure 4: the country-by-country correlation matrix of
//! weekly attack series (China stands apart).
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_fig4 [scale]`

use booters_bench::{run_scenario, scale_from_args, write_artifact};
use booters_core::report::fig4_table;
use booters_timeseries::Date;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let table = fig4_table(
        &scenario.honeypot,
        Date::new(2016, 6, 6),
        Date::new(2019, 4, 1),
    );
    let rendered = table.render();
    println!("{rendered}");
    for label in ["UK", "US", "CN", "RU", "FR", "DE", "PL", "NL"] {
        println!(
            "mean |corr| of {label}: {:.2}",
            table.mean_abs_correlation(label).unwrap_or(f64::NAN)
        );
    }
    println!("\nPaper reference: UK/US/FR/DE/PL strongly correlated; NL slightly lower;");
    println!("RU lower still; CN uncorrelated with everyone.");
    write_artifact("fig4_correlation.txt", &rendered);
}
