//! Regenerate Figure 3: stacked weekly attacks by victim country (top 8).
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_fig3 [scale]`

use booters_bench::{run_scenario, scale_from_args, write_artifact};
use booters_core::report::fig3_csv;
use booters_netsim::Country;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let csv = fig3_csv(&scenario.honeypot);
    write_artifact("fig3_by_country.csv", &csv);
    println!("total attacks by country over the full window:");
    let mut rows: Vec<(String, f64)> = Country::ALL
        .iter()
        .map(|&c| (c.label().to_string(), scenario.honeypot.country(c).total()))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let total: f64 = rows.iter().map(|(_, v)| v).sum();
    for (label, v) in rows {
        println!("  {label:<4} {v:>12.0}  ({:.1}%)", 100.0 * v / total);
    }
}
