//! Regenerate Table 1: the global negative binomial regression of weekly
//! attack counts with intervention, seasonal, Easter and trend components.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_table1 [scale]`

use booters_bench::{pipeline_config, run_scenario, scale_from_args, write_artifact};
use booters_core::pipeline::fit_global;
use booters_core::report::table1;
use booters_glm::inference::CovarianceKind;
use booters_market::calibration::Calibration;

fn main() {
    let scale = scale_from_args();
    eprintln!("simulating at scale {scale} ...");
    let scenario = run_scenario(scale);
    let cal = Calibration::default();
    let cfg = pipeline_config();
    let fit = fit_global(&scenario.honeypot, &cal, &cfg).expect("global model converges");
    let mut rendered = table1(&fit);

    // The paper fits "for optimum log-pseudolikelihood" (Stata's robust
    // covariance); print the HC1 sandwich SEs next to the model-based
    // ones for the intervention block.
    let mut robust_cfg = cfg.clone();
    robust_cfg.covariance = CovarianceKind::RobustHc1;
    let robust =
        fit_global(&scenario.honeypot, &cal, &robust_cfg).expect("robust fit converges");
    rendered.push_str("\nintervention SEs: model-based vs HC1 sandwich (pseudolikelihood)\n");
    for e in fit.intervention_effects() {
        let m = fit.fit.inference.coef(&e.name).expect("coef");
        let r = robust.fit.inference.coef(&e.name).expect("coef");
        rendered.push_str(&format!(
            "  {:<38} {:.4}  vs  {:.4}\n",
            e.name, m.std_error, r.std_error
        ));
    }

    println!("{rendered}");
    println!("Paper reference (Table 1): Xmas2018 -0.393, Webstresser -0.238,");
    println!("Mirai -0.516, HackForums -0.360, vDOS -0.275, time 0.010, _cons 10.289.");
    println!("(The constant shifts by ln(scale x coverage); see EXPERIMENTS.md.)");
    write_artifact("table1.txt", &rendered);
}
