//! Regenerate Table 2: per-country intervention effect sizes (UK US RU FR
//! DE PL NL + Overall) for the five significant interventions.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_table2 [scale]`

use booters_bench::{pipeline_config, run_scenario, scale_from_args, write_artifact};
use booters_core::report::table2;
use booters_market::calibration::Calibration;

fn main() {
    let scale = scale_from_args();
    eprintln!("simulating at scale {scale} ...");
    let scenario = run_scenario(scale);
    let rendered = table2(&scenario.honeypot, &Calibration::default(), &pipeline_config())
        .expect("country models converge");
    println!("{rendered}");
    println!("Paper reference highlights: Xmas2018 US -49%/FR n.s.; Webstresser NL +146%;");
    println!("HackForums UK -48% for 15 weeks; vDOS RU -37%; Mirai PL -47%.");
    write_artifact("table2.txt", &rendered);
}
