//! Regenerate Figure 8: booters entering and leaving the market per week
//! (deaths, resurrections, births) with the Webstresser and Xmas2018
//! spikes.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_fig8 [scale]`

use booters_bench::{run_scenario, scale_from_args, write_artifact};
use booters_core::report::fig8_csv;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let sr = &scenario.selfreport;
    let csv = fig8_csv(sr);
    write_artifact("fig8_lifecycle.csv", &csv);

    println!("weeks with >= 4 deaths (the paper's two spikes should dominate):");
    for i in 0..sr.deaths.len() {
        if sr.deaths.get(i) >= 4.0 {
            println!(
                "  {}  deaths={} resurrections={} births={}",
                sr.deaths.week_date(i),
                sr.deaths.get(i),
                sr.resurrections.get(i),
                sr.births.get(i)
            );
        }
    }
    println!("\nPaper reference: spikes at the Webstresser takedown (Apr 2018) and the");
    println!("Xmas2018 action (Dec 2018); births are bursty discovery-sweep artifacts.");
}
