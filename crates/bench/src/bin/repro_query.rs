//! Exercise the predicate-pushdown query engine end to end: run the
//! full-packet measurement chain once through the batch in-memory
//! pipeline and once with every week routed through a scratch columnar
//! store and the `booters-query` engine, render Tables 1 and 2 from
//! both, and write each rendering as its own artifact so the verify
//! recipe can `cmp` them byte-for-byte. A second section runs canned
//! pushdown queries (time window, victim prefix, protocol set) against
//! a many-chunk store and reports the pruning economics, plus the
//! weekly `(week × country × protocol)` panel as a CSV artifact.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_query [scale]`

use booters_bench::{pipeline_config, scale_from_args, write_artifact, REPRO_SEED};
use booters_core::pipeline::{build_dataset_query, fit_global};
use booters_core::report::{table1, table2};
use booters_core::scenario::{Fidelity, Scenario, ScenarioConfig};
use booters_market::calibration::Calibration;
use booters_market::market::MarketConfig;
use booters_netsim::{AttackCommand, Engine, EngineConfig, UdpProtocol, VictimAddr};
use booters_query::{Predicate, QueryConfig, QueryEngine, QueryStats, WEEK_SECS};
use booters_store::ChunkWriter;
use std::fmt::Write as _;
use std::time::Instant;

fn query_scenario_config(scale: f64) -> ScenarioConfig {
    ScenarioConfig {
        market: MarketConfig {
            calibration: Calibration::default(),
            scale,
            seed: REPRO_SEED,
            ..MarketConfig::default()
        },
        fidelity: Fidelity::FullPackets { per_week: 8 },
        ..ScenarioConfig::default()
    }
}

fn render(s: &Scenario) -> (String, String) {
    let cal = Calibration::default();
    let cfg = pipeline_config();
    let t1 = table1(&fit_global(&s.honeypot, &cal, &cfg).expect("global fit"));
    let t2 = table2(&s.honeypot, &cal, &cfg).expect("country fits");
    (t1, t2)
}

/// One synthetic trace spanning several weeks, chunked small so the
/// canned queries face a store with plenty of chunks to prune.
fn canned_store() -> std::path::PathBuf {
    let mut engine = Engine::new(EngineConfig::default());
    let cmds: Vec<AttackCommand> = (0..400u32)
        .map(|i| AttackCommand {
            time: (3 * WEEK_SECS / 400) * i as u64,
            victim: VictimAddr::from_octets(25, (i % 9) as u8, (i / 40) as u8, 1),
            protocol: UdpProtocol::ALL[i as usize % UdpProtocol::ALL.len()],
            duration_secs: 300,
            packets_per_second: 20_000,
            booter: i % 31,
            avoids_honeypots: i % 5 == 0,
        })
        .collect();
    let packets = engine.simulate_attacks_batch(&cmds);
    let path = std::env::temp_dir().join(format!(
        "booters-repro-query-{}.bstore",
        std::process::id()
    ));
    let mut w = ChunkWriter::with_capacity(&path, 1024).expect("create store file");
    w.push_all(&packets).expect("ingest");
    w.finish().expect("finish store file");
    path
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn canned_queries_report() -> (String, String) {
    let path = canned_store();
    let eng = QueryEngine::open(&path).expect("open store");
    let mut report = String::new();
    let _ = writeln!(
        report,
        "canned pushdown queries over {} chunks / {} packets:",
        eng.chunk_count(),
        eng.total_packets()
    );

    let canned: Vec<(&str, Predicate)> = vec![
        (
            "week 1 only (time window)",
            Predicate::all().with_time(WEEK_SECS, 2 * WEEK_SECS),
        ),
        (
            "one /24 victim prefix",
            Predicate::all().with_prefix24(VictimAddr::from_octets(25, 3, 0, 0)),
        ),
        (
            "DNS + NTP reflectors",
            Predicate::all().with_protocols(&[UdpProtocol::Dns, UdpProtocol::Ntp]),
        ),
        (
            "prefix x protocol x window",
            Predicate::all()
                .with_time(0, WEEK_SECS)
                .with_prefix24(VictimAddr::from_octets(25, 1, 0, 0))
                .with_protocols(&[UdpProtocol::Dns]),
        ),
        ("off the trace (all pruned)", Predicate::all().with_time(9 * WEEK_SECS, 10 * WEEK_SECS)),
    ];
    for (name, pred) in &canned {
        let (n, st) = eng.count(pred).expect("count");
        let _ = writeln!(
            report,
            "  {name}: {n} rows; pruned {}/{} chunks ({:.0}%), {} covered, {} decoded, {} cached",
            st.chunks_pruned,
            st.chunks_total,
            pct(st.chunks_pruned, st.chunks_total),
            st.chunks_covered,
            st.chunks_decoded,
            st.chunks_cached,
        );
    }

    let (panel, st) = eng.group_by_week(&Predicate::all()).expect("panel");
    let _ = writeln!(
        report,
        "weekly panel: {} cells over {} weeks from {} rows (no row materialization)",
        panel.cells.len(),
        panel.weeks().len(),
        st.rows_scanned,
    );
    let csv = panel.to_csv();
    std::fs::remove_file(&path).expect("remove canned store");
    (report, csv)
}

fn main() {
    let scale = scale_from_args();
    eprintln!("simulating full-packet scenario at scale {scale} ...");

    let start = Instant::now();
    let batch = Scenario::run(query_scenario_config(scale));
    let t_batch = start.elapsed().as_secs_f64();
    let (t1_batch, t2_batch) = render(&batch);

    let start = Instant::now();
    let queried = build_dataset_query(
        query_scenario_config(scale),
        QueryConfig {
            chunk_capacity: 1024, // several chunks per simulated week
            ..QueryConfig::default()
        },
    )
    .expect("query-backed scenario");
    let t_query = start.elapsed().as_secs_f64();
    let stats: QueryStats = queried.query_stats.expect("query path ran");
    let (t1_query, t2_query) = render(&queried);

    assert_eq!(
        t1_batch, t1_query,
        "query-backed Table 1 must be byte-identical to the batch pipeline"
    );
    assert_eq!(
        t2_batch, t2_query,
        "query-backed Table 2 must be byte-identical to the batch pipeline"
    );

    let (canned, panel_csv) = canned_queries_report();

    let report = format!(
        "query-backed weeks: {} scans over {} chunks, {} pruned / {} covered / {} decoded / {} cached\n\
         rows: {} scanned, {} returned\n\
         wall time: batch {:.2}s vs query-backed {:.2}s\n\
         Tables 1 and 2 byte-identical across both paths: yes\n\
         decoded-chunk cache budget: {} bytes\n\
         \n{canned}",
        stats.scans,
        stats.chunks_total,
        stats.chunks_pruned,
        stats.chunks_covered,
        stats.chunks_decoded,
        stats.chunks_cached,
        stats.rows_scanned,
        stats.rows_returned,
        t_batch,
        t_query,
        booters_store::cache_bytes(),
    );
    assert!(stats.scans >= 3, "expected real query-backed weeks");

    println!("{report}");
    println!("{t1_query}");
    write_artifact("table1.qbatch.txt", &t1_batch);
    write_artifact("table1.query.txt", &t1_query);
    write_artifact("table2.qbatch.txt", &t2_batch);
    write_artifact("table2.query.txt", &t2_query);
    write_artifact("query_panel.csv", &panel_csv);
    write_artifact("query.txt", &report);
}
