//! Ablations of the paper's modelling choices:
//!
//! 1. the Kopp et al. short-window design (§5) — no seasonality, Oct
//!    2018 – Jan 2019 only — should understate the Xmas2018 drop;
//! 2. Poisson vs negative binomial (§4's overdispersion argument);
//! 3. the Easter component.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_ablation [scale]`

use booters_bench::{pipeline_config, run_scenario, scale_from_args, write_artifact};
use booters_core::ablation::{kopp_style_short_window, poisson_vs_negbin, with_without_easter};
use booters_market::calibration::Calibration;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let cal = Calibration::default();
    let cfg = pipeline_config();

    let mut out = String::new();

    let short = kopp_style_short_window(&scenario.honeypot, &cal, &cfg).expect("short-window fit");
    out.push_str(&format!(
        "1. Kopp-style short window (no seasonality, Oct 2018 - Jan 2019):\n\
         \x20  full seasonal model Xmas2018 effect: {:+.1}%\n\
         \x20  short-window effect:                 {:+.1}%\n\
         \x20  short design understates the drop:   {}\n\
         \x20  (paper §5: Kopp et al. 'found it to be smaller, possibly because\n\
         \x20   they only model ... Oct 2018 to Jan 2019, thereby ignoring\n\
         \x20   seasonal effects')\n\n",
        short.full_model_pct,
        short.short_window_pct,
        short.short_window_understates()
    ));

    let disp = poisson_vs_negbin(&scenario.honeypot, &cal, &cfg).expect("dispersion fits");
    out.push_str(&format!(
        "2. Poisson vs negative binomial on the Xmas2018 coefficient:\n\
         \x20  NB2 alpha = {:.4}\n\
         \x20  SE(Poisson) = {:.4}   SE(NB2) = {:.4}   (ratio {:.1}x)\n\
         \x20  AIC(Poisson) = {:.0}   AIC(NB2) = {:.0}\n\
         \x20  (Poisson's tiny SEs are fantasy under overdispersion; NB2 pays one\n\
         \x20   parameter and wins AIC decisively — the paper's §4 model choice)\n\n",
        disp.alpha,
        disp.poisson_se,
        disp.negbin_se,
        disp.negbin_se / disp.poisson_se,
        disp.poisson_aic,
        disp.negbin_aic
    ));

    let easter = with_without_easter(&scenario.honeypot, &cal, &cfg).expect("easter fits");
    out.push_str(&format!(
        "3. Easter component:\n\
         \x20  log-likelihood with Easter    = {:.2}\n\
         \x20  log-likelihood without Easter = {:.2}\n\
         \x20  (the paper's Easter coefficient is small and non-significant\n\
         \x20   (-0.016, p=0.86); the component exists because school holidays\n\
         \x20   move with Easter, not because it buys much fit)\n",
        easter.with_easter_ll, easter.without_easter_ll
    ));

    println!("{out}");
    write_artifact("ablation.txt", &out);
}
