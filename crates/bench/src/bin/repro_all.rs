//! Regenerate every table and figure artifact from one deterministic
//! simulation run.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_all [scale]`
//!
//! Writes all `out/` artifacts (tables 1–3, figures 1–8, validation,
//! detection, ablation, duration scan, country models) and prints a
//! one-line summary per artifact.

use booters_bench::{pipeline_config, run_scenario, scale_from_args, write_artifact};
use booters_core::ablation::{kopp_style_short_window, poisson_vs_negbin};
use booters_core::detect::{detect_interventions, match_events, DetectOptions};
use booters_core::pipeline::fit_global;
use booters_core::report::{
    country_model_detail, fig1_csv, fig2_csv, fig3_csv, fig4_table, fig5_csv, fig6_csv,
    fig7_csv, fig8_csv, table1, table2, table3,
};
use booters_core::verify::{cross_dataset_correlation, render_validation, validate_top_booters};
use booters_market::calibration::Calibration;
use booters_timeseries::Date;

fn main() {
    let scale = scale_from_args();
    eprintln!("simulating July 2014 - April 2019 at scale {scale} ...");
    let scenario = run_scenario(scale);
    let cal = Calibration::default();
    let cfg = pipeline_config();

    let fit = fit_global(&scenario.honeypot, &cal, &cfg).expect("global model");
    write_artifact("table1.txt", &table1(&fit));
    write_artifact(
        "table2.txt",
        &table2(&scenario.honeypot, &cal, &cfg).expect("table 2"),
    );
    write_artifact("table3.txt", &table3(&scenario.honeypot));
    write_artifact("fig1_timeline.csv", &fig1_csv(&scenario.honeypot));
    write_artifact("fig2_model_fit.csv", &fig2_csv(&fit));
    write_artifact("fig3_by_country.csv", &fig3_csv(&scenario.honeypot));
    write_artifact(
        "fig4_correlation.txt",
        &fig4_table(&scenario.honeypot, Date::new(2016, 6, 6), Date::new(2019, 4, 1)).render(),
    );
    let (f5, slopes) = fig5_csv(&scenario.honeypot);
    write_artifact("fig5_us_uk_index.csv", &f5);
    write_artifact("fig6_by_protocol.csv", &fig6_csv(&scenario.honeypot));
    let sr = &scenario.selfreport;
    let n_weeks = ((Date::new(2019, 4, 1).week_start().days_since(sr.start)) / 7) as usize;
    write_artifact("fig7_selfreport.csv", &fig7_csv(sr, n_weeks));
    write_artifact("fig8_lifecycle.csv", &fig8_csv(sr));

    let validations = validate_top_booters(sr, 10);
    let corr = cross_dataset_correlation(&scenario.honeypot, sr);
    write_artifact("validation.txt", &render_validation(&validations, corr));

    let series = scenario
        .honeypot
        .global
        .window(Date::new(2016, 6, 6), Date::new(2019, 4, 1))
        .expect("window");
    let mut found =
        detect_interventions(&series, &cfg, &DetectOptions::default()).expect("detection");
    match_events(&mut found, 3);
    let detection_text: String = found
        .iter()
        .map(|d| {
            format!(
                "{} {}wk coef {:+.3} -> {}\n",
                d.start,
                d.duration_weeks,
                d.coef,
                d.matched_event.as_deref().unwrap_or("(unmatched)")
            )
        })
        .collect();
    write_artifact("detection.txt", &detection_text);

    let short = kopp_style_short_window(&scenario.honeypot, &cal, &cfg).expect("ablation");
    let disp = poisson_vs_negbin(&scenario.honeypot, &cal, &cfg).expect("ablation");
    write_artifact(
        "ablation.txt",
        &format!(
            "kopp short window: {:.1}% vs full {:.1}%\npoisson SE {:.4} vs NB SE {:.4}, alpha {:.4}\n",
            short.short_window_pct,
            short.full_model_pct,
            disp.poisson_se,
            disp.negbin_se,
            disp.alpha
        ),
    );

    let mut countries = String::new();
    for c in Calibration::table2_countries() {
        countries.push_str(&country_model_detail(&scenario.honeypot, &cal, c, &cfg).expect("country model"));
        countries.push('\n');
    }
    write_artifact("country_models.txt", &countries);

    // Console digest.
    println!("== digest ==");
    println!(
        "coverage: {:.1}%  |  weeks: {}",
        100.0 * scenario.honeypot.global.total() / scenario.ground_truth.global.total(),
        scenario.honeypot.global.len()
    );
    for e in fit.intervention_effects() {
        println!(
            "{:<38} {:>6.1}%  p={:.1e}  ~{:.0} averted",
            e.name,
            e.mean_pct,
            e.p_value,
            fit.attacks_averted(&e.name).unwrap_or(f64::NAN)
        );
    }
    println!(
        "fig5: UK/US ratio {:.2} -> {:.2} over the NCA window",
        slopes.uk_us_ratio_start, slopes.uk_us_ratio_end
    );
    println!("detected windows matched to events: {}/{}",
        found.iter().filter(|d| d.matched_event.is_some()).count(),
        found.len());
}
