//! Data-driven intervention-window durations.
//!
//! The paper hand-tuned each intervention's window length to the period
//! the series stayed depressed. This binary scans candidate durations by
//! profile likelihood for each of the five significant interventions and
//! compares the data-chosen duration with the paper's.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_duration_scan [scale]`

use booters_bench::{pipeline_config, run_scenario, scale_from_args, write_artifact};
use booters_core::pipeline::{global_intervention_windows, scan_duration};
use booters_market::calibration::Calibration;
use booters_timeseries::Date;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let cfg = pipeline_config();
    let cal = Calibration::default();
    let series = scenario
        .honeypot
        .global
        .window(Date::new(2016, 6, 6), Date::new(2019, 4, 1))
        .expect("modelling window");
    let windows = global_intervention_windows(&cal);
    let candidates: Vec<usize> = (1..=18).collect();

    let mut out = String::from("profile-likelihood duration scan (paper duration in brackets):\n");
    for (i, w) in windows.iter().enumerate() {
        let (best, ll) =
            scan_duration(&series, &windows, i, &candidates, &cfg).expect("scan converges");
        out.push_str(&format!(
            "  {:<38} scanned {:>2} weeks  [paper: {:>2}]  loglik {:.2}\n",
            w.name, best, w.duration_weeks, ll
        ));
    }
    println!("{out}");
    println!("The scan should land within a couple of weeks of the paper's hand-tuned");
    println!("windows for the deep interventions; shallow ones (vDOS) have flat profiles.");
    write_artifact("duration_scan.txt", &out);
}
