//! Regenerate Figure 2: observed weekly attacks vs the fitted negative
//! binomial model over June 2016 – April 2019, with intervention windows.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_fig2 [scale]`

use booters_bench::{pipeline_config, run_scenario, scale_from_args, write_artifact};
use booters_core::pipeline::fit_global;
use booters_core::report::fig2_csv;
use booters_market::calibration::Calibration;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let fit = fit_global(&scenario.honeypot, &Calibration::default(), &pipeline_config())
        .expect("global model converges");
    let csv = fig2_csv(&fit);
    write_artifact("fig2_model_fit.csv", &csv);

    // Console: fit quality and where the interventions bite.
    let observed = fit.series.values();
    let fitted = fit.fitted();
    let mape: f64 = observed
        .iter()
        .zip(&fitted)
        .filter(|(o, _)| **o > 0.0)
        .map(|(o, f)| ((o - f) / o).abs())
        .sum::<f64>()
        / observed.len() as f64;
    println!("model fit: {} weeks, MAPE {:.1}%", observed.len(), 100.0 * mape);
    for e in fit.intervention_effects() {
        let averted = fit.attacks_averted(&e.name).unwrap_or(f64::NAN);
        println!(
            "  {:<36} {:>6.1}% over {} weeks (p={:.4})  ~{:.0} attacks averted",
            e.name, e.mean_pct, e.duration_weeks, e.p_value, averted
        );
    }
    println!("\n(attacks-averted figures are counterfactual fitted-model sums at the");
    println!("run's scale; multiply by 1/scale for paper-scale absolute numbers)");
}
