//! Regenerate Figure 6: stacked weekly attacks by UDP protocol (the LDAP
//! rise, the CHARGEN/NTP era, protocol-specific intervention drops).
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_fig6 [scale]`

use booters_bench::{run_scenario, scale_from_args, write_artifact};
use booters_core::report::fig6_csv;
use booters_netsim::UdpProtocol;
use booters_timeseries::Date;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let csv = fig6_csv(&scenario.honeypot);
    write_artifact("fig6_by_protocol.csv", &csv);

    // Console: protocol shares in three eras.
    let eras = [
        ("2014 H2", Date::new(2014, 7, 7), Date::new(2015, 1, 5)),
        ("2016 H2", Date::new(2016, 7, 4), Date::new(2017, 1, 2)),
        ("2018 H2", Date::new(2018, 7, 2), Date::new(2019, 1, 7)),
    ];
    print!("{:<9}", "protocol");
    for (label, _, _) in &eras {
        print!("{label:>10}");
    }
    println!();
    for p in UdpProtocol::ALL {
        print!("{:<9}", p.label());
        for (_, from, to) in &eras {
            let protocol_total = scenario
                .honeypot
                .protocol(p)
                .window(*from, *to)
                .map(|w| w.total())
                .unwrap_or(f64::NAN);
            let global_total = scenario
                .honeypot
                .global
                .window(*from, *to)
                .map(|w| w.total())
                .unwrap_or(f64::NAN);
            print!("{:>9.1}%", 100.0 * protocol_total / global_total);
        }
        println!();
    }
    println!("\nPaper reference: 'Most of the growth comes from LDAP'; CHARGEN/NTP");
    println!("dominate the early era; DNS absent from attacks on China.");

    // §4.2's per-country protocol analysis: CN's narrow mix vs the US.
    let mix = booters_core::report::protocol_mix_table(
        &scenario.honeypot,
        &[
            booters_netsim::Country::Us,
            booters_netsim::Country::Cn,
            booters_netsim::Country::Uk,
        ],
        Date::new(2016, 6, 6),
        Date::new(2017, 1, 2),
    );
    println!("\n2016 H2 mixes (pre-LDAP era):\n{mix}");
}
