//! Regenerate Figure 7: stacked self-reported weekly attacks per booter
//! (anonymised), Nov 2017 – Apr 2019, showing the Xmas2018 market
//! restructuring.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_fig7 [scale]`

use booters_bench::{run_scenario, scale_from_args, write_artifact};
use booters_core::report::fig7_csv;
use booters_timeseries::Date;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let sr = &scenario.selfreport;
    let n_weeks = ((Date::new(2019, 4, 1).week_start().days_since(sr.start)) / 7) as usize;
    let csv = fig7_csv(sr, n_weeks);
    write_artifact("fig7_selfreport.csv", &csv);

    let total = sr.total_weekly(n_weeks);
    println!("self-reported weekly totals (8-week means):");
    let mut i = 1; // week 0 has no increment
    while i < total.len() {
        let k = 8.min(total.len() - i);
        let mean: f64 = (0..k).map(|t| total.get(i + t)).sum::<f64>() / k as f64;
        println!("  {}  {:>10.0}", total.week_date(i), mean);
        i += 8;
    }
    let week_of = |d: Date| (d.week_start().days_since(sr.start) / 7) as usize;
    println!(
        "\ntop-booter share: {:.0}% (Sep-Dec 2018) -> {:.0}% (Jan-Mar 2019); paper: ~60% after",
        100.0 * sr.top_share(week_of(Date::new(2018, 9, 3)), week_of(Date::new(2018, 12, 10))).unwrap_or(f64::NAN),
        100.0 * sr.top_share(week_of(Date::new(2019, 1, 7)), week_of(Date::new(2019, 3, 25))).unwrap_or(f64::NAN),
    );

    // Market concentration (HHI) around the Xmas2018 restructuring.
    let conc = booters_market::concentration::ConcentrationSeries::from_weeks(&scenario.weeks);
    let xmas_week = scenario
        .weeks
        .iter()
        .find(|w| w.monday >= Date::new(2018, 12, 17))
        .map(|w| w.week)
        .unwrap_or(0);
    let before = conc.mean_hhi(xmas_week.saturating_sub(12), xmas_week);
    let after = conc.mean_hhi(xmas_week + 2, xmas_week + 12);
    println!(
        "market HHI: {before:.3} before Xmas2018 -> {after:.3} after \
         (effective competitors {:.1} -> {:.1})",
        1.0 / before,
        1.0 / after
    );
}
