//! Full per-country model parameters — the detail the paper's §4.1 omits
//! "for reasons of space, we do not present the details of the individual
//! per-country model parameters". The reproduction has no page limit.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_country_models [scale]`

use booters_bench::{pipeline_config, run_scenario, scale_from_args, write_artifact};
use booters_core::report::country_model_detail;
use booters_market::calibration::Calibration;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let cal = Calibration::default();
    let cfg = pipeline_config();

    let mut out = String::new();
    for country in Calibration::table2_countries() {
        match country_model_detail(&scenario.honeypot, &cal, country, &cfg) {
            Ok(text) => {
                out.push_str(&text);
                out.push_str("\n----------------------------------------\n\n");
            }
            Err(e) => out.push_str(&format!("{country}: model failed: {e}\n")),
        }
    }
    println!("{out}");
    write_artifact("country_models.txt", &out);
}
