//! Full per-country model parameters — the detail the paper's §4.1 omits
//! "for reasons of space, we do not present the details of the individual
//! per-country model parameters". The reproduction has no page limit.
//!
//! Usage: `cargo run --release -p booters-bench --bin repro_country_models [scale]`

use booters_bench::{pipeline_config, run_scenario, scale_from_args, write_artifact};
use booters_core::report::country_model_detail;
use booters_market::calibration::Calibration;

fn main() {
    let scale = scale_from_args();
    let scenario = run_scenario(scale);
    let cal = Calibration::default();
    let cfg = pipeline_config();

    // Fit every country in parallel; blocks are joined in table order, so
    // the artifact is identical at every BOOTERS_THREADS setting.
    let countries = Calibration::table2_countries();
    let blocks = booters_par::par_map(&countries, |&country| {
        match country_model_detail(&scenario.honeypot, &cal, country, &cfg) {
            Ok(text) => format!("{text}\n----------------------------------------\n\n"),
            Err(e) => format!("{country}: model failed: {e}\n"),
        }
    });
    let out = blocks.concat();
    println!("{out}");
    write_artifact("country_models.txt", &out);
}
