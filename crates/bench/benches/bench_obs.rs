//! Observability-overhead benchmarks: the same workloads run with the
//! `booters-obs` registry disabled and enabled, so `BENCH_obs.json`
//! records both what instrumentation costs when it is on and — the
//! number that actually matters — that the disabled path (one relaxed
//! atomic load per call site) stays within noise of the uninstrumented
//! baselines recorded in earlier `BENCH_*.json` entries.

use booters_bench::repro_config;
use booters_core::scenario::Scenario;
use booters_glm::negbin::{fit_negbin, NegBinOptions};
use booters_linalg::Matrix;
use booters_stats::dist::NegativeBinomial;
use booters_testkit::bench::Criterion;
use booters_testkit::rngs::StdRng;
use booters_testkit::SeedableRng;
use booters_testkit::{bench_group, bench_main};
use booters_timeseries::design::{its_design, DesignConfig};
use booters_timeseries::{Date, InterventionWindow, WeeklySeries};
use std::hint::black_box;

const BENCH_SCALE: f64 = 0.02;

/// Paper-shaped NB2 problem (148 weeks, intervention + seasonal design),
/// mirroring `bench_glm`'s workload so the two files are comparable.
fn paper_problem() -> (Matrix, Vec<f64>, Vec<String>) {
    let series = WeeklySeries::covering(Date::new(2016, 6, 6), Date::new(2019, 4, 1));
    let windows = vec![
        InterventionWindow::immediate("xmas", Date::new(2018, 12, 19), 10),
        InterventionWindow::delayed("webstresser", Date::new(2018, 4, 24), 2, 3),
        InterventionWindow::immediate("mirai", Date::new(2018, 10, 26), 8),
        InterventionWindow::immediate("hackforums", Date::new(2016, 10, 28), 13),
        InterventionWindow::immediate("vdos", Date::new(2017, 12, 19), 3),
    ];
    let design = its_design(&series, &windows, &DesignConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let mut y = vec![0.0; series.len()];
    for i in 0..series.len() {
        let t = i as f64;
        let mu = (10.0 + 0.01 * t).exp();
        y[i] = NegativeBinomial::new(mu, 0.01).sample(&mut rng) as f64;
    }
    (design.x, y, design.names)
}

fn bench_negbin_overhead(c: &mut Criterion) {
    let (x, y, names) = paper_problem();
    let mut group = c.benchmark_group("obs_negbin_fit");
    group.sample_size(20);
    group.bench_function("obs_off", |b| {
        booters_obs::set_enabled(false);
        b.iter(|| {
            let fit = fit_negbin(&x, &y, &names, &NegBinOptions::default()).unwrap();
            black_box(fit.alpha)
        })
    });
    group.bench_function("obs_on", |b| {
        booters_obs::set_enabled(true);
        b.iter(|| {
            let fit = fit_negbin(&x, &y, &names, &NegBinOptions::default()).unwrap();
            black_box(fit.alpha)
        })
    });
    booters_obs::set_enabled(false);
    booters_obs::reset();
    group.finish();
}

fn bench_pipeline_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_simulate");
    group.sample_size(5);
    group.bench_function("obs_off", |b| {
        booters_obs::set_enabled(false);
        b.iter(|| black_box(Scenario::run(repro_config(BENCH_SCALE)).honeypot.global.len()))
    });
    group.bench_function("obs_on", |b| {
        booters_obs::set_enabled(true);
        b.iter(|| black_box(Scenario::run(repro_config(BENCH_SCALE)).honeypot.global.len()))
    });
    booters_obs::set_enabled(false);
    booters_obs::reset();
    group.finish();
}

bench_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_negbin_overhead, bench_pipeline_overhead
}
bench_main!(benches);
