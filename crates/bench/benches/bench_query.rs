//! Query-engine benchmarks: zone-map pruning economics (a selective
//! time window against a full scan over the same ≥32-chunk store — the
//! pruned scan must win by an integer multiple), group-by-week panel
//! throughput (rows/s, no row materialization), and concurrent-reader
//! scaling (whole scans/s with 1, 2, 4, and 8 readers sharing one
//! engine via `Arc` clones).
//!
//! Run with `BENCH_JSON=BENCH_query.json cargo bench --offline -p
//! booters-bench --bench bench_query` to refresh the recorded baseline.

use booters_netsim::{AttackCommand, Engine, EngineConfig, SensorPacket, UdpProtocol, VictimAddr};
use booters_query::{Predicate, QueryEngine, WEEK_SECS};
use booters_store::ChunkWriter;
use booters_testkit::bench::{black_box, Criterion, Throughput};
use booters_testkit::{bench_group, bench_main};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("booters-bench-query-{}-{name}", std::process::id()))
}

/// A deterministic engine trace spread over four weeks so time zone
/// maps separate cleanly across chunks.
fn sample_packets() -> Vec<SensorPacket> {
    let mut engine = Engine::new(EngineConfig::default());
    let cmds: Vec<AttackCommand> = (0..400u32)
        .map(|i| AttackCommand {
            time: (4 * WEEK_SECS / 400) * i as u64,
            victim: VictimAddr::from_octets(25, (i % 7) as u8, (i / 7) as u8, 1),
            protocol: UdpProtocol::ALL[i as usize % UdpProtocol::ALL.len()],
            duration_secs: 300,
            packets_per_second: 50_000,
            booter: i % 23,
            avoids_honeypots: i % 5 == 0,
        })
        .collect();
    engine.simulate_attacks_batch(&cmds)
}

/// Write the trace into a store with at least 32 chunks, so pruning has
/// real room to show an integer-multiple win.
fn sample_store(name: &str) -> (PathBuf, usize) {
    let packets = sample_packets();
    let cap = (packets.len() / 48).max(1);
    let path = scratch(name);
    let mut w = ChunkWriter::with_capacity(&path, cap).unwrap();
    w.push_all(&packets).unwrap();
    w.finish().unwrap();
    (path, packets.len())
}

/// A narrow window in week 2: survives in a handful of chunks, prunes
/// the rest from the footer alone.
fn narrow_window() -> Predicate {
    Predicate::all().with_time(WEEK_SECS, WEEK_SECS + WEEK_SECS / 8)
}

fn bench_pruning(c: &mut Criterion) {
    let (path, rows) = sample_store("pruning.bstore");
    let eng = QueryEngine::open(&path).unwrap();
    assert!(eng.chunk_count() >= 32, "store too small: {}", eng.chunk_count());
    let narrow = narrow_window();
    let plan = eng.plan(&narrow);
    assert!(
        plan.pruned * 2 >= plan.total,
        "window should prune most chunks ({}/{} pruned)",
        plan.pruned,
        plan.total
    );
    let mut group = c.benchmark_group("query_pruning");
    group.sample_size(20);
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("full_scan", |b| {
        b.iter(|| black_box(eng.scan(&Predicate::all()).unwrap().rows.len()))
    });
    group.bench_function("pruned_window", |b| {
        b.iter(|| black_box(eng.scan(&narrow).unwrap().rows.len()))
    });
    group.bench_function("pruned_count_footer", |b| {
        b.iter(|| black_box(eng.count(&narrow).unwrap().0))
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

fn bench_group_by_week(c: &mut Criterion) {
    let (path, rows) = sample_store("panel.bstore");
    let eng = QueryEngine::open(&path).unwrap();
    let mut group = c.benchmark_group("query_group_by_week");
    group.sample_size(10);
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function("weekly_panel", |b| {
        b.iter(|| black_box(eng.group_by_week(&Predicate::all()).unwrap().0.cells.len()))
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

/// N readers each run one whole pruned scan; elements = scans, so the
/// recorded throughput is scans/s at that reader count.
fn bench_readers(c: &mut Criterion) {
    let (path, _) = sample_store("readers.bstore");
    let eng = QueryEngine::open(&path).unwrap();
    let pred = narrow_window();
    let mut group = c.benchmark_group("query_readers");
    group.sample_size(10);
    for readers in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements(readers as u64));
        group.bench_function(&format!("scans_{readers}_readers"), |b| {
            b.iter(|| {
                let handles: Vec<_> = (0..readers)
                    .map(|_| {
                        let eng = eng.clone();
                        let pred = pred.clone();
                        std::thread::spawn(move || eng.scan(&pred).unwrap().rows.len())
                    })
                    .collect();
                let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                black_box(total)
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_file(&path);
}

/// Decoded-chunk cache economics (DESIGN.md §5i): the same pruned-window
/// scan cold (cache cleared before every iteration, so each one pays
/// read + CRC + varint decode) against warm (working set resident, so
/// each one pays only selection + materialization), then warm scans with
/// 1/2/4/8 readers sharing one engine's resident working set.
fn bench_cache(c: &mut Criterion) {
    let (path, rows) = sample_store("cache.bstore");
    let prev = booters_store::set_cache_bytes(8 << 20);
    {
        let eng = QueryEngine::open(&path).unwrap();
        // The analysis shape the cache serves best: a pruned time window
        // plus a row-level protocol selection. Cold must decode every
        // surviving chunk in full either way; warm pays only selection
        // and the (much smaller) matched-row materialization.
        let narrow = narrow_window().with_protocols(&[UdpProtocol::Ntp]);
        let mut group = c.benchmark_group("query_cache");
        group.sample_size(20);
        group.throughput(Throughput::Elements(rows as u64));
        group.bench_function("pruned_window_cold", |b| {
            b.iter(|| {
                booters_store::cache::clear();
                black_box(eng.scan(&narrow).unwrap().rows.len())
            })
        });
        // Prime once; every iteration below is all hits.
        let _ = eng.scan(&narrow).unwrap();
        group.bench_function("pruned_window_warm", |b| {
            b.iter(|| black_box(eng.scan(&narrow).unwrap().rows.len()))
        });
        for readers in [1usize, 2, 4, 8] {
            group.throughput(Throughput::Elements(readers as u64));
            group.bench_function(&format!("warm_shared_scans_{readers}_readers"), |b| {
                b.iter(|| {
                    let handles: Vec<_> = (0..readers)
                        .map(|_| {
                            let eng = eng.clone();
                            let pred = narrow.clone();
                            std::thread::spawn(move || eng.scan(&pred).unwrap().rows.len())
                        })
                        .collect();
                    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                    black_box(total)
                })
            });
        }
        group.finish();
    }
    booters_store::set_cache_bytes(prev);
    let _ = std::fs::remove_file(&path);
}

bench_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pruning, bench_group_by_week, bench_readers, bench_cache
}
bench_main!(benches);
