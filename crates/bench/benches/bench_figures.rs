//! Figure regeneration benchmarks: one per paper figure, timing the data
//! extraction/rendering for each series the figures plot.

use booters_bench::{pipeline_config, repro_config};
use booters_core::pipeline::fit_global;
use booters_core::report::{
    fig1_csv, fig2_csv, fig3_csv, fig4_table, fig5_csv, fig6_csv, fig7_csv, fig8_csv,
};
use booters_core::scenario::Scenario;
use booters_core::verify::{cross_dataset_correlation, validate_top_booters};
use booters_market::calibration::Calibration;
use booters_timeseries::Date;
use booters_testkit::bench::Criterion;
use booters_testkit::{bench_group, bench_main};
use std::hint::black_box;

const BENCH_SCALE: f64 = 0.02;

fn bench_figures(c: &mut Criterion) {
    let scenario = Scenario::run(repro_config(BENCH_SCALE));
    let cal = Calibration::default();
    let cfg = pipeline_config();
    let fit = fit_global(&scenario.honeypot, &cal, &cfg).unwrap();
    let mut group = c.benchmark_group("figures");

    group.bench_function("fig1_timeline", |b| {
        b.iter(|| black_box(fig1_csv(&scenario.honeypot).len()))
    });
    group.bench_function("fig2_model_overlay", |b| {
        b.iter(|| black_box(fig2_csv(&fit).len()))
    });
    group.bench_function("fig3_by_country", |b| {
        b.iter(|| black_box(fig3_csv(&scenario.honeypot).len()))
    });
    group.bench_function("fig4_correlation", |b| {
        b.iter(|| {
            black_box(
                fig4_table(
                    &scenario.honeypot,
                    Date::new(2016, 6, 6),
                    Date::new(2019, 4, 1),
                )
                .render()
                .len(),
            )
        })
    });
    group.bench_function("fig5_index_and_slopes", |b| {
        b.iter(|| {
            let (csv, slopes) = fig5_csv(&scenario.honeypot);
            black_box((csv.len(), slopes.uk_relative_decline()))
        })
    });
    group.bench_function("fig6_by_protocol", |b| {
        b.iter(|| black_box(fig6_csv(&scenario.honeypot).len()))
    });
    group.bench_function("fig7_selfreport_stack", |b| {
        b.iter(|| black_box(fig7_csv(&scenario.selfreport, 70).len()))
    });
    group.bench_function("fig8_lifecycle", |b| {
        b.iter(|| black_box(fig8_csv(&scenario.selfreport).len()))
    });
    group.bench_function("validation_suite", |b| {
        b.iter(|| {
            let v = validate_top_booters(&scenario.selfreport, 10);
            let r = cross_dataset_correlation(&scenario.honeypot, &scenario.selfreport);
            black_box((v.len(), r))
        })
    });
    group.finish();
}

bench_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_figures
}
bench_main!(benches);
