//! Streaming-ingest benchmarks for `booters-serve` (DESIGN.md §5g).
//!
//! Two shapes:
//!
//! 1. A criterion-style throughput benchmark of the full streaming loop
//!    (ingest → watermark advances → epoch close) on a one-day stream,
//!    so `BENCH_serve.json` carries a median-of-samples packets/s line.
//! 2. A one-shot *probe* on a multi-day, millions-of-victims stream that
//!    records what a steady-state serving process cares about: sustained
//!    packets/s, p50/p99 intake-to-classification latency, and the peak
//!    open-flow / pending-packet footprint (the bounded-state claim).
//!    The probe emits extra JSON lines in the harness's line format
//!    (median_ns + custom fields) so the numbers land in the same
//!    trajectory file.
//!
//! Latency is defined per sampled packet as the wall-clock time from its
//! `ingest` call to the completion of the first watermark advance that
//! could have classified it — the first advance whose watermark passes
//! `packet.time + FLOW_GAP_SECS`, at which point a flow ending at that
//! packet is guaranteed closed and classified. Packets whose bound is
//! never passed mid-stream resolve at the final epoch close.
//!
//! Run with `BENCH_JSON=BENCH_serve.json cargo bench --offline -p
//! booters-bench --bench bench_serve` to refresh the recorded baseline.

use booters_netsim::flow::FLOW_GAP_SECS;
use booters_netsim::{SensorPacket, UdpProtocol, VictimAddr};
use booters_serve::{RefitPolicy, ServeConfig, ServeNode};
use booters_testkit::bench::{black_box, Criterion, Throughput};
use booters_testkit::rng::SplitMix64;
use booters_testkit::{bench_group, bench_main};
use std::time::Instant;

const DAY_SECS: u64 = 86_400;
/// How far arrivals may trail sim time (well inside the default
/// 1800 s watermark lag, so no packet is ever late).
const MAX_DISORDER_SECS: u64 = 300;
/// Watermark advance cadence in sim seconds.
const ADVANCE_EVERY_SECS: u64 = 60;

/// Deterministic synthetic sensor stream: `n` packets spread evenly over
/// `days` days, victims drawn uniformly from `victims` addresses, with
/// bounded backward time jitter so the pending buffers and re-sort path
/// do real work.
fn synth_stream(n: usize, victims: u32, days: u64, seed: u64) -> Vec<SensorPacket> {
    let span = days * DAY_SECS;
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let base = (i as u64 * span) / n as u64;
            let r = rng.next_u64();
            SensorPacket {
                time: base.saturating_sub(r % (MAX_DISORDER_SECS + 1)),
                sensor: ((r >> 16) % 8) as u32,
                victim: VictimAddr(((r >> 32) % victims as u64) as u32),
                protocol: UdpProtocol::ALL[((r >> 8) % 10) as usize],
                ttl: 64,
                src_port: (r >> 48) as u16,
            }
        })
        .collect()
}

fn bench_node() -> ServeNode {
    ServeNode::new(ServeConfig {
        refit: RefitPolicy {
            enabled: false,
            ..RefitPolicy::default()
        },
        ..ServeConfig::default()
    })
}

/// Drive the full streaming loop once: ingest every packet, advance the
/// watermark every [`ADVANCE_EVERY_SECS`] of sim time, drain closed
/// flows as they appear (bounding memory like a real serving process),
/// and close the epoch at the end. Returns (flows closed, attacks).
fn drive(stream: &[SensorPacket], node: &mut ServeNode) -> (u64, u64) {
    let mut next_advance = ADVANCE_EVERY_SECS;
    let mut flows = 0u64;
    let mut attacks = 0u64;
    for p in stream {
        node.ingest(p).expect("bench stream is never late");
        if p.time >= next_advance {
            node.advance_watermark(node.suggested_watermark())
                .expect("healthy node");
            for f in node.take_flows().expect("healthy node") {
                flows += 1;
                attacks += (f.classify() == booters_netsim::FlowClass::Attack) as u64;
            }
            next_advance = p.time + ADVANCE_EVERY_SECS;
        }
    }
    (flows, attacks)
}

fn bench_stream_throughput(c: &mut Criterion) {
    // One day, 200k victims, 400k packets: big enough that sharding,
    // ring drains, and the incremental grouper dominate fixed costs.
    let stream = synth_stream(400_000, 200_000, 1, 0x5E12_FE01);
    let mut group = c.benchmark_group("serve_stream");
    group.sample_size(10);
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("ingest_group_close_1d_200k_victims", |b| {
        b.iter(|| {
            let mut node = bench_node();
            let counts = drive(&stream, &mut node);
            let (flows, stats) = node.finish().expect("healthy node");
            black_box((counts, flows.len(), stats.packets))
        })
    });
    group.finish();
}

/// Emit one JSON line in the harness's format plus free-form extra
/// fields, to stdout and (when set) `$BENCH_JSON`.
fn emit_line(name: &str, median_ns: u128, extra: &str) {
    let line = format!(
        "{{\"name\":\"{name}\",\"median_ns\":{median_ns},\"mad_ns\":0,\
         \"samples\":1,\"iters_per_sample\":1{extra}}}"
    );
    println!("{line}");
    if let Ok(path) = std::env::var("BENCH_JSON") {
        use std::io::Write;
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(file, "{line}");
        }
    }
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn probe_multi_day_stream(_c: &mut Criterion) {
    // Three days, two million victim addresses, three million packets:
    // most flows are tiny and the open-flow set must stay bounded by
    // the watermark, not grow with the stream.
    let n = 3_000_000usize;
    let stream = synth_stream(n, 2_000_000, 3, 0x5E12_FE02);
    let mut node = bench_node();

    let sample_every = 256usize;
    let mut samples: Vec<(Instant, u64)> = Vec::with_capacity(n / sample_every + 1);
    // (watermark, completion instant) per advance; watermarks increase.
    let mut advances: Vec<(u64, Instant)> = Vec::new();
    let mut next_advance = ADVANCE_EVERY_SECS;
    let mut flows = 0u64;

    let start = Instant::now();
    for (i, p) in stream.iter().enumerate() {
        node.ingest(p).expect("bench stream is never late");
        if i % sample_every == 0 {
            samples.push((Instant::now(), p.time));
        }
        if p.time >= next_advance {
            let w = node.suggested_watermark();
            node.advance_watermark(w).expect("healthy node");
            flows += node.take_flows().expect("healthy node").len() as u64;
            advances.push((w, Instant::now()));
            next_advance = p.time + ADVANCE_EVERY_SECS;
        }
    }
    let (final_flows, stats) = node.finish().expect("healthy node");
    let end = Instant::now();
    let total = end.duration_since(start);
    flows += final_flows.len() as u64;
    drop(final_flows);

    // Classification latency per sample: first advance whose watermark
    // passes time + FLOW_GAP_SECS; otherwise the final epoch close.
    let mut latencies: Vec<u128> = samples
        .iter()
        .map(|&(ingested, sim_time)| {
            let bound = sim_time + FLOW_GAP_SECS;
            let k = advances.partition_point(|&(w, _)| w <= bound);
            let closed_at = advances.get(k).map(|&(_, at)| at).unwrap_or(end);
            closed_at.saturating_duration_since(ingested).as_nanos()
        })
        .collect();
    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let pps = stats.packets as f64 / total.as_secs_f64();

    eprintln!(
        "serve probe: {} packets, {} flows, {:.0} packets/s sustained, \
         latency p50 {:.1} ms / p99 {:.1} ms, peak open flows {}, peak pending {}",
        stats.packets,
        flows,
        pps,
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        stats.peak_open_flows,
        stats.peak_pending,
    );
    assert_eq!(stats.packets as usize, n);
    assert_eq!(stats.late_packets, 0);

    emit_line(
        "serve_probe/sustained_3d_2m_victims",
        total.as_nanos(),
        &format!(",\"elements\":{n},\"packets_per_sec\":{pps:.0}"),
    );
    emit_line("serve_probe/latency_p50_intake_to_classification", p50, "");
    emit_line("serve_probe/latency_p99_intake_to_classification", p99, "");
    emit_line(
        "serve_probe/steady_state_footprint",
        0,
        &format!(
            ",\"peak_open_flows\":{},\"peak_pending_packets\":{},\"flows_closed\":{}",
            stats.peak_open_flows, stats.peak_pending, flows
        ),
    );
}

bench_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stream_throughput, probe_multi_day_stream
}
bench_main!(benches);
