//! Table regeneration benchmarks: one benchmark per paper table, timing
//! the full simulate → observe → fit → render chain at reduced scale,
//! plus the Poisson-vs-NB ablation the paper's model choice rests on.

use booters_bench::{pipeline_config, repro_config};
use booters_core::pipeline::{fit_global, fit_series, global_intervention_windows};
use booters_core::report::{table1, table2, table3};
use booters_core::scenario::Scenario;
use booters_glm::irls::IrlsOptions;
use booters_glm::poisson::fit_poisson;
use booters_market::calibration::Calibration;
use booters_timeseries::design::{its_design, DesignConfig};
use booters_testkit::bench::Criterion;
use booters_testkit::{bench_group, bench_main};
use std::hint::black_box;

const BENCH_SCALE: f64 = 0.02;

fn bench_table1(c: &mut Criterion) {
    let scenario = Scenario::run(repro_config(BENCH_SCALE));
    let cal = Calibration::default();
    let cfg = pipeline_config();
    c.bench_function("table1_fit_and_render", |b| {
        b.iter(|| {
            let fit = fit_global(&scenario.honeypot, &cal, &cfg).unwrap();
            black_box(table1(&fit).len())
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let scenario = Scenario::run(repro_config(BENCH_SCALE));
    let cal = Calibration::default();
    let cfg = pipeline_config();
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table2_eight_models", |b| {
        b.iter(|| black_box(table2(&scenario.honeypot, &cal, &cfg).unwrap().len()))
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let scenario = Scenario::run(repro_config(BENCH_SCALE));
    c.bench_function("table3_shares", |b| {
        b.iter(|| black_box(table3(&scenario.honeypot).len()))
    });
}

/// Ablation: Poisson vs NB2 on the same series — quantifies the cost of
/// the dispersion search relative to plain Poisson IRLS.
fn bench_poisson_ablation(c: &mut Criterion) {
    let scenario = Scenario::run(repro_config(BENCH_SCALE));
    let cal = Calibration::default();
    let cfg = pipeline_config();
    let series = scenario
        .honeypot
        .global
        .window(cfg.window_start, cfg.window_end)
        .unwrap();
    let windows = global_intervention_windows(&cal);
    let design = its_design(&series, &windows, &DesignConfig::default());
    let mut group = c.benchmark_group("ablation");
    group.bench_function("poisson_only", |b| {
        b.iter(|| {
            let fit = fit_poisson(
                &design.x,
                series.values(),
                &design.names,
                &IrlsOptions::default(),
                0.95,
            )
            .unwrap();
            black_box(fit.fit.deviance)
        })
    });
    group.bench_function("negbin_profile_alpha", |b| {
        b.iter(|| {
            let fit = fit_series(&series, &windows, &cfg).unwrap();
            black_box(fit.fit.alpha)
        })
    });
    group.finish();
}

/// The automated window-detection loop (baseline fit + residual scan +
/// greedy LR-tested additions) at the paper's series size.
fn bench_detection(c: &mut Criterion) {
    use booters_core::detect::{detect_interventions, DetectOptions};
    use booters_timeseries::Date;
    let scenario = Scenario::run(repro_config(BENCH_SCALE));
    let series = scenario
        .honeypot
        .global
        .window(Date::new(2016, 6, 6), Date::new(2019, 4, 1))
        .unwrap();
    let cfg = pipeline_config();
    let mut group = c.benchmark_group("detection");
    group.sample_size(10);
    group.bench_function("detect_interventions_full_series", |b| {
        b.iter(|| {
            let found = detect_interventions(&series, &cfg, &DetectOptions::default()).unwrap();
            black_box(found.len())
        })
    });
    group.finish();
}

bench_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1, bench_table2, bench_table3, bench_poisson_ablation, bench_detection
}
bench_main!(benches);
