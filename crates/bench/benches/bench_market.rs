//! Market simulation benchmarks: the weekly step, a full five-year run,
//! and the end-to-end observed scenario.

use booters_core::scenario::{Fidelity, Scenario, ScenarioConfig};
use booters_market::market::{MarketConfig, MarketSim};
use booters_testkit::bench::Criterion;
use booters_testkit::{bench_group, bench_main};
use std::hint::black_box;

fn bench_weekly_step(c: &mut Criterion) {
    c.bench_function("market_weekly_step", |b| {
        b.iter_with_setup(
            || {
                MarketSim::new(MarketConfig {
                    scale: 0.1,
                    seed: 1,
                    ..MarketConfig::default()
                })
            },
            |mut sim| {
                let out = sim.step().unwrap();
                black_box(out.total)
            },
        )
    });
}

fn bench_full_run(c: &mut Criterion) {
    c.bench_function("market_five_year_run_scale_0.05", |b| {
        b.iter(|| {
            let sim = MarketSim::new(MarketConfig {
                scale: 0.05,
                seed: 2,
                ..MarketConfig::default()
            });
            let weeks = sim.run();
            black_box(weeks.len())
        })
    });
}

fn bench_observed_scenario(c: &mut Criterion) {
    c.bench_function("scenario_aggregate_scale_0.02", |b| {
        b.iter(|| {
            let s = Scenario::run(ScenarioConfig {
                market: MarketConfig {
                    scale: 0.02,
                    seed: 3,
                    ..MarketConfig::default()
                },
                fidelity: Fidelity::Aggregate,
                ..ScenarioConfig::default()
            });
            black_box(s.honeypot.global.total())
        })
    });
}

bench_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_weekly_step, bench_full_run, bench_observed_scenario
}
bench_main!(benches);
