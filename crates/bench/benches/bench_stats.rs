//! Statistical kernel benchmarks: special functions, CDFs, quantiles and
//! sampling — the inner loops of every model fit.

use booters_stats::dist::{standard_normal_quantile, NegativeBinomial, Normal, Poisson};
use booters_stats::special::{beta_inc, digamma, gamma_p, ln_gamma, trigamma};
use booters_stats::tests::{dagostino_k2, ljung_box, white_test};
use booters_testkit::bench::{Criterion, Throughput};
use booters_testkit::{bench_group, bench_main};
use booters_testkit::rngs::StdRng;
use booters_testkit::SeedableRng;
use std::hint::black_box;

fn bench_special_functions(c: &mut Criterion) {
    let xs: Vec<f64> = (1..=1000).map(|i| i as f64 * 0.37 + 0.1).collect();
    let mut group = c.benchmark_group("special");
    group.throughput(Throughput::Elements(xs.len() as u64));
    group.bench_function("ln_gamma", |b| {
        b.iter(|| xs.iter().map(|&x| ln_gamma(black_box(x))).sum::<f64>())
    });
    group.bench_function("digamma", |b| {
        b.iter(|| xs.iter().map(|&x| digamma(black_box(x))).sum::<f64>())
    });
    group.bench_function("trigamma", |b| {
        b.iter(|| xs.iter().map(|&x| trigamma(black_box(x))).sum::<f64>())
    });
    group.bench_function("gamma_p", |b| {
        b.iter(|| xs.iter().map(|&x| gamma_p(black_box(x), x * 0.9)).sum::<f64>())
    });
    group.bench_function("beta_inc", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&x| beta_inc(black_box(x), 2.5, 0.4))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions");
    group.bench_function("normal_quantile", |b| {
        b.iter(|| {
            (1..1000)
                .map(|i| standard_normal_quantile(black_box(i as f64 / 1000.0)))
                .sum::<f64>()
        })
    });
    group.bench_function("negbin_cdf", |b| {
        let nb = NegativeBinomial::new(50.0, 0.1);
        b.iter(|| (0..200).map(|k| nb.cdf(black_box(k))).sum::<f64>())
    });
    group.bench_function("normal_cdf", |b| {
        let n = Normal::standard();
        b.iter(|| {
            (-400..400)
                .map(|i| n.cdf(black_box(i as f64 / 100.0)))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("poisson_large_lambda", |b| {
        let p = Poisson::new(50_000.0);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            (0..10_000).map(|_| p.sample(&mut rng)).sum::<u64>()
        })
    });
    group.bench_function("negbin_sample", |b| {
        let nb = NegativeBinomial::new(30_000.0, 0.012);
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            (0..10_000).map(|_| nb.sample(&mut rng)).sum::<u64>()
        })
    });
    group.finish();
}

fn bench_hypothesis_tests(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let xs: Vec<f64> = (0..300).map(|i| i as f64).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|&x| 100.0 + 2.0 * x + (1.0 + 0.1 * x) * booters_stats::dist::standard_normal_sample(&mut rng))
        .collect();
    let mut group = c.benchmark_group("tests");
    group.bench_function("white_test_300", |b| {
        b.iter(|| black_box(white_test(&xs, &ys).unwrap().p_value))
    });
    group.bench_function("dagostino_k2_300", |b| {
        b.iter(|| black_box(dagostino_k2(&ys).unwrap().p_value))
    });
    group.bench_function("ljung_box_300", |b| {
        b.iter(|| black_box(ljung_box(&ys, 10).unwrap().p_value))
    });
    group.finish();
}

bench_group!(
    benches,
    bench_special_functions,
    bench_distributions,
    bench_sampling,
    bench_hypothesis_tests
);
bench_main!(benches);
