//! Storage-layer benchmarks: chunked-columnar ingest throughput (MB/s and
//! packets/s), codec encode/decode cost, whole-file scan speed (with the
//! achieved compression ratio embedded in the benchmark name so it lands
//! in `BENCH_store.json`), per-kernel fast-vs-oracle timings (SWAR
//! decode, slice-by-8 CRC, radix sort — DESIGN.md §5f), and out-of-core
//! vs in-memory flow grouping wall time under a spill-forcing budget.
//!
//! Run with `BENCH_JSON=BENCH_store.json cargo bench --offline -p
//! booters-bench --bench bench_store` to refresh the recorded baseline.

use booters_netsim::flow::VictimKey;
use booters_netsim::packet::SensorPacket;
use booters_netsim::{group_flows_par, AttackCommand, Engine, EngineConfig, UdpProtocol, VictimAddr};
use booters_store::{
    decode_chunk, encode_chunk, group_out_of_core, ChunkReader, ChunkWriter, SpillConfig,
    PACKET_BYTES,
};
use booters_testkit::bench::{Criterion, Throughput};
use booters_testkit::{bench_group, bench_main};
use std::hint::black_box;
use std::path::PathBuf;

/// Spill budget small enough that the grouping benchmark genuinely runs
/// the external sort/merge path on the sample trace.
const SPILL_BUDGET: usize = 256 << 10;

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("booters-bench-store-{}-{name}", std::process::id()))
}

/// A deterministic engine trace: a spread of victims and protocols large
/// enough that chunk encode/merge costs dominate fixed overheads.
fn sample_packets() -> Vec<SensorPacket> {
    let mut engine = Engine::new(EngineConfig::default());
    let cmds: Vec<AttackCommand> = (0..400u32)
        .map(|i| AttackCommand {
            time: 600 * i as u64,
            victim: VictimAddr::from_octets(25, (i % 7) as u8, (i / 7) as u8, 1),
            protocol: UdpProtocol::ALL[i as usize % UdpProtocol::ALL.len()],
            duration_secs: 300,
            packets_per_second: 50_000,
            booter: i % 23,
            avoids_honeypots: i % 5 == 0,
        })
        .collect();
    engine.simulate_attacks_batch(&cmds)
}

fn bench_ingest(c: &mut Criterion) {
    let packets = sample_packets();
    let raw = (packets.len() * PACKET_BYTES) as u64;
    let path = scratch("ingest.bst");

    // Same workload twice so the JSON carries both a bytes-normalised
    // (MB/s) and an elements-normalised (packets/s) record.
    let mut group = c.benchmark_group("store_ingest_bytes");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(raw));
    group.bench_function("chunk_writer", |b| {
        b.iter(|| {
            let mut w = ChunkWriter::create(&path).unwrap();
            w.push_all(&packets).unwrap();
            black_box(w.finish().unwrap().file_bytes)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("store_ingest_packets");
    group.sample_size(10);
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("chunk_writer", |b| {
        b.iter(|| {
            let mut w = ChunkWriter::create(&path).unwrap();
            w.push_all(&packets).unwrap();
            black_box(w.finish().unwrap().packets)
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

fn bench_codec(c: &mut Criterion) {
    let packets: Vec<SensorPacket> = sample_packets().into_iter().take(4096).collect();
    let raw = (packets.len() * PACKET_BYTES) as u64;
    let encoded = encode_chunk(&packets);
    let mut group = c.benchmark_group("store_codec");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(raw));
    group.bench_function("encode", |b| b.iter(|| black_box(encode_chunk(&packets).len())));
    group.bench_function("decode", |b| {
        b.iter(|| black_box(decode_chunk(&encoded).unwrap().len()))
    });
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let packets = sample_packets();
    let path = scratch("scan.bst");
    let mut w = ChunkWriter::create(&path).unwrap();
    w.push_all(&packets).unwrap();
    let meta = w.finish().unwrap();
    // Embed the achieved compression ratio in the benchmark name so the
    // JSON baseline records it alongside the scan time.
    let name = format!("read_all_ratio_x{:.2}", meta.compression_ratio());
    let mut group = c.benchmark_group("store_scan");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(meta.raw_bytes));
    group.bench_function(&name, |b| {
        b.iter(|| {
            let mut r = ChunkReader::open(&path).unwrap();
            black_box(r.read_all().unwrap().len())
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

/// Each fast kernel timed against its scalar oracle on the same input,
/// so the JSON trajectory records the speedup ratio per kernel
/// (DESIGN.md §5f), not just the end-to-end effect.
fn bench_kernels(c: &mut Criterion) {
    let packets: Vec<SensorPacket> = sample_packets().into_iter().take(4096).collect();
    let encoded = encode_chunk(&packets);

    let mut group = c.benchmark_group("store_kernel_crc32");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("slice8", |b| {
        b.iter(|| black_box(booters_par::with_scalar_kernels(false, || booters_store::crc32(&encoded))))
    });
    group.bench_function("bytewise_oracle", |b| {
        b.iter(|| black_box(booters_store::crc32_bytewise(&encoded)))
    });
    group.finish();

    let mut group = c.benchmark_group("store_kernel_decode");
    group.sample_size(20);
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("swar", |b| {
        b.iter(|| {
            booters_par::with_scalar_kernels(false, || black_box(decode_chunk(&encoded).unwrap().len()))
        })
    });
    group.bench_function("scalar_oracle", |b| {
        b.iter(|| {
            booters_par::with_scalar_kernels(true, || black_box(decode_chunk(&encoded).unwrap().len()))
        })
    });
    group.finish();

    // The run-formation sort, fast vs oracle, via the public sort_flows
    // entry point on a duplicate-heavy flow set.
    let mut trace = sample_packets();
    trace.sort_by_key(|p| p.time);
    let flows = group_flows_par(&trace, VictimKey::ByIp);
    let mut group = c.benchmark_group("store_kernel_sort");
    group.sample_size(20);
    group.throughput(Throughput::Elements(flows.len() as u64));
    group.bench_function("radix", |b| {
        b.iter(|| {
            booters_par::with_scalar_kernels(false, || {
                let mut f = flows.clone();
                booters_netsim::sort_flows(&mut f);
                black_box(f.len())
            })
        })
    });
    group.bench_function("comparison_oracle", |b| {
        b.iter(|| {
            booters_par::with_scalar_kernels(true, || {
                let mut f = flows.clone();
                booters_netsim::sort_flows(&mut f);
                black_box(f.len())
            })
        })
    });
    group.finish();
}

fn bench_grouping(c: &mut Criterion) {
    let mut packets = sample_packets();
    packets.sort_by_key(|p| p.time);
    let mut group = c.benchmark_group("store_grouping");
    group.sample_size(10);
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("in_memory", |b| {
        b.iter(|| black_box(group_flows_par(&packets, VictimKey::ByIp).len()))
    });
    group.bench_function("out_of_core_256k", |b| {
        b.iter(|| {
            let cfg = SpillConfig {
                budget_bytes: SPILL_BUDGET,
                ..SpillConfig::default()
            };
            let out = group_out_of_core(&packets, cfg).unwrap();
            assert!(out.stats.spill_runs >= 3);
            black_box(out.flows.len())
        })
    });
    group.finish();
}

bench_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ingest, bench_codec, bench_scan, bench_kernels, bench_grouping
}
bench_main!(benches);
