#![allow(clippy::needless_range_loop)]
//! GLM fitting benchmarks: the paper-sized NB2 regression (148 weeks × 19
//! columns) through the warm-started and cold-started profile paths, the
//! fused vs separate normal-equation kernels, the allocation-free
//! workspace re-fit vs the allocating entry point, the Poisson baseline,
//! and OLS.

use booters_glm::irls::{fit_irls, IrlsOptions};
use booters_glm::negbin::{fit_negbin, NegBinOptions};
use booters_glm::ols::fit_ols;
use booters_glm::poisson::fit_poisson;
use booters_glm::workspace::{fit_irls_into, IrlsWorkspace, WarmStart};
use booters_glm::{LogLink, NegBin2};
use booters_linalg::Matrix;
use booters_stats::dist::NegativeBinomial;
use booters_timeseries::design::{its_design, DesignConfig};
use booters_timeseries::{Date, InterventionWindow, WeeklySeries};
use booters_testkit::bench::Criterion;
use booters_testkit::{bench_group, bench_main};
use booters_testkit::rngs::StdRng;
use booters_testkit::SeedableRng;
use std::hint::black_box;

/// Paper-shaped problem: 148 weeks, 5 interventions + Easter + 11
/// seasonals + trend + constant = 19 columns.
fn paper_problem() -> (Matrix, Vec<f64>, Vec<String>) {
    let series = WeeklySeries::covering(Date::new(2016, 6, 6), Date::new(2019, 4, 1));
    let windows = vec![
        InterventionWindow::immediate("xmas", Date::new(2018, 12, 19), 10),
        InterventionWindow::delayed("webstresser", Date::new(2018, 4, 24), 2, 3),
        InterventionWindow::immediate("mirai", Date::new(2018, 10, 26), 8),
        InterventionWindow::immediate("hackforums", Date::new(2016, 10, 28), 13),
        InterventionWindow::immediate("vdos", Date::new(2017, 12, 19), 3),
    ];
    let design = its_design(&series, &windows, &DesignConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let mut y = vec![0.0; series.len()];
    for i in 0..series.len() {
        let t = i as f64;
        let mu = (10.0 + 0.01 * t).exp();
        y[i] = NegativeBinomial::new(mu, 0.01).sample(&mut rng) as f64;
    }
    (design.x, y, design.names)
}

fn bench_negbin_fit(c: &mut Criterion) {
    let (x, y, names) = paper_problem();
    // Default options = warm-started profile continuation; same name as
    // the pre-workspace baseline so BENCH_glm.json records the speedup.
    c.bench_function("negbin_fit_paper_size", |b| {
        b.iter(|| {
            let fit = fit_negbin(
                black_box(&x),
                black_box(&y),
                &names,
                &NegBinOptions::default(),
            )
            .unwrap();
            black_box(fit.alpha)
        })
    });
    // Cold-started profile: every golden-section point refits from
    // scratch. The gap to the case above is what warm starting buys.
    c.bench_function("negbin_fit_paper_size_cold_start", |b| {
        let opts = NegBinOptions {
            warm_start: false,
            ..NegBinOptions::default()
        };
        b.iter(|| {
            let fit = fit_negbin(black_box(&x), black_box(&y), &names, &opts).unwrap();
            black_box(fit.alpha)
        })
    });
}

fn bench_irls_kernels(c: &mut Criterion) {
    // One IRLS inner step's linear algebra on the paper-shaped design:
    // separate allocating XᵀWX + XᵀWz vs the fused in-place kernel.
    let (x, y, _) = paper_problem();
    let n = x.rows();
    let p = x.cols();
    let w: Vec<f64> = (0..n).map(|i| 0.5 + (i % 7) as f64 * 0.3).collect();
    let z: Vec<f64> = y.iter().map(|v| (v + 0.5).ln()).collect();
    c.bench_function("irls_kernel_separate_alloc", |b| {
        b.iter(|| {
            let g = x.xtwx(black_box(&w)).unwrap();
            let v = x.xtwy(black_box(&w), black_box(&z)).unwrap();
            black_box((g[(0, 0)], v[0]))
        })
    });
    c.bench_function("irls_kernel_fused_into", |b| {
        let mut g = booters_linalg::Matrix::zeros(p, p);
        let mut v = vec![0.0; p];
        b.iter(|| {
            x.xtwx_xtwz_into(black_box(&w), black_box(&z), &mut g, &mut v)
                .unwrap();
            black_box((g[(0, 0)], v[0]))
        })
    });
}

fn bench_irls_workspace(c: &mut Criterion) {
    // A full NB2 IRLS fit at fixed α: the historic allocating entry point
    // vs a re-used workspace (zero allocations per fit after warm-up —
    // see crates/glm/tests/alloc_counter.rs).
    let (x, y, _) = paper_problem();
    let family = NegBin2::new(0.05);
    let opts = IrlsOptions::default();
    c.bench_function("irls_fit_allocating", |b| {
        b.iter(|| {
            let fit = fit_irls(black_box(&x), black_box(&y), &family, &LogLink, &opts).unwrap();
            black_box(fit.deviance)
        })
    });
    c.bench_function("irls_fit_workspace_reuse", |b| {
        let mut ws = IrlsWorkspace::new();
        fit_irls_into(&mut ws, &x, &y, None, &family, &LogLink, &opts, WarmStart::Cold).unwrap();
        b.iter(|| {
            fit_irls_into(
                &mut ws,
                black_box(&x),
                black_box(&y),
                None,
                &family,
                &LogLink,
                &opts,
                WarmStart::Cold,
            )
            .unwrap();
            black_box(ws.deviance())
        })
    });
}

fn bench_poisson_fit(c: &mut Criterion) {
    let (x, y, names) = paper_problem();
    c.bench_function("poisson_fit_paper_size", |b| {
        b.iter(|| {
            let fit = fit_poisson(
                black_box(&x),
                black_box(&y),
                &names,
                &IrlsOptions::default(),
                0.95,
            )
            .unwrap();
            black_box(fit.fit.deviance)
        })
    });
}

fn bench_ols_fit(c: &mut Criterion) {
    let (x, y, names) = paper_problem();
    c.bench_function("ols_fit_paper_size", |b| {
        b.iter(|| {
            let fit = fit_ols(black_box(&x), black_box(&y), &names, 0.95).unwrap();
            black_box(fit.r_squared)
        })
    });
}

bench_group!(
    benches,
    bench_negbin_fit,
    bench_irls_kernels,
    bench_irls_workspace,
    bench_poisson_fit,
    bench_ols_fit
);
bench_main!(benches);
