#![allow(clippy::needless_range_loop)]
//! GLM fitting benchmarks: the paper-sized NB2 regression (148 weeks × 19
//! columns), the Poisson baseline, and OLS.

use booters_glm::irls::IrlsOptions;
use booters_glm::negbin::{fit_negbin, NegBinOptions};
use booters_glm::ols::fit_ols;
use booters_glm::poisson::fit_poisson;
use booters_linalg::Matrix;
use booters_stats::dist::NegativeBinomial;
use booters_timeseries::design::{its_design, DesignConfig};
use booters_timeseries::{Date, InterventionWindow, WeeklySeries};
use booters_testkit::bench::Criterion;
use booters_testkit::{bench_group, bench_main};
use booters_testkit::rngs::StdRng;
use booters_testkit::SeedableRng;
use std::hint::black_box;

/// Paper-shaped problem: 148 weeks, 5 interventions + Easter + 11
/// seasonals + trend + constant = 19 columns.
fn paper_problem() -> (Matrix, Vec<f64>, Vec<String>) {
    let series = WeeklySeries::covering(Date::new(2016, 6, 6), Date::new(2019, 4, 1));
    let windows = vec![
        InterventionWindow::immediate("xmas", Date::new(2018, 12, 19), 10),
        InterventionWindow::delayed("webstresser", Date::new(2018, 4, 24), 2, 3),
        InterventionWindow::immediate("mirai", Date::new(2018, 10, 26), 8),
        InterventionWindow::immediate("hackforums", Date::new(2016, 10, 28), 13),
        InterventionWindow::immediate("vdos", Date::new(2017, 12, 19), 3),
    ];
    let design = its_design(&series, &windows, &DesignConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let mut y = vec![0.0; series.len()];
    for i in 0..series.len() {
        let t = i as f64;
        let mu = (10.0 + 0.01 * t).exp();
        y[i] = NegativeBinomial::new(mu, 0.01).sample(&mut rng) as f64;
    }
    (design.x, y, design.names)
}

fn bench_negbin_fit(c: &mut Criterion) {
    let (x, y, names) = paper_problem();
    c.bench_function("negbin_fit_paper_size", |b| {
        b.iter(|| {
            let fit = fit_negbin(
                black_box(&x),
                black_box(&y),
                &names,
                &NegBinOptions::default(),
            )
            .unwrap();
            black_box(fit.alpha)
        })
    });
}

fn bench_poisson_fit(c: &mut Criterion) {
    let (x, y, names) = paper_problem();
    c.bench_function("poisson_fit_paper_size", |b| {
        b.iter(|| {
            let fit = fit_poisson(
                black_box(&x),
                black_box(&y),
                &names,
                &IrlsOptions::default(),
                0.95,
            )
            .unwrap();
            black_box(fit.fit.deviance)
        })
    });
}

fn bench_ols_fit(c: &mut Criterion) {
    let (x, y, names) = paper_problem();
    c.bench_function("ols_fit_paper_size", |b| {
        b.iter(|| {
            let fit = fit_ols(black_box(&x), black_box(&y), &names, 0.95).unwrap();
            black_box(fit.r_squared)
        })
    });
}

bench_group!(benches, bench_negbin_fit, bench_poisson_fit, bench_ols_fit);
bench_main!(benches);
