//! Parallel-executor benchmarks: the two hot paths `booters-par` fans
//! out — per-country Table-2 fits and packet-flow grouping — measured
//! sequentially and at 2/4/8 worker threads via the thread-local
//! override, so one run emits the full scaling comparison regardless of
//! `BOOTERS_THREADS`.
//!
//! Speedup is hardware-bound: on a single-core host the threaded runs
//! only measure executor overhead. The determinism contract is what the
//! test suite pins; these numbers pin the cost of it.

use booters_bench::{pipeline_config, repro_config};
use booters_core::pipeline::fit_countries;
use booters_core::scenario::Scenario;
use booters_market::calibration::Calibration;
use booters_netsim::{
    group_flows_par, AttackCommand, Engine, EngineConfig, UdpProtocol, VictimAddr,
};
use booters_netsim::flow::VictimKey;
use booters_netsim::packet::SensorPacket;
use booters_testkit::bench::Criterion;
use booters_testkit::{bench_group, bench_main};
use std::hint::black_box;

const BENCH_SCALE: f64 = 0.02;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_country_fits(c: &mut Criterion) {
    let scenario = Scenario::run(repro_config(BENCH_SCALE));
    let cal = Calibration::default();
    let cfg = pipeline_config();
    let countries = Calibration::table2_countries();
    let mut group = c.benchmark_group("country_fits");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| {
                // Disable the small-work cutoff: eight countries would
                // otherwise stay sequential and the scaling comparison
                // would measure nothing.
                booters_par::with_min_items(1, || {
                    booters_par::with_threads(threads, || {
                        let fits =
                            fit_countries(&scenario.honeypot, &cal, &countries, &cfg).unwrap();
                        black_box(fits.len())
                    })
                })
            })
        });
    }
    group.finish();
}

/// A week of commands against a spread of victims and protocols — enough
/// packets that the 15-minute-gap grouping dominates the sharding cost.
fn sample_packets() -> Vec<SensorPacket> {
    let mut engine = Engine::new(EngineConfig::default());
    let protocols = [
        UdpProtocol::Ldap,
        UdpProtocol::Ntp,
        UdpProtocol::Dns,
        UdpProtocol::Ssdp,
        UdpProtocol::Chargen,
    ];
    let cmds: Vec<AttackCommand> = (0..400u32)
        .map(|i| AttackCommand {
            time: 600 * i as u64,
            victim: VictimAddr::from_octets(25, (i % 7) as u8, (i / 7) as u8, 1),
            protocol: protocols[i as usize % protocols.len()],
            duration_secs: 300,
            packets_per_second: 50_000,
            booter: i % 23,
            avoids_honeypots: i % 5 == 0,
        })
        .collect();
    engine.simulate_attacks_batch(&cmds)
}

fn bench_flow_grouping(c: &mut Criterion) {
    let packets = sample_packets();
    let mut group = c.benchmark_group("flow_grouping");
    group.sample_size(10);
    for threads in THREADS {
        group.bench_function(&format!("threads_{threads}"), |b| {
            b.iter(|| {
                // No min-items force here: this measures the production
                // gate, so hosts where sharding cannot pay (one core, or
                // a trace below the per-shard minimum) record the
                // sequential path rather than pure overhead.
                booters_par::with_threads(threads, || {
                    black_box(group_flows_par(&packets, VictimKey::ByIp).len())
                })
            })
        });
    }
    group.finish();
}

bench_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_country_fits, bench_flow_grouping
}
bench_main!(benches);
