//! Netsim benchmarks: packet generation, flow grouping throughput, and
//! the fast observation path.

use booters_netsim::flow::{classify_flows, FlowGrouper};
use booters_netsim::{AttackCommand, Engine, EngineConfig, SensorPacket, UdpProtocol, VictimAddr};
use booters_testkit::bench::{Criterion, Throughput};
use booters_testkit::{bench_group, bench_main};
use std::hint::black_box;

fn sample_commands(n: usize) -> Vec<AttackCommand> {
    (0..n)
        .map(|i| AttackCommand {
            time: (i as u64) * 1_800,
            victim: VictimAddr::from_octets(25, (i / 250 % 250) as u8, (i % 250) as u8, 1),
            protocol: UdpProtocol::ALL[i % UdpProtocol::ALL.len()],
            duration_secs: 300,
            packets_per_second: 50_000,
            booter: (i % 40) as u32,
            avoids_honeypots: i % 9 == 0,
        })
        .collect()
}

fn bench_would_observe(c: &mut Criterion) {
    let cmds = sample_commands(10_000);
    let mut group = c.benchmark_group("netsim");
    group.throughput(Throughput::Elements(cmds.len() as u64));
    group.bench_function("would_observe_10k_commands", |b| {
        b.iter(|| {
            let mut engine = Engine::new(EngineConfig::default());
            let observed = cmds.iter().filter(|c| engine.would_observe(c)).count();
            black_box(observed)
        })
    });
    group.finish();
}

fn bench_packet_generation(c: &mut Criterion) {
    let cmds = sample_commands(200);
    c.bench_function("simulate_attack_packets_200", |b| {
        b.iter(|| {
            let mut engine = Engine::new(EngineConfig::default());
            let mut total = 0usize;
            for cmd in &cmds {
                total += engine.simulate_attack_packets(cmd).len();
            }
            black_box(total)
        })
    });
}

fn bench_flow_grouping(c: &mut Criterion) {
    // Pre-generate a realistic packet trace.
    let mut engine = Engine::new(EngineConfig::default());
    let mut packets: Vec<SensorPacket> = Vec::new();
    for cmd in sample_commands(500) {
        packets.extend(engine.simulate_attack_packets(&cmd));
    }
    packets.sort_by_key(|p| p.time);
    let mut group = c.benchmark_group("netsim");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("flow_grouping", |b| {
        b.iter(|| {
            let mut grouper = FlowGrouper::new();
            for p in &packets {
                grouper.push(p);
            }
            black_box(grouper.finish().len())
        })
    });
    group.bench_function("classify_flows", |b| {
        b.iter(|| black_box(classify_flows(&packets).len()))
    });
    group.finish();
}

fn bench_attribution(c: &mut Criterion) {
    use booters_netsim::attribution::{FlowFeatures, KnnAttributor};
    let mut engine = Engine::new(EngineConfig::default());
    let mut attributor = KnnAttributor::new();
    let mut probes = Vec::new();
    for (i, cmd) in sample_commands(120).into_iter().enumerate() {
        let packets = engine.simulate_attack_packets(&cmd);
        if let Some(f) = FlowFeatures::from_packets(&packets) {
            if i % 4 == 0 {
                probes.push(f);
            } else {
                attributor.train(f, cmd.booter);
            }
        }
    }
    c.bench_function("knn_attribution_90train_30probe", |b| {
        b.iter(|| {
            let hits = probes
                .iter()
                .filter(|f| attributor.attribute(f, 3, 0.67).is_some())
                .count();
            black_box(hits)
        })
    });
}

bench_group!(
    benches,
    bench_would_observe,
    bench_packet_generation,
    bench_flow_grouping,
    bench_attribution
);
bench_main!(benches);
