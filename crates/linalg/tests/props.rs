//! Property-based tests for the linear algebra kernel.

use booters_linalg::{cholesky_with_ridge, dot, max_abs_diff, norm2, Cholesky, Lu, Matrix, Qr};
use booters_testkit::strategy::prop;
use booters_testkit::{forall, prop_assert, prop_assert_eq, Strategy};

/// Strategy: a random matrix with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: non-negative IRLS-style weights where roughly a quarter of
/// the entries are *exactly* zero, exercising the kernels' skip paths.
fn weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-2.0..6.0f64, n)
        .prop_map(|v| v.into_iter().map(|w| if w < 0.0 { 0.0 } else { w }).collect())
}

/// Strategy: a random SPD matrix A = BᵀB + εI.
fn spd(n: usize) -> impl Strategy<Value = Matrix> {
    matrix(n + 2, n).prop_map(move |b| {
        let mut a = b.transpose().matmul(&b).expect("shapes");
        a.add_ridge(0.5);
        a
    })
}

forall! {
    #![cases(64)]

    fn transpose_is_involution(m in matrix(4, 3)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    fn matmul_associative(a in matrix(3, 4), b in matrix(4, 2), c in matrix(2, 5)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(max_abs_diff(left.as_slice(), right.as_slice()) < 1e-9);
    }

    fn matmul_distributes_over_addition(a in matrix(3, 3), b in matrix(3, 3), c in matrix(3, 2)) {
        let left = (&a + &b).matmul(&c).unwrap();
        let right = &a.matmul(&c).unwrap() + &b.matmul(&c).unwrap();
        prop_assert!(max_abs_diff(left.as_slice(), right.as_slice()) < 1e-9);
    }

    fn xtwx_is_symmetric_psd(x in matrix(8, 3), w in prop::collection::vec(0.0..5.0f64, 8)) {
        let g = x.xtwx(&w).unwrap();
        prop_assert!(g.is_symmetric(1e-9));
        // PSD: vᵀGv >= 0 for a probe vector.
        let v = [1.0, -2.0, 0.5];
        let gv = g.matvec(&v).unwrap();
        prop_assert!(dot(&v, &gv) >= -1e-9);
    }

    fn cholesky_solves_spd_systems(a in spd(4), x in prop::collection::vec(-5.0..5.0f64, 4)) {
        let b = a.matvec(&x).unwrap();
        let chol = Cholesky::new(&a).unwrap();
        let got = chol.solve(&b).unwrap();
        prop_assert!(max_abs_diff(&got, &x) < 1e-6, "got {got:?} want {x:?}");
    }

    fn cholesky_inverse_roundtrip(a in spd(3)) {
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(max_abs_diff(prod.as_slice(), Matrix::identity(3).as_slice()) < 1e-6);
    }

    fn lu_det_matches_cholesky_logdet(a in spd(3)) {
        let det = Lu::new(&a).unwrap().det();
        let logdet = Cholesky::new(&a).unwrap().log_det();
        prop_assert!(det > 0.0);
        prop_assert!((det.ln() - logdet).abs() < 1e-8);
    }

    fn qr_least_squares_residual_is_orthogonal(
        x in matrix(10, 3),
        y in prop::collection::vec(-5.0..5.0f64, 10),
    ) {
        // Skip near-rank-deficient draws.
        let qr = match Qr::new(&x) {
            Ok(q) => q,
            Err(_) => return,
        };
        let beta = match qr.solve(&y) {
            Ok(b) => b,
            Err(_) => return,
        };
        let fitted = x.matvec(&beta).unwrap();
        let resid: Vec<f64> = y.iter().zip(&fitted).map(|(a, b)| a - b).collect();
        // Xᵀr ≈ 0 — the defining normal-equation property.
        let xtr = x.tr_matvec(&resid).unwrap();
        let scale = norm2(&y).max(1.0);
        prop_assert!(norm2(&xtr) / scale < 1e-7, "Xᵀr = {xtr:?}");
    }

    fn into_kernels_bit_identical_to_naive(
        x in matrix(10, 3),
        w in weights(10),
        z in prop::collection::vec(-5.0..5.0f64, 10),
    ) {
        // The allocation-free kernels promise *bit identity* with the
        // allocating ones — same per-entry summation order, same zero
        // skips — so compare with == rather than a tolerance.
        let naive_xtwx = x.xtwx(&w).unwrap();
        let naive_xtwz = x.xtwy(&w, &z).unwrap();

        let mut gm = Matrix::zeros(3, 3);
        x.xtwx_into(&w, &mut gm).unwrap();
        prop_assert_eq!(&gm, &naive_xtwx);

        let mut gv = vec![0.0; 3];
        x.xtwz_into(&w, &z, &mut gv).unwrap();
        prop_assert_eq!(&gv, &naive_xtwz);

        let mut fm = Matrix::zeros(3, 3);
        let mut fv = vec![0.0; 3];
        x.xtwx_xtwz_into(&w, &z, &mut fm, &mut fv).unwrap();
        prop_assert_eq!(fm, naive_xtwx);
        prop_assert_eq!(fv, naive_xtwz);
    }

    fn matvec_into_bit_identical_to_matvec(
        x in matrix(6, 4),
        v in prop::collection::vec(-5.0..5.0f64, 4),
    ) {
        let naive = x.matvec(&v).unwrap();
        let mut out = vec![0.0; 6];
        x.matvec_into(&v, &mut out).unwrap();
        prop_assert_eq!(out, naive);
    }

    fn ridge_rescue_never_panics(a in matrix(4, 4)) {
        // Symmetrise an arbitrary matrix, then ridge-rescue must either
        // succeed or return a clean error.
        let sym = &(&a + &a.transpose()) * 0.5;
        let _ = cholesky_with_ridge(&sym, 14);
    }

    fn solve_then_multiply_roundtrips_lu(
        a in matrix(4, 4),
        x in prop::collection::vec(-3.0..3.0f64, 4),
    ) {
        if let Ok(lu) = Lu::new(&a) {
            // Guard against ill-conditioned draws via the determinant.
            if lu.det().abs() > 1e-3 {
                let b = a.matvec(&x).unwrap();
                let got = lu.solve(&b).unwrap();
                prop_assert!(max_abs_diff(&got, &x) < 1e-5);
            }
        }
    }
}
