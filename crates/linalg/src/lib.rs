#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
//! Small dense linear algebra kernel for the booters analysis stack.
//!
//! The GLM fitter (`booters-glm`) solves repeated weighted least squares
//! problems with at most a few dozen columns, so this crate implements the
//! classic dense factorisations directly rather than pulling in a BLAS:
//!
//! * [`Matrix`] — row-major dense matrix of `f64` with the usual arithmetic,
//!   products and reductions.
//! * [`Cholesky`] — factorisation of symmetric positive definite matrices,
//!   used to invert Fisher information matrices.
//! * [`Lu`] — LU with partial pivoting for general square systems.
//! * [`Qr`] — Householder QR for (possibly rectangular) least squares.
//!
//! All routines are deterministic and allocation is kept to factorisation
//! time; solving reuses the factor. Errors (shape mismatch, singularity,
//! loss of positive definiteness) are reported via [`LinalgError`] rather
//! than panics so the GLM layer can recover (e.g. by ridging).

mod cholesky;
mod error;
mod lu;
mod matrix;
mod qr;

pub use cholesky::{
    cholesky_into, cholesky_solve_into, cholesky_with_ridge, cholesky_with_ridge_into, Cholesky,
};
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::Matrix;
pub use qr::Qr;

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length (callers control both sides).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice, computed with scaling to avoid overflow.
pub fn norm2(a: &[f64]) -> f64 {
    let max = a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
    if max == 0.0 {
        return 0.0;
    }
    let sum: f64 = a.iter().map(|&x| (x / max) * (x / max)).sum();
    max * sum.sqrt()
}

/// Maximum absolute difference between two equal-length slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norm2_matches_pythagoras() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn norm2_handles_large_values_without_overflow() {
        let big = 1e200;
        let n = norm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n - big * 2f64.sqrt()).abs() / n < 1e-12);
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 1.0]), 1.0);
    }
}
