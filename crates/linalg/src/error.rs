use std::fmt;

/// Errors reported by the factorisation and solve routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// The matrix is singular (or numerically so) and cannot be factorised
    /// or solved against.
    Singular {
        /// Index of the pivot/diagonal where breakdown was detected.
        at: usize,
    },
    /// Cholesky encountered a non-positive pivot: the matrix is not
    /// (numerically) positive definite.
    NotPositiveDefinite {
        /// Diagonal index where the pivot failed.
        at: usize,
    },
    /// The operation requires a square matrix but got a rectangular one.
    NotSquare {
        /// Actual shape.
        shape: (usize, usize),
    },
    /// A least-squares problem has fewer rows than columns.
    Underdetermined {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::Singular { at } => {
                write!(f, "matrix is singular (pivot breakdown at index {at})")
            }
            LinalgError::NotPositiveDefinite { at } => write!(
                f,
                "matrix is not positive definite (non-positive pivot at diagonal {at})"
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "operation requires a square matrix, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Underdetermined { rows, cols } => write!(
                f,
                "least squares problem is underdetermined: {rows} rows < {cols} cols"
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));

        assert!(LinalgError::Singular { at: 3 }.to_string().contains("singular"));
        assert!(LinalgError::NotPositiveDefinite { at: 0 }
            .to_string()
            .contains("positive definite"));
        assert!(LinalgError::NotSquare { shape: (2, 3) }.to_string().contains("square"));
        assert!(LinalgError::Underdetermined { rows: 2, cols: 5 }
            .to_string()
            .contains("underdetermined"));
    }
}
