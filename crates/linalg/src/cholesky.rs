use crate::{LinalgError, Matrix, Result};

/// Cholesky factorisation `A = L Lᵀ` of a symmetric positive definite matrix.
///
/// This is the workhorse for GLM inference: the Fisher information `XᵀWX` is
/// SPD whenever the design has full column rank and weights are positive, so
/// we factor once and then solve for coefficients, invert for covariance, and
/// read off the log-determinant for likelihood computations.
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored dense (upper part zeroed).
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper part is
    /// the caller's responsibility (our producers build exact-symmetric
    /// matrices). Fails with [`LinalgError::NotPositiveDefinite`] when a
    /// pivot is not strictly positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite { at: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrow the lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solve `A x = b` via forward/back substitution.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back: Lᵀ x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solve `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_matrix",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Inverse of the factored matrix, `A⁻¹`.
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }

    /// `log det A = 2 Σ log Lᵢᵢ`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Factor `a = L Lᵀ` into the caller-owned buffer `l` without allocating.
///
/// Same algorithm, pivot test, and arithmetic as [`Cholesky::new`] — the
/// factor is bit-identical — but the output matrix is reused across calls
/// (the IRLS hot loop re-factors every iteration). The upper triangle of
/// `l` is zeroed; on error its contents are unspecified.
pub fn cholesky_into(a: &Matrix, l: &mut Matrix) -> Result<()> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if l.shape() != a.shape() {
        return Err(LinalgError::ShapeMismatch {
            op: "cholesky_into",
            left: a.shape(),
            right: l.shape(),
        });
    }
    let n = a.rows();
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(LinalgError::NotPositiveDefinite { at: i });
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
        for j in (i + 1)..n {
            l[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Solve `A x = b` given a factor produced by [`cholesky_into`], without
/// allocating: `b` is copied into `x` and the forward/back substitutions
/// run in place. The substitution arithmetic — and therefore every bit of
/// `x` — matches [`Cholesky::solve`] (the back pass reads `y[i]` before
/// overwriting it and `x[k]` for `k > i` after, exactly like the
/// two-buffer version).
pub fn cholesky_solve_into(l: &Matrix, b: &[f64], x: &mut [f64]) -> Result<()> {
    let n = l.rows();
    if !l.is_square() || b.len() != n || x.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "cholesky_solve_into",
            left: l.shape(),
            right: (b.len(), x.len()),
        });
    }
    x.copy_from_slice(b);
    // Forward: L y = b (x holds y below index i, still b at and above).
    for i in 0..n {
        let mut sum = x[i];
        for k in 0..i {
            sum -= l[(i, k)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    // Back: Lᵀ x = y (x holds the solution above index i, still y at and
    // below).
    for i in (0..n).rev() {
        let mut sum = x[i];
        for k in (i + 1)..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    Ok(())
}

/// Allocation-free [`cholesky_with_ridge`]: factors into `l`, and on a
/// failed pivot perturbs only the diagonal of `a` in place (originals
/// saved in `diag_scratch`, restored before returning) instead of cloning
/// the whole matrix per retry. The lambda schedule and per-try arithmetic
/// match the cloning version, so the resulting factor is bit-identical.
/// Returns the ridge used (0.0 when none was needed).
pub fn cholesky_with_ridge_into(
    a: &mut Matrix,
    l: &mut Matrix,
    diag_scratch: &mut [f64],
    max_tries: usize,
) -> Result<f64> {
    match cholesky_into(a, l) {
        Ok(()) => return Ok(0.0),
        Err(e @ (LinalgError::NotSquare { .. } | LinalgError::ShapeMismatch { .. })) => {
            return Err(e)
        }
        Err(_) => {}
    }
    let n = a.rows();
    if diag_scratch.len() != n {
        return Err(LinalgError::ShapeMismatch {
            op: "cholesky_with_ridge_into",
            left: (n, n),
            right: (diag_scratch.len(), 1),
        });
    }
    for i in 0..n {
        diag_scratch[i] = a[(i, i)];
    }
    let scale = a.max_abs().max(1.0);
    let mut lambda = scale * 1e-10;
    let mut outcome = Err(LinalgError::NotPositiveDefinite { at: 0 });
    for _ in 0..max_tries {
        // a[(i,i)] + lambda from the pristine diagonal: the same value
        // `clone + add_ridge` produces each try.
        for i in 0..n {
            a[(i, i)] = diag_scratch[i] + lambda;
        }
        if cholesky_into(a, l).is_ok() {
            outcome = Ok(lambda);
            break;
        }
        lambda *= 10.0;
    }
    for i in 0..n {
        a[(i, i)] = diag_scratch[i];
    }
    outcome
}

/// Factor `a`, retrying with growing ridge `λI` if it is not numerically SPD.
///
/// IRLS can produce nearly rank-deficient normal matrices mid-iteration
/// (e.g. an intervention dummy over a window with no events yet); a tiny
/// ridge keeps the solve alive without visibly biasing the estimates. The
/// ridge used (0.0 when none was needed) is returned alongside the factor.
pub fn cholesky_with_ridge(a: &Matrix, max_tries: usize) -> Result<(Cholesky, f64)> {
    match Cholesky::new(a) {
        Ok(c) => return Ok((c, 0.0)),
        Err(LinalgError::NotSquare { shape }) => {
            return Err(LinalgError::NotSquare { shape })
        }
        Err(_) => {}
    }
    let scale = a.max_abs().max(1.0);
    let mut lambda = scale * 1e-10;
    for _ in 0..max_tries {
        let mut ridged = a.clone();
        ridged.add_ridge(lambda);
        if let Ok(c) = Cholesky::new(&ridged) {
            return Ok((c, lambda));
        }
        lambda *= 10.0;
    }
    Err(LinalgError::NotPositiveDefinite { at: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I for B full-rank => SPD
        Matrix::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]])
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        let l = c.factor();
        let llt = l.matmul(&l.transpose()).unwrap();
        assert!(max_abs_diff(llt.as_slice(), a.as_slice()) < 1e-12);
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true).unwrap();
        let c = Cholesky::new(&a).unwrap();
        let x = c.solve(&b).unwrap();
        assert!(max_abs_diff(&x, &x_true) < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(max_abs_diff(prod.as_slice(), Matrix::identity(3).as_slice()) < 1e-10);
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let det: f64 = 2.0 * 3.0 - 1.0; // = 5
        let c = Cholesky::new(&a).unwrap();
        assert!((c.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let c = Cholesky::new(&spd3()).unwrap();
        assert!(c.solve(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn ridge_rescues_singular_matrix() {
        // Rank-1 matrix: not PD, but PD after ridging.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let (c, lambda) = cholesky_with_ridge(&a, 12).unwrap();
        assert!(lambda > 0.0);
        assert_eq!(c.dim(), 2);
    }

    #[test]
    fn ridge_not_applied_when_unneeded() {
        let (_, lambda) = cholesky_with_ridge(&spd3(), 12).unwrap();
        assert_eq!(lambda, 0.0);
    }

    #[test]
    fn in_place_factor_and_solve_are_bit_identical() {
        let a = spd3();
        let c = Cholesky::new(&a).unwrap();
        // Factor into a dirty buffer: both triangles must come out right.
        let mut l = Matrix::from_rows(&[
            &[9.0, 9.0, 9.0],
            &[9.0, 9.0, 9.0],
            &[9.0, 9.0, 9.0],
        ]);
        cholesky_into(&a, &mut l).unwrap();
        assert_eq!(l.as_slice(), c.factor().as_slice());

        let b = [1.0, -2.0, 0.5];
        let expected = c.solve(&b).unwrap();
        let mut x = [f64::NAN; 3];
        cholesky_solve_into(&l, &b, &mut x).unwrap();
        assert_eq!(x.as_slice(), expected.as_slice());
    }

    #[test]
    fn in_place_ridge_matches_cloning_ridge_and_restores_diagonal() {
        let a0 = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let (c, lambda) = cholesky_with_ridge(&a0, 12).unwrap();
        let mut a = a0.clone();
        let mut l = Matrix::zeros(2, 2);
        let mut diag = [0.0; 2];
        let lambda2 = cholesky_with_ridge_into(&mut a, &mut l, &mut diag, 12).unwrap();
        assert_eq!(lambda2, lambda);
        assert_eq!(l.as_slice(), c.factor().as_slice());
        assert_eq!(a.as_slice(), a0.as_slice(), "diagonal not restored");

        // SPD input: no ridge, and `a` untouched.
        let spd = spd3();
        let mut a = spd.clone();
        let mut l = Matrix::zeros(3, 3);
        let mut diag = [0.0; 3];
        assert_eq!(
            cholesky_with_ridge_into(&mut a, &mut l, &mut diag, 12).unwrap(),
            0.0
        );
        assert_eq!(a.as_slice(), spd.as_slice());
    }

    #[test]
    fn in_place_variants_reject_bad_shapes() {
        let a = spd3();
        let mut l2 = Matrix::zeros(2, 2);
        assert!(cholesky_into(&a, &mut l2).is_err());
        let mut l3 = Matrix::zeros(3, 3);
        cholesky_into(&a, &mut l3).unwrap();
        let mut x = [0.0; 2];
        assert!(cholesky_solve_into(&l3, &[1.0, 2.0, 3.0], &mut x).is_err());
        assert!(cholesky_solve_into(&l3, &[1.0, 2.0], &mut [0.0; 3]).is_err());
    }
}
