use crate::{LinalgError, Matrix, Result};

/// LU factorisation with partial pivoting, `P A = L U`.
///
/// Used for general (possibly asymmetric) square systems — e.g. inverting
/// the observed-information matrix of the joint (β, α) negative binomial
/// likelihood, which is symmetric in theory but assembled from finite
/// differences in practice.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) factors.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), for determinants.
    sign: f64,
}

impl Lu {
    /// Factor a square matrix. Fails on (numerical) singularity.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot: largest |value| in column k at/below the diagonal.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max == 0.0 || !max.is_finite() {
                return Err(LinalgError::Singular { at: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let m = lu[(i, k)] / pivot;
                lu[(i, k)] = m;
                if m == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let s = lu[(k, j)];
                    lu[(i, j)] -= m * s;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut y: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut sum = y[i];
            for k in 0..i {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum;
        }
        // Back substitution with U.
        let mut x = y;
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in (i + 1)..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Inverse of the factored matrix.
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            e[j] = 0.0;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
        }
        Ok(inv)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;

    #[test]
    fn solve_general_system() {
        let a = Matrix::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, -2.0, 3.0], &[4.0, 0.0, -1.0]]);
        let x_true = vec![2.0, -1.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        assert!(max_abs_diff(&x, &x_true) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let lu = Lu::new(&a).unwrap();
        assert_eq!(lu.solve(&[3.0, 7.0]).unwrap(), vec![7.0, 3.0]);
        assert!((lu.det() - -1.0).abs() < 1e-14);
    }

    #[test]
    fn det_matches_closed_form() {
        let a = Matrix::from_rows(&[&[3.0, 8.0], &[4.0, 6.0]]); // det = 18 - 32 = -14
        assert!((Lu::new(&a).unwrap().det() + 14.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[1.0, 3.0, 2.0], &[1.0, 0.0, 0.5]]);
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(max_abs_diff(prod.as_slice(), Matrix::identity(3).as_slice()) < 1e-10);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_rectangular() {
        assert!(matches!(
            Lu::new(&Matrix::zeros(3, 2)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn identity_det_is_one() {
        assert!((Lu::new(&Matrix::identity(4)).unwrap().det() - 1.0).abs() < 1e-14);
    }
}
