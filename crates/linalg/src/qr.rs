use crate::{LinalgError, Matrix, Result};

/// Householder QR factorisation `A = Q R` of an m×n matrix with m ≥ n.
///
/// QR is the numerically stable route for the weighted least squares
/// subproblems in IRLS when the normal equations `XᵀWX` are ill-conditioned
/// (e.g. a time trend column spanning 0..148 next to 0/1 dummies). We store
/// the Householder vectors in the lower trapezoid and R in the upper
/// triangle, as LAPACK does.
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factors: R in the upper triangle, Householder vectors below.
    qr: Matrix,
    /// The leading coefficients of the Householder vectors (`v[0]` values).
    betas: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Numerical-rank threshold: pivots below this are treated as zero.
    tol: f64,
}

impl Qr {
    /// Factor `a` (m×n, m ≥ n).
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m < n {
            return Err(LinalgError::Underdetermined { rows: m, cols: n });
        }
        let mut qr = a.clone();
        let mut betas = vec![0.0; n];
        // Numerical-rank threshold, scaled to the matrix magnitude à la LAPACK.
        let tol = a.max_abs().max(f64::MIN_POSITIVE) * (m.max(n) as f64) * f64::EPSILON * 8.0;
        for k in 0..n {
            // Compute the Householder reflector for column k below the diagonal.
            let mut norm = 0.0_f64;
            for i in k..m {
                norm = norm.hypot(qr[(i, k)]);
            }
            if norm <= tol {
                // Column is (numerically) zero below the diagonal: rank deficient.
                return Err(LinalgError::Singular { at: k });
            }
            // Choose sign to avoid cancellation.
            let alpha = if qr[(k, k)] > 0.0 { -norm } else { norm };
            let v0 = qr[(k, k)] - alpha;
            // Normalise the reflector so v[k] = 1 implicitly; store tail.
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            betas[k] = -v0 / alpha;
            qr[(k, k)] = alpha;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= betas[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr {
            qr,
            betas,
            rows: m,
            cols: n,
            tol,
        })
    }

    /// Apply `Qᵀ` to a vector of length m, in place.
    fn apply_qt(&self, b: &mut [f64]) {
        for k in 0..self.cols {
            let mut s = b[k];
            for i in (k + 1)..self.rows {
                s += self.qr[(i, k)] * b[i];
            }
            s *= self.betas[k];
            b[k] -= s;
            for i in (k + 1)..self.rows {
                b[i] -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solve the least squares problem `min ||A x - b||₂`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "qr solve",
                left: (self.rows, self.cols),
                right: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back substitution on the leading n×n of R.
        let n = self.cols;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.qr[(i, k)] * x[k];
            }
            let rii = self.qr[(i, i)];
            if rii.abs() <= self.tol {
                return Err(LinalgError::Singular { at: i });
            }
            x[i] = sum / rii;
        }
        Ok(x)
    }

    /// Extract the n×n upper-triangular factor `R`.
    pub fn r(&self) -> Matrix {
        let n = self.cols;
        let mut r = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                r[(i, j)] = self.qr[(i, j)];
            }
        }
        r
    }

    /// `(RᵀR)⁻¹ = (AᵀA)⁻¹`, the unscaled OLS covariance.
    pub fn xtx_inverse(&self) -> Result<Matrix> {
        let n = self.cols;
        // Invert R by back substitution against each unit vector, then
        // (AᵀA)⁻¹ = R⁻¹ R⁻ᵀ.
        let r = self.r();
        let mut rinv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut x = vec![0.0; n];
            for i in (0..=j).rev() {
                let mut sum = if i == j { 1.0 } else { 0.0 };
                for k in (i + 1)..=j {
                    sum -= r[(i, k)] * x[k];
                }
                if r[(i, i)] == 0.0 {
                    return Err(LinalgError::Singular { at: i });
                }
                x[i] = sum / r[(i, i)];
            }
            for i in 0..n {
                rinv[(i, j)] = x[i];
            }
        }
        rinv.matmul(&rinv.transpose())
    }

    /// Squared residual norm `||A x - b||²` obtainable from the tail of Qᵀb.
    pub fn residual_sum_of_squares(&self, b: &[f64]) -> Result<f64> {
        if b.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "qr rss",
                left: (self.rows, self.cols),
                right: (b.len(), 1),
            });
        }
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        Ok(y[self.cols..].iter().map(|v| v * v).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::max_abs_diff;

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = vec![1.5, -0.5];
        let b = a.matvec(&x_true).unwrap();
        let x = Qr::new(&a).unwrap().solve(&b).unwrap();
        assert!(max_abs_diff(&x, &x_true) < 1e-12);
    }

    #[test]
    fn overdetermined_least_squares_matches_normal_equations() {
        // Fit y = b0 + b1 x to 4 points; compare with hand-computed OLS.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]);
        let b = [1.0, 2.1, 2.9, 4.2];
        let x = Qr::new(&a).unwrap().solve(&b).unwrap();
        // OLS closed form: slope = Sxy/Sxx with x̄=1.5, ȳ=2.55
        let slope = ((0.0 - 1.5) * (1.0 - 2.55)
            + (1.0 - 1.5) * (2.1 - 2.55)
            + (2.0 - 1.5) * (2.9 - 2.55)
            + (3.0 - 1.5) * (4.2 - 2.55))
            / ((0.0f64 - 1.5).powi(2) + (1.0f64 - 1.5).powi(2) + (2.0f64 - 1.5).powi(2) + (3.0f64 - 1.5).powi(2));
        let intercept = 2.55 - slope * 1.5;
        assert!((x[1] - slope).abs() < 1e-12);
        assert!((x[0] - intercept).abs() < 1e-12);
    }

    #[test]
    fn r_reconstructs_gram_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let qr = Qr::new(&a).unwrap();
        let r = qr.r();
        let rtr = r.transpose().matmul(&r).unwrap();
        let ata = a.transpose().matmul(&a).unwrap();
        assert!(max_abs_diff(rtr.as_slice(), ata.as_slice()) < 1e-10);
    }

    #[test]
    fn xtx_inverse_matches_direct_inverse() {
        let a = Matrix::from_rows(&[&[1.0, 0.5], &[1.0, -1.0], &[1.0, 2.0], &[1.0, 0.0]]);
        let qr = Qr::new(&a).unwrap();
        let got = qr.xtx_inverse().unwrap();
        let ata = a.transpose().matmul(&a).unwrap();
        let expect = crate::Lu::new(&ata).unwrap().inverse().unwrap();
        assert!(max_abs_diff(got.as_slice(), expect.as_slice()) < 1e-10);
    }

    #[test]
    fn residual_norm_matches_direct_computation() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]);
        let b = [0.0, 1.0, 4.0];
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve(&b).unwrap();
        let fitted = a.matvec(&x).unwrap();
        let rss_direct: f64 = b.iter().zip(&fitted).map(|(y, f)| (y - f) * (y - f)).sum();
        let rss_qr = qr.residual_sum_of_squares(&b).unwrap();
        assert!((rss_direct - rss_qr).abs() < 1e-12);
    }

    #[test]
    fn underdetermined_rejected() {
        assert!(matches!(
            Qr::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::Underdetermined { .. })
        ));
    }

    #[test]
    fn rank_deficient_detected() {
        // Second column is 2x the first.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let r = Qr::new(&a).and_then(|qr| qr.solve(&[1.0, 2.0, 3.0]));
        assert!(r.is_err());
    }
}
