use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Row-major dense matrix of `f64`.
///
/// Sized for the regression problems in this workspace: design matrices with
/// a few hundred rows and a few dozen columns. Storage is a single `Vec` so
/// rows are contiguous and the hot loops in the factorisations stay simple.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n`×`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Create a matrix from nested row slices.
    ///
    /// # Panics
    /// Panics if rows are ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), ncols, "Matrix::from_rows: row {i} is ragged");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// Create a column vector (n×1 matrix) from a slice.
    pub fn column(v: &[f64]) -> Self {
        Matrix::from_vec(v.len(), 1, v.to_vec())
    }

    /// Create a diagonal matrix from a slice.
    pub fn diag(v: &[f64]) -> Self {
        let n = v.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &x) in v.iter().enumerate() {
            m[(i, i)] = x;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transpose into a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: self.shape(),
                right: (v.len(), 1),
            });
        }
        Ok((0..self.rows).map(|i| crate::dot(self.row(i), v)).collect())
    }

    /// [`Matrix::matvec`] into a caller-owned buffer: writes `self * v`
    /// over `out` without allocating. Arithmetic (and therefore every
    /// output bit) is identical to the allocating version.
    pub fn matvec_into(&self, v: &[f64], out: &mut [f64]) -> Result<()> {
        if self.cols != v.len() || self.rows != out.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_into",
                left: self.shape(),
                right: (v.len(), out.len()),
            });
        }
        for i in 0..self.rows {
            out[i] = crate::dot(self.row(i), v);
        }
        Ok(())
    }

    /// `Aᵀ v` without materialising the transpose.
    pub fn tr_matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.rows != v.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "tr_matvec",
                left: (self.cols, self.rows),
                right: (v.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let r = self.row(i);
            let vi = v[i];
            for (o, &a) in out.iter_mut().zip(r) {
                *o += a * vi;
            }
        }
        Ok(out)
    }

    /// `Aᵀ W A` for a diagonal weight vector `w` (the IRLS normal matrix),
    /// computed symmetrically without materialising `Aᵀ` or `W`.
    pub fn xtwx(&self, w: &[f64]) -> Result<Matrix> {
        if self.rows != w.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "xtwx",
                left: self.shape(),
                right: (w.len(), 1),
            });
        }
        let p = self.cols;
        let mut out = Matrix::zeros(p, p);
        for i in 0..self.rows {
            let r = self.row(i);
            let wi = w[i];
            if wi == 0.0 {
                continue;
            }
            for a in 0..p {
                let ra = r[a] * wi;
                if ra == 0.0 {
                    continue;
                }
                for b in a..p {
                    out[(a, b)] += ra * r[b];
                }
            }
        }
        for a in 0..p {
            for b in 0..a {
                out[(a, b)] = out[(b, a)];
            }
        }
        Ok(out)
    }

    /// `Aᵀ W y` for a diagonal weight vector `w`.
    pub fn xtwy(&self, w: &[f64], y: &[f64]) -> Result<Vec<f64>> {
        if self.rows != w.len() || self.rows != y.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "xtwy",
                left: self.shape(),
                right: (w.len(), y.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let r = self.row(i);
            let s = w[i] * y[i];
            for (o, &a) in out.iter_mut().zip(r) {
                *o += a * s;
            }
        }
        Ok(out)
    }

    /// [`Matrix::xtwx`] into a caller-owned `p×p` buffer (no allocation).
    ///
    /// The accumulation is the same row-outer rank-1 update in the same
    /// row order with the same zero-weight/zero-entry skips, so every
    /// entry's f64 summation order — and therefore every output bit — is
    /// identical to the allocating kernel.
    pub fn xtwx_into(&self, w: &[f64], out: &mut Matrix) -> Result<()> {
        if self.rows != w.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "xtwx_into",
                left: self.shape(),
                right: (w.len(), 1),
            });
        }
        let p = self.cols;
        if out.rows != p || out.cols != p {
            return Err(LinalgError::ShapeMismatch {
                op: "xtwx_into",
                left: (p, p),
                right: out.shape(),
            });
        }
        out.data.fill(0.0);
        for i in 0..self.rows {
            let r = self.row(i);
            let wi = w[i];
            if wi == 0.0 {
                continue;
            }
            for a in 0..p {
                let ra = r[a] * wi;
                if ra == 0.0 {
                    continue;
                }
                for b in a..p {
                    out[(a, b)] += ra * r[b];
                }
            }
        }
        for a in 0..p {
            for b in 0..a {
                out[(a, b)] = out[(b, a)];
            }
        }
        Ok(())
    }

    /// [`Matrix::xtwy`] into a caller-owned length-`p` buffer (no
    /// allocation), named for its IRLS role (`z` is the working
    /// response). Bit-identical to the allocating kernel.
    pub fn xtwz_into(&self, w: &[f64], z: &[f64], out: &mut [f64]) -> Result<()> {
        if self.rows != w.len() || self.rows != z.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "xtwz_into",
                left: self.shape(),
                right: (w.len(), z.len()),
            });
        }
        if out.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "xtwz_into",
                left: (self.cols, 1),
                right: (out.len(), 1),
            });
        }
        out.fill(0.0);
        for i in 0..self.rows {
            let r = self.row(i);
            let s = w[i] * z[i];
            for (o, &a) in out.iter_mut().zip(r) {
                *o += a * s;
            }
        }
        Ok(())
    }

    /// Fused IRLS normal-equation kernel: one pass over the design rows
    /// computing both `XᵀWX` (into `out_xtwx`) and `XᵀWz` (into
    /// `out_xtwz`) with k-outer rank-1 accumulation and no allocation.
    ///
    /// Each output entry is a sum over rows accumulated in row order with
    /// exactly the per-row arithmetic of [`Matrix::xtwx`] /
    /// [`Matrix::xtwy`] (including their zero skips), so fusing the
    /// passes changes which entry is touched *next* but never the
    /// summation order *within* an entry — results are bit-identical to
    /// the separate naive kernels (property-tested in `tests/props.rs`).
    pub fn xtwx_xtwz_into(
        &self,
        w: &[f64],
        z: &[f64],
        out_xtwx: &mut Matrix,
        out_xtwz: &mut [f64],
    ) -> Result<()> {
        if self.rows != w.len() || self.rows != z.len() {
            return Err(LinalgError::ShapeMismatch {
                op: "xtwx_xtwz_into",
                left: self.shape(),
                right: (w.len(), z.len()),
            });
        }
        let p = self.cols;
        if out_xtwx.rows != p || out_xtwx.cols != p {
            return Err(LinalgError::ShapeMismatch {
                op: "xtwx_xtwz_into",
                left: (p, p),
                right: out_xtwx.shape(),
            });
        }
        if out_xtwz.len() != p {
            return Err(LinalgError::ShapeMismatch {
                op: "xtwx_xtwz_into",
                left: (p, 1),
                right: (out_xtwz.len(), 1),
            });
        }
        out_xtwx.data.fill(0.0);
        out_xtwz.fill(0.0);
        for i in 0..self.rows {
            let r = self.row(i);
            let wi = w[i];
            // XᵀWz leg: always runs (xtwy has no zero skip).
            let s = wi * z[i];
            for (o, &a) in out_xtwz.iter_mut().zip(r) {
                *o += a * s;
            }
            // XᵀWX leg: rank-1 update with xtwx's skip conditions.
            if wi == 0.0 {
                continue;
            }
            for a in 0..p {
                let ra = r[a] * wi;
                if ra == 0.0 {
                    continue;
                }
                for b in a..p {
                    out_xtwx[(a, b)] += ra * r[b];
                }
            }
        }
        for a in 0..p {
            for b in 0..a {
                out_xtwx[(a, b)] = out_xtwx[(b, a)];
            }
        }
        Ok(())
    }

    /// Scale every element by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::norm2(&self.data)
    }

    /// Maximum absolute element.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Extract the diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Check symmetry up to tolerance `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Add `lambda` to every diagonal entry (ridge regularisation).
    pub fn add_ridge(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Horizontally concatenate `self | other`.
    pub fn hcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hcat",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale(s);
        m
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>12.6}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m22(a: f64, b: f64, c: f64, d: f64) -> Matrix {
        Matrix::from_vec(2, 2, vec![a, b, c, d])
    }

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i.diagonal(), vec![1.0; 3]);
    }

    #[test]
    fn from_rows_builds_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(5.0, 6.0, 7.0, 8.0);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, m22(19.0, 22.0, 43.0, 50.0));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 9.0]]);
        let i = Matrix::identity(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { op: "matmul", .. })
        ));
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
    }

    #[test]
    fn xtwx_matches_explicit_computation() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, -1.0], &[1.0, 0.5]]);
        let w = [2.0, 1.0, 4.0];
        let got = x.xtwx(&w).unwrap();
        let xt = x.transpose();
        let wx = {
            let mut wx = x.clone();
            for i in 0..3 {
                for v in wx.row_mut(i) {
                    *v *= w[i];
                }
            }
            wx
        };
        let expect = xt.matmul(&wx).unwrap();
        assert!(crate::max_abs_diff(got.as_slice(), expect.as_slice()) < 1e-12);
        assert!(got.is_symmetric(1e-14));
    }

    #[test]
    fn xtwy_matches_explicit_computation() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, -1.0]]);
        let got = x.xtwy(&[3.0, 5.0], &[2.0, 4.0]).unwrap();
        // XᵀWy = [[1,1],[2,-1]] * [6, 20] = [26, -8]
        assert_eq!(got, vec![26.0, -8.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = m22(4.0, 3.0, 2.0, 1.0);
        assert_eq!(&a + &b, m22(5.0, 5.0, 5.0, 5.0));
        assert_eq!(&a - &b, m22(-3.0, -1.0, 1.0, 3.0));
        assert_eq!(&a * 2.0, m22(2.0, 4.0, 6.0, 8.0));
    }

    #[test]
    fn ridge_adds_to_diagonal_only() {
        let mut a = m22(1.0, 2.0, 3.0, 4.0);
        a.add_ridge(0.5);
        assert_eq!(a, m22(1.5, 2.0, 3.0, 4.5));
    }

    #[test]
    fn hcat_concatenates_columns() {
        let a = m22(1.0, 2.0, 3.0, 4.0);
        let b = Matrix::column(&[9.0, 8.0]);
        let c = a.hcat(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 2.0, 9.0]);
        assert_eq!(c.row(1), &[3.0, 4.0, 8.0]);
    }

    #[test]
    fn symmetry_check() {
        assert!(m22(1.0, 2.0, 2.0, 1.0).is_symmetric(0.0));
        assert!(!m22(1.0, 2.0, 2.1, 1.0).is_symmetric(1e-3));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1.0));
    }

    #[test]
    fn diag_builds_diagonal_matrix() {
        let d = Matrix::diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d.diagonal(), vec![1.0, 2.0, 3.0]);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn display_renders_rows() {
        let s = format!("{}", m22(1.0, 2.0, 3.0, 4.0));
        assert_eq!(s.lines().count(), 2);
    }

    /// An awkward little design: zero weights, zero entries, negatives —
    /// the cases where a careless fused kernel could drift by a bit.
    fn fused_fixture() -> (Matrix, Vec<f64>, Vec<f64>) {
        let x = Matrix::from_rows(&[
            &[1.0, 0.3, -2.0],
            &[1.0, 0.0, 0.7],
            &[1.0, -0.1, 1e-7],
            &[1.0, 5.0, 3.0],
            &[1.0, 0.2, -0.4],
        ]);
        let w = vec![0.5, 0.0, 1.25, 1e-3, 7.0];
        let z = vec![1.1, -0.2, 0.0, 3.5, -4.0];
        (x, w, z)
    }

    #[test]
    fn into_kernels_are_bit_identical_to_allocating_kernels() {
        let (x, w, z) = fused_fixture();
        let naive_xtwx = x.xtwx(&w).unwrap();
        let naive_xtwz = x.xtwy(&w, &z).unwrap();
        let naive_mv = x.matvec(&z[..3]).unwrap();

        let mut m = Matrix::zeros(3, 3);
        let mut v = vec![f64::NAN; 3];
        x.xtwx_into(&w, &mut m).unwrap();
        assert_eq!(m.as_slice(), naive_xtwx.as_slice());
        x.xtwz_into(&w, &z, &mut v).unwrap();
        assert_eq!(v, naive_xtwz);

        // Fused pass, into dirty buffers.
        m.data.fill(f64::NAN);
        v.fill(f64::NAN);
        x.xtwx_xtwz_into(&w, &z, &mut m, &mut v).unwrap();
        assert_eq!(m.as_slice(), naive_xtwx.as_slice());
        assert_eq!(v, naive_xtwz);

        let mut mv = vec![f64::NAN; 5];
        x.matvec_into(&z[..3], &mut mv).unwrap();
        assert_eq!(mv, naive_mv);
    }

    #[test]
    fn into_kernels_reject_bad_shapes() {
        let (x, w, z) = fused_fixture();
        let mut m = Matrix::zeros(3, 3);
        let mut m2 = Matrix::zeros(2, 3);
        let mut v = vec![0.0; 3];
        assert!(x.xtwx_into(&w[..4], &mut m).is_err());
        assert!(x.xtwx_into(&w, &mut m2).is_err());
        assert!(x.xtwz_into(&w, &z[..4], &mut v).is_err());
        assert!(x.xtwz_into(&w, &z, &mut v[..2]).is_err());
        assert!(x.xtwx_xtwz_into(&w[..4], &z, &mut m, &mut v).is_err());
        assert!(x.xtwx_xtwz_into(&w, &z, &mut m2, &mut v).is_err());
        assert!(x.xtwx_xtwz_into(&w, &z, &mut m, &mut v[..2]).is_err());
        assert!(x.matvec_into(&z, &mut v).is_err());
        assert!(x.matvec_into(&z[..3], &mut v).is_err());
    }
}
