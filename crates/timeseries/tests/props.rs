#![allow(clippy::needless_range_loop)]
//! Property-based tests for dates, Easter, weekly series and designs.

use booters_timeseries::date::{days_in_month, is_leap, Date, Weekday};
use booters_timeseries::easter::easter_sunday;
use booters_timeseries::intervention::InterventionWindow;
use booters_timeseries::seasonal::seasonal_row;
use booters_timeseries::series::WeeklySeries;
use booters_testkit::strategy::prop;
use booters_testkit::{forall, prop_assert, prop_assert_eq, Just, Strategy};

/// Strategy: a valid date between 1990 and 2050.
fn date() -> impl Strategy<Value = Date> {
    (1990i32..2050, 1u8..=12).prop_flat_map(|(y, m)| {
        (Just(y), Just(m), 1u8..=days_in_month(y, m))
            .prop_map(|(y, m, d)| Date::new(y, m, d))
    })
}

forall! {
    #![cases(256)]

    fn days_roundtrip(d in date()) {
        prop_assert_eq!(Date::from_days(d.to_days()), d);
    }

    fn add_days_is_additive(d in date(), a in -1000i64..1000, b in -1000i64..1000) {
        prop_assert_eq!(d.add_days(a).add_days(b), d.add_days(a + b));
    }

    fn weekday_advances_by_one(d in date()) {
        let today = d.weekday() as i64;
        let tomorrow = d.add_days(1).weekday() as i64;
        prop_assert_eq!(tomorrow, today % 7 + 1);
    }

    fn week_start_is_idempotent_monday(d in date()) {
        let ws = d.week_start();
        prop_assert_eq!(ws.weekday(), Weekday::Monday);
        prop_assert_eq!(ws.week_start(), ws);
        let gap = d.days_since(ws);
        prop_assert!((0..7).contains(&gap));
    }

    fn ordinal_consistent_with_days(d in date()) {
        let jan1 = Date::new(d.year(), 1, 1);
        prop_assert_eq!(d.ordinal() as i64, d.days_since(jan1) + 1);
    }

    fn leap_year_has_366_days(y in 1990i32..2050) {
        let total: u32 = (1..=12).map(|m| days_in_month(y, m) as u32).sum();
        prop_assert_eq!(total, if is_leap(y) { 366 } else { 365 });
    }

    fn easter_is_spring_sunday(y in 1990i32..2050) {
        let e = easter_sunday(y);
        prop_assert_eq!(e.weekday(), Weekday::Sunday);
        prop_assert!(e.month() == 3 || e.month() == 4);
    }

    fn series_add_event_conserves_total(
        start in date(),
        events in prop::collection::vec((0i64..200, 0.0..100.0f64), 0..50),
    ) {
        let mut s = WeeklySeries::zeros(start, 30);
        let mut expected = 0.0;
        for (off, v) in &events {
            let d = start.add_days(*off);
            if s.index_of(d).is_some() {
                expected += v;
            }
            s.add_event(d, *v);
        }
        prop_assert!((s.total() - expected).abs() < 1e-9);
    }

    fn series_window_is_a_slice(start in date(), from in 0usize..10, len in 1usize..10) {
        let values: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let s = WeeklySeries::from_values(start, values);
        let ws = s.start();
        let w = s
            .window(ws.add_days(7 * from as i64), ws.add_days(7 * (from + len) as i64))
            .unwrap();
        prop_assert_eq!(w.len(), len);
        for i in 0..len {
            prop_assert_eq!(w.get(i), s.get(from + i));
        }
    }

    fn seasonal_row_is_one_hot(d in date()) {
        let row = seasonal_row(d.week_start());
        let ones = row.iter().filter(|&&v| v == 1.0).count();
        let zeros = row.iter().filter(|&&v| v == 0.0).count();
        prop_assert_eq!(ones + zeros, 11);
        prop_assert!(ones <= 1);
        // January (reference) has all-zero rows.
        if d.week_start().month() == 1 {
            prop_assert_eq!(ones, 0);
        } else {
            prop_assert_eq!(ones, 1);
        }
    }

    fn intervention_dummy_sums_to_visible_duration(
        start in date(),
        delay in 0usize..4,
        duration in 0usize..30,
    ) {
        let s = WeeklySeries::zeros(start, 52);
        let event = s.start().add_days(14);
        let w = InterventionWindow::delayed("w", event, delay, duration);
        let col = w.dummy_column(&s);
        let total: f64 = col.iter().sum();
        // Never more than the duration; equal when fully inside the series.
        prop_assert!(total <= duration as f64 + 1e-12);
        let fully_inside = 2 + delay + duration <= 52;
        if fully_inside {
            prop_assert_eq!(total, duration as f64);
        }
        // The dummy is 0/1 valued.
        prop_assert!(col.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    fn window_active_weeks_are_contiguous(start in date(), duration in 1usize..20) {
        let s = WeeklySeries::zeros(start, 60);
        let w = InterventionWindow::immediate("w", s.start().add_days(70), duration);
        let col = w.dummy_column(&s);
        // Find the active run and check contiguity.
        let first = col.iter().position(|&v| v == 1.0);
        let last = col.iter().rposition(|&v| v == 1.0);
        if let (Some(a), Some(b)) = (first, last) {
            for i in a..=b {
                prop_assert_eq!(col[i], 1.0);
            }
        }
    }
}
