//! Assembly of the paper's interrupted-time-series design matrix.
//!
//! Column order mirrors Table 1: intervention dummies, Easter, seasonal_2
//! through seasonal_12, the linear `time` trend, then the constant. Column
//! names travel with the matrix so the GLM summary can be rendered exactly
//! like the paper's table.

use crate::intervention::InterventionWindow;
use crate::seasonal::seasonal_columns;
use crate::series::WeeklySeries;
use booters_linalg::Matrix;

/// A design matrix with named columns.
#[derive(Debug, Clone)]
pub struct Design {
    /// The matrix, one row per week.
    pub x: Matrix,
    /// One name per column, in order.
    pub names: Vec<String>,
}

impl Design {
    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

/// Configuration for [`its_design`].
#[derive(Debug, Clone)]
pub struct DesignConfig {
    /// Easter window as (days before, days after) Easter Sunday.
    pub easter_window: (i64, i64),
    /// Include the 11 monthly seasonal dummies.
    pub seasonal: bool,
    /// Include the Easter dummy.
    pub easter: bool,
    /// Include the linear time trend (week index, starting at 0).
    pub trend: bool,
}

impl Default for DesignConfig {
    fn default() -> Self {
        DesignConfig {
            easter_window: (7, 7),
            seasonal: true,
            easter: true,
            trend: true,
        }
    }
}

/// Build the paper's design matrix for `series` with the given intervention
/// windows. Columns: interventions (in the order given), `easter`,
/// `seasonal_2`..`seasonal_12`, `time`, `_cons`.
pub fn its_design(
    series: &WeeklySeries,
    interventions: &[InterventionWindow],
    config: &DesignConfig,
) -> Design {
    let n = series.len();
    let mut cols: Vec<(String, Vec<f64>)> = Vec::new();

    for w in interventions {
        cols.push((w.name.clone(), w.dummy_column(series)));
    }

    let seasonal_cols = seasonal_columns(series, config.easter_window);
    if config.easter {
        cols.push(("Easter".to_string(), seasonal_cols[11].clone()));
    }
    if config.seasonal {
        for (m, col) in seasonal_cols[..11].iter().enumerate() {
            cols.push((format!("seasonal_{}", m + 2), col.clone()));
        }
    }
    if config.trend {
        cols.push(("time".to_string(), (0..n).map(|i| i as f64).collect()));
    }
    cols.push(("_cons".to_string(), vec![1.0; n]));

    let p = cols.len();
    let mut x = Matrix::zeros(n, p);
    for (j, (_, col)) in cols.iter().enumerate() {
        for i in 0..n {
            x[(i, j)] = col[i];
        }
    }
    Design {
        x,
        names: cols.into_iter().map(|(name, _)| name).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    fn series() -> WeeklySeries {
        // June 2016 .. April 2019, the paper's modelling window.
        WeeklySeries::covering(Date::new(2016, 6, 6), Date::new(2019, 4, 1))
    }

    #[test]
    fn full_design_matches_table1_shape() {
        let s = series();
        let interventions = vec![
            InterventionWindow::immediate("Xmas2018", Date::new(2018, 12, 19), 10),
            InterventionWindow::delayed("Webstresser", Date::new(2018, 4, 24), 2, 3),
        ];
        let d = its_design(&s, &interventions, &DesignConfig::default());
        // 2 interventions + Easter + 11 seasonal + time + _cons = 16
        assert_eq!(d.x.cols(), 16);
        assert_eq!(d.names.len(), 16);
        assert_eq!(d.x.rows(), s.len());
        assert_eq!(d.names[0], "Xmas2018");
        assert_eq!(d.names[2], "Easter");
        assert_eq!(d.names[3], "seasonal_2");
        assert_eq!(d.names[13], "seasonal_12");
        assert_eq!(d.names[14], "time");
        assert_eq!(d.names[15], "_cons");
    }

    #[test]
    fn trend_column_is_week_index() {
        let s = series();
        let d = its_design(&s, &[], &DesignConfig::default());
        let t = d.column_index("time").unwrap();
        assert_eq!(d.x[(0, t)], 0.0);
        assert_eq!(d.x[(10, t)], 10.0);
    }

    #[test]
    fn constant_column_is_ones() {
        let s = series();
        let d = its_design(&s, &[], &DesignConfig::default());
        let c = d.column_index("_cons").unwrap();
        for i in 0..s.len() {
            assert_eq!(d.x[(i, c)], 1.0);
        }
    }

    #[test]
    fn config_can_disable_components() {
        let s = series();
        let d = its_design(
            &s,
            &[],
            &DesignConfig {
                seasonal: false,
                easter: false,
                trend: true,
                easter_window: (7, 7),
            },
        );
        assert_eq!(d.names, vec!["time".to_string(), "_cons".to_string()]);
    }

    #[test]
    fn intervention_column_sums_to_duration() {
        let s = series();
        let w = InterventionWindow::immediate("HF", Date::new(2016, 10, 28), 13);
        let d = its_design(&s, &[w], &DesignConfig::default());
        let j = d.column_index("HF").unwrap();
        let total: f64 = (0..s.len()).map(|i| d.x[(i, j)]).sum();
        assert_eq!(total, 13.0);
    }

    #[test]
    fn column_index_missing_is_none() {
        let s = series();
        let d = its_design(&s, &[], &DesignConfig::default());
        assert!(d.column_index("nope").is_none());
    }
}
