//! Cross-series correlation (Figure 4 of the paper).
//!
//! The paper computes pairwise Pearson correlations between per-country
//! weekly attack series and observes that the UK/US/FR/DE/PL block is
//! strongly correlated while China "stands apart".

use crate::series::WeeklySeries;
use booters_stats::describe::pearson;

/// A labelled correlation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationTable {
    /// Series labels, in matrix order.
    pub labels: Vec<String>,
    /// Symmetric matrix of Pearson correlations; `NaN` where undefined.
    pub matrix: Vec<Vec<f64>>,
}

impl CorrelationTable {
    /// Correlation between two labelled series.
    pub fn get(&self, a: &str, b: &str) -> Option<f64> {
        let i = self.labels.iter().position(|l| l == a)?;
        let j = self.labels.iter().position(|l| l == b)?;
        Some(self.matrix[i][j])
    }

    /// Mean absolute off-diagonal correlation of one series against all
    /// others — low values identify the "stands apart" series (China).
    pub fn mean_abs_correlation(&self, label: &str) -> Option<f64> {
        let i = self.labels.iter().position(|l| l == label)?;
        let others: Vec<f64> = (0..self.labels.len())
            .filter(|&j| j != i)
            .map(|j| self.matrix[i][j].abs())
            .filter(|v| v.is_finite())
            .collect();
        if others.is_empty() {
            return None;
        }
        Some(others.iter().sum::<f64>() / others.len() as f64)
    }

    /// Render as an aligned text table (the repro of Figure 4's data).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:>6}", ""));
        for l in &self.labels {
            out.push_str(&format!("{l:>7}"));
        }
        out.push('\n');
        for (i, l) in self.labels.iter().enumerate() {
            out.push_str(&format!("{l:>6}"));
            for j in 0..self.labels.len() {
                let v = self.matrix[i][j];
                if v.is_nan() {
                    out.push_str("    nan");
                } else {
                    out.push_str(&format!("{v:>7.2}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Pairwise Pearson correlation over aligned weekly series.
///
/// # Panics
/// Panics if the series are not aligned (same start, same length).
pub fn correlate_series(labelled: &[(String, &WeeklySeries)]) -> CorrelationTable {
    let k = labelled.len();
    if k > 1 {
        let s0 = labelled[0].1;
        for (_, s) in labelled.iter().skip(1) {
            assert_eq!(s.start(), s0.start(), "correlate_series: misaligned start");
            assert_eq!(s.len(), s0.len(), "correlate_series: length mismatch");
        }
    }
    let mut matrix = vec![vec![f64::NAN; k]; k];
    for i in 0..k {
        for j in i..k {
            let r = if i == j {
                1.0
            } else {
                pearson(labelled[i].1.values(), labelled[j].1.values())
            };
            matrix[i][j] = r;
            matrix[j][i] = r;
        }
    }
    CorrelationTable {
        labels: labelled.iter().map(|(l, _)| l.clone()).collect(),
        matrix,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    fn mk(vals: Vec<f64>) -> WeeklySeries {
        WeeklySeries::from_values(Date::new(2018, 1, 1), vals)
    }

    #[test]
    fn correlated_and_uncorrelated_series() {
        let a = mk(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mk(vec![2.0, 4.0, 5.9, 8.1, 10.0, 12.0]); // ≈ 2a
        let c = mk(vec![5.0, 1.0, 4.0, 2.0, 6.0, 1.5]); // noise
        let t = correlate_series(&[
            ("A".into(), &a),
            ("B".into(), &b),
            ("C".into(), &c),
        ]);
        assert!(t.get("A", "B").unwrap() > 0.99);
        assert!(t.get("A", "C").unwrap().abs() < 0.6);
        assert_eq!(t.get("A", "A").unwrap(), 1.0);
        assert_eq!(t.get("A", "B"), t.get("B", "A"));
    }

    #[test]
    fn mean_abs_correlation_identifies_outlier() {
        let a = mk(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mk(vec![1.1, 2.2, 2.9, 4.2, 5.1, 5.8]);
        let flat = mk(vec![3.0, 1.0, 3.5, 0.5, 3.2, 1.1]);
        let t = correlate_series(&[
            ("A".into(), &a),
            ("B".into(), &b),
            ("CN".into(), &flat),
        ]);
        let a_corr = t.mean_abs_correlation("A").unwrap();
        let cn_corr = t.mean_abs_correlation("CN").unwrap();
        assert!(a_corr > cn_corr, "a={a_corr} cn={cn_corr}");
    }

    #[test]
    fn render_contains_labels() {
        let a = mk(vec![1.0, 2.0, 3.0]);
        let b = mk(vec![3.0, 2.0, 1.0]);
        let t = correlate_series(&[("UK".into(), &a), ("US".into(), &b)]);
        let s = t.render();
        assert!(s.contains("UK"));
        assert!(s.contains("US"));
        assert!(s.contains("-1.00"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn misaligned_series_rejected() {
        let a = mk(vec![1.0, 2.0, 3.0]);
        let b = mk(vec![1.0, 2.0]);
        correlate_series(&[("A".into(), &a), ("B".into(), &b)]);
    }

    #[test]
    fn unknown_label_returns_none() {
        let a = mk(vec![1.0, 2.0, 3.0]);
        let t = correlate_series(&[("A".into(), &a)]);
        assert!(t.get("A", "Z").is_none());
        assert!(t.mean_abs_correlation("Z").is_none());
    }
}
