//! Proleptic Gregorian civil dates from scratch.
//!
//! Uses the classic days-from-civil / civil-from-days algorithms
//! (era-of-400-years arithmetic) so date maths is exact integer work with
//! no lookup tables, valid across the whole simulation range and far
//! beyond.

use std::fmt;

/// Day of week, ISO numbering (Monday = 1 ... Sunday = 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Weekday {
    /// Monday (ISO 1).
    Monday = 1,
    /// Tuesday (ISO 2).
    Tuesday = 2,
    /// Wednesday (ISO 3).
    Wednesday = 3,
    /// Thursday (ISO 4).
    Thursday = 4,
    /// Friday (ISO 5).
    Friday = 5,
    /// Saturday (ISO 6).
    Saturday = 6,
    /// Sunday (ISO 7).
    Sunday = 7,
}

impl Weekday {
    fn from_iso(n: i64) -> Weekday {
        match n {
            1 => Weekday::Monday,
            2 => Weekday::Tuesday,
            3 => Weekday::Wednesday,
            4 => Weekday::Thursday,
            5 => Weekday::Friday,
            6 => Weekday::Saturday,
            7 => Weekday::Sunday,
            _ => unreachable!("iso weekday out of range: {n}"),
        }
    }
}

/// A proleptic Gregorian calendar date.
///
/// Ordering and equality follow chronological order. The internal
/// representation is (year, month, day); conversions to a linear day count
/// are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Date {
    year: i32,
    month: u8,
    day: u8,
}

impl Date {
    /// Construct a date; panics on invalid month/day combinations.
    pub fn new(year: i32, month: u8, day: u8) -> Date {
        assert!((1..=12).contains(&month), "invalid month {month}");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "invalid day {day} for {year}-{month:02}"
        );
        Date { year, month, day }
    }

    /// Year component.
    pub fn year(&self) -> i32 {
        self.year
    }

    /// Month component (1–12).
    pub fn month(&self) -> u8 {
        self.month
    }

    /// Day-of-month component (1–31).
    pub fn day(&self) -> u8 {
        self.day
    }

    /// Days since the civil epoch 1970-01-01 (may be negative).
    pub fn to_days(&self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Inverse of [`Date::to_days`].
    pub fn from_days(days: i64) -> Date {
        let (y, m, d) = civil_from_days(days);
        Date {
            year: y,
            month: m,
            day: d,
        }
    }

    /// The date `n` days later (or earlier for negative `n`).
    pub fn add_days(&self, n: i64) -> Date {
        Date::from_days(self.to_days() + n)
    }

    /// Signed number of days from `other` to `self`.
    pub fn days_since(&self, other: Date) -> i64 {
        self.to_days() - other.to_days()
    }

    /// Day of week.
    pub fn weekday(&self) -> Weekday {
        // 1970-01-01 was a Thursday (ISO 4).
        let iso = (self.to_days() + 3).rem_euclid(7) + 1;
        Weekday::from_iso(iso)
    }

    /// The Monday on or before this date (used as the canonical week key).
    pub fn week_start(&self) -> Date {
        let dow = self.weekday() as i64; // Monday = 1
        self.add_days(-(dow - 1))
    }

    /// True in leap years.
    pub fn is_leap_year(&self) -> bool {
        is_leap(self.year)
    }

    /// Day-of-year, 1-based.
    pub fn ordinal(&self) -> u32 {
        let mut total = 0u32;
        for m in 1..self.month {
            total += days_in_month(self.year, m) as u32;
        }
        total + self.day as u32
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// True for Gregorian leap years.
pub fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Number of days in the given month.
pub fn days_in_month(year: i32, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Days from 1970-01-01 (Hinnant's `days_from_civil`).
fn days_from_civil(y: i32, m: u8, d: u8) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // March = 0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01 (Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i32, u8, u8) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8; // [1, 12]
    let y = if m <= 2 { y + 1 } else { y };
    (y as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::new(1970, 1, 1).to_days(), 0);
        assert_eq!(Date::from_days(0), Date::new(1970, 1, 1));
    }

    #[test]
    fn known_day_counts() {
        assert_eq!(Date::new(1970, 1, 2).to_days(), 1);
        assert_eq!(Date::new(1969, 12, 31).to_days(), -1);
        assert_eq!(Date::new(2000, 3, 1).to_days(), 11_017);
        // 2014-07-01, the era our dataset starts: verified against Unix time.
        assert_eq!(Date::new(2014, 7, 1).to_days(), 16_252);
    }

    #[test]
    fn roundtrip_over_long_range() {
        // Every 37 days across ~80 years.
        let mut d = Date::new(1960, 1, 1).to_days();
        let end = Date::new(2040, 1, 1).to_days();
        while d < end {
            assert_eq!(Date::from_days(d).to_days(), d);
            d += 37;
        }
    }

    #[test]
    fn add_days_crosses_month_and_year() {
        assert_eq!(Date::new(2018, 12, 30).add_days(5), Date::new(2019, 1, 4));
        assert_eq!(Date::new(2016, 2, 28).add_days(1), Date::new(2016, 2, 29));
        assert_eq!(Date::new(2017, 2, 28).add_days(1), Date::new(2017, 3, 1));
        assert_eq!(Date::new(2018, 1, 10).add_days(-10), Date::new(2017, 12, 31));
    }

    #[test]
    fn weekday_known_values() {
        assert_eq!(Date::new(1970, 1, 1).weekday(), Weekday::Thursday);
        assert_eq!(Date::new(2019, 10, 21).weekday(), Weekday::Monday); // IMC'19 started
        assert_eq!(Date::new(2018, 12, 19).weekday(), Weekday::Wednesday); // Xmas2018 action
        assert_eq!(Date::new(2016, 10, 28).weekday(), Weekday::Friday); // HackForums SST closure
        assert_eq!(Date::new(2000, 1, 1).weekday(), Weekday::Saturday);
    }

    #[test]
    fn week_start_is_monday_on_or_before() {
        let d = Date::new(2018, 12, 19); // Wednesday
        assert_eq!(d.week_start(), Date::new(2018, 12, 17));
        assert_eq!(d.week_start().weekday(), Weekday::Monday);
        // A Monday is its own week start.
        let m = Date::new(2018, 12, 17);
        assert_eq!(m.week_start(), m);
        // Sunday maps back 6 days.
        assert_eq!(Date::new(2018, 12, 23).week_start(), m);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2016));
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(!is_leap(2019));
        assert_eq!(days_in_month(2016, 2), 29);
        assert_eq!(days_in_month(2017, 2), 28);
        assert_eq!(days_in_month(2018, 4), 30);
        assert_eq!(days_in_month(2018, 8), 31);
    }

    #[test]
    fn ordinal_day_of_year() {
        assert_eq!(Date::new(2018, 1, 1).ordinal(), 1);
        assert_eq!(Date::new(2018, 12, 31).ordinal(), 365);
        assert_eq!(Date::new(2016, 12, 31).ordinal(), 366);
        assert_eq!(Date::new(2018, 3, 1).ordinal(), 60);
        assert_eq!(Date::new(2016, 3, 1).ordinal(), 61);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Date::new(2018, 1, 2) > Date::new(2018, 1, 1));
        assert!(Date::new(2018, 2, 1) > Date::new(2018, 1, 31));
        assert!(Date::new(2019, 1, 1) > Date::new(2018, 12, 31));
    }

    #[test]
    fn days_since_signed() {
        let a = Date::new(2018, 4, 24);
        let b = Date::new(2018, 5, 1);
        assert_eq!(b.days_since(a), 7);
        assert_eq!(a.days_since(b), -7);
    }

    #[test]
    #[should_panic(expected = "invalid day")]
    fn invalid_date_rejected() {
        Date::new(2017, 2, 29);
    }

    #[test]
    #[should_panic(expected = "invalid month")]
    fn invalid_month_rejected() {
        Date::new(2017, 13, 1);
    }
}
