//! Seasonal encoding: month-of-year dummies and the Easter indicator.
//!
//! The paper "model\[s\] seasonality over twelve one-month periods, for which
//! we need eleven seasonal variables" — month 1 (January) is the reference
//! level, so dummies cover months 2..=12. A separate Easter component
//! captures the moving school-holiday effect.

use crate::date::Date;
use crate::easter::in_easter_window;
use crate::series::WeeklySeries;

/// Month (2..=12) dummy value for the week starting at `monday`:
/// 1.0 when the week's Monday falls in `month`, else 0.0.
pub fn month_dummy(monday: Date, month: u8) -> f64 {
    debug_assert!((2..=12).contains(&month), "seasonal dummies cover months 2..=12");
    if monday.month() == month {
        1.0
    } else {
        0.0
    }
}

/// The 11 seasonal dummy values (months 2..=12) for one week.
pub fn seasonal_row(monday: Date) -> [f64; 11] {
    let mut row = [0.0; 11];
    let m = monday.month();
    if m >= 2 {
        row[(m - 2) as usize] = 1.0;
    }
    row
}

/// Easter dummy for one week: 1.0 when any day of the week (Mon..Sun)
/// falls inside the Easter holiday window.
pub fn easter_dummy(monday: Date, days_before: i64, days_after: i64) -> f64 {
    for off in 0..7 {
        if in_easter_window(monday.add_days(off), days_before, days_after) {
            return 1.0;
        }
    }
    0.0
}

/// All seasonal columns for a weekly series: 11 month dummies then Easter.
///
/// Returns columns in model order `seasonal_2 ... seasonal_12, easter`.
pub fn seasonal_columns(series: &WeeklySeries, easter_window: (i64, i64)) -> Vec<Vec<f64>> {
    let n = series.len();
    let mut cols: Vec<Vec<f64>> = vec![vec![0.0; n]; 12];
    for i in 0..n {
        let monday = series.week_date(i);
        let row = seasonal_row(monday);
        for (j, &v) in row.iter().enumerate() {
            cols[j][i] = v;
        }
        cols[11][i] = easter_dummy(monday, easter_window.0, easter_window.1);
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn january_is_reference_level() {
        let jan = Date::new(2018, 1, 1);
        assert_eq!(seasonal_row(jan), [0.0; 11]);
    }

    #[test]
    fn each_month_sets_one_dummy() {
        for m in 2..=12u8 {
            let d = Date::new(2018, m, 5).week_start();
            // week_start may move into the previous month at boundaries, so
            // use a mid-month date whose Monday is still in the month.
            let d = if d.month() == m { d } else { Date::new(2018, m, 14).week_start() };
            let row = seasonal_row(d);
            let ones: Vec<usize> = row
                .iter()
                .enumerate()
                .filter(|(_, &v)| v == 1.0)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(ones, vec![(m - 2) as usize], "month {m}");
        }
    }

    #[test]
    fn month_dummy_matches_row() {
        let d = Date::new(2018, 7, 9);
        assert_eq!(month_dummy(d, 7), 1.0);
        assert_eq!(month_dummy(d, 8), 0.0);
    }

    #[test]
    fn easter_dummy_flags_weeks_near_easter() {
        // Easter 2018 = April 1. Week of Mar 26 contains it.
        assert_eq!(easter_dummy(Date::new(2018, 3, 26), 7, 7), 1.0);
        assert_eq!(easter_dummy(Date::new(2018, 3, 19), 7, 7), 1.0); // window start Mar 25
        assert_eq!(easter_dummy(Date::new(2018, 3, 12), 7, 7), 0.0);
        assert_eq!(easter_dummy(Date::new(2018, 4, 9), 7, 7), 0.0);
    }

    #[test]
    fn seasonal_columns_shapes_and_coverage() {
        let s = WeeklySeries::zeros(Date::new(2018, 1, 1), 52);
        let cols = seasonal_columns(&s, (7, 7));
        assert_eq!(cols.len(), 12);
        assert!(cols.iter().all(|c| c.len() == 52));
        // Every week has at most one month dummy set.
        for i in 0..52 {
            let active: f64 = cols[..11].iter().map(|c| c[i]).sum();
            assert!(active <= 1.0);
        }
        // The Easter column is non-empty in a 52-week year.
        assert!(cols[11].iter().sum::<f64>() >= 2.0);
        // Roughly one twelfth of weeks in each month dummy.
        let june: f64 = cols[4].iter().sum();
        assert!((3.0..=5.0).contains(&june));
    }
}
