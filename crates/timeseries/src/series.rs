//! Week-indexed time series.
//!
//! The paper's unit of analysis is the week ("Weekly totals were used as
//! daily attack counts showed a high degree of volatility"). A
//! [`WeeklySeries`] is a contiguous run of weeks (Monday-keyed) with one
//! `f64` value per week; it supports accumulation from dated events,
//! slicing to an analysis window, and elementwise transformations.

use crate::date::Date;

/// A contiguous weekly time series keyed by the Monday starting each week.
#[derive(Debug, Clone, PartialEq)]
pub struct WeeklySeries {
    start: Date, // always a Monday
    values: Vec<f64>,
}

impl WeeklySeries {
    /// Create a zero-filled series covering `n_weeks` weeks starting with
    /// the week containing `start`.
    pub fn zeros(start: Date, n_weeks: usize) -> WeeklySeries {
        WeeklySeries {
            start: start.week_start(),
            values: vec![0.0; n_weeks],
        }
    }

    /// Create a series from explicit values; `start` is snapped to Monday.
    pub fn from_values(start: Date, values: Vec<f64>) -> WeeklySeries {
        WeeklySeries {
            start: start.week_start(),
            values,
        }
    }

    /// Create a series covering `[start, end)` (week granularity, both
    /// snapped to their Mondays), zero-filled.
    pub fn covering(start: Date, end: Date) -> WeeklySeries {
        let s = start.week_start();
        let e = end.week_start();
        let n = (e.days_since(s) / 7).max(0) as usize;
        WeeklySeries {
            start: s,
            values: vec![0.0; n],
        }
    }

    /// First week's Monday.
    pub fn start(&self) -> Date {
        self.start
    }

    /// Number of weeks.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the series has no weeks.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Monday of week `i`.
    pub fn week_date(&self, i: usize) -> Date {
        self.start.add_days(7 * i as i64)
    }

    /// Week index containing `date`, if within the series.
    pub fn index_of(&self, date: Date) -> Option<usize> {
        let days = date.days_since(self.start);
        if days < 0 {
            return None;
        }
        let idx = (days / 7) as usize;
        if idx < self.values.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Value for week `i`.
    pub fn get(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// Set the value for week `i`.
    pub fn set(&mut self, i: usize, v: f64) {
        self.values[i] = v;
    }

    /// Add `amount` to the week containing `date`; events outside the
    /// series range are ignored (they fall off the observation window).
    pub fn add_event(&mut self, date: Date, amount: f64) {
        if let Some(i) = self.index_of(date) {
            self.values[i] += amount;
        }
    }

    /// Borrow the values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutably borrow the values.
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Slice out the sub-series covering `[from, to)` (snapped to Mondays).
    /// Returns `None` if the window is not fully inside the series.
    pub fn window(&self, from: Date, to: Date) -> Option<WeeklySeries> {
        let f = from.week_start();
        let t = to.week_start();
        let i = self.index_of(f)?;
        let n = (t.days_since(f) / 7).max(0) as usize;
        if i + n > self.values.len() {
            return None;
        }
        Some(WeeklySeries {
            start: f,
            values: self.values[i..i + n].to_vec(),
        })
    }

    /// Elementwise sum with another series; panics unless both series are
    /// aligned (same start and length).
    pub fn add_series(&mut self, other: &WeeklySeries) {
        assert_eq!(self.start, other.start, "add_series: misaligned start");
        assert_eq!(self.values.len(), other.values.len(), "add_series: length mismatch");
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += b;
        }
    }

    /// Map every value through `f`, returning a new series.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> WeeklySeries {
        WeeklySeries {
            start: self.start,
            values: self.values.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Iterator of `(week_monday, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Date, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| (self.week_date(i), v))
    }

    /// Values rounded to non-negative integer counts (for count models).
    pub fn to_counts(&self) -> Vec<u64> {
        self.values.iter().map(|&v| v.max(0.0).round() as u64).collect()
    }
}

/// Aggregate dated events into a weekly series covering `[start, end)`.
pub fn aggregate_events(
    start: Date,
    end: Date,
    events: impl IntoIterator<Item = (Date, f64)>,
) -> WeeklySeries {
    let mut s = WeeklySeries::covering(start, end);
    for (d, v) in events {
        s.add_event(d, v);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monday() -> Date {
        Date::new(2018, 1, 1) // a Monday
    }

    #[test]
    fn construction_snaps_to_monday() {
        let s = WeeklySeries::zeros(Date::new(2018, 1, 3), 4); // Wednesday
        assert_eq!(s.start(), monday());
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn covering_counts_weeks() {
        let s = WeeklySeries::covering(Date::new(2018, 1, 1), Date::new(2018, 2, 5));
        assert_eq!(s.len(), 5);
        let empty = WeeklySeries::covering(Date::new(2018, 1, 1), Date::new(2018, 1, 1));
        assert!(empty.is_empty());
    }

    #[test]
    fn index_of_maps_dates_to_weeks() {
        let s = WeeklySeries::zeros(monday(), 3);
        assert_eq!(s.index_of(Date::new(2018, 1, 1)), Some(0));
        assert_eq!(s.index_of(Date::new(2018, 1, 7)), Some(0)); // Sunday, same week
        assert_eq!(s.index_of(Date::new(2018, 1, 8)), Some(1));
        assert_eq!(s.index_of(Date::new(2018, 1, 21)), Some(2));
        assert_eq!(s.index_of(Date::new(2018, 1, 22)), None); // past end
        assert_eq!(s.index_of(Date::new(2017, 12, 31)), None); // before start
    }

    #[test]
    fn add_event_accumulates_within_week() {
        let mut s = WeeklySeries::zeros(monday(), 2);
        s.add_event(Date::new(2018, 1, 2), 5.0);
        s.add_event(Date::new(2018, 1, 6), 3.0);
        s.add_event(Date::new(2018, 1, 10), 7.0);
        s.add_event(Date::new(2019, 1, 1), 100.0); // ignored, out of range
        assert_eq!(s.values(), &[8.0, 7.0]);
        assert_eq!(s.total(), 15.0);
    }

    #[test]
    fn window_extracts_aligned_slice() {
        let s = WeeklySeries::from_values(monday(), vec![1.0, 2.0, 3.0, 4.0]);
        let w = s.window(Date::new(2018, 1, 8), Date::new(2018, 1, 22)).unwrap();
        assert_eq!(w.values(), &[2.0, 3.0]);
        assert_eq!(w.start(), Date::new(2018, 1, 8));
        assert!(s.window(Date::new(2017, 12, 1), Date::new(2018, 1, 8)).is_none());
        assert!(s.window(Date::new(2018, 1, 8), Date::new(2018, 3, 1)).is_none());
    }

    #[test]
    fn add_series_elementwise() {
        let mut a = WeeklySeries::from_values(monday(), vec![1.0, 2.0]);
        let b = WeeklySeries::from_values(monday(), vec![10.0, 20.0]);
        a.add_series(&b);
        assert_eq!(a.values(), &[11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn add_series_rejects_misaligned() {
        let mut a = WeeklySeries::from_values(monday(), vec![1.0, 2.0]);
        let b = WeeklySeries::from_values(Date::new(2018, 1, 8), vec![1.0, 2.0]);
        a.add_series(&b);
    }

    #[test]
    fn map_and_counts() {
        let s = WeeklySeries::from_values(monday(), vec![1.4, 2.6, -0.5]);
        assert_eq!(s.map(|v| v * 2.0).values(), &[2.8, 5.2, -1.0]);
        assert_eq!(s.to_counts(), vec![1, 3, 0]);
    }

    #[test]
    fn aggregate_events_from_iterator() {
        let events = vec![
            (Date::new(2018, 1, 2), 1.0),
            (Date::new(2018, 1, 9), 2.0),
            (Date::new(2018, 1, 9), 3.0),
        ];
        let s = aggregate_events(Date::new(2018, 1, 1), Date::new(2018, 1, 15), events);
        assert_eq!(s.values(), &[1.0, 5.0]);
    }

    #[test]
    fn iter_yields_dated_pairs() {
        let s = WeeklySeries::from_values(monday(), vec![5.0, 6.0]);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs[0], (Date::new(2018, 1, 1), 5.0));
        assert_eq!(pairs[1], (Date::new(2018, 1, 8), 6.0));
    }
}
