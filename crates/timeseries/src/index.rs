//! Index rebasing and simple trend fitting for Figure 5.
//!
//! Figure 5 plots US and UK attack counts "scaled so both start at 100 in
//! June 2016, with 200 representing a doubling", and quotes OLS slopes of
//! the two series before and during the NCA advertising campaign.

use crate::date::Date;
use crate::series::WeeklySeries;

/// Rebase a series to `base` (conventionally 100) at week `origin`.
///
/// Uses the mean of the first `smooth_weeks` weeks as the denominator so a
/// noisy single origin week does not distort the whole index. Returns
/// `None` if the origin is outside the series or the base level is zero.
pub fn rebase(
    series: &WeeklySeries,
    origin: Date,
    base: f64,
    smooth_weeks: usize,
) -> Option<WeeklySeries> {
    let i = series.index_of(origin)?;
    let k = smooth_weeks.max(1).min(series.len() - i);
    let level: f64 = series.values()[i..i + k].iter().sum::<f64>() / k as f64;
    if level <= 0.0 {
        return None;
    }
    Some(series.map(|v| v / level * base))
}

/// Simple OLS slope (per week) of a series over `[from, to)`.
///
/// This is the statistic the paper quotes for Figure 5: "the UK and US
/// linear trends from the period Jan 2017 until Dec 2017 had slopes of 3.2
/// and 5.3". Returns `None` if the window leaves fewer than 3 weeks.
pub fn linear_slope(series: &WeeklySeries, from: Date, to: Date) -> Option<f64> {
    let w = series.window(from, to)?;
    let n = w.len();
    if n < 3 {
        return None;
    }
    let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let ys = w.values();
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    Some(sxy / sxx)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monday() -> Date {
        Date::new(2016, 6, 6)
    }

    #[test]
    fn rebase_sets_origin_to_base() {
        let s = WeeklySeries::from_values(monday(), vec![50.0, 60.0, 75.0, 100.0]);
        let r = rebase(&s, monday(), 100.0, 1).unwrap();
        assert_eq!(r.get(0), 100.0);
        assert_eq!(r.get(3), 200.0); // doubling maps to 200
    }

    #[test]
    fn rebase_with_smoothing_uses_mean_level() {
        let s = WeeklySeries::from_values(monday(), vec![40.0, 60.0, 50.0, 100.0]);
        let r = rebase(&s, monday(), 100.0, 2).unwrap(); // mean(40,60) = 50
        assert_eq!(r.get(0), 80.0);
        assert_eq!(r.get(3), 200.0);
    }

    #[test]
    fn rebase_zero_level_fails() {
        let s = WeeklySeries::from_values(monday(), vec![0.0, 1.0]);
        assert!(rebase(&s, monday(), 100.0, 1).is_none());
    }

    #[test]
    fn rebase_origin_outside_fails() {
        let s = WeeklySeries::from_values(monday(), vec![1.0, 2.0]);
        assert!(rebase(&s, Date::new(2020, 1, 1), 100.0, 1).is_none());
    }

    #[test]
    fn linear_slope_exact_line() {
        let vals: Vec<f64> = (0..20).map(|i| 10.0 + 3.2 * i as f64).collect();
        let s = WeeklySeries::from_values(monday(), vals);
        let slope = linear_slope(&s, monday(), monday().add_days(7 * 20)).unwrap();
        assert!((slope - 3.2).abs() < 1e-12);
    }

    #[test]
    fn linear_slope_flat_series_is_zero() {
        let s = WeeklySeries::from_values(monday(), vec![7.0; 10]);
        let slope = linear_slope(&s, monday(), monday().add_days(70)).unwrap();
        assert!(slope.abs() < 1e-12);
    }

    #[test]
    fn linear_slope_subwindow() {
        // Flat then rising: slope over the rising window only.
        let mut vals = vec![5.0; 10];
        vals.extend((0..10).map(|i| 5.0 + 2.0 * i as f64));
        let s = WeeklySeries::from_values(monday(), vals);
        let from = monday().add_days(70);
        let to = monday().add_days(140);
        let slope = linear_slope(&s, from, to).unwrap();
        assert!((slope - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_slope_too_short_is_none() {
        let s = WeeklySeries::from_values(monday(), vec![1.0, 2.0]);
        assert!(linear_slope(&s, monday(), monday().add_days(14)).is_none());
    }
}
