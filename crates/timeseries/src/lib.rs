#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]
//! Calendar and time-series substrate for the booters analysis.
//!
//! The paper aggregates five years of attack events into weekly counts and
//! fits an interrupted time series with monthly seasonal dummies, an Easter
//! dummy (school holidays move with Easter) and step-function intervention
//! windows. This crate supplies:
//!
//! * [`date`] — proleptic Gregorian civil dates built from scratch
//!   (days-from-epoch arithmetic, weekdays, month lengths) — no external
//!   time crates.
//! * [`easter`] — the Meeus/Jones/Butcher Gregorian Easter computus.
//! * [`series`] — [`series::WeeklySeries`], a contiguous week-indexed series
//!   with resampling from event timestamps and windowed slicing.
//! * [`seasonal`] — month-of-year dummy encoding and the Easter indicator.
//! * [`intervention`] — intervention window definitions and dummy encoding.
//! * [`design`] — assembly of the paper's full design matrix
//!   (interventions | Easter | seasonal 2..12 | time | const).
//! * [`correlate`] — cross-country correlation matrices (Figure 4).
//! * [`index`] — rebase series to 100 at a common origin (Figure 5).

pub mod correlate;
pub mod date;
pub mod design;
pub mod easter;
pub mod index;
pub mod intervention;
pub mod seasonal;
pub mod series;
pub mod smooth;

pub use date::{Date, Weekday};
pub use intervention::InterventionWindow;
pub use series::WeeklySeries;
