//! Intervention (step-function) windows for interrupted time series.
//!
//! The paper models each intervention as a dummy variable equal to 1 during
//! a window of weeks after the intervention date and 0 elsewhere — a pulse
//! of suppressed (or, for the NL reprisals, elevated) attack intensity.

use crate::date::Date;
use crate::series::WeeklySeries;

/// One intervention window: a name, an onset date, an optional delay (the
/// Webstresser takedown "\[took\] effect after a fortnight") and a duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterventionWindow {
    /// Human-readable label (e.g. "Xmas2018").
    pub name: String,
    /// The announced date of the intervention.
    pub date: Date,
    /// Weeks between the intervention date and the start of the effect.
    pub delay_weeks: usize,
    /// Number of weeks the effect lasts.
    pub duration_weeks: usize,
}

impl InterventionWindow {
    /// Construct a window with no onset delay.
    pub fn immediate(name: &str, date: Date, duration_weeks: usize) -> Self {
        InterventionWindow {
            name: name.to_string(),
            date,
            delay_weeks: 0,
            duration_weeks,
        }
    }

    /// Construct a window with an onset delay.
    pub fn delayed(name: &str, date: Date, delay_weeks: usize, duration_weeks: usize) -> Self {
        InterventionWindow {
            name: name.to_string(),
            date,
            delay_weeks,
            duration_weeks,
        }
    }

    /// Monday of the first affected week.
    pub fn effect_start(&self) -> Date {
        self.date.week_start().add_days(7 * self.delay_weeks as i64)
    }

    /// Monday of the first week after the effect ends.
    pub fn effect_end(&self) -> Date {
        self.effect_start().add_days(7 * self.duration_weeks as i64)
    }

    /// True when the week starting at `monday` is inside the effect window.
    pub fn active_in_week(&self, monday: Date) -> bool {
        let m = monday.week_start();
        m >= self.effect_start() && m < self.effect_end()
    }

    /// Dummy column (0/1) aligned to `series`.
    pub fn dummy_column(&self, series: &WeeklySeries) -> Vec<f64> {
        (0..series.len())
            .map(|i| {
                if self.active_in_week(series.week_date(i)) {
                    1.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// A copy of this window with a different duration — used by the
    /// duration-scan that picks the best-fitting window length.
    pub fn with_duration(&self, duration_weeks: usize) -> Self {
        InterventionWindow {
            duration_weeks,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_window_starts_its_own_week() {
        // Xmas2018 announced Wednesday 2018-12-19; its week starts Mon 17th.
        let w = InterventionWindow::immediate("Xmas2018", Date::new(2018, 12, 19), 10);
        assert_eq!(w.effect_start(), Date::new(2018, 12, 17));
        assert_eq!(w.effect_end(), Date::new(2019, 2, 25));
        assert!(w.active_in_week(Date::new(2018, 12, 17)));
        assert!(w.active_in_week(Date::new(2019, 2, 18)));
        assert!(!w.active_in_week(Date::new(2019, 2, 25)));
        assert!(!w.active_in_week(Date::new(2018, 12, 10)));
    }

    #[test]
    fn delayed_window_shifts_effect() {
        // Webstresser: takedown 2018-04-24, effect after a fortnight, 3 weeks.
        let w = InterventionWindow::delayed("Webstresser", Date::new(2018, 4, 24), 2, 3);
        assert_eq!(w.effect_start(), Date::new(2018, 5, 7));
        assert!(!w.active_in_week(Date::new(2018, 4, 23)));
        assert!(!w.active_in_week(Date::new(2018, 4, 30)));
        assert!(w.active_in_week(Date::new(2018, 5, 7)));
        assert!(w.active_in_week(Date::new(2018, 5, 21)));
        assert!(!w.active_in_week(Date::new(2018, 5, 28)));
    }

    #[test]
    fn dummy_column_counts_duration_weeks() {
        let s = WeeklySeries::zeros(Date::new(2018, 1, 1), 20);
        let w = InterventionWindow::immediate("test", Date::new(2018, 2, 7), 4);
        let col = w.dummy_column(&s);
        assert_eq!(col.iter().sum::<f64>(), 4.0);
        // First affected week: Feb 5 is week index 5.
        assert_eq!(col[5], 1.0);
        assert_eq!(col[4], 0.0);
        assert_eq!(col[9], 0.0);
    }

    #[test]
    fn dummy_column_truncated_by_series_end() {
        let s = WeeklySeries::zeros(Date::new(2018, 1, 1), 6);
        let w = InterventionWindow::immediate("test", Date::new(2018, 2, 5), 10);
        let col = w.dummy_column(&s);
        assert_eq!(col.iter().sum::<f64>(), 1.0); // only 1 of 10 weeks visible
    }

    #[test]
    fn with_duration_clones_other_fields() {
        let w = InterventionWindow::delayed("x", Date::new(2018, 4, 24), 2, 3);
        let w2 = w.with_duration(7);
        assert_eq!(w2.duration_weeks, 7);
        assert_eq!(w2.delay_weeks, 2);
        assert_eq!(w2.name, "x");
    }
}
