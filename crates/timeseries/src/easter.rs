//! Gregorian Easter computus.
//!
//! The paper includes an Easter dummy in the seasonal model because booting
//! is strongly linked to school holidays and "the date of Easter is not
//! fixed". We implement the Meeus/Jones/Butcher algorithm, which is exact
//! for all Gregorian years.

use crate::date::Date;

/// Date of (Western) Easter Sunday for the given Gregorian year.
pub fn easter_sunday(year: i32) -> Date {
    let a = year % 19;
    let b = year / 100;
    let c = year % 100;
    let d = b / 4;
    let e = b % 4;
    let f = (b + 8) / 25;
    let g = (b - f + 1) / 3;
    let h = (19 * a + b - d - g + 15) % 30;
    let i = c / 4;
    let k = c % 4;
    let l = (32 + 2 * e + 2 * i - h - k) % 7;
    let m = (a + 11 * h + 22 * l) / 451;
    let month = (h + l - 7 * m + 114) / 31;
    let day = ((h + l - 7 * m + 114) % 31) + 1;
    Date::new(year, month as u8, day as u8)
}

/// True when `date` falls within the Easter school-holiday window:
/// the `days_before`..`days_after` span around Easter Sunday.
///
/// UK school Easter holidays typically cover about two weeks around the
/// Easter weekend; the model's default window is 7 days before to 7 days
/// after.
pub fn in_easter_window(date: Date, days_before: i64, days_after: i64) -> bool {
    let easter = easter_sunday(date.year());
    let delta = date.days_since(easter);
    delta >= -days_before && delta <= days_after
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Weekday;

    #[test]
    fn known_easter_dates() {
        // Reference dates from the standard computus tables.
        assert_eq!(easter_sunday(2014), Date::new(2014, 4, 20));
        assert_eq!(easter_sunday(2015), Date::new(2015, 4, 5));
        assert_eq!(easter_sunday(2016), Date::new(2016, 3, 27));
        assert_eq!(easter_sunday(2017), Date::new(2017, 4, 16));
        assert_eq!(easter_sunday(2018), Date::new(2018, 4, 1));
        assert_eq!(easter_sunday(2019), Date::new(2019, 4, 21));
        assert_eq!(easter_sunday(2000), Date::new(2000, 4, 23));
        assert_eq!(easter_sunday(1900), Date::new(1900, 4, 15));
        assert_eq!(easter_sunday(2038), Date::new(2038, 4, 25)); // latest possible
        assert_eq!(easter_sunday(2285), Date::new(2285, 3, 22)); // earliest possible
    }

    #[test]
    fn easter_is_always_sunday() {
        for year in 1900..2100 {
            assert_eq!(
                easter_sunday(year).weekday(),
                Weekday::Sunday,
                "easter {year} not a Sunday"
            );
        }
    }

    #[test]
    fn easter_is_always_in_march_or_april() {
        for year in 1900..2100 {
            let e = easter_sunday(year);
            assert!(e.month() == 3 || e.month() == 4, "easter {year} in month {}", e.month());
            if e.month() == 3 {
                assert!(e.day() >= 22);
            } else {
                assert!(e.day() <= 25);
            }
        }
    }

    #[test]
    fn window_contains_easter_weekend() {
        let e = easter_sunday(2018); // 2018-04-01
        assert!(in_easter_window(e, 7, 7));
        assert!(in_easter_window(e.add_days(-7), 7, 7));
        assert!(in_easter_window(e.add_days(7), 7, 7));
        assert!(!in_easter_window(e.add_days(-8), 7, 7));
        assert!(!in_easter_window(e.add_days(8), 7, 7));
    }

    #[test]
    fn window_moves_with_easter() {
        // 2016 Easter was in March; a mid-April date is outside its window
        // but inside the 2017 window (Easter 2017-04-16).
        assert!(!in_easter_window(Date::new(2016, 4, 16), 7, 7));
        assert!(in_easter_window(Date::new(2017, 4, 16), 7, 7));
    }
}
