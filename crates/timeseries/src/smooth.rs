//! Smoothing utilities for noisy weekly series.
//!
//! The paper works with weekly totals precisely because daily counts
//! "showed a high degree of volatility"; these helpers smooth further for
//! presentation (figure overlays) and for robust level comparisons.

use crate::series::WeeklySeries;

/// Centred moving average with window `2k+1`; edges use the available
/// partial window. `k = 0` returns the series unchanged.
pub fn moving_average(series: &WeeklySeries, k: usize) -> WeeklySeries {
    let n = series.len();
    let mut out = series.clone();
    if k == 0 || n == 0 {
        return out;
    }
    for i in 0..n {
        let lo = i.saturating_sub(k);
        let hi = (i + k).min(n - 1);
        let sum: f64 = (lo..=hi).map(|j| series.get(j)).sum();
        out.set(i, sum / (hi - lo + 1) as f64);
    }
    out
}

/// Simple exponential smoothing with factor `alpha` in (0, 1]:
/// sₜ = α·xₜ + (1−α)·sₜ₋₁, s₀ = x₀.
pub fn exponential_smoothing(series: &WeeklySeries, alpha: f64) -> WeeklySeries {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha={alpha} outside (0,1]");
    let mut out = series.clone();
    if series.is_empty() {
        return out;
    }
    let mut s = series.get(0);
    for i in 0..series.len() {
        s = alpha * series.get(i) + (1.0 - alpha) * s;
        out.set(i, s);
    }
    out
}

/// Rolling mean level over trailing `window` weeks (for robust level
/// comparisons like the Figure 5 ratio baselines).
pub fn trailing_mean(series: &WeeklySeries, window: usize) -> WeeklySeries {
    let n = series.len();
    let mut out = series.clone();
    let w = window.max(1);
    for i in 0..n {
        let lo = (i + 1).saturating_sub(w);
        let sum: f64 = (lo..=i).map(|j| series.get(j)).sum();
        out.set(i, sum / (i - lo + 1) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;

    fn series(vals: Vec<f64>) -> WeeklySeries {
        WeeklySeries::from_values(Date::new(2018, 1, 1), vals)
    }

    #[test]
    fn moving_average_flattens_spikes() {
        let s = series(vec![1.0, 1.0, 10.0, 1.0, 1.0]);
        let m = moving_average(&s, 1);
        assert_eq!(m.get(2), 4.0); // (1+10+1)/3
        assert_eq!(m.get(0), 1.0); // edge: (1+1)/2 = 1
        assert_eq!(m.len(), s.len());
    }

    #[test]
    fn moving_average_k0_is_identity() {
        let s = series(vec![3.0, 1.0, 4.0]);
        assert_eq!(moving_average(&s, 0).values(), s.values());
    }

    #[test]
    fn moving_average_preserves_constant_series() {
        let s = series(vec![7.0; 10]);
        let m = moving_average(&s, 3);
        assert!(m.values().iter().all(|&v| (v - 7.0).abs() < 1e-12));
    }

    #[test]
    fn exponential_smoothing_converges_to_level() {
        let s = series(vec![10.0; 20]);
        let e = exponential_smoothing(&s, 0.3);
        assert!((e.get(19) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_smoothing_lags_steps() {
        let mut vals = vec![0.0; 10];
        vals.extend(vec![10.0; 10]);
        let s = series(vals);
        let e = exponential_smoothing(&s, 0.5);
        assert!(e.get(10) < 10.0);
        assert!(e.get(19) > 9.5);
    }

    #[test]
    fn trailing_mean_uses_only_past() {
        let s = series(vec![1.0, 2.0, 3.0, 4.0]);
        let t = trailing_mean(&s, 2);
        assert_eq!(t.get(0), 1.0);
        assert_eq!(t.get(1), 1.5);
        assert_eq!(t.get(3), 3.5);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn exponential_smoothing_rejects_bad_alpha() {
        exponential_smoothing(&series(vec![1.0]), 0.0);
    }
}
