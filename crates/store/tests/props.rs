//! Property-based tests for the store: codec round-trip identity over
//! arbitrary packet batches (including singleton and duplicate-timestamp
//! chunks), corruption detection (any byte flip → typed error, never a
//! panic or silently wrong packets), file round-trips at small chunk
//! capacities, and out-of-core grouping equivalence with the in-memory
//! flow pipeline under spill-forcing budgets.

use booters_netsim::{classify_flows, sort_flows, Flow, SensorPacket, UdpProtocol, VictimAddr};
use booters_store::{
    decode_chunk, encode_chunk, group_out_of_core, ChunkReader, ChunkWriter, SpillConfig,
    StoreError, MIN_BUDGET_BYTES,
};
use booters_testkit::strategy::prop;
use booters_testkit::{forall, prop_assert, prop_assert_eq, Strategy};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch path per call (parallel test threads never collide).
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "booters-store-props-{}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
        name
    ))
}

/// Strategy: one arbitrary packet. The tight time/victim ranges make
/// duplicate timestamps and duplicate whole packets common — the codec
/// must be exact on them, not just on well-spread data.
fn packet() -> impl Strategy<Value = SensorPacket> {
    (
        0u64..5_000,  // time: small range → frequent duplicates
        0u32..8,      // sensor
        0u32..1_000,  // victim
        0usize..UdpProtocol::ALL.len(),
        0u32..256,    // ttl
        0u32..65_536, // src_port
    )
        .prop_map(|(time, sensor, victim, p, ttl, src_port)| SensorPacket {
            time,
            sensor,
            victim: VictimAddr(victim),
            protocol: UdpProtocol::ALL[p],
            ttl: ttl as u8,
            src_port: src_port as u16,
        })
}

/// Strategy: a packet batch, possibly empty.
fn batch(max: usize) -> impl Strategy<Value = Vec<SensorPacket>> {
    prop::collection::vec(packet(), 0..max)
}

forall! {
    #![cases(96)]

    fn codec_round_trip_is_identity(packets in batch(300)) {
        if packets.is_empty() {
            return; // writers never emit empty chunks
        }
        let bytes = encode_chunk(&packets);
        prop_assert_eq!(decode_chunk(&bytes).unwrap(), packets);
    }

    fn singleton_chunks_round_trip(p in packet()) {
        let packets = vec![p];
        prop_assert_eq!(decode_chunk(&encode_chunk(&packets)).unwrap(), packets);
    }

    fn duplicate_timestamp_chunks_round_trip(p in packet(), n in 1usize..50) {
        // The degenerate chunk: one packet value repeated — every delta
        // column is all zeros.
        let packets = vec![p; n];
        prop_assert_eq!(decode_chunk(&encode_chunk(&packets)).unwrap(), packets);
    }

    fn any_byte_flip_is_a_typed_error(packets in batch(80), pos in 0usize..1_000_000, bit in 0u32..8) {
        if packets.is_empty() {
            return;
        }
        let mut bytes = encode_chunk(&packets);
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        // Never a panic, never silently wrong data — always Corrupt.
        match decode_chunk(&bytes) {
            Err(StoreError::Corrupt { .. }) => {}
            other => prop_assert!(false, "flip at byte {} bit {} gave {:?}", i, bit, other),
        }
    }

    fn truncation_is_an_error(packets in batch(60), cut in 0usize..1_000_000) {
        if packets.is_empty() {
            return;
        }
        let bytes = encode_chunk(&packets);
        let cut = cut % bytes.len(); // strictly shorter than the chunk
        prop_assert!(decode_chunk(&bytes[..cut]).is_err());
    }
}

forall! {
    #![cases(24)]

    fn file_round_trip_preserves_packets(packets in batch(400), cap in 1usize..64) {
        let path = scratch("file_rt");
        let mut w = ChunkWriter::with_capacity(&path, cap).unwrap();
        w.push_all(&packets).unwrap();
        let meta = w.finish().unwrap();
        prop_assert_eq!(meta.packets, packets.len() as u64);
        let mut r = ChunkReader::open(&path).unwrap();
        prop_assert_eq!(r.total_packets(), packets.len() as u64);
        prop_assert_eq!(r.read_all().unwrap(), packets);
        std::fs::remove_file(&path).unwrap();
    }

    fn file_byte_flip_never_yields_wrong_packets(packets in batch(120), pos in 0usize..1_000_000, bit in 0u32..8) {
        // Corrupt ANY single byte of a complete store file: opening or
        // reading must either fail with a typed error or — impossible by
        // CRC design, asserted here — never return altered packets.
        let path = scratch("file_flip");
        let mut w = ChunkWriter::with_capacity(&path, 32).unwrap();
        w.push_all(&packets).unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        std::fs::write(&path, &bytes).unwrap();
        match ChunkReader::open(&path) {
            Err(StoreError::BadMagic)
            | Err(StoreError::Corrupt { .. })
            | Err(StoreError::UnsupportedVersion(_))
            | Err(StoreError::Io(_)) => {}
            Ok(mut r) => match r.read_all() {
                Err(_) => {}
                Ok(got) => prop_assert_eq!(
                    got,
                    packets,
                    "flip at byte {} bit {} silently altered data",
                    i,
                    bit
                ),
            },
        }
        std::fs::remove_file(&path).unwrap();
    }

    fn out_of_core_grouping_equals_in_memory(packets in prop::collection::vec(packet(), 0..500)) {
        let mut sorted = packets.clone();
        sorted.sort_by_key(|p: &SensorPacket| p.time); // groupers need time order
        let mut expected: Vec<Flow> = classify_flows(&sorted)
            .into_iter()
            .map(|(f, _)| f)
            .collect();
        sort_flows(&mut expected);
        // Minimum budget: every full batch spills multiple runs.
        let cfg = SpillConfig {
            budget_bytes: MIN_BUDGET_BYTES,
            chunk_capacity: 8,
            ..SpillConfig::default()
        };
        let out = group_out_of_core(&sorted, cfg).unwrap();
        prop_assert_eq!(out.flows, expected);
        if sorted.len() * booters_store::PACKET_BYTES > 3 * MIN_BUDGET_BYTES {
            prop_assert!(out.stats.spill_runs >= 3, "runs={}", out.stats.spill_runs);
        }
    }

    fn out_of_core_grouping_is_thread_invariant(packets in prop::collection::vec(packet(), 0..300)) {
        let mut sorted = packets;
        sorted.sort_by_key(|p: &SensorPacket| p.time);
        let cfg = || SpillConfig {
            budget_bytes: MIN_BUDGET_BYTES,
            chunk_capacity: 8,
            ..SpillConfig::default()
        };
        let one = booters_par::with_threads(1, || group_out_of_core(&sorted, cfg()).unwrap().flows);
        let four = booters_par::with_threads(4, || group_out_of_core(&sorted, cfg()).unwrap().flows);
        prop_assert_eq!(one, four);
    }
}
