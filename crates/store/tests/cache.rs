//! Property suite for the decoded-chunk cache (DESIGN.md §5i).
//!
//! Three guarantees, each under adversarial key/op streams:
//!
//! 1. **Capacity is a hard bound** — the charged byte total never
//!    exceeds the budget, at any point in any publish/lookup stream.
//! 2. **Eviction is exactly per-shard LRU** — a reference model
//!    (replaying the same stream against the public cost/stripe
//!    surface) predicts residency of every key.
//! 3. **A hit is a fresh decode** — reading a real store through the
//!    cache twice returns byte-identical packets to an uncached read,
//!    and the warm pass genuinely hits.
//!
//! The budget is process-global, so every test here serialises on one
//! lock and restores the previous budget on exit (panic included).

use booters_netsim::{SensorPacket, UdpProtocol, VictimAddr};
use booters_store::cache::{self, entry_cost, shard_of, StoreId, SHARD_COUNT};
use booters_store::{ChunkColumns, ChunkReader, ChunkWriter};
use booters_testkit::strategy::{any, prop};
use booters_testkit::{forall, prop_assert, prop_assert_eq, Strategy};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Hold the budget lock and restore the previous budget on drop.
struct BudgetGuard(usize, #[allow(dead_code)] MutexGuard<'static, ()>);

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        cache::set_cache_bytes(self.0);
    }
}

fn with_cache_budget(bytes: usize) -> BudgetGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    BudgetGuard(cache::set_cache_bytes(bytes), g)
}

fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "booters-store-cache-{}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed),
        name
    ))
}

fn cols(rows: usize, tag: u8) -> Arc<ChunkColumns> {
    Arc::new(ChunkColumns {
        times: (0..rows as u64).collect(),
        victims: vec![tag as u32; rows],
        protocols: vec![tag % 10; rows],
        sensors: vec![tag as u32; rows],
        ttls: vec![tag; rows],
        ports: vec![tag as u16; rows],
    })
}

/// One cache operation against a small key domain: publish or look up
/// `(store selector, chunk)` with a row count that varies entry cost.
#[derive(Debug, Clone, Copy)]
struct Op {
    publish: bool,
    store: usize,
    chunk: usize,
    rows: usize,
}

fn op() -> impl Strategy<Value = Op> {
    (any::<bool>(), 0usize..3, 0usize..48, 1usize..64).prop_map(
        |(publish, store, chunk, rows)| Op {
            publish,
            store,
            chunk,
            rows,
        },
    )
}

/// Reference model: per-shard LRU with byte accounting, replayed over
/// the public cost/stripe surface. MRU at the back of each `order`.
#[derive(Default)]
struct Model {
    shards: Vec<ModelShard>,
    shard_cap: usize,
}

#[derive(Default)]
struct ModelShard {
    /// Resident keys, LRU first.
    order: Vec<(u64, usize)>,
    bytes: HashMap<(u64, usize), usize>,
}

impl Model {
    fn new(budget: usize) -> Model {
        Model {
            shards: (0..SHARD_COUNT).map(|_| ModelShard::default()).collect(),
            shard_cap: budget / SHARD_COUNT,
        }
    }

    fn touch(shard: &mut ModelShard, key: (u64, usize)) {
        shard.order.retain(|k| *k != key);
        shard.order.push(key);
    }

    fn publish(&mut self, store: StoreId, raw: (u64, usize), cost: usize) {
        let s = &mut self.shards[shard_of(store, raw.1)];
        if s.bytes.contains_key(&raw) {
            Self::touch(s, raw);
            return;
        }
        if cost > self.shard_cap {
            return;
        }
        while s.bytes.values().sum::<usize>() + cost > self.shard_cap {
            let victim = s.order.remove(0);
            s.bytes.remove(&victim);
        }
        s.bytes.insert(raw, cost);
        s.order.push(raw);
    }

    fn lookup(&mut self, store: StoreId, raw: (u64, usize)) -> bool {
        let s = &mut self.shards[shard_of(store, raw.1)];
        if s.bytes.contains_key(&raw) {
            Self::touch(s, raw);
            true
        } else {
            false
        }
    }

    fn total(&self) -> usize {
        self.shards.iter().map(|s| s.bytes.values().sum::<usize>()).sum()
    }
}

forall! {
    #![cases(64)]

    fn capacity_bound_and_lru_order_match_the_model(
        ops in prop::collection::vec(op(), 1..120),
        budget_entries in 2usize..12
    ) {
        // Budget sized in "typical entries" so eviction genuinely runs.
        let budget = entry_cost(&cols(32, 0)) * SHARD_COUNT * budget_entries / 4;
        let _budget = with_cache_budget(budget);
        let stores: Vec<StoreId> = (0..3).map(|_| StoreId::mint()).collect();
        let mut model = Model::new(budget);
        for o in &ops {
            let id = stores[o.store];
            // StoreId is opaque; key the model on the selector index +
            // chunk instead (ids are distinct, selectors map 1:1).
            let key = (o.store as u64, o.chunk);
            if o.publish {
                let c = cols(o.rows, o.chunk as u8);
                cache::publish(id, o.chunk, &c);
                model.publish(id, key, entry_cost(&c));
            } else {
                let hit = cache::lookup(id, o.chunk).is_some();
                let model_hit = model.lookup(id, key);
                prop_assert_eq!(hit, model_hit, "lookup divergence");
            }
            // Property 1: the budget is a hard bound at every step.
            prop_assert!(
                cache::total_cached_bytes() <= budget,
                "cached {} > budget {budget}",
                cache::total_cached_bytes()
            );
            // Property 2: charged bytes match the model exactly.
            prop_assert_eq!(cache::total_cached_bytes(), model.total());
        }
        // Final residency of every key in the domain matches the model.
        for store in 0..3usize {
            for chunk in 0..48usize {
                let want = model.shards[shard_of(stores[store], chunk)]
                    .bytes
                    .contains_key(&(store as u64, chunk));
                prop_assert_eq!(
                    cache::contains(stores[store], chunk),
                    want,
                    "residency divergence at store {store} chunk {chunk}"
                );
            }
        }
    }
}

fn packet() -> impl Strategy<Value = SensorPacket> {
    (
        0u64..5_000,
        0u32..8,
        0u32..1_000,
        0usize..UdpProtocol::ALL.len(),
    )
        .prop_map(|(time, sensor, victim, p)| SensorPacket {
            time,
            sensor,
            victim: VictimAddr(victim),
            protocol: UdpProtocol::ALL[p],
            ttl: 64,
            src_port: 123,
        })
}

forall! {
    #![cases(32)]

    fn hits_are_byte_identical_to_fresh_decodes(
        packets in prop::collection::vec(packet(), 1..200),
        cap in 1usize..32
    ) {
        // Uncached oracle first (budget 0 is bit-for-bit off).
        let path = scratch("hit_eq");
        {
            let mut w = ChunkWriter::with_capacity(&path, cap).unwrap();
            w.push_all(&packets).unwrap();
            w.finish().unwrap();
        }
        let oracle = {
            let _budget = with_cache_budget(0);
            ChunkReader::open(&path).unwrap().read_all().unwrap()
        };

        let _budget = with_cache_budget(8 << 20);
        let mut r = ChunkReader::open(&path).unwrap();
        let cold = r.read_all().unwrap();
        // Every chunk is now resident (the budget dwarfs the store)...
        for i in 0..r.chunk_count() {
            prop_assert!(cache::contains(r.store_id(), i), "chunk {i} not resident");
        }
        // ...so the warm pass is served from the cache — and must be
        // byte-identical to both the cold pass and the uncached oracle.
        let warm = r.read_all().unwrap();
        prop_assert_eq!(&cold, &oracle);
        prop_assert_eq!(&warm, &oracle);
        prop_assert_eq!(warm, packets);
        r.evict_cached();
        prop_assert_eq!(cache::total_cached_bytes(), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
