//! Differential tests proving every byte-level fast kernel bit-identical
//! to its scalar oracle (DESIGN.md §5f).
//!
//! Four kernels, one contract: the SWAR varint decoder, the batched
//! column encoder, the slice-by-8 CRC-32, and the radix run sort each
//! have a retained scalar reference implementation, and for *every*
//! input — well-formed or adversarial — fast and scalar must agree on
//! bytes, values, positions, and typed errors.
//! `StoreError` deliberately has no `PartialEq`, so error equivalence is
//! variant match + rendered-message equality, which also pins the
//! diagnostic text users see.

use booters_par::with_scalar_kernels;
use booters_store::varint::{
    decode_deltas_fast, decode_deltas_scalar, decode_u64, decode_u64_fast, encode_u64, zigzag,
};
use booters_store::{crc32, crc32_bytewise, decode_chunk, encode_chunk, StoreError};
use booters_netsim::{SensorPacket, UdpProtocol, VictimAddr};
use booters_testkit::strategy::prop;
use booters_testkit::{forall, prop_assert, prop_assert_eq};

/// Assert two decoder results identical: same value and end position on
/// success, same corruption message on failure.
fn assert_same_decode(
    scalar: (Result<u64, StoreError>, usize),
    fast: (Result<u64, StoreError>, usize),
    input: &[u8],
) {
    match (scalar, fast) {
        ((Ok(sv), sp), (Ok(fv), fp)) => {
            assert_eq!(sv, fv, "values diverge on {input:?}");
            assert_eq!(sp, fp, "positions diverge on {input:?}");
        }
        ((Err(se), _), (Err(fe), _)) => {
            assert!(matches!(se, StoreError::Corrupt { .. }), "oracle: {se}");
            assert!(matches!(fe, StoreError::Corrupt { .. }), "fast: {fe}");
            assert_eq!(se.to_string(), fe.to_string(), "errors diverge on {input:?}");
        }
        ((s, _), (f, _)) => panic!("Ok/Err disagreement on {input:?}: oracle {s:?}, fast {f:?}"),
    }
}

fn both_decodes(buf: &[u8], start: usize) -> ((Result<u64, StoreError>, usize), (Result<u64, StoreError>, usize)) {
    let mut sp = start;
    let scalar = decode_u64(buf, &mut sp);
    let mut fp = start;
    let fast = decode_u64_fast(buf, &mut fp);
    ((scalar, sp), (fast, fp))
}

#[test]
fn varint_boundary_values_decode_identically() {
    // Every value class a LEB128 u64 can take: group boundaries, the
    // 8-byte/9-byte SWAR handoff, and the extremes.
    let mut boundaries: Vec<u64> = vec![0, 1, u64::MAX];
    for bytes in 1u32..=9 {
        let bits = 7 * bytes;
        boundaries.push((1u64 << bits) - 1); // largest `bytes`-byte varint
        if bits < 64 {
            boundaries.push(1u64 << bits); // smallest (`bytes`+1)-byte one
        }
    }
    let mut buf = Vec::new();
    for &v in &boundaries {
        buf.clear();
        encode_u64(v, &mut buf);
        let (scalar, fast) = both_decodes(&buf, 0);
        assert_same_decode(scalar, fast, &buf);
        // And mid-buffer, with live bytes on both sides.
        let mut padded = vec![0x81u8, 0x7f];
        padded.extend_from_slice(&buf);
        padded.extend_from_slice(&[0xff, 0xff, 0x01]);
        let (scalar, fast) = both_decodes(&padded, 2);
        assert_same_decode(scalar, fast, &padded);
    }
}

#[test]
fn varint_truncations_yield_the_same_typed_error_at_every_cut() {
    for v in [127u64, 128, 16_384, 1 << 35, (1 << 56) - 1, 1 << 56, u64::MAX] {
        let mut buf = Vec::new();
        encode_u64(v, &mut buf);
        for cut in 0..buf.len() {
            let (scalar, fast) = both_decodes(&buf[..cut], 0);
            assert_same_decode(scalar, fast, &buf[..cut]);
        }
    }
}

forall! {
    #![cases(192)]

    fn varint_decoders_agree_on_arbitrary_bytes(bytes in prop::collection::vec(0u32..256, 0..24), start in 0usize..4) {
        // Raw adversarial streams: most are corrupt (truncated,
        // over-long, overflowing) — exactly where the paths must agree.
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let start = start.min(bytes.len());
        let (scalar, fast) = both_decodes(&bytes, start);
        let ((s, sp), (f, fp)) = (scalar, fast);
        match (s, f) {
            (Ok(sv), Ok(fv)) => {
                prop_assert_eq!(sv, fv);
                prop_assert_eq!(sp, fp);
            }
            (Err(se), Err(fe)) => prop_assert_eq!(se.to_string(), fe.to_string()),
            (s, f) => prop_assert!(false, "Ok/Err disagreement: oracle {:?}, fast {:?}", s, f),
        }
    }

    fn varint_round_trip_is_identical_for_both_decoders(values in prop::collection::vec(0u64..u64::MAX, 1..64)) {
        // Concatenated stream of varints: both decoders must walk it in
        // lockstep and recover every value.
        let mut buf = Vec::new();
        for &v in &values {
            encode_u64(v, &mut buf);
        }
        let (mut sp, mut fp) = (0usize, 0usize);
        for &v in &values {
            let sv = decode_u64(&buf, &mut sp).unwrap();
            let fv = decode_u64_fast(&buf, &mut fp).unwrap();
            prop_assert_eq!(sv, v);
            prop_assert_eq!(fv, v);
            prop_assert_eq!(sp, fp);
        }
        prop_assert_eq!(sp, buf.len());
    }

    fn delta_decoders_round_trip_random_delta_sequences(deltas in prop::collection::vec(-5_000i64..5_000, 1..200), spikes in prop::collection::vec(0u64..u64::MAX, 0..4)) {
        // Mostly-small deltas (the 8×1-byte batch shape) with a few huge
        // jumps spliced in (multi-byte varints breaking the batches).
        let mut values: Vec<u64> = Vec::new();
        let mut acc = 0i64;
        for (i, &d) in deltas.iter().enumerate() {
            acc = acc.wrapping_add(d);
            values.push(acc as u64);
            if let Some(&s) = spikes.get(i % 7) {
                if i % 7 == 3 {
                    values.push(s);
                    acc = s as i64;
                }
            }
        }
        let mut col = Vec::new();
        let mut prev = 0i64;
        for &v in &values {
            encode_u64(zigzag((v as i64).wrapping_sub(prev)), &mut col);
            prev = v as i64;
        }
        let scalar = decode_deltas_scalar(&col, values.len(), u64::MAX, "time").unwrap();
        let fast = decode_deltas_fast(&col, values.len(), u64::MAX, "time").unwrap();
        prop_assert_eq!(&scalar, &values);
        prop_assert_eq!(&fast, &values);
    }

    fn delta_decoders_agree_on_adversarial_columns(bytes in prop::collection::vec(0u32..256, 0..96), n in 0usize..64, max_bits in 0u32..65) {
        // Arbitrary column bytes against an arbitrary row count and
        // domain: truncations, trailing garbage, and range violations
        // must all produce byte-identical typed errors.
        let col: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let max = if max_bits >= 64 { u64::MAX } else { (1u64 << max_bits) - 1 };
        let scalar = decode_deltas_scalar(&col, n, max, "victim");
        let fast = decode_deltas_fast(&col, n, max, "victim");
        match (scalar, fast) {
            (Ok(s), Ok(f)) => prop_assert_eq!(s, f),
            (Err(se), Err(fe)) => prop_assert_eq!(se.to_string(), fe.to_string()),
            (s, f) => prop_assert!(false, "Ok/Err disagreement: oracle {:?}, fast {:?}", s, f),
        }
    }

    fn crc_fast_equals_bytewise_on_arbitrary_buffers(bytes in prop::collection::vec(0u32..256, 0..300)) {
        let data: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let fast = with_scalar_kernels(false, || crc32(&data));
        let scalar = with_scalar_kernels(true, || crc32(&data));
        prop_assert_eq!(fast, crc32_bytewise(&data));
        prop_assert_eq!(scalar, crc32_bytewise(&data));
    }
}

#[test]
fn crc_known_answers_hold_for_both_kernels() {
    // The universal CRC-32 check value plus supporting vectors.
    let known: &[(&[u8], u32)] = &[
        (b"123456789", 0xCBF4_3926),
        (b"", 0),
        (b"a", 0xE8B7_BE43),
        (b"abc", 0x3524_41C2),
    ];
    for &(input, expected) in known {
        assert_eq!(with_scalar_kernels(false, || crc32(input)), expected);
        assert_eq!(with_scalar_kernels(true, || crc32(input)), expected);
        assert_eq!(crc32_bytewise(input), expected);
    }
}

#[test]
fn crc_kernels_agree_at_every_length_mod_8() {
    // Word-loop iteration counts 0..16 with every tail residue.
    let data: Vec<u8> = (0..128u32).map(|i| (i.wrapping_mul(0xA5) ^ (i >> 3)) as u8).collect();
    for len in 0..=data.len() {
        let fast = with_scalar_kernels(false, || crc32(&data[..len]));
        assert_eq!(fast, crc32_bytewise(&data[..len]), "len={len}");
    }
}

#[test]
fn batched_encoder_emits_the_oracle_bytes_on_every_branch_shape() {
    // Three deliberate shapes: a long all-small run (the packed 8-byte
    // lane), alternating huge jumps (the mixed-batch fallback), and a
    // sub-8 tail — plus type-extreme values in every column.
    let small_run: Vec<SensorPacket> = (0..33).map(|i| pkt(1000 + i, 3, 40, 2)).collect();
    let jumps: Vec<SensorPacket> = (0..17)
        .map(|i| {
            if i % 2 == 0 {
                pkt(u64::MAX - i, u32::MAX, u32::MAX - i as u32, 9)
            } else {
                pkt(i, 0, 0, 0)
            }
        })
        .collect();
    let tail: Vec<SensorPacket> = (0..5).map(|i| pkt(i * 7, i as u32, 1, 1)).collect();
    for packets in [small_run, jumps, tail] {
        let fast = booters_par::with_scalar_kernels(false, || encode_chunk(&packets));
        let scalar = booters_par::with_scalar_kernels(true, || encode_chunk(&packets));
        assert_eq!(fast, scalar, "encoded bytes diverge for {} packets", packets.len());
        assert_eq!(decode_chunk(&fast).unwrap(), packets);
    }
}

#[test]
fn encode_lane_tails_are_kernel_invariant_at_every_length() {
    // The batched encoder packs 8 all-small zig-zags per lane and falls
    // back to a scalar tail for the last `n % 8` items. Sweep every
    // length through several full lanes so the 7-item and 8-item tail
    // boundaries (and everything between) are each hit explicitly.
    for len in 1usize..=40 {
        let packets: Vec<SensorPacket> = (0..len as u64)
            .map(|i| pkt(1_000 + i * 3, (i % 4) as u32, 60 + (i % 5) as u32, 2))
            .collect();
        let fast = with_scalar_kernels(false, || encode_chunk(&packets));
        let scalar = with_scalar_kernels(true, || encode_chunk(&packets));
        assert_eq!(fast, scalar, "encoded bytes diverge at len={len}");
        assert_eq!(decode_chunk(&fast).unwrap(), packets, "round trip at len={len}");
    }
}

#[test]
fn a_large_value_at_each_final_batch_position_breaks_the_lane_identically() {
    // One huge jump placed at every position of the *final* (possibly
    // partial) batch: whichever lane the fast path was packing must
    // bail to the mixed-batch fallback at exactly the same byte the
    // oracle emits. Lengths 17 and 24 give a 1-item and an 8-item final
    // batch after two full lanes.
    for len in [17usize, 20, 23, 24] {
        for big_at in (len - (len % 8).max(1))..len {
            let packets: Vec<SensorPacket> = (0..len)
                .map(|i| {
                    if i == big_at {
                        pkt(u64::MAX - 7, u32::MAX, u32::MAX - 3, 9)
                    } else {
                        pkt(2_000 + i as u64, 1, 80, 4)
                    }
                })
                .collect();
            let fast = with_scalar_kernels(false, || encode_chunk(&packets));
            let scalar = with_scalar_kernels(true, || encode_chunk(&packets));
            assert_eq!(fast, scalar, "len={len} big_at={big_at}: bytes diverge");
            assert_eq!(decode_chunk(&fast).unwrap(), packets, "len={len} big_at={big_at}");
        }
    }
}

forall! {
    #![cases(96)]

    fn encode_lanes_agree_on_arbitrary_tail_shapes(
        full_batches in 0usize..3,
        tail in 1usize..=8,
        bigs in prop::collection::vec(0u32..2, 32),
    ) {
        // Arbitrary batch counts with every tail length 1..=8 and an
        // arbitrary big/small pattern: the packed lane must survive any
        // interruption point and agree with the oracle byte-for-byte.
        let n = full_batches * 8 + tail;
        let packets: Vec<SensorPacket> = (0..n)
            .map(|i| {
                if bigs[i] == 1 {
                    pkt(u64::MAX - (i as u64) * 1_000, u32::MAX - i as u32, u32::MAX, 7)
                } else {
                    pkt(500 + i as u64 * 2, 2, 30, 1)
                }
            })
            .collect();
        let fast = with_scalar_kernels(false, || encode_chunk(&packets));
        let scalar = with_scalar_kernels(true, || encode_chunk(&packets));
        prop_assert_eq!(&fast, &scalar, "encoded bytes diverge (n={})", n);
        prop_assert_eq!(decode_chunk(&fast).unwrap(), packets);
    }
}

fn pkt(time: u64, sensor: u32, victim: u32, proto: usize) -> SensorPacket {
    SensorPacket {
        time,
        sensor,
        victim: VictimAddr(victim),
        protocol: UdpProtocol::ALL[proto],
        ttl: (time % 251) as u8,
        src_port: (victim % 60_000) as u16,
    }
}

forall! {
    #![cases(48)]

    fn chunk_codec_is_kernel_invariant(seed in prop::collection::vec((0u64..100_000, 0u32..16, 0u32..5_000, 0usize..10), 1..200)) {
        // Full-codec differential: the encoded bytes and the decoded
        // packets must be identical with fast kernels and with every
        // kernel forced scalar.
        let packets: Vec<SensorPacket> = seed
            .into_iter()
            .map(|(t, s, v, p)| pkt(t, s, v, p))
            .collect();
        let fast_bytes = with_scalar_kernels(false, || encode_chunk(&packets));
        let scalar_bytes = with_scalar_kernels(true, || encode_chunk(&packets));
        prop_assert_eq!(&fast_bytes, &scalar_bytes, "encoded bytes diverge");
        let fast_packets = with_scalar_kernels(false, || decode_chunk(&fast_bytes).unwrap());
        let scalar_packets = with_scalar_kernels(true, || decode_chunk(&fast_bytes).unwrap());
        prop_assert_eq!(&fast_packets, &packets);
        prop_assert_eq!(&scalar_packets, &packets);
    }

    fn chunk_corruption_errors_are_kernel_invariant(seed in prop::collection::vec((0u64..10_000, 0u32..8, 0u32..500, 0usize..10), 1..60), pos in 0usize..1_000_000, bit in 0u32..8) {
        // Flip any byte: both kernel selections must reject with the
        // same rendered error (CRC mismatch or the same column error).
        let packets: Vec<SensorPacket> = seed
            .into_iter()
            .map(|(t, s, v, p)| pkt(t, s, v, p))
            .collect();
        let mut bytes = encode_chunk(&packets);
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        let fast = with_scalar_kernels(false, || decode_chunk(&bytes));
        let scalar = with_scalar_kernels(true, || decode_chunk(&bytes));
        match (fast, scalar) {
            (Err(fe), Err(se)) => prop_assert_eq!(fe.to_string(), se.to_string()),
            (f, s) => prop_assert!(false, "flip at {} bit {}: fast {:?}, scalar {:?}", i, bit, f, s),
        }
    }
}
