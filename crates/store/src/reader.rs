//! Store reader: footer-driven random access to chunks, zone-map
//! pruning, and a parallel bulk decode.
//!
//! On-disk file layout:
//!
//! ```text
//! +------------+--------- ... ---------+----------------+-----+------------+------------+
//! | "BSTORE01" | chunk 0 .. chunk k-1  | footer index F | crc | footer_len | "BSEND001" |
//! |  8 bytes   |  (see chunk.rs)       | (varints)      | 4 B | u64 LE 8 B |  8 bytes   |
//! +------------+--------- ... ---------+----------------+-----+------------+------------+
//! ```
//!
//! The footer holds `version, chunk_count, (offset, n, zone map) per
//! chunk, total_packets, raw_bytes`. Every region is validated before
//! use: magic markers, the footer CRC, offset monotonicity, and each
//! chunk's own CRC — corrupt input yields a typed [`StoreError`].

use crate::cache::{self, StoreId};
use crate::chunk::{decode_chunk, decode_chunk_columns, ChunkColumns, ZoneMap};
use crate::crc32::crc32;
use crate::error::StoreError;
use crate::varint::decode_u64;
use crate::writer::ChunkInfo;
use booters_netsim::{SensorPacket, VictimAddr};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;

/// Leading file magic.
pub const HEAD_MAGIC: &[u8; 8] = b"BSTORE01";
/// Trailing file magic.
pub const TAIL_MAGIC: &[u8; 8] = b"BSEND001";
/// Footer format version this build writes and reads.
pub const FOOTER_VERSION: u64 = 1;

/// A validated, open store file.
#[derive(Debug)]
pub struct ChunkReader {
    file: File,
    index: Vec<ChunkInfo>,
    chunks_end: u64,
    total_packets: u64,
    raw_bytes: u64,
    /// Decoded-chunk cache identity, minted at open (see
    /// [`cache::StoreId`]) — fresh per validated open, so cache entries
    /// can never alias across files or re-opens.
    store_id: StoreId,
}

impl ChunkReader {
    /// Open and validate a store file (magics, footer CRC, offsets).
    pub fn open(path: impl AsRef<Path>) -> Result<ChunkReader, StoreError> {
        let mut file = File::open(path.as_ref())?;
        let file_len = file.metadata()?.len();
        let min_len = (HEAD_MAGIC.len() + 4 + 8 + TAIL_MAGIC.len()) as u64;
        if file_len < min_len {
            return Err(StoreError::corrupt("file shorter than the fixed framing"));
        }
        let mut head = [0u8; 8];
        file.read_exact(&mut head)?;
        if &head != HEAD_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let mut tail = [0u8; 16];
        file.seek(SeekFrom::End(-16))?;
        file.read_exact(&mut tail)?;
        if &tail[8..] != TAIL_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let footer_len = u64::from_le_bytes(tail[..8].try_into().expect("8 bytes"));
        let footer_start = file_len
            .checked_sub(16 + 4)
            .and_then(|v| v.checked_sub(footer_len))
            .filter(|&s| s >= HEAD_MAGIC.len() as u64)
            .ok_or_else(|| StoreError::corrupt("footer length exceeds file"))?;
        let mut footer = vec![0u8; footer_len as usize + 4];
        file.seek(SeekFrom::Start(footer_start))?;
        file.read_exact(&mut footer)?;
        let crc_bytes: [u8; 4] = footer[footer_len as usize..].try_into().expect("4 bytes");
        let footer = &footer[..footer_len as usize];
        if u32::from_le_bytes(crc_bytes) != crc32(footer) {
            return Err(StoreError::corrupt("footer crc mismatch"));
        }

        let mut pos = 0usize;
        let version = decode_u64(footer, &mut pos)?;
        if version != FOOTER_VERSION {
            return Err(StoreError::UnsupportedVersion(version));
        }
        let chunk_count = decode_u64(footer, &mut pos)? as usize;
        // Each index entry takes at least 6 varint bytes; reject counts
        // the footer cannot possibly hold before allocating.
        if chunk_count > footer.len() {
            return Err(StoreError::corrupt("chunk count exceeds footer size"));
        }
        let mut index = Vec::with_capacity(chunk_count);
        let mut prev_offset = 0u64;
        for i in 0..chunk_count {
            let offset = decode_u64(footer, &mut pos)?;
            let packets = decode_u64(footer, &mut pos)?;
            let zone = ZoneMap {
                min_time: decode_u64(footer, &mut pos)?,
                max_time: decode_u64(footer, &mut pos)?,
                min_victim: decode_u64(footer, &mut pos)? as u32,
                max_victim: decode_u64(footer, &mut pos)? as u32,
            };
            let lower = if i == 0 { HEAD_MAGIC.len() as u64 } else { prev_offset + 1 };
            if offset < lower || offset >= footer_start {
                return Err(StoreError::corrupt(format!("chunk {i} offset out of order")));
            }
            prev_offset = offset;
            index.push(ChunkInfo { offset, packets, zone });
        }
        let total_packets = decode_u64(footer, &mut pos)?;
        let raw_bytes = decode_u64(footer, &mut pos)?;
        if pos != footer.len() {
            return Err(StoreError::corrupt("footer has trailing bytes"));
        }
        if total_packets != index.iter().map(|c| c.packets).sum::<u64>() {
            return Err(StoreError::corrupt("footer packet total disagrees with index"));
        }
        Ok(ChunkReader {
            file,
            index,
            chunks_end: footer_start,
            total_packets,
            raw_bytes,
            store_id: StoreId::mint(),
        })
    }

    /// This open's decoded-chunk cache identity.
    pub fn store_id(&self) -> StoreId {
        self.store_id
    }

    /// Drop every cache entry this open published — for owners whose
    /// backing file is about to disappear (scratch stores, spill runs).
    pub fn evict_cached(&self) {
        cache::evict_store(self.store_id);
    }

    /// Number of chunks in the store.
    pub fn chunk_count(&self) -> usize {
        self.index.len()
    }

    /// Total packets across all chunks.
    pub fn total_packets(&self) -> u64 {
        self.total_packets
    }

    /// In-memory bytes the stored packets would occupy (`n × 24`).
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// The footer index (offsets + zone maps).
    pub fn index(&self) -> &[ChunkInfo] {
        &self.index
    }

    /// Byte extent `(offset, len)` of chunk `i` within the file (footer
    /// metadata only, no I/O).
    pub fn chunk_extent(&self, i: usize) -> Result<(u64, u64), StoreError> {
        let info = self
            .index
            .get(i)
            .ok_or_else(|| StoreError::corrupt(format!("chunk {i} out of range")))?;
        let end = self
            .index
            .get(i + 1)
            .map(|next| next.offset)
            .unwrap_or(self.chunks_end);
        let len = end
            .checked_sub(info.offset)
            .ok_or_else(|| StoreError::corrupt("negative chunk extent"))?;
        Ok((info.offset, len))
    }

    /// Read one chunk's raw bytes (I/O only; pair with
    /// [`decode_chunk`] to fan the CPU work out over `booters-par`).
    pub fn raw_chunk(&mut self, i: usize) -> Result<Vec<u8>, StoreError> {
        let (offset, len) = self.chunk_extent(i)?;
        let mut bytes = vec![0u8; len as usize];
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(&mut bytes)?;
        Ok(bytes)
    }

    /// Read the raw bytes of as many whole, contiguous chunks starting at
    /// `first` as fit in `max_bytes` — always at least one, so a single
    /// oversized chunk still batches alone. One `seek` + one large
    /// `read_exact` replaces per-chunk round trips; the spill-merge run
    /// cursors use this to amortise I/O across chunk boundaries.
    ///
    /// Returns `(bytes, base_offset, end_chunk)`: `bytes` covers chunks
    /// `first..end_chunk` and chunk `j`'s record is
    /// `bytes[extent_j.0 - base_offset ..][.. extent_j.1]`.
    pub fn raw_chunk_batch(
        &mut self,
        first: usize,
        max_bytes: u64,
    ) -> Result<(Vec<u8>, u64, usize), StoreError> {
        let (base, first_len) = self.chunk_extent(first)?;
        let mut end_offset = base + first_len;
        let mut end_chunk = first + 1;
        while end_chunk < self.index.len() {
            let (off, len) = self.chunk_extent(end_chunk)?;
            debug_assert_eq!(off, end_offset, "chunks are contiguous");
            if off + len - base > max_bytes {
                break;
            }
            end_offset = off + len;
            end_chunk += 1;
        }
        let mut bytes = vec![0u8; (end_offset - base) as usize];
        self.file.seek(SeekFrom::Start(base))?;
        self.file.read_exact(&mut bytes)?;
        Ok((bytes, base, end_chunk))
    }

    /// The zone map of chunk `i`, or `None` past the end of the index.
    ///
    /// Zone maps are the scan-pruning metadata: per-chunk min/max packet
    /// time and min/max victim key, written by the ingest path and kept
    /// in the footer so a reader can decide — without any chunk I/O —
    /// that a chunk cannot contain a row matching a time or victim
    /// predicate. The query layer (`booters-query`) plans on exactly
    /// this surface; [`chunks_overlapping_time`](Self::chunks_overlapping_time)
    /// and [`chunks_for_victim`](Self::chunks_for_victim) are convenience
    /// filters over it.
    pub fn zone(&self, i: usize) -> Option<&ZoneMap> {
        self.index.get(i).map(|c| &c.zone)
    }

    /// Store-wide packet-time bounds `(min, max)` folded over every
    /// chunk's zone map, or `None` for an empty store. Footer metadata
    /// only — no chunk I/O.
    pub fn time_bounds(&self) -> Option<(u64, u64)> {
        self.index.iter().fold(None, |acc, c| match acc {
            None => Some((c.zone.min_time, c.zone.max_time)),
            Some((lo, hi)) => Some((lo.min(c.zone.min_time), hi.max(c.zone.max_time))),
        })
    }

    /// Store-wide victim-key bounds `(min, max)` folded over every
    /// chunk's zone map, or `None` for an empty store. Footer metadata
    /// only — no chunk I/O.
    pub fn victim_bounds(&self) -> Option<(u32, u32)> {
        self.index.iter().fold(None, |acc, c| match acc {
            None => Some((c.zone.min_victim, c.zone.max_victim)),
            Some((lo, hi)) => Some((lo.min(c.zone.min_victim), hi.max(c.zone.max_victim))),
        })
    }

    /// Read and decode one chunk.
    pub fn read_chunk(&mut self, i: usize) -> Result<Vec<SensorPacket>, StoreError> {
        decode_chunk(&self.raw_chunk(i)?)
    }

    /// Selectively decode the chunks named by `indices` (for example a
    /// zone-map-pruned plan): raw bytes are read sequentially (I/O),
    /// then decoded on the `booters-par` executor, one chunk per work
    /// item. The output preserves `indices` order — element `j` is the
    /// decoded chunk `indices[j]` — results merge in submission order
    /// and the earliest failing chunk's error wins, so output and errors
    /// are identical at every `BOOTERS_THREADS` setting.
    ///
    /// Chunks resident in the decoded-chunk [`cache`] skip both the raw
    /// read and the decode; misses are published after the fan-out, in
    /// `indices` order, so cache state stays thread-count invariant.
    pub fn read_chunks(&mut self, indices: &[usize]) -> Result<Vec<Vec<SensorPacket>>, StoreError> {
        enum Slot {
            Hit(Arc<ChunkColumns>),
            Raw(Vec<u8>),
        }
        let slots: Vec<Slot> = indices
            .iter()
            .map(|&i| match cache::lookup(self.store_id, i) {
                Some(cols) => Ok(Slot::Hit(cols)),
                None => self.raw_chunk(i).map(Slot::Raw),
            })
            .collect::<Result<_, _>>()?;
        // Coarse fan-out: items are whole-chunk decodes (or hit
        // materializations) — heavy enough that even a handful justify
        // workers.
        type Decoded = Result<(Vec<SensorPacket>, Option<Arc<ChunkColumns>>), StoreError>;
        let decoded = booters_par::par_map_coarse(&slots, |slot| -> Decoded {
            match slot {
                Slot::Hit(cols) => Ok((cols.materialize_all(), None)),
                Slot::Raw(bytes) => {
                    let cols = Arc::new(decode_chunk_columns(bytes)?);
                    Ok((cols.materialize_all(), Some(cols)))
                }
            }
        });
        let mut out = Vec::with_capacity(indices.len());
        for (j, item) in decoded.into_iter().enumerate() {
            let (rows, fresh): (Vec<SensorPacket>, Option<Arc<ChunkColumns>>) = item?;
            if let Some(cols) = fresh {
                cache::publish(self.store_id, indices[j], &cols);
            }
            out.push(rows);
        }
        Ok(out)
    }

    /// Decode the whole store: equivalent to [`read_chunks`](Self::read_chunks)
    /// over every chunk index, flattened in store order.
    pub fn read_all(&mut self) -> Result<Vec<SensorPacket>, StoreError> {
        let all: Vec<usize> = (0..self.chunk_count()).collect();
        let decoded = self.read_chunks(&all)?;
        let mut out = Vec::with_capacity(self.total_packets as usize);
        for chunk in decoded {
            out.extend(chunk);
        }
        Ok(out)
    }

    /// Indices of chunks whose zone map intersects `[from, to)` — the
    /// scan-pruning hook (no chunk I/O, footer metadata only).
    pub fn chunks_overlapping_time(&self, from: u64, to: u64) -> Vec<usize> {
        self.index
            .iter()
            .enumerate()
            .filter(|(_, c)| c.zone.overlaps_time(from, to))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of chunks that may contain `victim` per their zone maps.
    pub fn chunks_for_victim(&self, victim: VictimAddr) -> Vec<usize> {
        self.index
            .iter()
            .enumerate()
            .filter(|(_, c)| c.zone.may_contain_victim(victim))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::ChunkWriter;
    use booters_netsim::UdpProtocol;

    fn pkt(time: u64, victim: u32) -> SensorPacket {
        SensorPacket {
            time,
            sensor: 3,
            victim: VictimAddr(victim),
            protocol: UdpProtocol::Ntp,
            ttl: 54,
            src_port: 80,
        }
    }

    fn write_store(name: &str, packets: &[SensorPacket], cap: usize) -> std::path::PathBuf {
        let path = crate::test_path(name);
        let mut w = ChunkWriter::with_capacity(&path, cap).unwrap();
        w.push_all(packets).unwrap();
        w.finish().unwrap();
        path
    }

    #[test]
    fn written_store_reads_back_identically() {
        let packets: Vec<SensorPacket> = (0..777u64).map(|i| pkt(i * 3, (i % 50) as u32)).collect();
        let path = write_store("reader_roundtrip", &packets, 64);
        let mut r = ChunkReader::open(&path).unwrap();
        assert_eq!(r.chunk_count(), 777usize.div_ceil(64));
        assert_eq!(r.total_packets(), 777);
        assert_eq!(r.read_all().unwrap(), packets);
        // Per-chunk access agrees with bulk decode.
        assert_eq!(r.read_chunk(0).unwrap(), packets[..64]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_all_is_thread_count_invariant() {
        let packets: Vec<SensorPacket> = (0..500u64).map(|i| pkt(i, i as u32)).collect();
        let path = write_store("reader_threads", &packets, 32);
        let baseline = booters_par::with_threads(1, || {
            ChunkReader::open(&path).unwrap().read_all().unwrap()
        });
        for t in [2usize, 4, 8] {
            let got = booters_par::with_threads(t, || {
                ChunkReader::open(&path).unwrap().read_all().unwrap()
            });
            assert_eq!(got, baseline, "threads={t}");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn raw_chunk_batch_covers_whole_chunks_and_matches_per_chunk_reads() {
        let packets: Vec<SensorPacket> = (0..600u64).map(|i| pkt(i * 2, (i % 30) as u32)).collect();
        let path = write_store("reader_batch", &packets, 64);
        let mut r = ChunkReader::open(&path).unwrap();
        let n = r.chunk_count();
        // Budget 0 still yields exactly one chunk per batch.
        let (bytes, base, end) = r.raw_chunk_batch(0, 0).unwrap();
        assert_eq!(end, 1);
        assert_eq!(bytes, r.raw_chunk(0).unwrap());
        assert_eq!(base, r.chunk_extent(0).unwrap().0);
        // A huge budget grabs every remaining chunk in one read.
        let (bytes, base, end) = r.raw_chunk_batch(0, u64::MAX).unwrap();
        assert_eq!(end, n);
        for i in 0..n {
            let (off, len) = r.chunk_extent(i).unwrap();
            let slice = &bytes[(off - base) as usize..][..len as usize];
            assert_eq!(slice, r.raw_chunk(i).unwrap(), "chunk {i}");
            assert_eq!(decode_chunk(slice).unwrap(), r.read_chunk(i).unwrap());
        }
        // Walking batch-by-batch at a mid-size budget visits every chunk
        // exactly once, in order.
        let (_, first_len) = r.chunk_extent(0).unwrap();
        let mut cursor = 0usize;
        let mut visited = 0usize;
        while cursor < n {
            let (_, _, end) = r.raw_chunk_batch(cursor, 3 * first_len).unwrap();
            assert!(end > cursor);
            visited += end - cursor;
            cursor = end;
        }
        assert_eq!(visited, n);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zone_maps_prune_time_and_victim_scans() {
        // Chunk 0: times 0..99, victims 0..9; chunk 1: times 1000..1099,
        // victims 100..109.
        let mut packets: Vec<SensorPacket> = (0..100u64).map(|i| pkt(i, (i % 10) as u32)).collect();
        packets.extend((0..100u64).map(|i| pkt(1000 + i, 100 + (i % 10) as u32)));
        let path = write_store("reader_prune", &packets, 100);
        let r = ChunkReader::open(&path).unwrap();
        assert_eq!(r.chunks_overlapping_time(0, 100), vec![0]);
        assert_eq!(r.chunks_overlapping_time(1050, 1060), vec![1]);
        assert_eq!(r.chunks_overlapping_time(0, 2000), vec![0, 1]);
        assert!(r.chunks_overlapping_time(200, 900).is_empty());
        assert_eq!(r.chunks_for_victim(VictimAddr(5)), vec![0]);
        assert_eq!(r.chunks_for_victim(VictimAddr(105)), vec![1]);
        assert!(r.chunks_for_victim(VictimAddr(50)).is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn selective_read_chunks_matches_per_chunk_reads() {
        let packets: Vec<SensorPacket> = (0..640u64).map(|i| pkt(i * 5, (i % 40) as u32)).collect();
        let path = write_store("reader_selective", &packets, 64);
        let mut r = ChunkReader::open(&path).unwrap();
        assert_eq!(r.chunk_count(), 10);
        // An arbitrary, non-contiguous plan decodes exactly the named
        // chunks, in plan order.
        let plan = [7usize, 0, 3];
        let got = r.read_chunks(&plan).unwrap();
        assert_eq!(got.len(), plan.len());
        for (j, &i) in plan.iter().enumerate() {
            assert_eq!(got[j], r.read_chunk(i).unwrap(), "chunk {i}");
        }
        // The empty plan decodes nothing and is not an error.
        assert!(r.read_chunks(&[]).unwrap().is_empty());
        // Out-of-range indices surface as typed corruption errors.
        assert!(r.read_chunks(&[99]).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zone_accessors_expose_footer_metadata() {
        let mut packets: Vec<SensorPacket> = (0..100u64).map(|i| pkt(i, (i % 10) as u32)).collect();
        packets.extend((0..100u64).map(|i| pkt(1000 + i, 100 + (i % 10) as u32)));
        let path = write_store("reader_zones", &packets, 100);
        let r = ChunkReader::open(&path).unwrap();
        let z0 = r.zone(0).unwrap();
        assert_eq!((z0.min_time, z0.max_time), (0, 99));
        assert_eq!((z0.min_victim, z0.max_victim), (0, 9));
        let z1 = r.zone(1).unwrap();
        assert_eq!((z1.min_time, z1.max_time), (1000, 1099));
        assert!(r.zone(2).is_none());
        assert_eq!(r.time_bounds(), Some((0, 1099)));
        assert_eq!(r.victim_bounds(), Some((0, 109)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn not_a_store_file_is_bad_magic() {
        let path = crate::test_path("reader_badmagic");
        std::fs::write(&path, b"definitely not a store file, but long enough").unwrap();
        assert!(matches!(ChunkReader::open(&path), Err(StoreError::BadMagic)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_file_is_corrupt_not_panic() {
        let path = crate::test_path("reader_short");
        std::fs::write(&path, b"BS").unwrap();
        assert!(matches!(
            ChunkReader::open(&path),
            Err(StoreError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
